// Quickstart: the complete SchedInspector workflow in ~60 lines.
//
//   1. Build (or load) a workload trace.
//   2. Pick a base scheduling policy (here: SJF).
//   3. Train the RL inspector on the first 20% of the trace.
//   4. Evaluate base vs. inspected scheduling on held-out job sequences.
//   5. Save the trained model for deployment.
//
// Run:  ./build/examples/quickstart [trace-name] [policy]
//       trace-name in {CTC-SP2, SDSC-SP2, HPC2N, Lublin}; default SDSC-SP2.
#include <cstdio>
#include <string>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "rl/model_io.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

int main(int argc, char** argv) {
  using namespace si;
  const std::string trace_name = argc > 1 ? argv[1] : "SDSC-SP2";
  const std::string policy_name = argc > 2 ? argv[2] : "SJF";

  // 1. Workload: a calibrated synthetic trace (drop in a real SWF log with
  //    load_swf_file("path.swf") instead).
  const Trace trace = make_trace(trace_name, 4000, /*seed=*/42);
  auto [train_split, test_split] = trace.split(0.2);
  std::printf("trace %s: %zu jobs on %d processors\n", trace.name().c_str(),
              trace.size(), trace.cluster_procs());

  // 2. Base scheduler.
  PolicyPtr policy = make_policy(policy_name);

  // 3. Train the inspector toward average bounded slowdown.
  TrainerConfig config;
  config.metric = Metric::kBsld;
  config.epochs = 15;
  config.trajectories_per_epoch = 24;
  config.sequence_length = 64;
  config.seed = 42;
  Trainer trainer(train_split, *policy, config);
  ActorCritic agent = trainer.make_agent();
  std::printf("training %s inspector (%d epochs x %d trajectories)...\n",
              policy->name().c_str(), config.epochs,
              config.trajectories_per_epoch);
  const TrainResult result = trainer.train(agent);
  std::printf("converged improvement: %.2f bsld (rejection ratio %.0f%%)\n",
              result.converged_improvement,
              result.converged_rejection_ratio * 100.0);

  // 4. Evaluate on held-out sequences.
  EvalConfig eval_config;
  eval_config.sequences = 20;
  eval_config.sequence_length = 128;
  const EvalResult eval =
      evaluate(test_split, *policy, agent, trainer.features(), eval_config);
  const double base = eval.mean_base(Metric::kBsld);
  const double inspected = eval.mean_inspected(Metric::kBsld);
  std::printf("\nheld-out evaluation (%d sequences x %d jobs):\n",
              eval_config.sequences, eval_config.sequence_length);
  std::printf("  %-22s bsld %8.2f   util %5.2f%%\n",
              (policy->name() + " alone:").c_str(), base,
              eval.mean_base_utilization() * 100.0);
  std::printf("  %-22s bsld %8.2f   util %5.2f%%\n",
              (policy->name() + " + inspector:").c_str(), inspected,
              eval.mean_inspected_utilization() * 100.0);
  std::printf("  improvement: %.1f%%\n",
              base > 0.0 ? (base - inspected) / base * 100.0 : 0.0);

  // 5. Persist the model.
  const std::string model_path = "/tmp/schedinspector_" + trace_name + ".model";
  save_model_file(model_path, agent);
  std::printf("\nmodel saved to %s\n", model_path.c_str());
  return 0;
}
