// Policy playground: head-to-head comparison of every base scheduling
// policy, with and without a trained SchedInspector, on one workload.
//
// This is the "which policy + inspector combo should I deploy?" tool: it
// trains one inspector per base policy (small budget), then evaluates all
// of them on the same held-out sequences and ranks the combinations.
//
// Run:  ./build/examples/policy_playground [trace-name] [epochs]
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

int main(int argc, char** argv) {
  using namespace si;
  const std::string trace_name = argc > 1 ? argv[1] : "SDSC-SP2";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  const Trace trace = make_trace(trace_name, 4000, 42);
  auto [train_split, test_split] = trace.split(0.2);
  std::printf("playground on %s (%zu jobs, %d procs), %d training epochs "
              "per policy\n\n",
              trace.name().c_str(), trace.size(), trace.cluster_procs(),
              epochs);

  struct Row {
    std::string label;
    double bsld;
    double wait;
    double util;
  };
  std::vector<Row> rows;

  EvalConfig eval_config;
  eval_config.sequences = 16;
  eval_config.sequence_length = 128;

  for (const std::string& name : heuristic_policy_names()) {
    PolicyPtr policy = make_policy(name);

    TrainerConfig config;
    config.epochs = epochs;
    config.trajectories_per_epoch = 24;
    config.sequence_length = 64;
    config.seed = 42;
    Trainer trainer(train_split, *policy, config);
    ActorCritic agent = trainer.make_agent();
    trainer.train(agent);

    const EvalResult eval =
        evaluate(test_split, *policy, agent, trainer.features(), eval_config);
    rows.push_back({name, eval.mean_base(Metric::kBsld),
                    eval.mean_base(Metric::kWait),
                    eval.mean_base_utilization()});
    rows.push_back({name + "+inspector", eval.mean_inspected(Metric::kBsld),
                    eval.mean_inspected(Metric::kWait),
                    eval.mean_inspected_utilization()});
    std::printf("trained %s (converged rejection ratio from training run "
                "shown in bench_fig7_policies)\n",
                name.c_str());
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.bsld < b.bsld; });
  TextTable table({"rank", "scheduler", "avg bsld", "avg wait (s)", "util"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.row()
        .cell(static_cast<long long>(i + 1))
        .cell(rows[i].label)
        .cell(rows[i].bsld, 2)
        .cell(rows[i].wait, 0)
        .cell(format_double(rows[i].util * 100.0, 1) + "%");
  }
  std::printf("\nranking by held-out bsld (smaller is better):\n%s",
              table.render().c_str());
  return 0;
}
