// Slurm day: a realistic-settings walkthrough (§4.5) on an annotated
// workload. Builds the Slurm multifactor priority policy (age + fairshare +
// job-attribute + partition factors, all weights 1000) from a trace with
// user/queue annotations, explains the priority of a few sample jobs
// factor-by-factor, then trains SchedInspector on top of Slurm (with EASY
// backfilling, as Slurm defaults to) and reports the improvement.
//
// Run:  ./build/examples/slurm_day
#include <cstdio>

#include "common/table.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "sched/slurm.hpp"
#include "workload/registry.hpp"

int main() {
  using namespace si;
  const Trace trace = make_trace("SDSC-SP2", 4000, 42);
  auto [train_split, test_split] = trace.split(0.2);

  SlurmMultifactorPolicy slurm(trace);
  std::printf("Slurm multifactor policy calibrated on %s (%zu jobs)\n\n",
              trace.name().c_str(), trace.size());

  // Explain a few job priorities factor by factor, as a Slurm admin would
  // with `sprio`.
  std::printf("priority breakdown for three waiting jobs at t = 2 h (all "
              "weights 1000):\n");
  TextTable prio({"job", "user", "queue", "age", "fairshare", "job_attr",
                  "partition", "priority"});
  const Time now = 2.0 * 3600;
  for (std::size_t i = 100; i < 103; ++i) {
    const Job& j = trace.jobs()[i];
    prio.row()
        .cell("job" + std::to_string(j.id))
        .cell(static_cast<long long>(j.user))
        .cell(static_cast<long long>(j.queue))
        .cell(slurm.age_factor(j, now), 3)
        .cell(slurm.fairshare_factor(j.user), 3)
        .cell(slurm.job_attribute_factor(j), 3)
        .cell(slurm.partition_factor(j.queue), 3)
        .cell(slurm.priority(j, now), 0);
  }
  std::printf("%s\n", prio.render().c_str());

  // Train SchedInspector on top of Slurm, backfilling on.
  TrainerConfig config;
  config.epochs = 12;
  config.trajectories_per_epoch = 24;
  config.sequence_length = 64;
  config.sim.backfill = true;
  config.seed = 42;
  std::printf("training SchedInspector on Slurm + backfilling (%d epochs)"
              "...\n",
              config.epochs);
  Trainer trainer(train_split, slurm, config);
  ActorCritic agent = trainer.make_agent();
  const TrainResult result = trainer.train(agent);
  std::printf("converged improvement: %.2f bsld, rejection ratio %.0f%%\n\n",
              result.converged_improvement,
              result.converged_rejection_ratio * 100.0);

  EvalConfig eval_config;
  eval_config.sequences = 16;
  eval_config.sequence_length = 128;
  eval_config.sim.backfill = true;
  const EvalResult eval =
      evaluate(test_split, slurm, agent, trainer.features(), eval_config);
  TextTable table({"", "Slurm", "Slurm + SchedInspector"});
  table.row()
      .cell("avg bsld")
      .cell(eval.mean_base(Metric::kBsld), 2)
      .cell(eval.mean_inspected(Metric::kBsld), 2);
  table.row()
      .cell("avg wait (s)")
      .cell(eval.mean_base(Metric::kWait), 0)
      .cell(eval.mean_inspected(Metric::kWait), 0);
  table.row()
      .cell("utilization")
      .cell(format_double(eval.mean_base_utilization() * 100.0, 2) + "%")
      .cell(format_double(eval.mean_inspected_utilization() * 100.0, 2) +
            "%");
  std::printf("held-out comparison:\n%s", table.render().c_str());
  std::printf("\n(the paper's Figure 12 reports 24.7%% better bsld at a "
              "0.49%% utilization cost in this setting)\n");
  return 0;
}
