// Trace explorer: inspect a workload before scheduling against it.
//
// Loads one of the built-in calibrated traces (or a real SWF file) and
// prints its Table 2-style statistics, size/runtime/arrival distributions,
// and how every base scheduling policy performs on sampled sequences —
// useful for deciding which policy to enhance with SchedInspector.
//
// Run:  ./build/examples/trace_explorer [trace-name | /path/to/log.swf]
#include <cstdio>
#include <string>

#include "common/cdf.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"
#include "workload/swf.hpp"

namespace {

using namespace si;

Trace load(const std::string& arg) {
  if (arg.find(".swf") != std::string::npos) return load_swf_file(arg);
  return make_trace(arg, 4000, 42);
}

void print_distribution(const char* label, std::vector<double> sample,
                        const char* unit) {
  const EmpiricalCdf cdf(std::move(sample));
  std::printf("  %-18s p10 %10.0f | p50 %10.0f | p90 %10.0f | p99 %10.0f %s\n",
              label, cdf.inverse(0.10), cdf.inverse(0.50), cdf.inverse(0.90),
              cdf.inverse(0.99), unit);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace si;
  const std::string arg = argc > 1 ? argv[1] : "SDSC-SP2";
  const Trace trace = load(arg);
  const TraceStats stats = trace.stats();

  std::printf("trace %s\n", trace.name().c_str());
  std::printf("  jobs: %zu, cluster: %d processors\n", stats.jobs,
              stats.cluster_procs);
  std::printf("  mean inter-arrival: %.0f s, mean estimate: %.0f s, mean "
              "size: %.1f procs\n\n",
              stats.mean_interarrival, stats.mean_estimate, stats.mean_procs);

  std::vector<double> runtimes;
  std::vector<double> estimates;
  std::vector<double> sizes;
  std::vector<double> gaps;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Job& j = trace.jobs()[i];
    runtimes.push_back(j.run);
    estimates.push_back(j.estimate);
    sizes.push_back(static_cast<double>(j.procs));
    if (i > 0) gaps.push_back(j.submit - trace.jobs()[i - 1].submit);
  }
  std::printf("distributions:\n");
  print_distribution("actual runtime", runtimes, "s");
  print_distribution("estimated runtime", estimates, "s");
  print_distribution("requested procs", sizes, "");
  print_distribution("arrival gap", gaps, "s");

  // How does each base policy fare on this workload?
  std::printf("\nbase-policy comparison (20 sampled 128-job sequences, no "
              "backfilling):\n");
  TextTable table({"policy", "avg bsld", "avg wait (s)", "max bsld", "util"});
  Rng rng(7);
  std::vector<std::vector<Job>> sequences;
  for (int s = 0; s < 20; ++s)
    sequences.push_back(trace.sample_window(rng, std::min<std::size_t>(
                                                     128, trace.size())));
  for (const std::string& name : heuristic_policy_names()) {
    PolicyPtr policy = make_policy(name);
    Simulator sim(trace.cluster_procs(), SimConfig{});
    RunningStats bsld;
    RunningStats wait;
    RunningStats mbsld;
    RunningStats util;
    for (const auto& jobs : sequences) {
      const SequenceMetrics m = sim.run(jobs, *policy).metrics;
      bsld.add(m.avg_bsld);
      wait.add(m.avg_wait);
      mbsld.add(m.max_bsld);
      util.add(m.utilization);
    }
    table.row()
        .cell(name)
        .cell(bsld.mean(), 2)
        .cell(wait.mean(), 0)
        .cell(mbsld.mean(), 1)
        .cell(format_double(util.mean() * 100.0, 1) + "%");
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nhint: policies with poor bsld here are the ones "
              "SchedInspector can improve most (see bench_fig7_policies)\n");
  return 0;
}
