// schedinspector_served — inspection-as-a-service (DESIGN.md §9): run the
// TCP daemon that answers accept/reject decisions from a trained model, or
// talk to a running one.
//
//   schedinspector_served serve  --model /tmp/model.txt --port 7747
//   schedinspector_served stats  --port 7747
//   schedinspector_served swap   --port 7747 --model /tmp/new_model.txt
//   schedinspector_served decide --port 7747 --features 0.1,0.2,...  (8 values)
//
// serve prints "listening on <host>:<port>" once bound (port 0 picks a free
// port — useful for scripts), serves until SIGINT/SIGTERM, then drains
// in-flight requests and exits cleanly. Without --model it starts empty and
// answers from the degraded rule path until a model is swapped in.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/sink.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace si;
using namespace si::serve;

struct Options {
  std::string command;
  std::string host = "127.0.0.1";
  int port = 7747;
  std::string model_path;
  std::string features;
  int obs_size = 8;
  int max_batch = 32;
  int max_wait_us = 200;
  int queue_capacity = 1024;
  int max_connections = 256;
  std::uint32_t deadline_ms = 0;
  int drain_timeout_ms = 2000;
  std::string log_level = "info";
  int metrics_port = -1;
  std::string spans_out;
};

int usage() {
  std::fprintf(stderr,
               "usage: schedinspector_served <serve|stats|swap|decide> "
               "[options]\n"
               "  --host <addr>           bind/connect address (127.0.0.1)\n"
               "  --port <n>              port; 0 = auto-assign (serve only)\n"
               "  --model <path>          model/checkpoint file (serve, swap)\n"
               "  --features <a,b,...>    feature row for decide\n"
               "  --deadline-ms <n>       per-request deadline (serve default /\n"
               "                          decide request; 0 = none)\n"
               "  --obs-size <n>          served feature width (default 8)\n"
               "  --max-batch <n>         coalescer batch bound (default 32)\n"
               "  --max-wait-us <n>       coalescer linger (default 200)\n"
               "  --queue-cap <n>         admission queue bound (default 1024)\n"
               "  --max-conns <n>         connection bound (default 256)\n"
               "  --drain-timeout-ms <n>  shutdown drain bound (default 2000)\n"
               "  --log-level <level>     default info\n"
               "  --metrics-port <n>      HTTP GET /metrics side port\n"
               "                          (0 = auto; default disabled)\n"
               "  --spans-out <path>      write the request span trace as\n"
               "                          Chrome trace JSON on exit (Perfetto)\n");
  return 2;
}

bool parse(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return false;
    const char* value = argv[++i];
    if (arg == "--host") opts.host = value;
    else if (arg == "--port") opts.port = std::atoi(value);
    else if (arg == "--model") opts.model_path = value;
    else if (arg == "--features") opts.features = value;
    else if (arg == "--obs-size") opts.obs_size = std::atoi(value);
    else if (arg == "--max-batch") opts.max_batch = std::atoi(value);
    else if (arg == "--max-wait-us") opts.max_wait_us = std::atoi(value);
    else if (arg == "--queue-cap") opts.queue_capacity = std::atoi(value);
    else if (arg == "--max-conns") opts.max_connections = std::atoi(value);
    else if (arg == "--deadline-ms")
      opts.deadline_ms = static_cast<std::uint32_t>(std::atoi(value));
    else if (arg == "--drain-timeout-ms")
      opts.drain_timeout_ms = std::atoi(value);
    else if (arg == "--log-level") opts.log_level = value;
    else if (arg == "--metrics-port") opts.metrics_port = std::atoi(value);
    else if (arg == "--spans-out") opts.spans_out = value;
    else
      return false;
  }
  return opts.command == "serve" || opts.command == "stats" ||
         opts.command == "swap" || opts.command == "decide";
}

Server* g_server = nullptr;

extern "C" void handle_signal(int) {
  // Async-signal-safe by contract: request_stop() is an atomic store plus
  // one pipe write. The drain itself happens on the server's own threads.
  if (g_server != nullptr) g_server->request_stop();
}

int cmd_serve(const Options& opts) {
  ServerConfig config;
  config.host = opts.host;
  config.port = opts.port;
  config.obs_size = opts.obs_size;
  config.max_batch = opts.max_batch;
  config.max_wait_us = opts.max_wait_us;
  config.queue_capacity = opts.queue_capacity;
  config.max_connections = opts.max_connections;
  config.default_deadline_ms = opts.deadline_ms;
  config.drain_timeout_ms = opts.drain_timeout_ms;
  config.metrics_port = opts.metrics_port;
  SpanCollector spans;
  if (!opts.spans_out.empty()) config.spans = &spans;
  Server server(config);
  if (!opts.model_path.empty()) {
    const PublishResult result = server.swap_from_file(opts.model_path);
    if (!result.ok) {
      std::fprintf(stderr, "cannot serve %s: %s\n", opts.model_path.c_str(),
                   result.message.c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "no --model: serving degraded (rule inspector) until a "
                 "model is swapped in\n");
  }
  server.start();
  std::printf("listening on %s:%d\n", opts.host.c_str(), server.port());
  if (server.metrics_port() >= 0)
    std::printf("metrics on http://%s:%d/metrics\n", opts.host.c_str(),
                server.metrics_port());
  std::fflush(stdout);

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (server.running() && !server.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  g_server = nullptr;
  std::printf("%s", server.stats_json().c_str());
  if (!opts.spans_out.empty()) {
    FileSink sink(opts.spans_out);
    spans.write_chrome_json(sink);
    std::fprintf(stderr, "wrote %zu spans to %s (load in ui.perfetto.dev)\n",
                 spans.size(), opts.spans_out.c_str());
  }
  return 0;
}

int cmd_stats(const Options& opts) {
  ServeClient client;
  if (!connect_with_backoff(client, opts.host, opts.port)) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  const auto json = client.stats_json();
  if (!json) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  std::printf("%s", json->c_str());
  return 0;
}

int cmd_swap(const Options& opts) {
  if (opts.model_path.empty()) {
    std::fprintf(stderr, "swap needs --model <path>\n");
    return 2;
  }
  ServeClient client;
  if (!connect_with_backoff(client, opts.host, opts.port)) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  const auto reply = client.swap(opts.model_path);
  if (!reply) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  if (reply->ok != 0) {
    std::printf("swapped, serving epoch %llu\n",
                static_cast<unsigned long long>(reply->epoch));
    return 0;
  }
  std::fprintf(stderr, "swap rejected: %s\n", reply->message.c_str());
  return 1;
}

int cmd_decide(const Options& opts) {
  std::vector<double> features;
  std::string token;
  for (const char c : opts.features + ",") {
    if (c != ',') {
      token += c;
      continue;
    }
    if (!token.empty()) features.push_back(std::atof(token.c_str()));
    token.clear();
  }
  if (features.empty()) {
    std::fprintf(stderr, "decide needs --features a,b,...\n");
    return 2;
  }
  ServeClient client;
  if (!connect_with_backoff(client, opts.host, opts.port)) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  const auto reply = client.decide(features, 1, opts.deadline_ms);
  if (!reply) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  const char* status =
      reply->status == ReplyStatus::kOk          ? "ok"
      : reply->status == ReplyStatus::kDegraded  ? "degraded"
      : reply->status == ReplyStatus::kDeadlineExceeded ? "deadline-exceeded"
                                                        : "error";
  const char* source = reply->source == DecisionSource::kModel  ? "model"
                       : reply->source == DecisionSource::kRule ? "rule"
                                                                : "base";
  std::printf("%s  status=%s source=%s prob=%.4f epoch=%llu\n",
              reply->reject != 0 ? "REJECT" : "ACCEPT", status, source,
              reply->prob, static_cast<unsigned long long>(reply->epoch));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse(argc, argv, opts)) return usage();
  try {
    si::global_logger().set_level(si::log_level_from_name(opts.log_level));
    si::global_logger().add_stderr_sink();
    if (opts.command == "serve") return cmd_serve(opts);
    if (opts.command == "stats") return cmd_stats(opts);
    if (opts.command == "swap") return cmd_swap(opts);
    return cmd_decide(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
