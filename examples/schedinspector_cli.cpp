// schedinspector_cli — the deployable front-end: train an inspector on a
// workload (built-in synthetic or a real SWF file), evaluate a trained
// model, or explain its decisions, all from the command line.
//
//   schedinspector_cli train --trace SDSC-SP2 --policy SJF \
//       --metric bsld --epochs 24 --out /tmp/model.txt
//   schedinspector_cli eval  --trace SDSC-SP2 --policy SJF \
//       --model /tmp/model.txt --sequences 20
//   schedinspector_cli analyze --trace SDSC-SP2 --policy SJF \
//       --model /tmp/model.txt
//
// --trace accepts a registry name (CTC-SP2, SDSC-SP2, HPC2N, Lublin) or a
// path to an SWF file. --policy accepts any Table 3 name or "Slurm".
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "check/invariant_oracle.hpp"
#include "common/sink.hpp"
#include "core/analysis.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "rl/model_io.hpp"
#include "sched/factory.hpp"
#include "sim/metrics.hpp"
#include "workload/registry.hpp"
#include "workload/swf.hpp"

namespace {

using namespace si;

struct Options {
  std::string command;
  std::string trace = "SDSC-SP2";
  std::string policy = "SJF";
  std::string metric = "bsld";
  std::string model_path = "/tmp/schedinspector.model";
  std::string resume;
  int epochs = 24;
  int trajectories = 40;
  int sequence_length = 64;
  int sequences = 20;
  int rollout_batch = 8;
  bool backfill = false;
  bool faults = false;
  bool swf_lenient = false;
  std::uint64_t seed = 42;

  // --- observability (see DESIGN.md §5) ---
  std::string trace_out;      ///< JSONL simulator event trace
  std::string metrics_out;    ///< metrics registry JSON dump
  std::string telemetry_out;  ///< per-epoch training telemetry JSONL
  std::string spans_out;      ///< Chrome trace JSON of training phase spans
  std::string log_level = "warn";
  bool quiet = false;
  bool profile = false;
  bool check = false;  ///< run under the invariant oracle (DESIGN.md §7)
};

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += '|';
    out += n;
  }
  return out;
}

int usage() {
  const std::string policies = join_names(known_policies());
  const std::string metrics = join_names(known_metric_names());
  std::fprintf(stderr,
               "usage: schedinspector_cli <train|eval|analyze> [options]\n"
               "  --trace <name|file.swf>   workload (default SDSC-SP2)\n"
               "  --policy <%s>\n"
               "  --metric <%s>\n"
               "  --model <path>            model file (out for train)\n"
               "  --epochs / --trajectories / --seq-len   training scale\n"
               "  --sequences <n>           evaluation sample count\n"
               "  --rollout-batch <n>       sequences batched per policy\n"
               "                            forward (default 8; results are\n"
               "                            identical for any value)\n"
               "  --backfill                enable EASY backfilling\n"
               "  --faults                  inject node drains / job failures\n"
               "  --resume <path>           checkpoint file; resumes training\n"
               "                            from it when it already exists\n"
               "  --swf-lenient             repair/skip malformed SWF records\n"
               "  --seed <n>\n"
               "  --trace-out <file.jsonl>  write one JSONL record per\n"
               "                            simulator event\n"
               "  --metrics-out <file.json> dump the metrics registry as JSON\n"
               "  --telemetry-out <file.jsonl>  per-epoch training telemetry\n"
               "  --spans-out <file.json>   write the train-phase span trace\n"
               "                            as Chrome trace JSON (Perfetto)\n"
               "  --log-level <%s>\n"
               "  --quiet                   suppress the training progress line\n"
               "  --profile                 print a wall-time profile tree to\n"
               "                            stderr at exit\n"
               "  --check                   validate every simulated sequence\n"
               "                            with the runtime invariant oracle;\n"
               "                            violations fail the command\n",
               policies.c_str(), metrics.c_str(),
               join_names(known_log_levels()).c_str());
  return 2;
}

bool parse(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--backfill") {
      opts.backfill = true;
      continue;
    }
    if (arg == "--faults") {
      opts.faults = true;
      continue;
    }
    if (arg == "--swf-lenient") {
      opts.swf_lenient = true;
      continue;
    }
    if (arg == "--quiet") {
      opts.quiet = true;
      continue;
    }
    if (arg == "--profile") {
      opts.profile = true;
      continue;
    }
    if (arg == "--check") {
      opts.check = true;
      continue;
    }
    const char* value = next();
    if (value == nullptr) return false;
    if (arg == "--trace") opts.trace = value;
    else if (arg == "--policy") opts.policy = value;
    else if (arg == "--metric") opts.metric = value;
    else if (arg == "--model") opts.model_path = value;
    else if (arg == "--resume") opts.resume = value;
    else if (arg == "--epochs") opts.epochs = std::atoi(value);
    else if (arg == "--trajectories") opts.trajectories = std::atoi(value);
    else if (arg == "--seq-len") opts.sequence_length = std::atoi(value);
    else if (arg == "--sequences") opts.sequences = std::atoi(value);
    else if (arg == "--rollout-batch") opts.rollout_batch = std::atoi(value);
    else if (arg == "--seed")
      opts.seed = static_cast<std::uint64_t>(std::atoll(value));
    else if (arg == "--trace-out") opts.trace_out = value;
    else if (arg == "--metrics-out") opts.metrics_out = value;
    else if (arg == "--telemetry-out") opts.telemetry_out = value;
    else if (arg == "--spans-out") opts.spans_out = value;
    else if (arg == "--log-level") opts.log_level = value;
    else
      return false;
  }
  return opts.command == "train" || opts.command == "eval" ||
         opts.command == "analyze";
}

Trace load_trace(const Options& opts) {
  if (opts.trace.size() > 4 &&
      opts.trace.rfind(".swf") == opts.trace.size() - 4) {
    SwfOptions swf_options;
    if (opts.swf_lenient) {
      swf_options.mode = SwfMode::kLenient;
      SwfIngestReport report;
      Trace trace = load_swf_file(opts.trace, swf_options, &report);
      std::printf("%s\n", report.summary().c_str());
      for (const std::string& err : report.errors)
        std::printf("  %s\n", err.c_str());
      return trace;
    }
    return load_swf_file(opts.trace, swf_options);
  }
  return make_trace(opts.trace, kDefaultTraceJobs, opts.seed);
}

PolicyPtr load_policy(const Options& opts, const Trace& trace) {
  if (opts.policy == "Slurm") return make_slurm_policy(trace);
  return make_policy(opts.policy);
}

// The --faults profile: node drains every ~4 hours taking 5% of the machine
// for an hour, a 2% per-attempt job failure rate with two requeues, and
// Slurm-style kills at the requested time.
FaultConfig fault_profile(const Options& opts) {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = opts.seed ^ 0xfa173eedULL;
  faults.drain_interval = 4.0 * 3600.0;
  faults.drain_fraction = 0.05;
  faults.drain_duration = 3600.0;
  faults.job_failure_prob = 0.02;
  faults.max_requeues = 2;
  faults.estimate_wall = true;
  return faults;
}

// Owns the sinks behind --trace-out / --metrics-out for one command's
// lifetime. Flushed/exported explicitly via finish() so errors surface
// before exit instead of being swallowed in a destructor.
struct Observability {
  std::unique_ptr<FileSink> trace_sink;
  std::unique_ptr<JsonlTracer> tracer;
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<InvariantOracle> oracle;
  std::unique_ptr<SpanCollector> spans;

  /// `enable_check` is false for train: rollout workers run concurrently,
  /// so the trainer nulls any oracle anyway.
  explicit Observability(const Options& opts, bool enable_check = true) {
    if (!opts.trace_out.empty()) {
      trace_sink = std::make_unique<FileSink>(opts.trace_out);
      tracer = std::make_unique<JsonlTracer>(*trace_sink);
    }
    if (!opts.metrics_out.empty()) metrics = std::make_unique<MetricsRegistry>();
    if (opts.check && enable_check)
      oracle = std::make_unique<InvariantOracle>();
    if (!opts.spans_out.empty()) spans = std::make_unique<SpanCollector>();
  }

  void apply(SimConfig& sim) const {
    sim.tracer = tracer.get();
    sim.metrics = metrics.get();
    sim.oracle = oracle.get();
  }

  /// Flushes sinks; returns non-zero when the oracle saw a violation.
  int finish(const Options& opts) {
    if (trace_sink) trace_sink->flush();
    if (metrics) {
      FileSink out(opts.metrics_out);
      metrics->write_json(out);
      out.flush();
    }
    if (spans) {
      FileSink out(opts.spans_out);
      spans->write_chrome_json(out);
      out.flush();
    }
    if (oracle) {
      std::fprintf(oracle->ok() ? stdout : stderr, "%s\n",
                   oracle->report().c_str());
      if (!oracle->ok()) return 1;
    }
    return 0;
  }
};

TrainerConfig trainer_config(const Options& opts) {
  TrainerConfig config;
  config.metric = metric_from_name(opts.metric);
  config.epochs = opts.epochs;
  config.trajectories_per_epoch = opts.trajectories;
  config.sequence_length = opts.sequence_length;
  config.sim.backfill = opts.backfill;
  if (opts.faults) config.sim.faults = fault_profile(opts);
  config.seed = opts.seed;
  config.rollout_batch = std::max(1, opts.rollout_batch);
  if (!opts.resume.empty()) {
    config.checkpoint_path = opts.resume;
    config.resume_from = opts.resume;
  }
  return config;
}

int cmd_train(const Options& opts) {
  if (opts.check)
    std::fprintf(stderr,
                 "note: --check applies to eval/analyze only (training "
                 "rollout workers run concurrently)\n");
  const Trace trace = load_trace(opts);
  auto [train_split, test_split] = trace.split(0.2);
  PolicyPtr policy = load_policy(opts, trace);
  Observability obs(opts, /*enable_check=*/false);
  TrainerConfig config = trainer_config(opts);
  config.telemetry_path = opts.telemetry_out;
  config.progress = !opts.quiet;
  config.tracer = obs.tracer.get();
  config.metrics = obs.metrics.get();
  config.spans = obs.spans.get();
  Trainer trainer(train_split, *policy, config);
  ActorCritic agent = trainer.make_agent();
  std::printf("training on %s (%zu jobs, %d procs), policy %s, metric %s\n",
              trace.name().c_str(), trace.size(), trace.cluster_procs(),
              policy->name().c_str(), opts.metric.c_str());
  const TrainResult result = trainer.train(agent);
  if (result.resumed_epochs > 0)
    std::printf("resumed from %s: skipped %d already-trained epochs\n",
                opts.resume.c_str(), result.resumed_epochs);
  if (result.skipped_updates > 0)
    std::printf("skipped %d diverged PPO updates (rolled back)\n",
                result.skipped_updates);
  for (std::size_t i = 0; i < result.curve.size();
       i += std::max<std::size_t>(result.curve.size() / 10, 1)) {
    const EpochStats& e = result.curve[i];
    std::printf("  epoch %3d  improvement %10.3f  reject ratio %.3f\n",
                e.epoch, e.mean_improvement, e.rejection_ratio);
  }
  std::printf("converged improvement %.3f, rejection ratio %.3f\n",
              result.converged_improvement,
              result.converged_rejection_ratio);
  save_model_file(opts.model_path, agent);
  std::printf("model written to %s\n", opts.model_path.c_str());
  return obs.finish(opts);
}

int cmd_eval(const Options& opts) {
  const Trace trace = load_trace(opts);
  auto [train_split, test_split] = trace.split(0.2);
  PolicyPtr policy = load_policy(opts, trace);
  const ActorCritic agent = load_model_file(opts.model_path);
  const Metric metric = metric_from_name(opts.metric);
  FeatureBuilder features(FeatureMode::kManual, metric,
                          FeatureScales::from_trace(trace), 600.0);
  if (agent.obs_size() != features.feature_count()) {
    std::fprintf(stderr, "model expects %d features, builder provides %d\n",
                 agent.obs_size(), features.feature_count());
    return 1;
  }
  EvalConfig config;
  config.sequences = opts.sequences;
  config.sequence_length = std::min<int>(256, static_cast<int>(
                                                  test_split.size()));
  config.sim.backfill = opts.backfill;
  if (opts.faults) config.sim.faults = fault_profile(opts);
  config.seed = opts.seed;
  config.rollout_batch = std::max(1, opts.rollout_batch);
  Observability obs(opts);
  obs.apply(config.sim);
  const EvalResult eval =
      evaluate(test_split, *policy, agent, features, config);
  const double base = eval.mean_base(metric);
  const double insp = eval.mean_inspected(metric);
  std::printf("%s on %s, %d sequences x %d jobs\n", policy->name().c_str(),
              trace.name().c_str(), config.sequences,
              config.sequence_length);
  std::printf("  base      %s = %.3f, util %.2f%%\n", opts.metric.c_str(),
              base, eval.mean_base_utilization() * 100.0);
  std::printf("  inspected %s = %.3f, util %.2f%%\n", opts.metric.c_str(),
              insp, eval.mean_inspected_utilization() * 100.0);
  std::printf("  improvement %.2f%%\n",
              base > 0.0 ? (base - insp) / base * 100.0 : 0.0);
  if (opts.faults) {
    std::size_t requeues = 0;
    std::size_t kills = 0;
    std::size_t wall_kills = 0;
    double lost = 0.0;
    for (const EvalPair& p : eval.pairs) {
      requeues += p.inspected.requeues;
      kills += p.inspected.kills;
      wall_kills += p.inspected.wall_kills;
      lost += p.inspected.lost_node_seconds;
    }
    std::printf("  faults: %zu requeues, %zu kills, %zu wall kills, "
                "%.0f lost node-seconds\n",
                requeues, kills, wall_kills, lost);
  }
  return obs.finish(opts);
}

int cmd_analyze(const Options& opts) {
  const Trace trace = load_trace(opts);
  PolicyPtr policy = load_policy(opts, trace);
  const ActorCritic agent = load_model_file(opts.model_path);
  const Metric metric = metric_from_name(opts.metric);
  FeatureBuilder features(FeatureMode::kManual, metric,
                          FeatureScales::from_trace(trace), 600.0);
  if (agent.obs_size() != features.feature_count()) {
    std::fprintf(stderr, "model/feature width mismatch\n");
    return 1;
  }
  DecisionRecorder recorder(features.feature_names());
  RlInspector inspector(agent, features, InspectorMode::kGreedy);
  inspector.set_recorder(&recorder);
  SimConfig sim_config;
  sim_config.backfill = opts.backfill;
  if (opts.faults) sim_config.faults = fault_profile(opts);
  Observability obs(opts);
  obs.apply(sim_config);
  Simulator sim(trace.cluster_procs(), sim_config);
  std::vector<Job> jobs = trace.jobs();
  sim.run(jobs, *policy, &inspector);
  std::printf("%zu inspections, %zu rejections (%.1f%%)\n",
              recorder.total_samples(), recorder.rejected_samples(),
              recorder.rejection_ratio() * 100.0);
  std::printf("%s", recorder.render(10).c_str());
  return obs.finish(opts);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse(argc, argv, opts)) return usage();
  try {
    si::global_logger().set_level(si::log_level_from_name(opts.log_level));
    si::global_logger().add_stderr_sink();
    if (opts.profile) {
      si::Profiler::set_enabled(true);
      si::Profiler::instance().report_at_exit();
    }
    if (opts.command == "train") return cmd_train(opts);
    if (opts.command == "eval") return cmd_eval(opts);
    return cmd_analyze(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
