# Empty dependencies file for si_sched.
# This may be replaced when dependencies are built.
