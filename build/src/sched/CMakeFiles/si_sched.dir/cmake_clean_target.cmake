file(REMOVE_RECURSE
  "libsi_sched.a"
)
