file(REMOVE_RECURSE
  "CMakeFiles/si_sched.dir/f1.cpp.o"
  "CMakeFiles/si_sched.dir/f1.cpp.o.d"
  "CMakeFiles/si_sched.dir/factory.cpp.o"
  "CMakeFiles/si_sched.dir/factory.cpp.o.d"
  "CMakeFiles/si_sched.dir/policies.cpp.o"
  "CMakeFiles/si_sched.dir/policies.cpp.o.d"
  "CMakeFiles/si_sched.dir/slurm.cpp.o"
  "CMakeFiles/si_sched.dir/slurm.cpp.o.d"
  "libsi_sched.a"
  "libsi_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
