
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/f1.cpp" "src/sched/CMakeFiles/si_sched.dir/f1.cpp.o" "gcc" "src/sched/CMakeFiles/si_sched.dir/f1.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/si_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/si_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/policies.cpp" "src/sched/CMakeFiles/si_sched.dir/policies.cpp.o" "gcc" "src/sched/CMakeFiles/si_sched.dir/policies.cpp.o.d"
  "/root/repo/src/sched/slurm.cpp" "src/sched/CMakeFiles/si_sched.dir/slurm.cpp.o" "gcc" "src/sched/CMakeFiles/si_sched.dir/slurm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/si_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/si_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
