# Empty compiler generated dependencies file for si_rl.
# This may be replaced when dependencies are built.
