file(REMOVE_RECURSE
  "CMakeFiles/si_rl.dir/actor_critic.cpp.o"
  "CMakeFiles/si_rl.dir/actor_critic.cpp.o.d"
  "CMakeFiles/si_rl.dir/adam.cpp.o"
  "CMakeFiles/si_rl.dir/adam.cpp.o.d"
  "CMakeFiles/si_rl.dir/mlp.cpp.o"
  "CMakeFiles/si_rl.dir/mlp.cpp.o.d"
  "CMakeFiles/si_rl.dir/model_io.cpp.o"
  "CMakeFiles/si_rl.dir/model_io.cpp.o.d"
  "CMakeFiles/si_rl.dir/ppo.cpp.o"
  "CMakeFiles/si_rl.dir/ppo.cpp.o.d"
  "libsi_rl.a"
  "libsi_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
