file(REMOVE_RECURSE
  "libsi_rl.a"
)
