file(REMOVE_RECURSE
  "CMakeFiles/si_common.dir/cdf.cpp.o"
  "CMakeFiles/si_common.dir/cdf.cpp.o.d"
  "CMakeFiles/si_common.dir/env.cpp.o"
  "CMakeFiles/si_common.dir/env.cpp.o.d"
  "CMakeFiles/si_common.dir/rng.cpp.o"
  "CMakeFiles/si_common.dir/rng.cpp.o.d"
  "CMakeFiles/si_common.dir/stats.cpp.o"
  "CMakeFiles/si_common.dir/stats.cpp.o.d"
  "CMakeFiles/si_common.dir/table.cpp.o"
  "CMakeFiles/si_common.dir/table.cpp.o.d"
  "libsi_common.a"
  "libsi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
