file(REMOVE_RECURSE
  "libsi_common.a"
)
