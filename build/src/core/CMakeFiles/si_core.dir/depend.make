# Empty dependencies file for si_core.
# This may be replaced when dependencies are built.
