file(REMOVE_RECURSE
  "libsi_core.a"
)
