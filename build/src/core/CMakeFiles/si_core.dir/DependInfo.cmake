
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/si_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/si_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/si_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/features.cpp.o.d"
  "/root/repo/src/core/learned.cpp" "src/core/CMakeFiles/si_core.dir/learned.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/learned.cpp.o.d"
  "/root/repo/src/core/reward.cpp" "src/core/CMakeFiles/si_core.dir/reward.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/reward.cpp.o.d"
  "/root/repo/src/core/rl_inspector.cpp" "src/core/CMakeFiles/si_core.dir/rl_inspector.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/rl_inspector.cpp.o.d"
  "/root/repo/src/core/rollout.cpp" "src/core/CMakeFiles/si_core.dir/rollout.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/rollout.cpp.o.d"
  "/root/repo/src/core/rule_inspector.cpp" "src/core/CMakeFiles/si_core.dir/rule_inspector.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/rule_inspector.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/si_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/si_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/si_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/si_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/si_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/si_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/si_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
