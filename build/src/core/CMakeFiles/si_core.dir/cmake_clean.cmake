file(REMOVE_RECURSE
  "CMakeFiles/si_core.dir/analysis.cpp.o"
  "CMakeFiles/si_core.dir/analysis.cpp.o.d"
  "CMakeFiles/si_core.dir/evaluator.cpp.o"
  "CMakeFiles/si_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/si_core.dir/features.cpp.o"
  "CMakeFiles/si_core.dir/features.cpp.o.d"
  "CMakeFiles/si_core.dir/learned.cpp.o"
  "CMakeFiles/si_core.dir/learned.cpp.o.d"
  "CMakeFiles/si_core.dir/reward.cpp.o"
  "CMakeFiles/si_core.dir/reward.cpp.o.d"
  "CMakeFiles/si_core.dir/rl_inspector.cpp.o"
  "CMakeFiles/si_core.dir/rl_inspector.cpp.o.d"
  "CMakeFiles/si_core.dir/rollout.cpp.o"
  "CMakeFiles/si_core.dir/rollout.cpp.o.d"
  "CMakeFiles/si_core.dir/rule_inspector.cpp.o"
  "CMakeFiles/si_core.dir/rule_inspector.cpp.o.d"
  "CMakeFiles/si_core.dir/trainer.cpp.o"
  "CMakeFiles/si_core.dir/trainer.cpp.o.d"
  "libsi_core.a"
  "libsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
