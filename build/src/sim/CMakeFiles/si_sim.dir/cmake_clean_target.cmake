file(REMOVE_RECURSE
  "libsi_sim.a"
)
