# Empty compiler generated dependencies file for si_sim.
# This may be replaced when dependencies are built.
