file(REMOVE_RECURSE
  "CMakeFiles/si_workload.dir/lublin.cpp.o"
  "CMakeFiles/si_workload.dir/lublin.cpp.o.d"
  "CMakeFiles/si_workload.dir/registry.cpp.o"
  "CMakeFiles/si_workload.dir/registry.cpp.o.d"
  "CMakeFiles/si_workload.dir/swf.cpp.o"
  "CMakeFiles/si_workload.dir/swf.cpp.o.d"
  "CMakeFiles/si_workload.dir/synthetic.cpp.o"
  "CMakeFiles/si_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/si_workload.dir/trace.cpp.o"
  "CMakeFiles/si_workload.dir/trace.cpp.o.d"
  "libsi_workload.a"
  "libsi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
