file(REMOVE_RECURSE
  "libsi_workload.a"
)
