# Empty dependencies file for si_workload.
# This may be replaced when dependencies are built.
