# Empty dependencies file for bench_fig8_test_bsld.
# This may be replaced when dependencies are built.
