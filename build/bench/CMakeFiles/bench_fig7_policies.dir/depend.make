# Empty dependencies file for bench_fig7_policies.
# This may be replaced when dependencies are built.
