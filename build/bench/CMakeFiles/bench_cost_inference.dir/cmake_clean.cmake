file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_inference.dir/bench_cost_inference.cpp.o"
  "CMakeFiles/bench_cost_inference.dir/bench_cost_inference.cpp.o.d"
  "bench_cost_inference"
  "bench_cost_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
