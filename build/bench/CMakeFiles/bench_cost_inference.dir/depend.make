# Empty dependencies file for bench_cost_inference.
# This may be replaced when dependencies are built.
