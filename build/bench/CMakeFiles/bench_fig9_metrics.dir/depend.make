# Empty dependencies file for bench_fig9_metrics.
# This may be replaced when dependencies are built.
