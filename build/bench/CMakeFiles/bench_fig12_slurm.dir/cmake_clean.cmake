file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_slurm.dir/bench_fig12_slurm.cpp.o"
  "CMakeFiles/bench_fig12_slurm.dir/bench_fig12_slurm.cpp.o.d"
  "bench_fig12_slurm"
  "bench_fig12_slurm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
