# Empty compiler generated dependencies file for bench_fig12_slurm.
# This may be replaced when dependencies are built.
