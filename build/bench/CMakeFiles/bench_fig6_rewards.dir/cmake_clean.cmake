file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rewards.dir/bench_fig6_rewards.cpp.o"
  "CMakeFiles/bench_fig6_rewards.dir/bench_fig6_rewards.cpp.o.d"
  "bench_fig6_rewards"
  "bench_fig6_rewards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
