# Empty compiler generated dependencies file for bench_fig6_rewards.
# This may be replaced when dependencies are built.
