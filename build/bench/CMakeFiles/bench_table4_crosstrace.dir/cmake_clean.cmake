file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_crosstrace.dir/bench_table4_crosstrace.cpp.o"
  "CMakeFiles/bench_table4_crosstrace.dir/bench_table4_crosstrace.cpp.o.d"
  "bench_table4_crosstrace"
  "bench_table4_crosstrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_crosstrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
