file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_util.dir/bench_table5_util.cpp.o"
  "CMakeFiles/bench_table5_util.dir/bench_table5_util.cpp.o.d"
  "bench_table5_util"
  "bench_table5_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
