file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_features.dir/bench_fig5_features.cpp.o"
  "CMakeFiles/bench_fig5_features.dir/bench_fig5_features.cpp.o.d"
  "bench_fig5_features"
  "bench_fig5_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
