file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_analysis.dir/bench_fig13_analysis.cpp.o"
  "CMakeFiles/bench_fig13_analysis.dir/bench_fig13_analysis.cpp.o.d"
  "bench_fig13_analysis"
  "bench_fig13_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
