file(REMOVE_RECURSE
  "CMakeFiles/si_bench_common.dir/common.cpp.o"
  "CMakeFiles/si_bench_common.dir/common.cpp.o.d"
  "libsi_bench_common.a"
  "libsi_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
