# Empty dependencies file for si_bench_common.
# This may be replaced when dependencies are built.
