file(REMOVE_RECURSE
  "libsi_bench_common.a"
)
