file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inspectors.dir/bench_ablation_inspectors.cpp.o"
  "CMakeFiles/bench_ablation_inspectors.dir/bench_ablation_inspectors.cpp.o.d"
  "bench_ablation_inspectors"
  "bench_ablation_inspectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inspectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
