# Empty dependencies file for bench_ablation_inspectors.
# This may be replaced when dependencies are built.
