file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_learned_policy.dir/bench_ext_learned_policy.cpp.o"
  "CMakeFiles/bench_ext_learned_policy.dir/bench_ext_learned_policy.cpp.o.d"
  "bench_ext_learned_policy"
  "bench_ext_learned_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_learned_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
