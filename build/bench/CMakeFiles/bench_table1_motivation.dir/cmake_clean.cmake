file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_motivation.dir/bench_table1_motivation.cpp.o"
  "CMakeFiles/bench_table1_motivation.dir/bench_table1_motivation.cpp.o.d"
  "bench_table1_motivation"
  "bench_table1_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
