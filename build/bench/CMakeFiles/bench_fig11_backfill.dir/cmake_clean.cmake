file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_backfill.dir/bench_fig11_backfill.cpp.o"
  "CMakeFiles/bench_fig11_backfill.dir/bench_fig11_backfill.cpp.o.d"
  "bench_fig11_backfill"
  "bench_fig11_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
