file(REMOVE_RECURSE
  "CMakeFiles/test_swf.dir/workload/swf_test.cpp.o"
  "CMakeFiles/test_swf.dir/workload/swf_test.cpp.o.d"
  "test_swf"
  "test_swf.pdb"
  "test_swf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
