file(REMOVE_RECURSE
  "CMakeFiles/test_rollout.dir/core/rollout_test.cpp.o"
  "CMakeFiles/test_rollout.dir/core/rollout_test.cpp.o.d"
  "test_rollout"
  "test_rollout.pdb"
  "test_rollout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
