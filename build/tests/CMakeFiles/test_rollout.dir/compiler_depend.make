# Empty compiler generated dependencies file for test_rollout.
# This may be replaced when dependencies are built.
