file(REMOVE_RECURSE
  "CMakeFiles/test_rule_inspector.dir/core/rule_inspector_test.cpp.o"
  "CMakeFiles/test_rule_inspector.dir/core/rule_inspector_test.cpp.o.d"
  "test_rule_inspector"
  "test_rule_inspector.pdb"
  "test_rule_inspector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rule_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
