# Empty dependencies file for test_rule_inspector.
# This may be replaced when dependencies are built.
