
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rl/adam_test.cpp" "tests/CMakeFiles/test_adam.dir/rl/adam_test.cpp.o" "gcc" "tests/CMakeFiles/test_adam.dir/rl/adam_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/si_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/si_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/si_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/si_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/si_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/si_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
