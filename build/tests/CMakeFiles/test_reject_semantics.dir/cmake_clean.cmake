file(REMOVE_RECURSE
  "CMakeFiles/test_reject_semantics.dir/sim/reject_semantics_test.cpp.o"
  "CMakeFiles/test_reject_semantics.dir/sim/reject_semantics_test.cpp.o.d"
  "test_reject_semantics"
  "test_reject_semantics.pdb"
  "test_reject_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reject_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
