file(REMOVE_RECURSE
  "CMakeFiles/test_slurm.dir/sched/slurm_test.cpp.o"
  "CMakeFiles/test_slurm.dir/sched/slurm_test.cpp.o.d"
  "test_slurm"
  "test_slurm.pdb"
  "test_slurm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
