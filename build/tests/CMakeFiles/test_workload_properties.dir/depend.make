# Empty dependencies file for test_workload_properties.
# This may be replaced when dependencies are built.
