file(REMOVE_RECURSE
  "CMakeFiles/test_workload_properties.dir/workload/workload_property_test.cpp.o"
  "CMakeFiles/test_workload_properties.dir/workload/workload_property_test.cpp.o.d"
  "test_workload_properties"
  "test_workload_properties.pdb"
  "test_workload_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
