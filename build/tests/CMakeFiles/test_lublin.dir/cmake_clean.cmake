file(REMOVE_RECURSE
  "CMakeFiles/test_lublin.dir/workload/lublin_test.cpp.o"
  "CMakeFiles/test_lublin.dir/workload/lublin_test.cpp.o.d"
  "test_lublin"
  "test_lublin.pdb"
  "test_lublin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lublin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
