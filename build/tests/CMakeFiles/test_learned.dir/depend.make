# Empty dependencies file for test_learned.
# This may be replaced when dependencies are built.
