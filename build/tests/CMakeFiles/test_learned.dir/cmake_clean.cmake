file(REMOVE_RECURSE
  "CMakeFiles/test_learned.dir/core/learned_test.cpp.o"
  "CMakeFiles/test_learned.dir/core/learned_test.cpp.o.d"
  "test_learned"
  "test_learned.pdb"
  "test_learned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
