file(REMOVE_RECURSE
  "CMakeFiles/test_actor_critic.dir/rl/actor_critic_test.cpp.o"
  "CMakeFiles/test_actor_critic.dir/rl/actor_critic_test.cpp.o.d"
  "test_actor_critic"
  "test_actor_critic.pdb"
  "test_actor_critic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actor_critic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
