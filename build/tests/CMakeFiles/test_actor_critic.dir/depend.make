# Empty dependencies file for test_actor_critic.
# This may be replaced when dependencies are built.
