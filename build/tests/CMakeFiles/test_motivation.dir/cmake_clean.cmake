file(REMOVE_RECURSE
  "CMakeFiles/test_motivation.dir/sim/motivation_test.cpp.o"
  "CMakeFiles/test_motivation.dir/sim/motivation_test.cpp.o.d"
  "test_motivation"
  "test_motivation.pdb"
  "test_motivation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
