# Empty dependencies file for test_motivation.
# This may be replaced when dependencies are built.
