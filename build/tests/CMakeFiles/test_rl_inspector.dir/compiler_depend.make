# Empty compiler generated dependencies file for test_rl_inspector.
# This may be replaced when dependencies are built.
