file(REMOVE_RECURSE
  "CMakeFiles/test_rl_inspector.dir/core/rl_inspector_test.cpp.o"
  "CMakeFiles/test_rl_inspector.dir/core/rl_inspector_test.cpp.o.d"
  "test_rl_inspector"
  "test_rl_inspector.pdb"
  "test_rl_inspector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
