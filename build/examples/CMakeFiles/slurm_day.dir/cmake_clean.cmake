file(REMOVE_RECURSE
  "CMakeFiles/slurm_day.dir/slurm_day.cpp.o"
  "CMakeFiles/slurm_day.dir/slurm_day.cpp.o.d"
  "slurm_day"
  "slurm_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slurm_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
