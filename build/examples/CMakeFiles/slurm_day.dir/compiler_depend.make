# Empty compiler generated dependencies file for slurm_day.
# This may be replaced when dependencies are built.
