file(REMOVE_RECURSE
  "CMakeFiles/schedinspector_cli.dir/schedinspector_cli.cpp.o"
  "CMakeFiles/schedinspector_cli.dir/schedinspector_cli.cpp.o.d"
  "schedinspector_cli"
  "schedinspector_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedinspector_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
