# Empty compiler generated dependencies file for schedinspector_cli.
# This may be replaced when dependencies are built.
