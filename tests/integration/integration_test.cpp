// End-to-end integration: train SchedInspector on a synthetic SDSC-SP2-like
// trace with SJF and verify the full workflow — training runs, the model
// improves over random behaviour, evaluation and serialization interoperate.
// The scales here are reduced (CI-friendly); the bench binaries exercise the
// paper-scale runs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "rl/model_io.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(make_trace("SDSC-SP2", 1500, 42));
    auto [train, test] = trace_->split(0.2);
    train_ = new Trace(std::move(train));
    test_ = new Trace(std::move(test));

    policy_ = make_policy("SJF").release();
    TrainerConfig config;
    config.epochs = 10;
    config.trajectories_per_epoch = 16;
    config.sequence_length = 48;
    config.seed = 7;
    Trainer trainer(*train_, *policy_, config);
    agent_ = new ActorCritic(trainer.make_agent());
    result_ = new TrainResult(trainer.train(*agent_));
    features_ = new FeatureBuilder(trainer.features());
  }

  static void TearDownTestSuite() {
    delete features_;
    delete result_;
    delete agent_;
    delete policy_;
    delete test_;
    delete train_;
    delete trace_;
  }

  static Trace* trace_;
  static Trace* train_;
  static Trace* test_;
  static SchedulingPolicy* policy_;
  static ActorCritic* agent_;
  static TrainResult* result_;
  static FeatureBuilder* features_;
};

Trace* IntegrationFixture::trace_ = nullptr;
Trace* IntegrationFixture::train_ = nullptr;
Trace* IntegrationFixture::test_ = nullptr;
SchedulingPolicy* IntegrationFixture::policy_ = nullptr;
ActorCritic* IntegrationFixture::agent_ = nullptr;
TrainResult* IntegrationFixture::result_ = nullptr;
FeatureBuilder* IntegrationFixture::features_ = nullptr;

TEST_F(IntegrationFixture, TrainingCurveIsComplete) {
  ASSERT_EQ(result_->curve.size(), 10u);
  for (const EpochStats& e : result_->curve) {
    EXPECT_TRUE(std::isfinite(e.mean_reward));
    EXPECT_TRUE(std::isfinite(e.mean_improvement));
    EXPECT_GE(e.rejection_ratio, 0.0);
    EXPECT_LE(e.rejection_ratio, 1.0);
  }
}

TEST_F(IntegrationFixture, LearningImprovesOverEarlyEpochs) {
  // The converged (tail) improvement should beat the very first epoch's —
  // the paper's Figure 4 "starts worse, converges better" shape.
  EXPECT_GE(result_->converged_improvement,
            result_->curve.front().mean_improvement - 1e-9);
}

TEST_F(IntegrationFixture, EvaluationOnHeldOutData) {
  EvalConfig config;
  config.sequences = 10;
  config.sequence_length = 64;
  config.seed = 5;
  const EvalResult eval =
      evaluate(*test_, *policy_, *agent_, *features_, config);
  ASSERT_EQ(eval.pairs.size(), 10u);
  // The trained inspector must at least not catastrophically regress the
  // base scheduler on unseen data.
  EXPECT_LT(eval.mean_inspected(Metric::kBsld),
            eval.mean_base(Metric::kBsld) * 1.5 + 1.0);
}

TEST_F(IntegrationFixture, UtilizationImpactIsBounded) {
  EvalConfig config;
  config.sequences = 10;
  config.sequence_length = 64;
  config.seed = 5;
  const EvalResult eval =
      evaluate(*test_, *policy_, *agent_, *features_, config);
  // §4.4.6: at convergence the paper sees ~1% utilization cost. This
  // CI-scale model is trained for only a few epochs, so we assert the
  // weaker invariant that rejections do not collapse utilization; the
  // full-scale behaviour is exercised by bench_table5_util.
  EXPECT_GT(eval.mean_inspected_utilization(),
            eval.mean_base_utilization() * 0.7);
}

TEST_F(IntegrationFixture, ModelSurvivesSerialization) {
  std::stringstream buffer;
  save_model(buffer, *agent_);
  const ActorCritic restored = load_model(buffer);

  EvalConfig config;
  config.sequences = 4;
  config.sequence_length = 48;
  config.seed = 9;
  const EvalResult a = evaluate(*test_, *policy_, *agent_, *features_, config);
  const EvalResult b = evaluate(*test_, *policy_, restored, *features_, config);
  EXPECT_DOUBLE_EQ(a.mean_inspected(Metric::kBsld),
                   b.mean_inspected(Metric::kBsld));
}

TEST_F(IntegrationFixture, CrossTraceTransferRuns) {
  // Table 4 workflow: apply the SDSC-trained model to a different trace.
  const Trace other = make_trace("HPC2N", 600, 11);
  PolicyPtr sjf = make_policy("SJF");
  // Feature scales must come from the target trace, as in deployment.
  FeatureBuilder target_features(FeatureMode::kManual, Metric::kBsld,
                                 FeatureScales::from_trace(other), 600.0);
  EvalConfig config;
  config.sequences = 5;
  config.sequence_length = 64;
  config.seed = 13;
  const EvalResult eval =
      evaluate(other, *sjf, *agent_, target_features, config);
  EXPECT_EQ(eval.pairs.size(), 5u);
  for (const EvalPair& p : eval.pairs)
    EXPECT_TRUE(std::isfinite(p.inspected.avg_bsld));
}

TEST_F(IntegrationFixture, FcfsLearnsLowRejectionRatio) {
  // §4.4.1: inspecting FCFS is pure waste; training should drive the
  // rejection ratio down (the paper observes convergence toward ~5%).
  PolicyPtr fcfs = make_policy("FCFS");
  TrainerConfig config;
  config.epochs = 10;
  config.trajectories_per_epoch = 16;
  config.sequence_length = 48;
  config.seed = 19;
  const TrainedInspector trained = train_inspector(*train_, *fcfs, config);
  const double early = trained.result.curve.front().rejection_ratio;
  const double late = trained.result.converged_rejection_ratio;
  EXPECT_LT(late, early + 0.05);
}

}  // namespace
}  // namespace si
