// The integration matrix (DESIGN.md §7): every base policy crossed with
// {no inspector, distilled-rule inspector, RL inspector} for two workload
// seeds, pinned to committed golden metrics. This is the coarse-grained
// regression net over the whole scheduling stack — a change to any policy,
// the simulator, the feature pipeline, or an inspector shows up as a
// divergence in the affected cells and nowhere else.
//
// The RL column uses an *untrained* actor-critic with a fixed weight seed
// and a seeded sampling inspector: deterministic end to end without
// committing a model file, and it still exercises the full feature ->
// forward-pass -> reject path.
//
// Regenerating after an intentional behaviour change:
//   SCHEDINSPECTOR_REGEN_GOLDENS=1 ./test_integration_matrix
//       --gtest_filter='IntegrationMatrix.MetricsMatchCommittedGoldens'
// then replace the row block of tests/integration/matrix_golden.inc with
// the printed rows and review the diff cell by cell.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "check/generator.hpp"
#include "check/invariant_oracle.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/features.hpp"
#include "core/rl_inspector.hpp"
#include "core/rule_inspector.hpp"
#include "rl/actor_critic.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace si {
namespace {

constexpr int kMatrixProcs = 64;
constexpr int kMatrixJobs = 64;
constexpr std::uint64_t kAgentSeed = 0xa11a9e57;

struct GoldenRow {
  const char* policy;
  const char* inspector;  // "off" | "rule" | "rl"
  std::uint64_t seed;
  double avg_wait;
  double avg_bsld;
  double max_bsld;
  double util;
  double makespan;
};

const GoldenRow kGolden[] = {
#include "matrix_golden.inc"
};

/// Runs one cell of the matrix under `oracle` and returns its metrics.
SequenceMetrics run_cell(const std::string& policy_name,
                         const std::string& inspector_name,
                         std::uint64_t seed, InvariantOracle* oracle) {
  Rng workload_rng(seed);
  const std::vector<Job> jobs =
      generate_workload(workload_rng, kMatrixProcs, kMatrixJobs);
  const Trace trace("matrix", kMatrixProcs, jobs);

  SimConfig config;
  config.backfill = true;
  config.oracle = oracle;

  PolicyPtr policy = policy_name == "Slurm" ? make_slurm_policy(trace)
                                            : make_policy(policy_name);
  const FeatureBuilder features(FeatureMode::kManual, Metric::kBsld,
                                FeatureScales::from_trace(trace),
                                config.max_interval);

  RuleInspector rule(features);
  const ActorCritic agent(features.feature_count(), {32, 32}, kAgentSeed);
  Rng agent_rng(seed ^ 0x5eed51a7e11e57ULL);
  RlInspector rl(agent, features, InspectorMode::kSample, &agent_rng);
  Inspector* inspector = nullptr;
  if (inspector_name == "rule") inspector = &rule;
  if (inspector_name == "rl") inspector = &rl;

  Simulator sim(kMatrixProcs, config);
  return sim.run(jobs, *policy, inspector).metrics;
}

TEST(IntegrationMatrix, MetricsMatchCommittedGoldens) {
  if (env_int("SCHEDINSPECTOR_REGEN_GOLDENS", 0) != 0) {
    InvariantOracle oracle;
    for (const std::uint64_t seed : {1, 2})
      for (const std::string& policy : known_policies())
        for (const char* inspector : {"off", "rule", "rl"}) {
          const SequenceMetrics m = run_cell(policy, inspector, seed, &oracle);
          std::printf(
              "{\"%s\", \"%s\", %llu, %.17g, %.17g, %.17g, %.17g, %.17g},\n",
              policy.c_str(), inspector,
              static_cast<unsigned long long>(seed), m.avg_wait, m.avg_bsld,
              m.max_bsld, m.utilization, m.makespan);
        }
    ASSERT_TRUE(oracle.ok()) << oracle.report();
    GTEST_SKIP() << "golden rows printed; paste into matrix_golden.inc";
  }

  InvariantOracle oracle;
  for (const GoldenRow& row : kGolden) {
    const SequenceMetrics m =
        run_cell(row.policy, row.inspector, row.seed, &oracle);
    SCOPED_TRACE(std::string(row.policy) + "/" + row.inspector + " seed " +
                 std::to_string(row.seed));
    // %.17g round-trips doubles exactly, so equality here is bit-equality
    // on any platform that reproduces the golden run; DOUBLE_EQ (4 ulps)
    // only leaves headroom for cross-compiler FP contraction differences.
    EXPECT_DOUBLE_EQ(m.avg_wait, row.avg_wait);
    EXPECT_DOUBLE_EQ(m.avg_bsld, row.avg_bsld);
    EXPECT_DOUBLE_EQ(m.max_bsld, row.max_bsld);
    EXPECT_DOUBLE_EQ(m.utilization, row.util);
    EXPECT_DOUBLE_EQ(m.makespan, row.makespan);
  }
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_EQ(oracle.runs_checked(), std::size(kGolden));
}

TEST(IntegrationMatrix, CoversEveryPolicyInspectorAndSeed) {
  // The committed table must actually span the whole matrix: every known
  // policy x three inspector columns x two seeds, no gaps, no duplicates.
  std::map<std::string, int> cells;
  for (const GoldenRow& row : kGolden)
    ++cells[std::string(row.policy) + "/" + row.inspector + "/" +
            std::to_string(row.seed)];
  EXPECT_EQ(std::size(kGolden), known_policies().size() * 3 * 2);
  for (const std::string& policy : known_policies())
    for (const char* inspector : {"off", "rule", "rl"})
      for (const std::uint64_t seed : {1, 2}) {
        const std::string key = policy + "/" + inspector + "/" +
                                std::to_string(seed);
        EXPECT_EQ(cells[key], 1) << key;
      }
}

TEST(IntegrationMatrix, InspectorColumnsActuallyInspect) {
  // Guard against a silently disconnected inspector: the rule and RL
  // columns must consult their inspector, and the off column must not.
  InvariantOracle oracle;
  std::size_t rule_inspections = 0;
  std::size_t rl_inspections = 0;
  for (const std::uint64_t seed : {1, 2})
    for (const std::string& policy : known_policies()) {
      EXPECT_EQ(run_cell(policy, "off", seed, &oracle).inspections, 0u);
      rule_inspections += run_cell(policy, "rule", seed, &oracle).inspections;
      rl_inspections += run_cell(policy, "rl", seed, &oracle).inspections;
    }
  EXPECT_GT(rule_inspections, 0u);
  EXPECT_GT(rl_inspections, 0u);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

}  // namespace
}  // namespace si
