#include "core/rollout.hpp"

#include <gtest/gtest.h>

#include "sched/policies.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

struct Harness {
  Trace trace = make_trace("SDSC-SP2", 300, 31);
  FeatureBuilder features{FeatureMode::kManual, Metric::kBsld,
                          FeatureScales::from_trace(trace), 600.0};
  ActorCritic ac{8, {16, 8}, 5};
  SjfPolicy policy;
  Simulator sim{trace.cluster_procs(), SimConfig{}};

  std::vector<Job> jobs(std::uint64_t seed = 9) {
    Rng rng(seed);
    return trace.sample_window(rng, 64);
  }
};

TEST(RolloutTraining, BaseRunHasNoInspections) {
  Harness h;
  Rng rng(1);
  const TrainingRollout r =
      rollout_training(h.sim, h.jobs(), h.policy, h.ac, h.features,
                       Metric::kBsld, RewardKind::kPercentage, rng);
  EXPECT_EQ(r.base.inspections, 0u);
  EXPECT_GT(r.inspected.inspections, 0u);
}

TEST(RolloutTraining, TrajectoryMatchesInspectedRun) {
  Harness h;
  Rng rng(2);
  const TrainingRollout r =
      rollout_training(h.sim, h.jobs(), h.policy, h.ac, h.features,
                       Metric::kBsld, RewardKind::kPercentage, rng);
  EXPECT_EQ(r.trajectory.steps.size(), r.inspected.inspections);
}

TEST(RolloutTraining, RewardMatchesFormula) {
  Harness h;
  Rng rng(3);
  const TrainingRollout r =
      rollout_training(h.sim, h.jobs(), h.policy, h.ac, h.features,
                       Metric::kBsld, RewardKind::kPercentage, rng);
  const double expected = compute_reward(
      RewardKind::kPercentage, r.base.avg_bsld, r.inspected.avg_bsld);
  EXPECT_DOUBLE_EQ(r.trajectory.reward, expected);
}

TEST(RolloutTraining, MetricSelectsRewardBasis) {
  Harness h;
  Rng r1(4);
  Rng r2(4);
  const auto jobs = h.jobs();
  const TrainingRollout a =
      rollout_training(h.sim, jobs, h.policy, h.ac, h.features, Metric::kWait,
                       RewardKind::kNative, r1);
  EXPECT_DOUBLE_EQ(a.trajectory.reward,
                   a.base.avg_wait - a.inspected.avg_wait);
  const TrainingRollout b =
      rollout_training(h.sim, jobs, h.policy, h.ac, h.features,
                       Metric::kMaxBsld, RewardKind::kNative, r2);
  EXPECT_DOUBLE_EQ(b.trajectory.reward,
                   b.base.max_bsld - b.inspected.max_bsld);
}

TEST(RolloutEval, GreedyAndRepeatable) {
  Harness h;
  const auto jobs = h.jobs();
  const EvalPair a = rollout_eval(h.sim, jobs, h.policy, h.ac, h.features);
  const EvalPair b = rollout_eval(h.sim, jobs, h.policy, h.ac, h.features);
  EXPECT_DOUBLE_EQ(a.inspected.avg_bsld, b.inspected.avg_bsld);
  EXPECT_DOUBLE_EQ(a.base.avg_bsld, b.base.avg_bsld);
}

TEST(RolloutEval, BaseSideIndependentOfInspector) {
  Harness h;
  const auto jobs = h.jobs();
  const EvalPair pair = rollout_eval(h.sim, jobs, h.policy, h.ac, h.features);
  const auto direct = h.sim.run(jobs, h.policy);
  EXPECT_DOUBLE_EQ(pair.base.avg_bsld, direct.metrics.avg_bsld);
  EXPECT_DOUBLE_EQ(pair.base.avg_wait, direct.metrics.avg_wait);
}

TEST(RolloutEval, RecorderSeesInspectedDecisions) {
  Harness h;
  DecisionRecorder recorder(h.features.feature_names());
  const EvalPair pair =
      rollout_eval(h.sim, h.jobs(), h.policy, h.ac, h.features, &recorder);
  EXPECT_EQ(recorder.total_samples(), pair.inspected.inspections);
}

}  // namespace
}  // namespace si
