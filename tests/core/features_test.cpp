#include "core/features.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

struct ViewFixture {
  Job job;
  std::vector<Job> queue_storage;
  std::vector<const Job*> waiting;
  InspectionView view;

  explicit ViewFixture(int queue_jobs = 3) {
    job.id = 1;
    job.submit = 0.0;
    job.estimate = 3600.0;
    job.run = 3000.0;
    job.procs = 16;
    for (int i = 0; i < queue_jobs; ++i) {
      Job q;
      q.id = 10 + i;
      q.submit = 0.0;
      q.estimate = 600.0 * (i + 1);
      q.run = q.estimate;
      q.procs = 4;
      queue_storage.push_back(q);
    }
    for (const Job& q : queue_storage) waiting.push_back(&q);
    view.now = 1000.0;
    view.job = &job;
    view.job_wait = 500.0;
    view.job_rejections = 6;
    view.max_rejection_times = 72;
    view.free_procs = 32;
    view.total_procs = 128;
    view.backfill_enabled = false;
    view.backfillable_jobs = 0;
    view.waiting = &waiting;
  }
};

FeatureScales test_scales() {
  FeatureScales s;
  s.max_estimate = 7200.0;
  s.cluster_procs = 128;
  s.wait_scale = 1000.0;
  return s;
}

TEST(FeatureModeName, AllModes) {
  EXPECT_EQ(feature_mode_name(FeatureMode::kManual), "manual");
  EXPECT_EQ(feature_mode_name(FeatureMode::kCompacted), "compacted");
  EXPECT_EQ(feature_mode_name(FeatureMode::kNative), "native");
}

TEST(FeatureScalesTest, FromTraceUsesStats) {
  const Trace t = make_trace("SDSC-SP2", 500, 1);
  const FeatureScales s = FeatureScales::from_trace(t);
  EXPECT_EQ(s.cluster_procs, 128);
  EXPECT_DOUBLE_EQ(s.max_estimate, t.stats().max_estimate);
  EXPECT_GE(s.wait_scale, 600.0);
}

TEST(FeatureBuilder, CountsPerMode) {
  const FeatureScales s = test_scales();
  EXPECT_EQ(FeatureBuilder(FeatureMode::kManual, Metric::kBsld, s, 600)
                .feature_count(),
            8);
  EXPECT_EQ(FeatureBuilder(FeatureMode::kCompacted, Metric::kBsld, s, 600)
                .feature_count(),
            5);
  EXPECT_EQ(FeatureBuilder(FeatureMode::kNative, Metric::kBsld, s, 600)
                .feature_count(),
            5 + 3 * FeatureBuilder::kNativeQueueJobs);
}

TEST(FeatureBuilder, NamesMatchCounts) {
  const FeatureScales s = test_scales();
  for (FeatureMode mode : {FeatureMode::kManual, FeatureMode::kCompacted,
                           FeatureMode::kNative}) {
    const FeatureBuilder fb(mode, Metric::kBsld, s, 600);
    EXPECT_EQ(static_cast<int>(fb.feature_names().size()),
              fb.feature_count());
  }
}

TEST(FeatureBuilder, ManualFeaturesInUnitInterval) {
  ViewFixture f;
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  const auto features = fb.build(f.view);
  ASSERT_EQ(features.size(), 8u);
  for (double v : features) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FeatureBuilder, ManualFeatureValues) {
  ViewFixture f;
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  const auto features = fb.build(f.view);
  // wait: 500 / (500 + 1000)
  EXPECT_NEAR(features[0], 500.0 / 1500.0, 1e-12);
  // estimate: 3600 / 7200
  EXPECT_NEAR(features[1], 0.5, 1e-12);
  // procs: 16 / 128
  EXPECT_NEAR(features[2], 0.125, 1e-12);
  // rejected: 6 / 72
  EXPECT_NEAR(features[3], 6.0 / 72.0, 1e-12);
  // cluster availability: 32 / 128
  EXPECT_NEAR(features[5], 0.25, 1e-12);
  // runnable: 16 <= 32
  EXPECT_DOUBLE_EQ(features[6], 1.0);
  // backfill disabled -> 0
  EXPECT_DOUBLE_EQ(features[7], 0.0);
}

TEST(FeatureBuilder, RunnableFlagFalseWhenTooBig) {
  ViewFixture f;
  f.view.free_procs = 8;  // < procs 16
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  EXPECT_DOUBLE_EQ(fb.build(f.view)[6], 0.0);
}

TEST(FeatureBuilder, QueueDelayIsMetricAware) {
  ViewFixture f;
  const FeatureScales s = test_scales();
  const FeatureBuilder bsld_fb(FeatureMode::kManual, Metric::kBsld, s, 600);
  const FeatureBuilder wait_fb(FeatureMode::kManual, Metric::kWait, s, 600);
  // bsld: sum of 600 / max(est, 10) over queue jobs with est 600/1200/1800.
  const double expected_bsld = 600.0 / 600 + 600.0 / 1200 + 600.0 / 1800;
  EXPECT_NEAR(bsld_fb.raw_queue_delay(f.view), expected_bsld, 1e-12);
  // wait: |Q| * 600 s expressed in hours.
  EXPECT_NEAR(wait_fb.raw_queue_delay(f.view), 3.0 * 600.0 / 3600.0, 1e-12);
  EXPECT_NE(bsld_fb.build(f.view)[4], wait_fb.build(f.view)[4]);
}

TEST(FeatureBuilder, MaxBsldUsesBsldQueueDelay) {
  ViewFixture f;
  const FeatureScales s = test_scales();
  const FeatureBuilder a(FeatureMode::kManual, Metric::kBsld, s, 600);
  const FeatureBuilder b(FeatureMode::kManual, Metric::kMaxBsld, s, 600);
  EXPECT_DOUBLE_EQ(a.raw_queue_delay(f.view), b.raw_queue_delay(f.view));
}

TEST(FeatureBuilder, QueueDelayGrowsWithQueueLength) {
  ViewFixture small(2);
  ViewFixture large(20);
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  EXPECT_LT(fb.build(small.view)[4], fb.build(large.view)[4]);
}

TEST(FeatureBuilder, BackfillContributionWhenEnabled) {
  ViewFixture f;
  f.view.backfill_enabled = true;
  f.view.backfillable_jobs = 5;
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  EXPECT_NEAR(fb.build(f.view)[7], 5.0 / 10.0, 1e-12);  // 5 / (5 + 5)
}

TEST(FeatureBuilder, CompactedDropsAggregates) {
  ViewFixture f;
  const FeatureBuilder fb(FeatureMode::kCompacted, Metric::kBsld,
                          test_scales(), 600);
  const auto features = fb.build(f.view);
  ASSERT_EQ(features.size(), 5u);
  // wait, est, procs, avail, runnable — same leading values as manual.
  EXPECT_NEAR(features[0], 500.0 / 1500.0, 1e-12);
  EXPECT_NEAR(features[3], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(features[4], 1.0);
}

TEST(FeatureBuilder, NativeEmbedsQueueJobs) {
  ViewFixture f(2);
  const FeatureBuilder fb(FeatureMode::kNative, Metric::kBsld, test_scales(),
                          600);
  const auto features = fb.build(f.view);
  ASSERT_EQ(static_cast<int>(features.size()),
            5 + 3 * FeatureBuilder::kNativeQueueJobs);
  // First queue job: est 600 / 7200.
  EXPECT_NEAR(features[6], 600.0 / 7200.0, 1e-12);
  // Zero padding beyond the 2 real queue jobs.
  for (std::size_t i = 5 + 3 * 2; i < features.size(); ++i)
    EXPECT_DOUBLE_EQ(features[i], 0.0);
}

TEST(FeatureBuilder, EstimateClampedToOne) {
  ViewFixture f;
  f.job.estimate = 1e9;
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  EXPECT_DOUBLE_EQ(fb.build(f.view)[1], 1.0);
}

TEST(FeatureBuilder, NullViewPartsThrow) {
  ViewFixture f;
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld, test_scales(),
                          600);
  InspectionView bad = f.view;
  bad.job = nullptr;
  EXPECT_THROW(fb.build(bad), ContractViolation);
  bad = f.view;
  bad.waiting = nullptr;
  EXPECT_THROW(fb.build(bad), ContractViolation);
}

TEST(FeatureBuilder, RejectsBadConstruction) {
  EXPECT_THROW(FeatureBuilder(FeatureMode::kManual, Metric::kBsld,
                              test_scales(), 0.0),
               ContractViolation);
  FeatureScales bad = test_scales();
  bad.max_estimate = 0.0;
  EXPECT_THROW(FeatureBuilder(FeatureMode::kManual, Metric::kBsld, bad, 600),
               ContractViolation);
}

}  // namespace
}  // namespace si
