#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/check.hpp"
#include "rl/model_io.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

TrainerConfig tiny_config() {
  TrainerConfig config;
  config.epochs = 3;
  config.trajectories_per_epoch = 4;
  config.sequence_length = 32;
  config.seed = 11;
  return config;
}

TEST(Trainer, CurveHasOneEntryPerEpoch) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  Trainer trainer(trace, *policy, tiny_config());
  ActorCritic ac = trainer.make_agent();
  const TrainResult result = trainer.train(ac);
  ASSERT_EQ(result.curve.size(), 3u);
  for (std::size_t i = 0; i < result.curve.size(); ++i) {
    EXPECT_EQ(result.curve[i].epoch, static_cast<int>(i));
    EXPECT_TRUE(std::isfinite(result.curve[i].mean_reward));
    EXPECT_TRUE(std::isfinite(result.curve[i].mean_improvement));
    EXPECT_GE(result.curve[i].rejection_ratio, 0.0);
    EXPECT_LE(result.curve[i].rejection_ratio, 1.0);
  }
}

TEST(Trainer, AgentWidthFollowsFeatureMode) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.features = FeatureMode::kCompacted;
  Trainer trainer(trace, *policy, config);
  EXPECT_EQ(trainer.make_agent().obs_size(), 5);
  config.features = FeatureMode::kNative;
  Trainer native_trainer(trace, *policy, config);
  EXPECT_EQ(native_trainer.make_agent().obs_size(),
            5 + 3 * FeatureBuilder::kNativeQueueJobs);
}

TEST(Trainer, DeterministicAcrossRuns) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  auto run_once = [&] {
    PolicyPtr policy = make_policy("SJF");
    Trainer trainer(trace, *policy, tiny_config());
    ActorCritic ac = trainer.make_agent();
    return trainer.train(ac).curve;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_reward, b[i].mean_reward);
    EXPECT_DOUBLE_EQ(a[i].mean_improvement, b[i].mean_improvement);
  }
}

TEST(Trainer, ConvergedValuesAreTailAverages) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.epochs = 8;
  Trainer trainer(trace, *policy, config);
  ActorCritic ac = trainer.make_agent();
  const TrainResult result = trainer.train(ac);
  // Tail = last quarter = last 2 epochs.
  const double expected = (result.curve[6].mean_improvement +
                           result.curve[7].mean_improvement) /
                          2.0;
  EXPECT_NEAR(result.converged_improvement, expected, 1e-12);
}

TEST(Trainer, AgentObsMismatchThrows) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  Trainer trainer(trace, *policy, tiny_config());
  ActorCritic wrong(3, {4}, 1);
  EXPECT_THROW(trainer.train(wrong), ContractViolation);
}

TEST(Trainer, RejectsBadConfig) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.epochs = 0;
  EXPECT_THROW(Trainer(trace, *policy, config), ContractViolation);
  config = tiny_config();
  config.sequence_length = 10000;  // longer than the trace
  EXPECT_THROW(Trainer(trace, *policy, config), ContractViolation);
}

TEST(Trainer, TrainInspectorConvenience) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  const TrainedInspector trained =
      train_inspector(trace, *policy, tiny_config());
  EXPECT_EQ(trained.result.curve.size(), 3u);
  EXPECT_EQ(trained.agent.obs_size(), 8);
}

TEST(Trainer, WorksWithBackfillEnabled) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.sim.backfill = true;
  const TrainedInspector trained = train_inspector(trace, *policy, config);
  EXPECT_EQ(trained.result.curve.size(), 3u);
}

TEST(Trainer, WorksWithSlurmPolicy) {
  const Trace trace = make_trace("SDSC-SP2", 400, 3);
  PolicyPtr policy = make_slurm_policy(trace);
  TrainerConfig config = tiny_config();
  config.sim.backfill = true;
  const TrainedInspector trained = train_inspector(trace, *policy, config);
  EXPECT_EQ(trained.result.curve.size(), 3u);
  for (const EpochStats& e : trained.result.curve)
    EXPECT_TRUE(std::isfinite(e.mean_improvement));
}

TEST(Trainer, WritesCheckpointEveryEpoch) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.checkpoint_path = ::testing::TempDir() + "/si_ckpt_every.txt";
  std::filesystem::remove(config.checkpoint_path);
  Trainer trainer(trace, *policy, config);
  ActorCritic ac = trainer.make_agent();
  trainer.train(ac);
  const ModelCheckpoint ckpt = load_checkpoint_file(config.checkpoint_path);
  EXPECT_EQ(ckpt.epoch, config.epochs - 1);
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_path + ".tmp"));
}

TEST(Trainer, ResumeContinuesFromCheckpointEpoch) {
  // Simulate a crash after 3 of 6 epochs: train 3, then restart with the
  // same seed resuming from the checkpoint. The resumed run must execute
  // exactly the remaining epochs and end with a loadable model.
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  const std::string path = ::testing::TempDir() + "/si_ckpt_resume.txt";
  std::filesystem::remove(path);

  TrainerConfig first = tiny_config();
  first.epochs = 3;
  first.checkpoint_path = path;
  {
    PolicyPtr policy = make_policy("SJF");
    Trainer trainer(trace, *policy, first);
    ActorCritic ac = trainer.make_agent();
    trainer.train(ac);
  }

  TrainerConfig second = tiny_config();
  second.epochs = 6;
  second.checkpoint_path = path;
  second.resume_from = path;
  PolicyPtr policy = make_policy("SJF");
  Trainer trainer(trace, *policy, second);
  ActorCritic ac = trainer.make_agent();
  const TrainResult result = trainer.train(ac);

  EXPECT_EQ(result.resumed_epochs, 3);
  ASSERT_EQ(result.curve.size(), 3u);  // epochs 3, 4, 5 actually executed
  EXPECT_EQ(result.curve.front().epoch, 3);
  EXPECT_EQ(result.curve.back().epoch, 5);
  const ModelCheckpoint final_ckpt = load_checkpoint_file(path);
  EXPECT_EQ(final_ckpt.epoch, 5);
}

TEST(Trainer, MissingResumeFileStartsFresh) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.resume_from = ::testing::TempDir() + "/si_ckpt_missing.txt";
  std::filesystem::remove(config.resume_from);
  Trainer trainer(trace, *policy, config);
  ActorCritic ac = trainer.make_agent();
  const TrainResult result = trainer.train(ac);
  EXPECT_EQ(result.resumed_epochs, 0);
  EXPECT_EQ(result.curve.size(), 3u);
}

TEST(Trainer, ResumeRejectsMismatchedArchitecture) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  const std::string path = ::testing::TempDir() + "/si_ckpt_mismatch.txt";
  ActorCritic wrong(3, {4}, 1);
  save_checkpoint_file(path, wrong, 0);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config();
  config.resume_from = path;
  Trainer trainer(trace, *policy, config);
  ActorCritic ac = trainer.make_agent();
  EXPECT_THROW(trainer.train(ac), ContractViolation);
}

TEST(Trainer, NanPoisonedAgentSkipsEveryUpdate) {
  // A NaN parameter makes every rollout produce non-finite log-probs, so
  // each epoch loses all trajectories and must skip its PPO update instead
  // of dividing by zero or training on garbage.
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  Trainer trainer(trace, *policy, tiny_config());
  ActorCritic ac = trainer.make_agent();
  ac.policy_net().params()[0] = std::nan("");
  const TrainResult result = trainer.train(ac);
  EXPECT_EQ(result.skipped_updates, 3);
  ASSERT_EQ(result.curve.size(), 3u);
  for (const EpochStats& e : result.curve) {
    EXPECT_EQ(e.skipped_updates, 1);
    EXPECT_EQ(e.invalid_trajectories, 4);  // every trajectory dropped
    EXPECT_TRUE(std::isfinite(e.mean_reward));
    EXPECT_TRUE(std::isfinite(e.mean_improvement));
  }
  EXPECT_TRUE(std::isfinite(result.converged_improvement));
}

TEST(Trainer, RolloutBatchWidthDoesNotChangeResults) {
  // The VecEnv collector's contract: training is bit-identical for any
  // batch width (and any worker count), so curves computed at width 1 and
  // width 8 must agree to the last bit.
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  std::vector<TrainResult> results;
  for (const int width : {1, 3, 8}) {
    PolicyPtr policy = make_policy("SJF");
    TrainerConfig config = tiny_config();
    config.rollout_batch = width;
    Trainer trainer(trace, *policy, config);
    ActorCritic ac = trainer.make_agent();
    results.push_back(trainer.train(ac));
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[r].curve.size(), results[0].curve.size());
    for (std::size_t i = 0; i < results[0].curve.size(); ++i) {
      EXPECT_EQ(results[r].curve[i].mean_reward,
                results[0].curve[i].mean_reward)
          << "epoch " << i;
      EXPECT_EQ(results[r].curve[i].mean_improvement,
                results[0].curve[i].mean_improvement)
          << "epoch " << i;
      EXPECT_EQ(results[r].curve[i].rejection_ratio,
                results[0].curve[i].rejection_ratio)
          << "epoch " << i;
      EXPECT_EQ(results[r].curve[i].approx_kl, results[0].curve[i].approx_kl)
          << "epoch " << i;
    }
    EXPECT_EQ(results[r].converged_improvement,
              results[0].converged_improvement);
  }
}

TEST(Trainer, WorksOnEveryMetric) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  for (Metric metric : {Metric::kBsld, Metric::kWait, Metric::kMaxBsld}) {
    PolicyPtr policy = make_policy("SJF");
    TrainerConfig config = tiny_config();
    config.metric = metric;
    const TrainedInspector trained = train_inspector(trace, *policy, config);
    EXPECT_EQ(trained.result.curve.size(), 3u) << metric_name(metric);
  }
}

}  // namespace
}  // namespace si
