// Worker-count determinism for the full training loop: with a fixed seed,
// one rollout worker and many must produce byte-identical simulator traces,
// identical telemetry (modulo wall-clock fields), and bit-identical model
// parameters. This is the end-to-end version of the kernel-parity tests —
// if any stage of rollout collection, chunked PPO reduction, or trace
// draining reordered floating-point work, it would show up here.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/sink.hpp"
#include "core/trainer.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

TrainerConfig tiny_config(int max_workers) {
  TrainerConfig config;
  config.epochs = 3;
  config.trajectories_per_epoch = 6;
  config.sequence_length = 32;
  config.seed = 19;
  config.max_workers = max_workers;
  return config;
}

struct TrainRun {
  std::string trace_bytes;
  std::string telemetry;
  std::vector<double> params;
  std::vector<EpochStats> curve;
};

TrainRun run_training(int max_workers, const std::string& tag) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  TrainerConfig config = tiny_config(max_workers);

  StringSink trace_sink;
  JsonlTracer tracer(trace_sink);
  config.tracer = &tracer;
  const std::string telemetry_path =
      ::testing::TempDir() + "/si_telemetry_" + tag + ".jsonl";
  config.telemetry_path = telemetry_path;

  Trainer trainer(trace, *policy, config);
  ActorCritic ac = trainer.make_agent();
  TrainRun run;
  run.curve = trainer.train(ac).curve;
  run.trace_bytes = trace_sink.str();
  run.params.assign(ac.policy_net().params().begin(),
                    ac.policy_net().params().end());
  run.params.insert(run.params.end(), ac.value_net().params().begin(),
                    ac.value_net().params().end());

  std::ifstream in(telemetry_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  run.telemetry = buffer.str();
  std::filesystem::remove(telemetry_path);
  return run;
}

// Telemetry records carry wall-clock phase timings that legitimately vary
// between runs; every other byte must match. Blank the timing values only.
std::string strip_wall_clock(const std::string& telemetry) {
  static const std::regex timing(
      R"(("(?:rollout|update|elapsed)_seconds":)[^,}]*)");
  return std::regex_replace(telemetry, timing, "$1X");
}

TEST(TrainDeterminism, WorkerCountInvariant) {
  const TrainRun serial = run_training(1, "w1");
  const TrainRun threaded = run_training(3, "w3");

  // Simulator traces carry simulated time only: byte-identical.
  EXPECT_FALSE(serial.trace_bytes.empty());
  EXPECT_EQ(serial.trace_bytes, threaded.trace_bytes);

  // Telemetry identical once wall-clock fields are blanked.
  EXPECT_FALSE(serial.telemetry.empty());
  EXPECT_NE(serial.telemetry, strip_wall_clock(serial.telemetry))
      << "telemetry should contain wall-clock fields for the strip to erase";
  EXPECT_EQ(strip_wall_clock(serial.telemetry),
            strip_wall_clock(threaded.telemetry));

  // Trained parameters bit-identical.
  ASSERT_EQ(serial.params.size(), threaded.params.size());
  for (std::size_t i = 0; i < serial.params.size(); ++i)
    EXPECT_EQ(serial.params[i], threaded.params[i]) << "param " << i;

  // And the reported curves agree exactly on every simulated quantity.
  ASSERT_EQ(serial.curve.size(), threaded.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(serial.curve[i].mean_reward, threaded.curve[i].mean_reward);
    EXPECT_EQ(serial.curve[i].mean_improvement,
              threaded.curve[i].mean_improvement);
    EXPECT_EQ(serial.curve[i].rejection_ratio,
              threaded.curve[i].rejection_ratio);
    EXPECT_EQ(serial.curve[i].approx_kl, threaded.curve[i].approx_kl);
  }
}

TEST(TrainDeterminism, ExplicitWorkerCapMatchesAuto) {
  // max_workers = 0 (auto) must land on the same results as any explicit
  // count — the auto heuristic only picks a thread count.
  const TrainRun autod = run_training(0, "auto");
  const TrainRun fixed = run_training(2, "w2");
  EXPECT_EQ(autod.trace_bytes, fixed.trace_bytes);
  ASSERT_EQ(autod.params.size(), fixed.params.size());
  for (std::size_t i = 0; i < autod.params.size(); ++i)
    EXPECT_EQ(autod.params[i], fixed.params[i]) << "param " << i;
}

}  // namespace
}  // namespace si
