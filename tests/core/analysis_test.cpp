#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace si {
namespace {

DecisionRecorder make_recorder() {
  return DecisionRecorder({"wait", "estimate"});
}

TEST(DecisionRecorder, CountsSamples) {
  DecisionRecorder rec = make_recorder();
  rec.record({0.1, 0.2}, true);
  rec.record({0.3, 0.4}, false);
  rec.record({0.5, 0.6}, true);
  EXPECT_EQ(rec.total_samples(), 3u);
  EXPECT_EQ(rec.rejected_samples(), 2u);
  EXPECT_NEAR(rec.rejection_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(DecisionRecorder, EmptyRatioIsZero) {
  DecisionRecorder rec = make_recorder();
  EXPECT_DOUBLE_EQ(rec.rejection_ratio(), 0.0);
}

TEST(DecisionRecorder, CdfsSeparateRejectedFromTotal) {
  DecisionRecorder rec = make_recorder();
  // Rejected samples cluster at low wait; accepted at high wait.
  for (int i = 0; i < 50; ++i) rec.record({0.1, 0.5}, true);
  for (int i = 0; i < 50; ++i) rec.record({0.9, 0.5}, false);
  const EmpiricalCdf rejected = rec.cdf_rejected(0);
  const EmpiricalCdf total = rec.cdf_total(0);
  EXPECT_EQ(rejected.size(), 50u);
  EXPECT_EQ(total.size(), 100u);
  // At x = 0.5: all rejected samples are below, half of total.
  EXPECT_DOUBLE_EQ(rejected.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(total.at(0.5), 0.5);
}

TEST(DecisionRecorder, RejectedMaxTracksHardCap) {
  DecisionRecorder rec = make_recorder();
  rec.record({0.1, 0.22}, true);
  rec.record({0.2, 0.95}, false);  // high value but accepted
  rec.record({0.15, 0.18}, true);
  // The paper's §5 observation style: rejections never exceed a cap.
  EXPECT_DOUBLE_EQ(rec.rejected_max(1), 0.22);
}

TEST(DecisionRecorder, FeatureSizeMismatchThrows) {
  DecisionRecorder rec = make_recorder();
  EXPECT_THROW(rec.record({0.1}, true), ContractViolation);
}

TEST(DecisionRecorder, FeatureIndexOutOfRangeThrows) {
  DecisionRecorder rec = make_recorder();
  rec.record({0.1, 0.2}, true);
  EXPECT_THROW(rec.cdf_total(2), ContractViolation);
  EXPECT_THROW(rec.cdf_rejected(5), ContractViolation);
  EXPECT_THROW(rec.rejected_max(9), ContractViolation);
}

TEST(DecisionRecorder, RenderListsEveryFeature) {
  DecisionRecorder rec = make_recorder();
  rec.record({0.5, 0.5}, true);
  rec.record({0.7, 0.2}, false);
  const std::string out = rec.render(8);
  EXPECT_NE(out.find("wait"), std::string::npos);
  EXPECT_NE(out.find("estimate"), std::string::npos);
  EXPECT_NE(out.find("total samples: 2"), std::string::npos);
}

TEST(DecisionRecorder, EmptyNamesRejected) {
  EXPECT_THROW(DecisionRecorder({}), ContractViolation);
}

}  // namespace
}  // namespace si
