#include "core/reward.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <stdexcept>

#include "common/check.hpp"

namespace si {
namespace {

TEST(RewardNames, RoundTrip) {
  EXPECT_EQ(reward_kind_from_name("native"), RewardKind::kNative);
  EXPECT_EQ(reward_kind_from_name("winloss"), RewardKind::kWinLoss);
  EXPECT_EQ(reward_kind_from_name("percentage"), RewardKind::kPercentage);
  EXPECT_EQ(reward_kind_name(RewardKind::kNative), "native");
  EXPECT_EQ(reward_kind_name(RewardKind::kWinLoss), "winloss");
  EXPECT_EQ(reward_kind_name(RewardKind::kPercentage), "percentage");
}

TEST(RewardNames, UnknownThrows) {
  EXPECT_THROW(reward_kind_from_name("sparse"), std::out_of_range);
}

TEST(Reward, NativeIsDirectDifference) {
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kNative, 100.0, 60.0), 40.0);
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kNative, 60.0, 100.0), -40.0);
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kNative, 5.0, 5.0), 0.0);
}

TEST(Reward, WinLossIsSign) {
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kWinLoss, 100.0, 60.0), 1.0);
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kWinLoss, 60.0, 100.0), -1.0);
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kWinLoss, 5.0, 5.0), 0.0);
}

TEST(Reward, WinLossIgnoresMagnitude) {
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kWinLoss, 2414.0, 1.0),
                   compute_reward(RewardKind::kWinLoss, 2.0, 1.9));
}

TEST(Reward, PercentageNormalizesByBase) {
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kPercentage, 100.0, 60.0), 0.4);
  EXPECT_DOUBLE_EQ(compute_reward(RewardKind::kPercentage, 100.0, 150.0),
                   -0.5);
}

TEST(Reward, PercentageRewardsBigGainsMore) {
  // The paper's design goal: a 69% gain outranks a 5% gain regardless of
  // the absolute bsld scale.
  const double big = compute_reward(RewardKind::kPercentage, 2414.0, 750.0);
  const double small = compute_reward(RewardKind::kPercentage, 2.0, 1.9);
  EXPECT_GT(big, small);
}

TEST(Reward, PercentageEliminatesScaleBias) {
  // Equal relative improvements score equally across wildly different
  // sequence difficulty.
  EXPECT_NEAR(compute_reward(RewardKind::kPercentage, 2414.0, 1207.0),
              compute_reward(RewardKind::kPercentage, 2.0, 1.0), 1e-9);
}

TEST(Reward, ZeroBaseGuarded) {
  // Degenerate sequences (e.g. every job starts instantly under wait) must
  // not divide by zero.
  const double r = compute_reward(RewardKind::kPercentage, 0.0, 0.0);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Reward, NegativeInputsRejected) {
  EXPECT_THROW(compute_reward(RewardKind::kNative, -1.0, 0.0),
               ContractViolation);
  EXPECT_THROW(compute_reward(RewardKind::kNative, 0.0, -1.0),
               ContractViolation);
}

}  // namespace
}  // namespace si
