#include "core/rl_inspector.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sched/policies.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

struct Harness {
  Trace trace = make_trace("SDSC-SP2", 300, 13);
  FeatureScales scales = FeatureScales::from_trace(trace);
  SimConfig sim_config;
  FeatureBuilder features{FeatureMode::kManual, Metric::kBsld, scales, 600.0};
  ActorCritic ac{8, {16, 8}, 21};
  SjfPolicy policy;

  std::vector<Job> jobs() {
    Rng rng(5);
    return trace.sample_window(rng, 64);
  }
};

TEST(RlInspector, ObsSizeMismatchRejectedAtConstruction) {
  Harness h;
  ActorCritic wrong(5, {8}, 1);
  EXPECT_THROW(RlInspector(wrong, h.features, InspectorMode::kGreedy),
               ContractViolation);
}

TEST(RlInspector, SampleModeRequiresRng) {
  Harness h;
  EXPECT_THROW(RlInspector(h.ac, h.features, InspectorMode::kSample, nullptr),
               ContractViolation);
}

TEST(RlInspector, TrajectoryRecordsEveryInspection) {
  Harness h;
  Rng rng(3);
  RlInspector inspector(h.ac, h.features, InspectorMode::kSample, &rng);
  Trajectory traj;
  inspector.set_trajectory(&traj);
  Simulator sim(h.trace.cluster_procs(), h.sim_config);
  const auto result = sim.run(h.jobs(), h.policy, &inspector);
  EXPECT_EQ(traj.steps.size(), result.metrics.inspections);
  EXPECT_GT(traj.steps.size(), 0u);
  std::size_t rejects = 0;
  for (const Step& s : traj.steps) {
    EXPECT_EQ(static_cast<int>(s.obs.size()), 8);
    EXPECT_LE(s.log_prob, 0.0);
    if (s.action == 1) ++rejects;
  }
  EXPECT_EQ(rejects, result.metrics.rejections);
}

TEST(RlInspector, GreedyIsDeterministic) {
  Harness h;
  RlInspector a(h.ac, h.features, InspectorMode::kGreedy);
  RlInspector b(h.ac, h.features, InspectorMode::kGreedy);
  Simulator sim(h.trace.cluster_procs(), h.sim_config);
  const auto jobs = h.jobs();
  const auto ra = sim.run(jobs, h.policy, &a);
  const auto rb = sim.run(jobs, h.policy, &b);
  EXPECT_DOUBLE_EQ(ra.metrics.avg_bsld, rb.metrics.avg_bsld);
  EXPECT_EQ(ra.metrics.rejections, rb.metrics.rejections);
}

TEST(RlInspector, RecorderObservesEveryDecision) {
  Harness h;
  RlInspector inspector(h.ac, h.features, InspectorMode::kGreedy);
  DecisionRecorder recorder(h.features.feature_names());
  inspector.set_recorder(&recorder);
  Simulator sim(h.trace.cluster_procs(), h.sim_config);
  const auto result = sim.run(h.jobs(), h.policy, &inspector);
  EXPECT_EQ(recorder.total_samples(), result.metrics.inspections);
  EXPECT_EQ(recorder.rejected_samples(), result.metrics.rejections);
}

TEST(RandomInspectorTest, ProbabilityZeroNeverRejects) {
  Harness h;
  Rng rng(7);
  RandomInspector inspector(0.0, rng);
  Simulator sim(h.trace.cluster_procs(), h.sim_config);
  const auto result = sim.run(h.jobs(), h.policy, &inspector);
  EXPECT_EQ(result.metrics.rejections, 0u);
}

TEST(RandomInspectorTest, ProbabilityOneAlwaysRejects) {
  Harness h;
  Rng rng(7);
  RandomInspector inspector(1.0, rng);
  SimConfig config;
  config.max_rejection_times = 2;
  Simulator sim(h.trace.cluster_procs(), config);
  const auto result = sim.run(h.jobs(), h.policy, &inspector);
  for (const JobRecord& r : result.records) EXPECT_EQ(r.rejections, 2);
}

TEST(RandomInspectorTest, BadProbabilityThrows) {
  Rng rng(1);
  EXPECT_THROW(RandomInspector(-0.1, rng), ContractViolation);
  EXPECT_THROW(RandomInspector(1.1, rng), ContractViolation);
}

TEST(RlInspector, ZeroRejectionBudgetBypassesInspector) {
  Harness h;
  SimConfig config;
  config.max_rejection_times = 0;
  Simulator sim(h.trace.cluster_procs(), config);
  AlwaysRejectInspector inspector;
  const auto result = sim.run(h.jobs(), h.policy, &inspector);
  EXPECT_EQ(result.metrics.inspections, 0u);
  EXPECT_EQ(result.metrics.rejections, 0u);
}

}  // namespace
}  // namespace si
