#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

struct Harness {
  Trace trace = make_trace("SDSC-SP2", 400, 17);
  FeatureBuilder features{FeatureMode::kManual, Metric::kBsld,
                          FeatureScales::from_trace(trace), 600.0};
  ActorCritic ac{8, {16, 8}, 9};
  PolicyPtr policy = make_policy("SJF");

  EvalConfig config() const {
    EvalConfig c;
    c.sequences = 6;
    c.sequence_length = 48;
    c.seed = 3;
    return c;
  }
};

TEST(Evaluator, ProducesRequestedPairCount) {
  Harness h;
  const EvalResult result =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  EXPECT_EQ(result.pairs.size(), 6u);
}

TEST(Evaluator, AggregatesMatchPairs) {
  Harness h;
  const EvalResult result =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  double base_sum = 0.0;
  for (const EvalPair& p : result.pairs) base_sum += p.base.avg_bsld;
  EXPECT_NEAR(result.mean_base(Metric::kBsld), base_sum / 6.0, 1e-12);
  EXPECT_EQ(result.base_values(Metric::kBsld).size(), 6u);
  EXPECT_EQ(result.inspected_values(Metric::kWait).size(), 6u);
}

TEST(Evaluator, UtilizationAggregates) {
  Harness h;
  const EvalResult result =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  EXPECT_GT(result.mean_base_utilization(), 0.0);
  EXPECT_LE(result.mean_base_utilization(), 1.0);
  EXPECT_GT(result.mean_inspected_utilization(), 0.0);
  EXPECT_LE(result.mean_inspected_utilization(), 1.0);
}

TEST(Evaluator, BoxSummariesWellFormed) {
  Harness h;
  const EvalResult result =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  const BoxSummary box = result.base_box(Metric::kBsld);
  EXPECT_LE(box.min, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.max);
  EXPECT_EQ(box.count, 6u);
}

TEST(Evaluator, DeterministicInSeed) {
  Harness h;
  const EvalResult a =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  const EvalResult b =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  EXPECT_DOUBLE_EQ(a.mean_inspected(Metric::kBsld),
                   b.mean_inspected(Metric::kBsld));
}

TEST(Evaluator, SeedChangesSampledSequences) {
  Harness h;
  EvalConfig other = h.config();
  other.seed = 4;
  const EvalResult a =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  const EvalResult b = evaluate(h.trace, *h.policy, h.ac, h.features, other);
  EXPECT_NE(a.mean_base(Metric::kBsld), b.mean_base(Metric::kBsld));
}

TEST(Evaluator, EvaluateBaseMatchesPairBases) {
  Harness h;
  const EvalResult result =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config());
  const std::vector<double> base_only =
      evaluate_base(h.trace, *h.policy, Metric::kBsld, h.config());
  ASSERT_EQ(base_only.size(), result.pairs.size());
  for (std::size_t i = 0; i < base_only.size(); ++i)
    EXPECT_DOUBLE_EQ(base_only[i], result.pairs[i].base.avg_bsld);
}

TEST(Evaluator, RecorderCollectsAcrossSequences) {
  Harness h;
  DecisionRecorder recorder(h.features.feature_names());
  const EvalResult result =
      evaluate(h.trace, *h.policy, h.ac, h.features, h.config(), &recorder);
  std::size_t inspections = 0;
  for (const EvalPair& p : result.pairs) inspections += p.inspected.inspections;
  EXPECT_EQ(recorder.total_samples(), inspections);
}

TEST(Evaluator, ParallelBitIdenticalToSerial) {
  // Sequences are sampled serially up front and results collected by
  // index, so any worker count must reproduce the serial run exactly —
  // including the decision recorder's merged sample stream.
  Harness h;
  EvalConfig serial_cfg = h.config();
  serial_cfg.max_workers = 1;
  EvalConfig parallel_cfg = h.config();
  parallel_cfg.max_workers = 3;

  DecisionRecorder serial_rec(h.features.feature_names());
  DecisionRecorder parallel_rec(h.features.feature_names());
  const EvalResult serial =
      evaluate(h.trace, *h.policy, h.ac, h.features, serial_cfg, &serial_rec);
  const EvalResult parallel = evaluate(h.trace, *h.policy, h.ac, h.features,
                                       parallel_cfg, &parallel_rec);

  ASSERT_EQ(serial.pairs.size(), parallel.pairs.size());
  for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
    for (const Metric m : {Metric::kBsld, Metric::kWait, Metric::kMaxBsld}) {
      EXPECT_EQ(serial.pairs[i].base.value(m), parallel.pairs[i].base.value(m));
      EXPECT_EQ(serial.pairs[i].inspected.value(m),
                parallel.pairs[i].inspected.value(m));
    }
    EXPECT_EQ(serial.pairs[i].inspected.inspections,
              parallel.pairs[i].inspected.inspections);
    EXPECT_EQ(serial.pairs[i].inspected.rejections,
              parallel.pairs[i].inspected.rejections);
  }
  EXPECT_EQ(serial_rec.total_samples(), parallel_rec.total_samples());
  EXPECT_EQ(serial_rec.rejected_samples(), parallel_rec.rejected_samples());
}

TEST(Evaluator, EvaluateBaseParallelMatchesSerial) {
  Harness h;
  EvalConfig serial_cfg = h.config();
  serial_cfg.max_workers = 1;
  EvalConfig parallel_cfg = h.config();
  parallel_cfg.max_workers = 0;  // auto
  const std::vector<double> serial =
      evaluate_base(h.trace, *h.policy, Metric::kBsld, serial_cfg);
  const std::vector<double> parallel =
      evaluate_base(h.trace, *h.policy, Metric::kBsld, parallel_cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]);
}

TEST(Evaluator, RolloutBatchWidthDoesNotChangeResults) {
  Harness h;
  EvalConfig scalar_cfg = h.config();
  scalar_cfg.rollout_batch = 1;
  DecisionRecorder scalar_rec(h.features.feature_names());
  const EvalResult scalar = evaluate(h.trace, *h.policy, h.ac, h.features,
                                     scalar_cfg, &scalar_rec);
  for (const int width : {3, 8}) {
    EvalConfig batched_cfg = h.config();
    batched_cfg.rollout_batch = width;
    DecisionRecorder batched_rec(h.features.feature_names());
    const EvalResult batched = evaluate(h.trace, *h.policy, h.ac, h.features,
                                        batched_cfg, &batched_rec);
    ASSERT_EQ(batched.pairs.size(), scalar.pairs.size());
    for (std::size_t i = 0; i < scalar.pairs.size(); ++i) {
      for (const Metric m : {Metric::kBsld, Metric::kWait, Metric::kMaxBsld}) {
        EXPECT_EQ(batched.pairs[i].base.value(m),
                  scalar.pairs[i].base.value(m))
            << "width " << width << " seq " << i;
        EXPECT_EQ(batched.pairs[i].inspected.value(m),
                  scalar.pairs[i].inspected.value(m))
            << "width " << width << " seq " << i;
      }
      EXPECT_EQ(batched.pairs[i].inspected.rejections,
                scalar.pairs[i].inspected.rejections);
    }
    EXPECT_EQ(batched_rec.total_samples(), scalar_rec.total_samples());
    EXPECT_EQ(batched_rec.rejected_samples(), scalar_rec.rejected_samples());
    EXPECT_EQ(batched_rec.render(8), scalar_rec.render(8));
  }
}

TEST(Evaluator, RejectsBadConfig) {
  Harness h;
  EvalConfig bad = h.config();
  bad.sequences = 0;
  EXPECT_THROW(evaluate(h.trace, *h.policy, h.ac, h.features, bad),
               ContractViolation);
  bad = h.config();
  bad.sequence_length = 100000;
  EXPECT_THROW(evaluate(h.trace, *h.policy, h.ac, h.features, bad),
               ContractViolation);
}

}  // namespace
}  // namespace si
