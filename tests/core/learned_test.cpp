#include "core/learned.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "sched/policies.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

NeuralPriorityPolicy make_policy_for(const Trace& trace) {
  const TraceStats s = trace.stats();
  return NeuralPriorityPolicy(s.max_estimate, s.cluster_procs,
                              std::max(s.mean_interarrival * 10.0, 600.0));
}

Job probe(std::int64_t id, Time submit, double est, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.estimate = est;
  j.run = est;
  j.procs = procs;
  return j;
}

TEST(NeuralPriority, SjfInitOrdersByEstimate) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  NeuralPriorityPolicy policy = make_policy_for(trace);
  SchedContext ctx;
  ctx.now = 100.0;
  ctx.total_procs = trace.cluster_procs();
  const Job shorter = probe(0, 0.0, 600.0, 4);
  const Job longer = probe(1, 0.0, 6000.0, 4);
  EXPECT_LT(policy.score(shorter, ctx), policy.score(longer, ctx));
}

TEST(NeuralPriority, CloneIsIndependent) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  NeuralPriorityPolicy policy = make_policy_for(trace);
  const PolicyPtr copy = policy.clone();
  SchedContext ctx;
  ctx.now = 0.0;
  const Job j = probe(0, 0.0, 1000.0, 4);
  EXPECT_DOUBLE_EQ(copy->score(j, ctx), policy.score(j, ctx));
  // Mutating the original's weights must not affect the clone.
  for (double& p : policy.net().params()) p += 1.0;
  EXPECT_NE(copy->score(j, ctx), policy.score(j, ctx));
}

TEST(NeuralPriority, RejectsBadScales) {
  EXPECT_THROW(NeuralPriorityPolicy(0.0, 16, 600.0), ContractViolation);
  EXPECT_THROW(NeuralPriorityPolicy(100.0, 0, 600.0), ContractViolation);
}

TEST(NeuralPriority, WorksAsSimulatorPolicy) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  NeuralPriorityPolicy policy = make_policy_for(trace);
  Simulator sim(trace.cluster_procs(), SimConfig{});
  Rng rng(7);
  const auto jobs = trace.sample_window(rng, 96);
  const auto result = sim.run(jobs, policy);
  for (const JobRecord& r : result.records) EXPECT_TRUE(r.started());
}

TEST(EsTrainer, ImprovesOverInitialization) {
  const Trace trace = make_trace("SDSC-SP2", 1200, 11);
  NeuralPriorityPolicy policy = make_policy_for(trace);
  EsConfig config;
  config.generations = 6;
  config.population = 8;
  config.elites = 2;
  config.windows = 4;
  config.sequence_length = 48;
  config.seed = 5;
  const EsResult result = train_neural_priority(policy, trace, config);
  ASSERT_EQ(result.curve.size(), 6u);
  // The shipped parameters are the best candidate ever evaluated, so the
  // final value equals the minimum per-generation best.
  double min_best = result.curve.front().best;
  for (const EsGeneration& g : result.curve)
    min_best = std::min(min_best, g.best);
  EXPECT_DOUBLE_EQ(result.final_value, min_best);
  // ...and never exceeds the SJF-like initialization's fitness.
  EXPECT_LE(result.final_value, result.curve.front().best + 1e-9);
  EXPECT_TRUE(std::isfinite(result.final_value));
}

TEST(EsTrainer, DeterministicInSeed) {
  const Trace trace = make_trace("SDSC-SP2", 800, 13);
  auto run_once = [&] {
    NeuralPriorityPolicy policy = make_policy_for(trace);
    EsConfig config;
    config.generations = 3;
    config.population = 6;
    config.elites = 2;
    config.windows = 3;
    config.sequence_length = 48;
    config.seed = 9;
    return train_neural_priority(policy, trace, config).final_value;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EsTrainer, RejectsBadConfig) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  NeuralPriorityPolicy policy = make_policy_for(trace);
  EsConfig bad;
  bad.generations = 0;
  EXPECT_THROW(train_neural_priority(policy, trace, bad), ContractViolation);
  bad = EsConfig{};
  bad.elites = 100;
  EXPECT_THROW(train_neural_priority(policy, trace, bad), ContractViolation);
}

TEST(EsTrainer, BeatsOrMatchesFcfsOnCongestedWorkload) {
  // The learned priority function should at least match FCFS (it starts
  // SJF-like, which dominates FCFS on bsld for heavy-tailed workloads).
  const Trace trace = make_trace("SDSC-SP2", 1200, 17);
  NeuralPriorityPolicy policy = make_policy_for(trace);
  EsConfig config;
  config.generations = 5;
  config.population = 8;
  config.elites = 2;
  config.windows = 4;
  config.sequence_length = 48;
  config.seed = 21;
  train_neural_priority(policy, trace, config);

  FcfsPolicy fcfs;
  Simulator sim(trace.cluster_procs(), SimConfig{});
  Rng rng(23);
  RunningStats learned_bsld;
  RunningStats fcfs_bsld;
  for (int i = 0; i < 10; ++i) {
    const auto jobs = trace.sample_window(rng, 64);
    learned_bsld.add(sim.run(jobs, policy).metrics.avg_bsld);
    fcfs_bsld.add(sim.run(jobs, fcfs).metrics.avg_bsld);
  }
  EXPECT_LE(learned_bsld.mean(), fcfs_bsld.mean() * 1.05);
}

}  // namespace
}  // namespace si
