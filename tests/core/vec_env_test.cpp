// VecEnv's bit-identicality contract (core/vec_env.hpp): for every batch
// width, each sequence's metrics, trajectory, decision records, and trace
// bytes must equal the scalar callback path's output for the same
// (jobs, seed) — regardless of which other sequences share the batch.
#include "core/vec_env.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sink.hpp"
#include "core/rollout.hpp"
#include "obs/trace.hpp"
#include "sched/policies.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

constexpr int kWidths[] = {1, 3, 8};

struct Harness {
  Trace trace = make_trace("SDSC-SP2", 400, 31);
  FeatureBuilder features{FeatureMode::kManual, Metric::kBsld,
                          FeatureScales::from_trace(trace), 600.0};
  ActorCritic ac{8, {16, 8}, 5};
  SjfPolicy policy;
  SimConfig sim_config;
  Simulator sim{trace.cluster_procs(), sim_config};

  Harness() { ac.policy_net().refresh_transpose(); }

  /// `n` distinct job windows (different seeds => different sequences with
  /// different lengths of decision streams, so lanes finish out of order).
  std::vector<std::vector<Job>> windows(std::size_t n) {
    std::vector<std::vector<Job>> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      Rng rng(100 + i);
      out[i] = trace.sample_window(rng, 48 + 8 * (i % 3));
    }
    return out;
  }
};

void expect_same_metrics(const SequenceMetrics& a, const SequenceMetrics& b,
                         const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.inspections, b.inspections);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_DOUBLE_EQ(a.avg_wait, b.avg_wait);
  EXPECT_DOUBLE_EQ(a.avg_bsld, b.avg_bsld);
  EXPECT_DOUBLE_EQ(a.max_bsld, b.max_bsld);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(VecEnv, GreedyMatchesScalarRolloutAtEveryWidth) {
  Harness h;
  const auto windows = h.windows(7);

  std::vector<EvalPair> scalar(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i)
    scalar[i] = rollout_eval(h.sim, windows[i], h.policy, h.ac, h.features);

  std::vector<RolloutSpec> specs(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i)
    specs[i].jobs = &windows[i];

  for (const int width : kWidths) {
    VecEnv env(h.trace.cluster_procs(), h.sim_config, h.ac, h.features,
               h.policy, width);
    const std::vector<PairedRollout> batched =
        env.rollout_batch(specs, ActionSelect::kGreedy);
    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      const std::string label =
          "width " + std::to_string(width) + " seq " + std::to_string(i);
      expect_same_metrics(batched[i].base, scalar[i].base, label + " base");
      expect_same_metrics(batched[i].inspected, scalar[i].inspected,
                          label + " inspected");
    }
  }
}

TEST(VecEnv, SampledTrajectoriesMatchScalarExactly) {
  Harness h;
  const auto windows = h.windows(6);

  std::vector<TrainingRollout> scalar(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    Rng rng(1000 + i);
    scalar[i] = rollout_training(h.sim, windows[i], h.policy, h.ac,
                                 h.features, Metric::kBsld,
                                 RewardKind::kPercentage, rng);
  }

  for (const int width : kWidths) {
    std::vector<Trajectory> trajectories(windows.size());
    std::vector<RolloutSpec> specs(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      specs[i].jobs = &windows[i];
      specs[i].seed = 1000 + i;
      specs[i].trajectory = &trajectories[i];
    }
    VecEnv env(h.trace.cluster_procs(), h.sim_config, h.ac, h.features,
               h.policy, width);
    const std::vector<PairedRollout> batched =
        env.rollout_batch(specs, ActionSelect::kSample);

    for (std::size_t i = 0; i < windows.size(); ++i) {
      SCOPED_TRACE("width " + std::to_string(width) + " seq " +
                   std::to_string(i));
      expect_same_metrics(batched[i].base, scalar[i].base, "base");
      expect_same_metrics(batched[i].inspected, scalar[i].inspected,
                          "inspected");
      const Trajectory& expected = scalar[i].trajectory;
      const Trajectory& actual = trajectories[i];
      ASSERT_EQ(actual.steps.size(), expected.steps.size());
      for (std::size_t s = 0; s < expected.steps.size(); ++s) {
        EXPECT_EQ(actual.steps[s].action, expected.steps[s].action)
            << "step " << s;
        EXPECT_DOUBLE_EQ(actual.steps[s].log_prob,
                         expected.steps[s].log_prob)
            << "step " << s;
        ASSERT_EQ(actual.steps[s].obs.size(), expected.steps[s].obs.size());
        for (std::size_t f = 0; f < expected.steps[s].obs.size(); ++f)
          EXPECT_DOUBLE_EQ(actual.steps[s].obs[f], expected.steps[s].obs[f])
              << "step " << s << " feature " << f;
      }
    }
  }
}

TEST(VecEnv, RecorderStreamsMatchScalar) {
  Harness h;
  const auto windows = h.windows(5);

  std::vector<DecisionRecorder> scalar;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    scalar.emplace_back(h.features.feature_names());
    rollout_eval(h.sim, windows[i], h.policy, h.ac, h.features, &scalar[i]);
  }

  for (const int width : kWidths) {
    std::vector<DecisionRecorder> recorders;
    std::vector<RolloutSpec> specs(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i)
      recorders.emplace_back(h.features.feature_names());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      specs[i].jobs = &windows[i];
      specs[i].recorder = &recorders[i];
    }
    VecEnv env(h.trace.cluster_procs(), h.sim_config, h.ac, h.features,
               h.policy, width);
    env.rollout_batch(specs, ActionSelect::kGreedy);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      SCOPED_TRACE("width " + std::to_string(width) + " seq " +
                   std::to_string(i));
      EXPECT_EQ(recorders[i].total_samples(), scalar[i].total_samples());
      EXPECT_EQ(recorders[i].rejected_samples(),
                scalar[i].rejected_samples());
      EXPECT_EQ(recorders[i].render(8), scalar[i].render(8));
    }
  }
}

TEST(VecEnv, PerSpecTracesAreByteIdenticalToScalar) {
  Harness h;
  const auto windows = h.windows(4);

  // Scalar reference: each sequence traced through the callback path.
  std::vector<std::string> scalar_traces;
  for (const std::vector<Job>& jobs : windows) {
    BufferTracer buffer;
    SimConfig traced = h.sim_config;
    traced.tracer = &buffer;
    Simulator sim(h.trace.cluster_procs(), traced);
    rollout_eval(sim, jobs, h.policy, h.ac, h.features);
    StringSink text;
    JsonlTracer out(text);
    buffer.drain_to(out);
    scalar_traces.push_back(text.str());
    ASSERT_FALSE(scalar_traces.back().empty());
  }

  for (const int width : kWidths) {
    std::vector<BufferTracer> buffers(windows.size());
    std::vector<RolloutSpec> specs(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      specs[i].jobs = &windows[i];
      specs[i].tracer = &buffers[i];
    }
    VecEnv env(h.trace.cluster_procs(), h.sim_config, h.ac, h.features,
               h.policy, width);
    env.rollout_batch(specs, ActionSelect::kGreedy);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      StringSink text;
      JsonlTracer out(text);
      buffers[i].drain_to(out);
      EXPECT_EQ(text.str(), scalar_traces[i])
          << "width " << width << " seq " << i;
    }
  }
}

TEST(VecEnv, ReusableAcrossCollections) {
  Harness h;
  const auto windows = h.windows(5);
  std::vector<RolloutSpec> specs(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) specs[i].jobs = &windows[i];

  VecEnv env(h.trace.cluster_procs(), h.sim_config, h.ac, h.features,
             h.policy, 3);
  const std::vector<PairedRollout> first =
      env.rollout_batch(specs, ActionSelect::kGreedy);
  const std::vector<PairedRollout> second =
      env.rollout_batch(specs, ActionSelect::kGreedy);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_same_metrics(first[i].base, second[i].base,
                        "seq " + std::to_string(i) + " base");
    expect_same_metrics(first[i].inspected, second[i].inspected,
                        "seq " + std::to_string(i) + " inspected");
  }
}

TEST(VecEnv, FewerSpecsThanWidth) {
  Harness h;
  const auto windows = h.windows(2);
  std::vector<RolloutSpec> specs(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) specs[i].jobs = &windows[i];

  const EvalPair scalar0 =
      rollout_eval(h.sim, windows[0], h.policy, h.ac, h.features);
  VecEnv env(h.trace.cluster_procs(), h.sim_config, h.ac, h.features,
             h.policy, 8);
  const std::vector<PairedRollout> batched =
      env.rollout_batch(specs, ActionSelect::kGreedy);
  ASSERT_EQ(batched.size(), 2u);
  expect_same_metrics(batched[0].base, scalar0.base, "base");
  expect_same_metrics(batched[0].inspected, scalar0.inspected, "inspected");
}

}  // namespace
}  // namespace si
