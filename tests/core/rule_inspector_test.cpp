#include "core/rule_inspector.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sched/policies.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

FeatureBuilder manual_features() {
  FeatureScales scales;
  scales.max_estimate = 10000.0;
  scales.cluster_procs = 128;
  scales.wait_scale = 1000.0;
  return FeatureBuilder(FeatureMode::kManual, Metric::kBsld, scales, 600.0);
}

// Manual feature layout: wait, est, procs, rejected, queue_delays, avail,
// runnable, backfill.
std::vector<double> features(double wait, double est, double procs,
                             double queue_delay, double avail) {
  return {wait, est, procs, 0.0, queue_delay, avail, 1.0, 0.0};
}

TEST(RuleInspector, RejectsDemandingFreshJobOnFullCluster) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  EXPECT_TRUE(inspector.reject_features(
      features(/*wait=*/0.1, /*est=*/0.6, /*procs=*/0.3, /*qd=*/0.05,
               /*avail=*/0.1)));
}

TEST(RuleInspector, RejectsDemandingFreshJobOnIdleCluster) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  EXPECT_TRUE(inspector.reject_features(
      features(0.1, 0.6, 0.3, 0.05, /*avail=*/0.9)));
}

TEST(RuleInspector, AcceptsOnModeratelyLoadedCluster) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  EXPECT_FALSE(inspector.reject_features(
      features(0.1, 0.6, 0.3, 0.05, /*avail=*/0.5)));
}

TEST(RuleInspector, QueueDelayHardCapWins) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  // Identical to a rejected case except the queue-delay cap is exceeded.
  EXPECT_FALSE(inspector.reject_features(
      features(0.1, 0.6, 0.3, /*qd=*/0.5, 0.1)));
}

TEST(RuleInspector, LongWaitersAreNeverDelayed) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  EXPECT_FALSE(inspector.reject_features(
      features(/*wait=*/0.8, 0.6, 0.3, 0.05, 0.1)));
}

TEST(RuleInspector, UndemandingJobsRunImmediately) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  EXPECT_FALSE(inspector.reject_features(
      features(0.1, /*est=*/0.05, /*procs=*/0.02, 0.05, 0.1)));
}

TEST(RuleInspector, WideJobAloneIsDemandingEnough) {
  const FeatureBuilder fb = manual_features();
  RuleInspector inspector(fb);
  EXPECT_TRUE(inspector.reject_features(
      features(0.1, /*est=*/0.05, /*procs=*/0.5, 0.05, 0.1)));
}

TEST(RuleInspector, RequiresManualFeatureMode) {
  FeatureScales scales;
  scales.max_estimate = 100.0;
  scales.cluster_procs = 8;
  const FeatureBuilder compact(FeatureMode::kCompacted, Metric::kBsld, scales,
                               600.0);
  EXPECT_THROW(RuleInspector{compact}, ContractViolation);
}

TEST(RuleInspector, ConfigThresholdsAreHonored) {
  const FeatureBuilder fb = manual_features();
  RuleInspectorConfig config;
  config.min_estimate = 0.9;  // almost nothing is "long"
  config.min_procs = 0.9;     // almost nothing is "wide"
  RuleInspector inspector(fb, config);
  EXPECT_FALSE(inspector.reject_features(features(0.1, 0.6, 0.3, 0.05, 0.1)));
}

TEST(RuleInspector, RunsEndToEndInSimulator) {
  const Trace trace = make_trace("SDSC-SP2", 400, 3);
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld,
                          FeatureScales::from_trace(trace), 600.0);
  RuleInspector inspector(fb);
  SjfPolicy sjf;
  Simulator sim(trace.cluster_procs(), SimConfig{});
  Rng rng(5);
  const auto jobs = trace.sample_window(rng, 128);
  const auto result = sim.run(jobs, sjf, &inspector);
  for (const JobRecord& r : result.records) EXPECT_TRUE(r.started());
  // The rules should actually fire on a congested workload.
  EXPECT_GT(result.metrics.rejections, 0u);
}

TEST(RuleInspector, DeterministicDecisions) {
  const Trace trace = make_trace("SDSC-SP2", 400, 3);
  const FeatureBuilder fb(FeatureMode::kManual, Metric::kBsld,
                          FeatureScales::from_trace(trace), 600.0);
  RuleInspector a(fb);
  RuleInspector b(fb);
  SjfPolicy sjf;
  Simulator sim(trace.cluster_procs(), SimConfig{});
  Rng rng(9);
  const auto jobs = trace.sample_window(rng, 96);
  const auto ra = sim.run(jobs, sjf, &a);
  const auto rb = sim.run(jobs, sjf, &b);
  EXPECT_DOUBLE_EQ(ra.metrics.avg_bsld, rb.metrics.avg_bsld);
}

}  // namespace
}  // namespace si
