// Unit tests for the runtime invariant oracle: a clean simulated run
// produces no violations, and each invariant family actually fires when fed
// a corrupted event stream (the hooks are called directly with
// inconsistent data — no simulator bug required to test the detector).
#include "check/invariant_oracle.hpp"

#include <gtest/gtest.h>

#include "check/generator.hpp"
#include "common/check.hpp"
#include "sim/config.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, Time run, int procs) {
  Job job;
  job.id = id;
  job.submit = submit;
  job.run = run;
  job.estimate = run;
  job.procs = procs;
  return job;
}

/// A minimal two-job workload plus a begun oracle, the fixture for feeding
/// hand-crafted (mis)behaviour into the hooks.
struct OracleHarness {
  std::vector<Job> jobs;
  SimConfig config;
  InvariantOracle oracle;

  OracleHarness() {
    jobs.push_back(make_job(0, 0.0, 100.0, 4));
    jobs.push_back(make_job(1, 10.0, 50.0, 2));
    oracle.on_run_begin(jobs, 8, config);
  }
};

TEST(InvariantOracle, CleanSimulatedRunsProduceNoViolations) {
  InvariantOracle oracle;
  for (std::uint64_t seed = 0; seed < 25; ++seed)
    run_case(generate_case(seed), &oracle);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_EQ(oracle.runs_checked(), 25u);
  EXPECT_NE(oracle.report().find("ok"), std::string::npos);
}

TEST(InvariantOracle, DetectsTimeMovingBackwards) {
  OracleHarness h;
  h.oracle.on_time_advance(0.0, 50.0);
  h.oracle.on_time_advance(50.0, 40.0);  // backwards
  EXPECT_FALSE(h.oracle.ok());
  EXPECT_NE(h.oracle.report().find("non-monotonic"), std::string::npos);
}

TEST(InvariantOracle, DetectsStartBeforeSubmit) {
  OracleHarness h;
  // Job 1 submits at t=10 but "starts" at t=5.
  h.oracle.on_job_start(5.0, 1, h.jobs[1], 6, /*backfilled=*/false);
  EXPECT_FALSE(h.oracle.ok());
  EXPECT_NE(h.oracle.report().find("before its submit"), std::string::npos);
}

TEST(InvariantOracle, DetectsDoubleStart) {
  OracleHarness h;
  h.oracle.on_job_start(0.0, 0, h.jobs[0], 4, false);
  h.oracle.on_job_start(1.0, 0, h.jobs[0], 0, false);
  EXPECT_FALSE(h.oracle.ok());
  EXPECT_NE(h.oracle.report().find("started twice"), std::string::npos);
}

TEST(InvariantOracle, DetectsFreePoolMismatch) {
  OracleHarness h;
  // 8 - 4 = 4 free, but the "simulator" claims 5.
  h.oracle.on_job_start(0.0, 0, h.jobs[0], 5, false);
  EXPECT_FALSE(h.oracle.ok());
  EXPECT_NE(h.oracle.report().find("free-processor mismatch"),
            std::string::npos);
}

TEST(InvariantOracle, DetectsOversubscription) {
  std::vector<Job> jobs = {make_job(0, 0.0, 10.0, 8),
                           make_job(1, 0.0, 10.0, 8)};
  SimConfig config;
  InvariantOracle oracle;
  oracle.on_run_begin(jobs, 8, config);
  oracle.on_job_start(0.0, 0, jobs[0], 0, false);
  oracle.on_job_start(0.0, 1, jobs[1], -8, false);  // no room left
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("oversubscribes"), std::string::npos);
}

TEST(InvariantOracle, DetectsStartAheadOfBlockedReservation) {
  OracleHarness h;
  h.oracle.on_job_start(0.0, 0, h.jobs[0], 4, false);
  // Pretend job 1 blocks (needs more than the 4 free)...
  Job wide = make_job(2, 0.0, 10.0, 6);
  std::vector<Job> jobs = {h.jobs[0], h.jobs[1], wide};
  InvariantOracle oracle;
  SimConfig config;
  oracle.on_run_begin(jobs, 8, config);
  oracle.on_job_start(0.0, 0, jobs[0], 4, false);
  oracle.on_block(0.0, 2);
  // ...then job 1 jumps the reservation without being tagged a backfill.
  oracle.on_job_start(0.0, 1, jobs[1], 2, /*backfilled=*/false);
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("ahead of the blocked reservation"),
            std::string::npos);
}

TEST(InvariantOracle, DetectsBackfillDelayingTheReservation) {
  // 8 procs; job0 takes 6 and runs to t=100; job2 (4 procs) blocks; job1
  // (2 procs, estimate 1000) cannot finish before the shadow (t=100) and
  // does not fit the shadow's spare (8 - 4 = 4... it does fit). Make job1
  // wider: 5 procs would not fit free. Use estimate past shadow and spare
  // exactly consumed.
  std::vector<Job> jobs = {make_job(0, 0.0, 100.0, 6),
                           make_job(1, 0.0, 1000.0, 2),
                           make_job(2, 0.0, 10.0, 4)};
  SimConfig config;
  InvariantOracle oracle;
  oracle.on_run_begin(jobs, 8, config);
  oracle.on_job_start(0.0, 0, jobs[0], 2, false);
  oracle.on_block(0.0, 2);
  // Shadow: job2 needs 4; free=2, job0 releases 6 at t=100 -> shadow
  // time 100, extra (2+6)-4 = 4... job1 ends at 1000 > 100 and needs 2
  // <= 4, so a *correct* backfill is legal. Claim extra=0 to simulate the
  // simulator mis-reserving, then the same start must violate.
  oracle.on_backfill_window(0.0, 2, 100.0, 0);
  EXPECT_FALSE(oracle.ok());  // shadow mismatch (fault-free recompute)
  EXPECT_NE(oracle.report().find("shadow mismatch"), std::string::npos);
  oracle.on_job_start(0.0, 1, jobs[1], 0, /*backfilled=*/true);
  EXPECT_NE(oracle.report().find("delays the reserved job"),
            std::string::npos);
}

TEST(InvariantOracle, DetectsRejectionBudgetOverrun) {
  OracleHarness h;
  const int budget = h.config.max_rejection_times;
  for (int i = 0; i <= budget; ++i)
    h.oracle.on_inspect(0.0, 0, i, /*rejected=*/true);
  EXPECT_FALSE(h.oracle.ok());
  EXPECT_NE(h.oracle.report().find("MAX_REJECTION_TIMES"), std::string::npos);
}

TEST(InvariantOracle, DetectsMetricMismatchAtRunEnd) {
  OracleHarness h;
  h.oracle.on_job_start(0.0, 0, h.jobs[0], 4, false);
  h.oracle.on_job_start(10.0, 1, h.jobs[1], 2, false);
  JobRecord r0;
  r0.id = 0;
  r0.submit = 0.0;
  r0.start = 0.0;
  r0.finish = 100.0;
  r0.run = 100.0;
  r0.procs = 4;
  JobRecord r1;
  r1.id = 1;
  r1.submit = 10.0;
  r1.start = 10.0;
  r1.finish = 60.0;
  r1.run = 50.0;
  r1.procs = 2;
  h.oracle.on_job_release(100.0, 0, r0, 4, 6, false);
  h.oracle.on_job_release(60.0, 1, r1, 2, 8, false);  // also: time backwards
  SequenceMetrics metrics;
  metrics.jobs = 2;
  metrics.avg_wait = 123.0;  // wrong: both jobs started instantly
  h.oracle.on_run_end({r0, r1}, metrics);
  EXPECT_FALSE(h.oracle.ok());
  EXPECT_NE(h.oracle.report().find("avg wait deviates"), std::string::npos);
}

TEST(InvariantOracle, HaltModeThrowsOnFirstViolation) {
  InvariantOracleOptions options;
  options.halt_on_violation = true;
  InvariantOracle oracle(options);
  std::vector<Job> jobs = {make_job(0, 10.0, 5.0, 1)};
  SimConfig config;
  oracle.on_run_begin(jobs, 4, config);
  EXPECT_THROW(oracle.on_job_start(0.0, 0, jobs[0], 3, false),
               ContractViolation);
}

TEST(InvariantOracle, ViolationListIsCappedButCountIsNot) {
  InvariantOracleOptions options;
  options.max_recorded = 3;
  InvariantOracle oracle(options);
  std::vector<Job> jobs = {make_job(0, 0.0, 5.0, 1)};
  SimConfig config;
  oracle.on_run_begin(jobs, 4, config);
  for (int i = 0; i < 10; ++i) oracle.on_time_advance(100.0, 50.0);
  EXPECT_GE(oracle.violation_count(), 10u);
  EXPECT_EQ(oracle.violations().size(), 3u);
  EXPECT_NE(oracle.report().find("more"), std::string::npos);
}

TEST(InvariantOracle, ClearResetsAccumulatedState) {
  OracleHarness h;
  h.oracle.on_time_advance(100.0, 50.0);
  ASSERT_FALSE(h.oracle.ok());
  h.oracle.clear();
  EXPECT_TRUE(h.oracle.ok());
  EXPECT_EQ(h.oracle.runs_checked(), 0u);
}

}  // namespace
}  // namespace si
