// Unit tests for trace-replay validation: clean traces replay exactly,
// tampered traces are caught, and the JSONL decoder rejects malformed
// records. The end-to-end pipeline (simulate -> trace -> replay) runs on
// both in-memory events and serialized JSONL to prove both entry points
// agree.
#include "check/replay.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/generator.hpp"
#include "common/sink.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"

namespace si {
namespace {

/// Runs one generated case with a JSONL tracer, returning the trace text
/// and the simulator's result.
struct TracedCase {
  std::string jsonl;
  SequenceResult result;
};

TracedCase trace_case(std::uint64_t seed) {
  SimCase sim_case = generate_case(seed);
  StringSink sink;
  JsonlTracer tracer(sink);
  TracedCase out;
  out.result = run_case(sim_case, nullptr, &tracer);
  out.jsonl = sink.str();
  return out;
}

TEST(Replay, CleanJsonlTraceValidates) {
  const TracedCase traced = trace_case(7);
  std::istringstream in(traced.jsonl);
  const ReplayReport report = replay_validate_stream(in);
  EXPECT_TRUE(report.ok()) << report.str();
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].replayed.avg_wait,
            traced.result.metrics.avg_wait);
  EXPECT_EQ(report.runs[0].replayed.avg_bsld,
            traced.result.metrics.avg_bsld);
  EXPECT_EQ(report.runs[0].replayed.utilization,
            traced.result.metrics.utilization);
  EXPECT_GT(report.lines, 0u);
}

TEST(Replay, InMemoryEventsAndJsonlAgree) {
  SimCase sim_case = generate_case(13);
  BufferTracer buffer;
  StringSink sink;
  JsonlTracer jsonl(sink);
  run_case(sim_case, nullptr, &buffer);
  run_case(sim_case, nullptr, &jsonl);
  const ReplayReport from_events = replay_validate_events(buffer.events());
  std::istringstream in(sink.str());
  const ReplayReport from_jsonl = replay_validate_stream(in);
  EXPECT_TRUE(from_events.ok()) << from_events.str();
  EXPECT_TRUE(from_jsonl.ok()) << from_jsonl.str();
  ASSERT_EQ(from_events.runs.size(), 1u);
  ASSERT_EQ(from_jsonl.runs.size(), 1u);
  EXPECT_EQ(from_events.runs[0].replayed.avg_bsld,
            from_jsonl.runs[0].replayed.avg_bsld);
}

TEST(Replay, EveryPolicyReplaysExactly) {
  // The acceptance bar: the replay validator reproduces wait/bsld/util
  // exactly on traces from every base policy the CLI knows.
  std::uint64_t seed = 100;
  for (const std::string& policy : known_policies()) {
    SimCase sim_case = generate_case(seed++);
    sim_case.policy = policy;
    StringSink sink;
    JsonlTracer tracer(sink);
    const SequenceResult result = run_case(sim_case, nullptr, &tracer);
    std::istringstream in(sink.str());
    const ReplayReport report = replay_validate_stream(in);
    ASSERT_TRUE(report.ok()) << policy << ": " << report.str();
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_EQ(report.runs[0].replayed.avg_wait, result.metrics.avg_wait)
        << policy;
    EXPECT_EQ(report.runs[0].replayed.avg_bsld, result.metrics.avg_bsld)
        << policy;
    EXPECT_EQ(report.runs[0].replayed.utilization,
              result.metrics.utilization)
        << policy;
    EXPECT_EQ(report.runs[0].replayed.makespan, result.metrics.makespan)
        << policy;
  }
}

TEST(Replay, DetectsTamperedMetrics) {
  TracedCase traced = trace_case(7);
  // Corrupt the reported avg_wait on the run_end line.
  const std::size_t pos = traced.jsonl.find("\"avg_wait\":");
  ASSERT_NE(pos, std::string::npos);
  traced.jsonl[pos + 11] = traced.jsonl[pos + 11] == '9' ? '8' : '9';
  std::istringstream in(traced.jsonl);
  const ReplayReport report = replay_validate_stream(in);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.str().find("avg_wait diverges"), std::string::npos)
      << report.str();
}

TEST(Replay, DetectsTamperedStartTime) {
  TracedCase traced = trace_case(21);
  // Shift a start record's traced wait; the wait = t - submit cross-check
  // must fire.
  const std::size_t pos = traced.jsonl.find("\"ev\":\"start\"");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t wait_pos = traced.jsonl.find("\"wait\":", pos);
  ASSERT_NE(wait_pos, std::string::npos);
  traced.jsonl[wait_pos + 7] = traced.jsonl[wait_pos + 7] == '9' ? '8' : '9';
  std::istringstream in(traced.jsonl);
  const ReplayReport report = replay_validate_stream(in);
  EXPECT_FALSE(report.ok());
}

TEST(Replay, DetectsTruncatedTrace) {
  TracedCase traced = trace_case(7);
  const std::size_t cut = traced.jsonl.rfind("{\"ev\":\"run_end\"");
  ASSERT_NE(cut, std::string::npos);
  std::istringstream in(traced.jsonl.substr(0, cut));
  const ReplayReport report = replay_validate_stream(in);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.str().find("truncated"), std::string::npos);
}

TEST(Replay, DetectsDroppedFinishRecord) {
  TracedCase traced = trace_case(7);
  const std::size_t pos = traced.jsonl.find("{\"ev\":\"finish\"");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t end = traced.jsonl.find('\n', pos);
  traced.jsonl.erase(pos, end - pos + 1);
  std::istringstream in(traced.jsonl);
  const ReplayReport report = replay_validate_stream(in);
  EXPECT_FALSE(report.ok());
}

TEST(Replay, MissingFileIsAnError) {
  const ReplayReport report =
      replay_validate_file("/nonexistent/trace.jsonl");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.str().find("cannot open"), std::string::npos);
}

TEST(Replay, FileRoundTrip) {
  const TracedCase traced = trace_case(31);
  const std::string path =
      testing::TempDir() + "/replay_round_trip_trace.jsonl";
  {
    std::ofstream out(path);
    out << traced.jsonl;
  }
  const ReplayReport report = replay_validate_file(path);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(Replay, MultiRunTracesSplitOnRunBegin) {
  std::string jsonl;
  for (std::uint64_t seed = 40; seed < 43; ++seed)
    jsonl += trace_case(seed).jsonl;
  std::istringstream in(jsonl);
  const ReplayReport report = replay_validate_stream(in);
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.runs.size(), 3u);
}

TEST(ParseTraceLine, RejectsMalformedRecords) {
  TraceEvent event;
  std::string error;
  EXPECT_FALSE(parse_trace_line("not json", event, &error));
  EXPECT_FALSE(parse_trace_line("{\"t\":1.0}", event, &error));
  EXPECT_NE(error.find("ev"), std::string::npos);
  EXPECT_FALSE(
      parse_trace_line("{\"ev\":\"warp\",\"t\":1.0}", event, &error));
  EXPECT_NE(error.find("unknown event kind"), std::string::npos);
  // A known kind missing a required field.
  EXPECT_FALSE(
      parse_trace_line("{\"ev\":\"start\",\"t\":1.0,\"job\":3}", event,
                       &error));
  // An unknown kill reason.
  EXPECT_FALSE(parse_trace_line(
      "{\"ev\":\"kill\",\"t\":1.0,\"job\":3,\"procs\":1,\"run\":2.0,"
      "\"reason\":\"boredom\"}",
      event, &error));
}

TEST(ParseTraceLine, DecodesEveryEmittedKind) {
  const TracedCase traced = trace_case(55);
  std::istringstream in(traced.jsonl);
  std::string line;
  std::size_t decoded = 0;
  while (std::getline(in, line)) {
    TraceEvent event;
    std::string error;
    ASSERT_TRUE(parse_trace_line(line, event, &error))
        << error << " in: " << line;
    ++decoded;
  }
  EXPECT_GT(decoded, 2u);
}

}  // namespace
}  // namespace si
