// The property/differential harness (DESIGN.md §7): thousands of seeded
// random simulation cases — every base policy, faults on and off,
// inspectors on and off, backfill on and off — run under the runtime
// invariant oracle, with the trace-replay validator cross-checking each
// traced run. Any failure message embeds the case's one-line description,
// so a single seed reproduces it.
//
// SCHEDINSPECTOR_CHECK_ITERS scales the case count (default 1000; CI can
// lower it, a nightly run can raise it to 10k+). The per-case cost is a
// few dozen jobs, so the default finishes in seconds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "check/generator.hpp"
#include "check/invariant_oracle.hpp"
#include "check/replay.hpp"
#include "common/env.hpp"
#include "common/sink.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"

namespace si {
namespace {

std::uint64_t check_iters() {
  return static_cast<std::uint64_t>(
      env_int("SCHEDINSPECTOR_CHECK_ITERS", 1000));
}

TEST(PropertyHarness, RandomCasesSatisfyEveryInvariant) {
  const std::uint64_t iters = check_iters();
  InvariantOracle oracle;
  std::map<std::string, int> policies_seen;
  std::map<std::string, int> inspectors_seen;
  int faulted = 0;
  int backfilled = 0;
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    const SimCase sim_case = generate_case(seed);
    run_case(sim_case, &oracle);
    ASSERT_TRUE(oracle.ok())
        << "case: " << sim_case.str() << "\n" << oracle.report();
    ++policies_seen[sim_case.policy];
    ++inspectors_seen[inspector_kind_name(sim_case.inspector)];
    if (sim_case.config.faults.enabled) ++faulted;
    if (sim_case.config.backfill) ++backfilled;
  }
  EXPECT_EQ(oracle.runs_checked(), iters);
  // The generator must actually cover the whole configuration space.
  if (iters >= 200) {
    for (const std::string& policy : known_policies())
      EXPECT_GT(policies_seen[policy], 0) << policy << " never drawn";
    for (const char* kind : {"none", "never", "random", "rule", "always"})
      EXPECT_GT(inspectors_seen[kind], 0) << kind << " never drawn";
    EXPECT_GT(faulted, 0);
    EXPECT_GT(backfilled, 0);
  }
}

TEST(PropertyHarness, RandomCasesReplayExactly) {
  // Differential check: the replay validator independently re-derives every
  // traced run's metrics and must agree bit-for-bit. A smaller default than
  // the oracle pass (tracing allocates per event), still hundreds of cases.
  const std::uint64_t iters = std::max<std::uint64_t>(check_iters() / 4, 50);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    const SimCase sim_case = generate_case(seed);
    BufferTracer tracer;
    run_case(sim_case, nullptr, &tracer);
    const ReplayReport report = replay_validate_events(tracer.events());
    ASSERT_TRUE(report.ok())
        << "case: " << sim_case.str() << "\n" << report.str();
    ASSERT_EQ(report.runs.size(), 1u) << sim_case.str();
  }
}

TEST(PropertyHarness, OracleAndTracerComposeWithoutInterference) {
  // Running with oracle + tracer together must yield the same records as
  // running bare: both are pure observers.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const SimCase sim_case = generate_case(seed);
    InvariantOracle oracle;
    BufferTracer tracer;
    const SequenceResult observed = run_case(sim_case, &oracle, &tracer);
    const SequenceResult bare = run_case(sim_case);
    ASSERT_TRUE(oracle.ok()) << sim_case.str() << "\n" << oracle.report();
    ASSERT_EQ(observed.records.size(), bare.records.size());
    for (std::size_t i = 0; i < bare.records.size(); ++i) {
      EXPECT_EQ(observed.records[i].start, bare.records[i].start)
          << sim_case.str();
      EXPECT_EQ(observed.records[i].finish, bare.records[i].finish)
          << sim_case.str();
    }
    EXPECT_EQ(observed.metrics.avg_bsld, bare.metrics.avg_bsld);
    EXPECT_EQ(observed.metrics.utilization, bare.metrics.utilization);
  }
}

TEST(PropertyHarness, DuplicateSeedRunsAreByteIdentical) {
  // Same seed => same case => byte-identical JSONL trace, including under
  // fault injection and inspectors.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    StringSink first_sink;
    StringSink second_sink;
    {
      JsonlTracer tracer(first_sink);
      run_case(generate_case(seed), nullptr, &tracer);
    }
    {
      JsonlTracer tracer(second_sink);
      run_case(generate_case(seed), nullptr, &tracer);
    }
    ASSERT_FALSE(first_sink.str().empty());
    ASSERT_EQ(first_sink.str(), second_sink.str())
        << "seed " << seed << " diverged between identical runs";
  }
}

}  // namespace
}  // namespace si
