// Metamorphic properties of the simulator (DESIGN.md §7): transformations
// of a simulation whose effect on the outcome is known exactly, checked
// over seeded random cases.
//
//   * A never-rejecting inspector is behaviourally identical to running
//     without one — only the inspections counter may differ.
//   * Scaling every time quantity (submit, run, estimate, MAX_INTERVAL) by
//     a power of two c >= 1 leaves every scheduling decision identical
//     (score comparisons scale exactly in IEEE arithmetic) and therefore
//     leaves bounded slowdown and utilization bit-identical — provided all
//     runtimes sit at or above the 10 s bsld threshold, so the bsld
//     denominator scales with the run. Waits and makespans scale by c.
//   * EASY backfilling is work-conserving on average: over a seeded sample
//     of FCFS runs, mean utilization with backfill is at least the mean
//     without. (Deliberately an aggregate claim: per-case counterexamples
//     are real — starting a backfilled job early can reshuffle later
//     completions into a worse packing — at roughly 1 case in 14 in this
//     generator's distribution.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/generator.hpp"
#include "check/invariant_oracle.hpp"
#include "sim/simulator.hpp"

namespace si {
namespace {

/// Strips a case down to the fault-free heuristic core used by the scaling
/// property: no faults (fault timing does not scale), no Slurm (its decay
/// constants are absolute), no rule inspector (its feature scales are
/// absolute). Random/always/never inspectors consume decisions in lockstep
/// and survive scaling.
SimCase scaling_core(SimCase sim_case) {
  sim_case.config.faults = FaultConfig{};
  if (sim_case.policy == "Slurm" || sim_case.policy == "F1")
    sim_case.policy = "SJF";
  if (sim_case.inspector == SimCase::InspectorKind::kRule) {
    sim_case.inspector = SimCase::InspectorKind::kRandom;
    sim_case.reject_prob = 0.5;
  }
  // Lift every runtime to the 10 s bsld threshold so the bounded-slowdown
  // denominator is the (scaled) run on both sides of the transform.
  for (Job& job : sim_case.jobs) {
    job.run = std::max(job.run, 10.0);
    job.estimate = std::max(job.estimate, 10.0);
  }
  return sim_case;
}

SimCase scale_times(SimCase sim_case, double c) {
  for (Job& job : sim_case.jobs) {
    job.submit *= c;
    job.run *= c;
    job.estimate *= c;
  }
  sim_case.config.max_interval *= c;
  return sim_case;
}

TEST(Metamorphic, NeverRejectingInspectorEqualsBasePolicy) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SimCase sim_case = generate_case(seed);
    sim_case.inspector = SimCase::InspectorKind::kNone;
    const SequenceResult base = run_case(sim_case);
    sim_case.inspector = SimCase::InspectorKind::kNever;
    const SequenceResult inspected = run_case(sim_case);

    ASSERT_EQ(base.records.size(), inspected.records.size());
    for (std::size_t i = 0; i < base.records.size(); ++i) {
      EXPECT_EQ(base.records[i].start, inspected.records[i].start)
          << sim_case.str() << " job " << i;
      EXPECT_EQ(base.records[i].finish, inspected.records[i].finish)
          << sim_case.str() << " job " << i;
      EXPECT_EQ(base.records[i].rejections, inspected.records[i].rejections);
      EXPECT_EQ(base.records[i].requeues, inspected.records[i].requeues);
    }
    EXPECT_EQ(base.metrics.avg_wait, inspected.metrics.avg_wait);
    EXPECT_EQ(base.metrics.avg_bsld, inspected.metrics.avg_bsld);
    EXPECT_EQ(base.metrics.max_bsld, inspected.metrics.max_bsld);
    EXPECT_EQ(base.metrics.utilization, inspected.metrics.utilization);
    EXPECT_EQ(base.metrics.makespan, inspected.metrics.makespan);
    EXPECT_EQ(base.metrics.rejections, 0u);
    EXPECT_EQ(inspected.metrics.rejections, 0u);
    // The only allowed difference: the never-rejecting inspector was
    // actually consulted.
    EXPECT_EQ(base.metrics.inspections, 0u);
    EXPECT_GT(inspected.metrics.inspections, 0u) << sim_case.str();
  }
}

TEST(Metamorphic, PowerOfTwoTimeScalingLeavesBsldInvariant) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const SimCase base_case = scaling_core(generate_case(seed));
    const SequenceResult base = run_case(base_case);
    for (const double c : {2.0, 8.0}) {
      const SimCase scaled_case = scale_times(base_case, c);
      const SequenceResult scaled = run_case(scaled_case);
      ASSERT_EQ(base.records.size(), scaled.records.size());
      // Scale-free metrics are bit-identical; time-like metrics scale
      // exactly (power-of-two multiplication only shifts exponents).
      EXPECT_EQ(scaled.metrics.avg_bsld, base.metrics.avg_bsld)
          << base_case.str() << " x" << c;
      EXPECT_EQ(scaled.metrics.max_bsld, base.metrics.max_bsld)
          << base_case.str() << " x" << c;
      EXPECT_EQ(scaled.metrics.utilization, base.metrics.utilization)
          << base_case.str() << " x" << c;
      EXPECT_EQ(scaled.metrics.avg_wait, c * base.metrics.avg_wait)
          << base_case.str() << " x" << c;
      EXPECT_EQ(scaled.metrics.makespan, c * base.metrics.makespan)
          << base_case.str() << " x" << c;
      // Decision-for-decision identical scheduling.
      EXPECT_EQ(scaled.metrics.inspections, base.metrics.inspections);
      EXPECT_EQ(scaled.metrics.rejections, base.metrics.rejections);
      for (std::size_t i = 0; i < base.records.size(); ++i)
        ASSERT_EQ(scaled.records[i].start, c * base.records[i].start)
            << base_case.str() << " x" << c << " job " << i;
    }
  }
}

TEST(Metamorphic, ScalingPreservesBsldOrderingAcrossPolicies) {
  // The weaker, cross-policy form: scaling must not change which policy
  // wins on bsld for a given workload.
  const std::vector<std::string> policies = {"FCFS", "SJF", "SAF", "SQF"};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    SimCase sim_case = scaling_core(generate_case(seed));
    sim_case.inspector = SimCase::InspectorKind::kNone;
    std::vector<double> base_bsld;
    std::vector<double> scaled_bsld;
    for (const std::string& policy : policies) {
      sim_case.policy = policy;
      base_bsld.push_back(run_case(sim_case).metrics.avg_bsld);
      scaled_bsld.push_back(
          run_case(scale_times(sim_case, 4.0)).metrics.avg_bsld);
    }
    for (std::size_t a = 0; a < policies.size(); ++a)
      for (std::size_t b = 0; b < policies.size(); ++b) {
        SCOPED_TRACE(sim_case.str());
        EXPECT_EQ(base_bsld[a] < base_bsld[b],
                  scaled_bsld[a] < scaled_bsld[b])
            << policies[a] << " vs " << policies[b];
      }
  }
}

TEST(Metamorphic, BackfillDoesNotHurtFcfsUtilizationOnAverage) {
  // Aggregate work-conservation: see the file comment for why this is a
  // mean over the sample rather than a per-case inequality.
  double util_on = 0.0;
  double util_off = 0.0;
  const std::uint64_t cases = 200;
  InvariantOracle oracle;
  for (std::uint64_t seed = 0; seed < cases; ++seed) {
    SimCase sim_case = generate_case(seed);
    sim_case.policy = "FCFS";
    sim_case.inspector = SimCase::InspectorKind::kNone;
    sim_case.config.faults = FaultConfig{};
    sim_case.config.backfill = false;
    util_off += run_case(sim_case, &oracle).metrics.utilization;
    sim_case.config.backfill = true;
    util_on += run_case(sim_case, &oracle).metrics.utilization;
  }
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_GE(util_on, util_off);
}

}  // namespace
}  // namespace si
