// Step-API equivalence sweep (DESIGN.md §7, §8): across the generator's
// case space — every policy, backfill on/off, fault injection on/off, all
// inspector kinds, every rejection budget — driving a sequence through the
// resumable SimSession must be bit-identical to the legacy callback path:
// same metrics, same per-job records, byte-identical traces. A second sweep
// checks the batched VecEnv collector against the scalar RL rollout on
// generator-derived workloads for widths {1, 3, 8}.
//
// SCHEDINSPECTOR_CHECK_ITERS scales the case count, as in property_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/generator.hpp"
#include "common/env.hpp"
#include "common/sink.hpp"
#include "core/rollout.hpp"
#include "core/rule_inspector.hpp"
#include "core/vec_env.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/session.hpp"
#include "workload/trace.hpp"

namespace si {
namespace {

std::uint64_t sweep_iters() {
  return std::min<std::uint64_t>(
      static_cast<std::uint64_t>(env_int("SCHEDINSPECTOR_CHECK_ITERS", 1000)),
      400);
}

std::string render_trace(BufferTracer& buffer) {
  StringSink text;
  JsonlTracer out(text);
  buffer.drain_to(out);
  return text.str();
}

void expect_same_result(const SequenceResult& a, const SequenceResult& b,
                        const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.metrics.inspections, b.metrics.inspections);
  EXPECT_EQ(a.metrics.rejections, b.metrics.rejections);
  EXPECT_DOUBLE_EQ(a.metrics.avg_wait, b.metrics.avg_wait);
  EXPECT_DOUBLE_EQ(a.metrics.avg_bsld, b.metrics.avg_bsld);
  EXPECT_DOUBLE_EQ(a.metrics.max_bsld, b.metrics.max_bsld);
  EXPECT_DOUBLE_EQ(a.metrics.utilization, b.metrics.utilization);
  EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.requeues, b.metrics.requeues);
  EXPECT_EQ(a.metrics.kills, b.metrics.kills);
  EXPECT_EQ(a.metrics.wall_kills, b.metrics.wall_kills);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].start, b.records[i].start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.records[i].finish, b.records[i].finish) << "job " << i;
    EXPECT_EQ(a.records[i].rejections, b.records[i].rejections)
        << "job " << i;
    EXPECT_EQ(a.records[i].requeues, b.records[i].requeues) << "job " << i;
  }
}

/// Replays `sim_case` through the step API, mirroring run_case's
/// construction (same policy factory, feature builder, and inspector RNG
/// derivation) but driving the decisions via SimSession instead of the
/// callback adapter.
SequenceResult run_case_stepwise(const SimCase& sim_case, SimTracer* tracer) {
  SimConfig config = sim_case.config;
  config.tracer = tracer;

  Trace trace("generated", sim_case.total_procs, sim_case.jobs);
  PolicyPtr policy = sim_case.policy == "Slurm"
                         ? make_slurm_policy(trace)
                         : make_policy(sim_case.policy);
  FeatureScales scales = FeatureScales::from_trace(trace);
  FeatureBuilder features(FeatureMode::kManual, sim_case.metric, scales,
                          config.max_interval);
  Rng inspector_rng(sim_case.seed ^ 0x1235c70cba5e11feULL);

  NeverRejectInspector never;
  RandomInspector random(sim_case.reject_prob, inspector_rng);
  RuleInspector rule(features);
  AlwaysRejectInspector always;
  Inspector* inspector = nullptr;
  switch (sim_case.inspector) {
    case SimCase::InspectorKind::kNone: inspector = nullptr; break;
    case SimCase::InspectorKind::kNever: inspector = &never; break;
    case SimCase::InspectorKind::kRandom: inspector = &random; break;
    case SimCase::InspectorKind::kRule: inspector = &rule; break;
    case SimCase::InspectorKind::kAlwaysReject: inspector = &always; break;
  }

  Simulator sim(sim_case.total_procs, config);
  SimSession session(sim, sim_case.jobs, *policy,
                     /*inspect=*/inspector != nullptr);
  while (!session.done()) session.step(inspector->reject(session.view()));
  return session.take_result();
}

TEST(StepEquivalence, SessionMatchesCallbackAcrossCaseSpace) {
  const std::uint64_t iters = sweep_iters();
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    const SimCase sim_case = generate_case(seed);

    BufferTracer callback_buffer;
    const SequenceResult via_callback =
        run_case(sim_case, /*oracle=*/nullptr, &callback_buffer);

    BufferTracer session_buffer;
    const SequenceResult via_session =
        run_case_stepwise(sim_case, &session_buffer);

    expect_same_result(via_callback, via_session,
                       "case: " + sim_case.str());
    EXPECT_EQ(render_trace(callback_buffer), render_trace(session_buffer))
        << "case: " << sim_case.str();
  }
}

TEST(StepEquivalence, VecEnvMatchesScalarOnGeneratedCases) {
  constexpr std::uint64_t kCases = 24;
  constexpr std::size_t kSpecsPerCase = 4;
  for (std::uint64_t case_seed = 0; case_seed < kCases; ++case_seed) {
    const SimCase sim_case = generate_case(case_seed);
    Trace trace("generated", sim_case.total_procs, sim_case.jobs);
    PolicyPtr policy = sim_case.policy == "Slurm"
                           ? make_slurm_policy(trace)
                           : make_policy(sim_case.policy);
    FeatureBuilder features(FeatureMode::kManual, sim_case.metric,
                            FeatureScales::from_trace(trace),
                            sim_case.config.max_interval);
    ActorCritic ac(features.feature_count(), {8, 4}, case_seed ^ 0xacULL);
    ac.policy_net().refresh_transpose();

    // Scalar reference: one sampled paired rollout per spec seed.
    std::vector<TrainingRollout> scalar(kSpecsPerCase);
    Simulator sim(sim_case.total_procs, sim_case.config);
    for (std::size_t i = 0; i < kSpecsPerCase; ++i) {
      Rng rng(7000 + i);
      scalar[i] = rollout_training(sim, sim_case.jobs, *policy, ac, features,
                                   sim_case.metric, RewardKind::kPercentage,
                                   rng);
    }

    for (const int width : {1, 3, 8}) {
      std::vector<Trajectory> trajectories(kSpecsPerCase);
      std::vector<RolloutSpec> specs(kSpecsPerCase);
      for (std::size_t i = 0; i < kSpecsPerCase; ++i) {
        specs[i].jobs = &sim_case.jobs;
        specs[i].seed = 7000 + i;
        specs[i].trajectory = &trajectories[i];
      }
      VecEnv env(sim_case.total_procs, sim_case.config, ac, features,
                 *policy, width);
      const std::vector<PairedRollout> batched =
          env.rollout_batch(specs, ActionSelect::kSample);

      for (std::size_t i = 0; i < kSpecsPerCase; ++i) {
        SCOPED_TRACE("case: " + sim_case.str() + " width " +
                     std::to_string(width) + " spec " + std::to_string(i));
        EXPECT_EQ(batched[i].inspected.inspections,
                  scalar[i].inspected.inspections);
        EXPECT_EQ(batched[i].inspected.rejections,
                  scalar[i].inspected.rejections);
        EXPECT_DOUBLE_EQ(batched[i].base.avg_bsld, scalar[i].base.avg_bsld);
        EXPECT_DOUBLE_EQ(batched[i].inspected.avg_bsld,
                         scalar[i].inspected.avg_bsld);
        EXPECT_DOUBLE_EQ(batched[i].inspected.avg_wait,
                         scalar[i].inspected.avg_wait);
        const Trajectory& expected = scalar[i].trajectory;
        ASSERT_EQ(trajectories[i].steps.size(), expected.steps.size());
        for (std::size_t s = 0; s < expected.steps.size(); ++s) {
          EXPECT_EQ(trajectories[i].steps[s].action,
                    expected.steps[s].action)
              << "step " << s;
          EXPECT_DOUBLE_EQ(trajectories[i].steps[s].log_prob,
                           expected.steps[s].log_prob)
              << "step " << s;
        }
      }
    }
  }
}

}  // namespace
}  // namespace si
