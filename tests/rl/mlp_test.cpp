#include "rl/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace si {
namespace {

TEST(Mlp, ParamCountMatchesFormula) {
  // The paper's architecture: 8 inputs, hidden 32/16/8, 1 output.
  Mlp net({8, 32, 16, 8, 1});
  const std::size_t expected = (8 * 32 + 32) + (32 * 16 + 16) +
                               (16 * 8 + 8) + (8 * 1 + 1);
  EXPECT_EQ(net.param_count(), expected);
  EXPECT_EQ(net.param_count(), 961u);
}

TEST(Mlp, LayerAccessors) {
  Mlp net({3, 5, 1});
  EXPECT_EQ(net.input_size(), 3);
  EXPECT_EQ(net.output_size(), 1);
  ASSERT_EQ(net.layer_sizes().size(), 3u);
}

TEST(Mlp, RequiresAtLeastTwoLayers) {
  EXPECT_THROW(Mlp({4}), ContractViolation);
  EXPECT_THROW(Mlp({4, 0, 1}), ContractViolation);
}

TEST(Mlp, ZeroInitGivesZeroOutput) {
  Mlp net({4, 8, 1});
  const std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  const auto y = net.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(Mlp, XavierInitBoundsRespected) {
  Mlp net({8, 32, 1});
  Rng rng(5);
  net.init_xavier(rng);
  const double bound1 = std::sqrt(6.0 / (8 + 32));
  bool any_nonzero = false;
  for (double p : net.params()) {
    EXPECT_LE(std::abs(p), std::max(bound1, std::sqrt(6.0 / 33)) + 1e-12);
    any_nonzero |= p != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Mlp, ForwardIsDeterministic) {
  Mlp net({4, 8, 8, 1});
  Rng rng(7);
  net.init_xavier(rng);
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(net.forward(x)[0], net.forward(x)[0]);
}

TEST(Mlp, InputSizeMismatchThrows) {
  Mlp net({4, 8, 1});
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_THROW(net.forward(x), ContractViolation);
}

TEST(Mlp, OutputBoundedByTanhSaturation) {
  // Hidden activations are in [-1, 1]; the linear output is bounded by
  // sum(|w|) + |b| of the last layer.
  Mlp net({2, 4, 1});
  Rng rng(11);
  net.init_xavier(rng);
  double bound = 0.0;
  const auto params = net.params();
  // last layer offset: (2*4 + 4) weights/biases precede it
  for (std::size_t i = 12; i < params.size(); ++i) bound += std::abs(params[i]);
  for (double a = -100.0; a <= 100.0; a += 25.0) {
    const std::vector<double> x = {a, -a};
    EXPECT_LE(std::abs(net.forward(x)[0]), bound + 1e-9);
  }
}

TEST(Mlp, WorkspaceReuseGivesSameResult) {
  Mlp net({3, 6, 1});
  Rng rng(13);
  net.init_xavier(rng);
  Mlp::Workspace ws;
  const std::vector<double> x1 = {1.0, 2.0, 3.0};
  const std::vector<double> x2 = {-1.0, 0.0, 0.5};
  const double y1 = net.forward(x1, ws)[0];
  const double y2 = net.forward(x2, ws)[0];
  EXPECT_DOUBLE_EQ(y1, net.forward(x1)[0]);
  EXPECT_DOUBLE_EQ(y2, net.forward(x2)[0]);
}

// Property test: backprop gradients match central finite differences for a
// sweep of architectures.
class MlpGradientCheck
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(MlpGradientCheck, BackwardMatchesFiniteDifferences) {
  Mlp net(GetParam());
  Rng rng(17);
  net.init_xavier(rng);

  std::vector<double> x(static_cast<std::size_t>(net.input_size()));
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  // Loss = output[0] (identity), so dL/doutput = 1.
  Mlp::Workspace ws;
  net.forward(x, ws);
  net.zero_grad();
  const double grad_out[1] = {1.0};
  net.backward(ws, grad_out);
  std::vector<double> analytic(net.grads().begin(), net.grads().end());

  constexpr double kEps = 1e-6;
  auto params = net.params();
  for (std::size_t i = 0; i < net.param_count(); i += 7) {  // sample params
    const double saved = params[i];
    params[i] = saved + kEps;
    const double up = net.forward(x)[0];
    params[i] = saved - kEps;
    const double down = net.forward(x)[0];
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5)
        << "param " << i << " of net with " << net.param_count();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MlpGradientCheck,
    ::testing::Values(std::vector<int>{2, 4, 1}, std::vector<int>{3, 8, 4, 1},
                      std::vector<int>{8, 32, 16, 8, 1},
                      std::vector<int>{5, 1}));

TEST(Mlp, GradientsAccumulateAcrossBackwardCalls) {
  Mlp net({2, 3, 1});
  Rng rng(19);
  net.init_xavier(rng);
  const std::vector<double> x = {0.5, -0.5};
  Mlp::Workspace ws;
  net.forward(x, ws);
  net.zero_grad();
  const double g[1] = {1.0};
  net.backward(ws, g);
  std::vector<double> once(net.grads().begin(), net.grads().end());
  net.backward(ws, g);
  for (std::size_t i = 0; i < once.size(); ++i)
    EXPECT_NEAR(net.grads()[i], 2.0 * once[i], 1e-12);
}

TEST(Mlp, ZeroGradClears) {
  Mlp net({2, 3, 1});
  Rng rng(23);
  net.init_xavier(rng);
  Mlp::Workspace ws;
  const std::vector<double> x = {1.0, 1.0};
  net.forward(x, ws);
  const double g[1] = {1.0};
  net.backward(ws, g);
  net.zero_grad();
  for (double v : net.grads()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Mlp, BackwardValidatesGradSize) {
  Mlp net({2, 3, 1});
  Mlp::Workspace ws;
  const std::vector<double> x = {1.0, 1.0};
  net.forward(x, ws);
  const std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW(net.backward(ws, bad), ContractViolation);
}


TEST(Mlp, BackwardIntoExternalBufferMatchesInternal) {
  Mlp net({3, 6, 1});
  Rng rng(29);
  net.init_xavier(rng);
  Mlp::Workspace ws;
  const std::vector<double> x = {0.2, -0.7, 1.1};
  net.forward(x, ws);
  const double g[1] = {1.5};

  net.zero_grad();
  net.backward(ws, g);
  const std::vector<double> internal(net.grads().begin(), net.grads().end());

  std::vector<double> external(net.param_count(), 0.0);
  net.backward_into(ws, g, external);
  for (std::size_t i = 0; i < internal.size(); ++i)
    EXPECT_DOUBLE_EQ(external[i], internal[i]);
}

TEST(Mlp, BackwardIntoValidatesBufferSize) {
  Mlp net({2, 3, 1});
  Mlp::Workspace ws;
  const std::vector<double> x = {1.0, 1.0};
  net.forward(x, ws);
  const double g[1] = {1.0};
  std::vector<double> too_small(3, 0.0);
  EXPECT_THROW(net.backward_into(ws, g, too_small), ContractViolation);
}

TEST(Mlp, SetOutputBiasControlsZeroInputOutput) {
  Mlp net({4, 8, 1});
  Rng rng(31);
  net.init_xavier(rng);
  net.set_output_bias(-2.0);
  // With a zero input, hidden tanh activations are tanh(bias=0) = 0, so the
  // output equals the output bias exactly.
  const std::vector<double> zero(4, 0.0);
  EXPECT_DOUBLE_EQ(net.forward(zero)[0], -2.0);
}

}  // namespace
}  // namespace si
