// Parity tests for the PPO updater's execution modes: the batched kernels
// and the chunked multi-thread reduction are throughput features only —
// every mode must leave bit-identical parameters behind. These tests pin
// the acceptance criterion that switching `use_batched_kernels` or
// `update_threads` can never change training results.
#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace si {
namespace {

// Deterministic rollout batch: observations and stored log-probs derive
// only from the rng seed, so two identically-seeded calls build identical
// batches without touching the agent under test.
RolloutBatch make_fixed_batch(Rng& rng, int episodes, int steps_per_episode) {
  RolloutBatch batch;
  for (int e = 0; e < episodes; ++e) {
    Trajectory traj;
    int rejects = 0;
    for (int s = 0; s < steps_per_episode; ++s) {
      Step step;
      step.obs = {rng.uniform(), rng.uniform()};
      step.action = rng.bernoulli(0.4) ? 1 : 0;
      step.log_prob = bernoulli_log_prob(rng.uniform(-1.0, 1.0), step.action);
      rejects += step.action;
      traj.steps.push_back(std::move(step));
    }
    traj.reward = 2.0 * rejects / steps_per_episode - 1.0;
    batch.add(std::move(traj));
  }
  return batch;
}

std::vector<double> params_of(const ActorCritic& ac) {
  std::vector<double> all(ac.policy_net().params().begin(),
                          ac.policy_net().params().end());
  all.insert(all.end(), ac.value_net().params().begin(),
             ac.value_net().params().end());
  return all;
}

std::vector<double> update_with(const PpoConfig& config, int episodes,
                                int steps_per_episode) {
  ActorCritic ac(2, {8, 8}, 55);
  PpoUpdater updater(ac, config);
  Rng rng(57);
  // Two updates back to back: the second starts from perturbed parameters
  // and non-zero Adam moments, a stricter check than one step from init.
  for (int round = 0; round < 2; ++round) {
    Rng batch_rng(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30)));
    RolloutBatch batch = make_fixed_batch(batch_rng, episodes, steps_per_episode);
    updater.update(batch);
  }
  return params_of(ac);
}

TEST(PpoParity, BatchedKernelsBitIdenticalToScalarPath) {
  PpoConfig scalar;
  scalar.use_batched_kernels = false;
  PpoConfig batched;
  batched.use_batched_kernels = true;

  const std::vector<double> a = update_with(scalar, 24, 8);
  const std::vector<double> b = update_with(batched, 24, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "param " << i;
}

TEST(PpoParity, ThreadCountDoesNotChangeResults) {
  // 64 x 16 = 1024 steps clears the parallel threshold, so the 4-thread
  // run really exercises the strided chunk assignment.
  PpoConfig serial;
  serial.update_threads = 1;
  PpoConfig threaded;
  threaded.update_threads = 4;

  const std::vector<double> a = update_with(serial, 64, 16);
  const std::vector<double> b = update_with(threaded, 64, 16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "param " << i;
}

TEST(PpoParity, ScalarPathAlsoThreadInvariant) {
  // The chunked reduction must be deterministic for the reference path too.
  PpoConfig serial;
  serial.use_batched_kernels = false;
  serial.update_threads = 1;
  PpoConfig threaded;
  threaded.use_batched_kernels = false;
  threaded.update_threads = 3;

  const std::vector<double> a = update_with(serial, 64, 16);
  const std::vector<double> b = update_with(threaded, 64, 16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "param " << i;
}

TEST(PpoParity, RejectsNegativeThreadCount) {
  ActorCritic ac(2, {4}, 1);
  PpoConfig bad;
  bad.update_threads = -1;
  EXPECT_THROW(PpoUpdater(ac, bad), ContractViolation);
}

}  // namespace
}  // namespace si
