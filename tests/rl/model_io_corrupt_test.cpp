// Hardened checkpoint/model loading: hand-corrupted files must fail loudly
// with diagnostics naming the file, the parameter array, and the nature of
// the damage — never deserialize into silent garbage. Companion to
// model_io_test.cpp (round-trip correctness) and the server-side rollback
// tests in tests/serve/server_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "rl/model_io.hpp"

namespace si {
namespace {

class CorruptFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("si_model_io_corrupt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string write_valid_model(const std::string& name) {
    const ActorCritic ac(8, {32, 16, 8}, 42);
    const std::string p = path(name);
    save_model_file(p, ac);
    return p;
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  static void spew(const std::string& p, const std::string& text) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
  }

  /// Loads and returns the error message (fails the test if no throw).
  static std::string load_error(const std::string& p) {
    try {
      load_served_model_file(p);
    } catch (const std::exception& e) {
      return e.what();
    }
    ADD_FAILURE() << "expected " << p << " to fail loading";
    return "";
  }

  std::filesystem::path dir_;
};

TEST_F(CorruptFileTest, MissingFileNamesThePath) {
  const std::string p = path("does_not_exist.model");
  const std::string error = load_error(p);
  EXPECT_NE(error.find(p), std::string::npos) << error;
}

TEST_F(CorruptFileTest, EmptyFileFailsWithHeaderDiagnostic) {
  const std::string p = path("empty.model");
  spew(p, "");
  const std::string error = load_error(p);
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  EXPECT_NE(error.find(p), std::string::npos) << error;
}

TEST_F(CorruptFileTest, GarbageHeaderFailsLoudly) {
  const std::string p = path("garbage.model");
  spew(p, "PK\x03\x04 this is a zip archive, not a model\n");
  const std::string error = load_error(p);
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST_F(CorruptFileTest, TruncatedMidParametersSaysTruncated) {
  const std::string good = write_valid_model("good.model");
  const std::string text = slurp(good);
  const std::string p = path("truncated.model");
  spew(p, text.substr(0, text.size() / 2));
  const std::string error = load_error(p);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_NE(error.find(p), std::string::npos) << error;
}

TEST_F(CorruptFileTest, TruncatedBeforeValueNetNamesTheArray) {
  const std::string good = write_valid_model("good.model");
  const std::string text = slurp(good);
  // Keep roughly the first quarter: inside the policy parameter array.
  const std::string p = path("early_truncation.model");
  spew(p, text.substr(0, text.size() / 4));
  const std::string error = load_error(p);
  EXPECT_NE(error.find("policy"), std::string::npos) << error;
}

TEST_F(CorruptFileTest, WrongShapeCountMismatchIsDiagnosed) {
  const std::string good = write_valid_model("good.model");
  std::string text = slurp(good);
  // The first count line after the layer sizes is the policy parameter
  // count; corrupt it to declare a different architecture's size.
  const std::string needle = "\n961\n";  // 8-32-16-8-1 policy param count
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos) << "fixture drifted from save format";
  text.replace(pos, needle.size(), "\n9999\n");
  const std::string p = path("wrong_shape.model");
  spew(p, text);
  const std::string error = load_error(p);
  EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("9999"), std::string::npos) << error;
}

TEST_F(CorruptFileTest, NonNumericGarbageInParametersFails) {
  const std::string good = write_valid_model("good.model");
  std::string text = slurp(good);
  // Replace a parameter value with text the number parser must choke on.
  const auto pos = text.rfind(" 0.");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, " xx");
  const std::string p = path("garbled.model");
  spew(p, text);
  EXPECT_THROW(load_served_model_file(p), std::runtime_error);
}

TEST_F(CorruptFileTest, CheckpointRoundTripsThroughServedLoader) {
  const ActorCritic ac(8, {32, 16, 8}, 42);
  const std::string p = path("ckpt.model");
  save_checkpoint_file(p, ac, 17);
  int epoch = -1;
  const ActorCritic restored = load_served_model_file(p, &epoch);
  EXPECT_EQ(epoch, 17);
  EXPECT_EQ(restored.obs_size(), 8);
}

TEST_F(CorruptFileTest, PlainModelReportsEpochZero) {
  const std::string p = write_valid_model("plain.model");
  int epoch = -1;
  (void)load_served_model_file(p, &epoch);
  EXPECT_EQ(epoch, 0);
}

TEST(ValidateModel, AcceptsFreshModel) {
  const ActorCritic ac(8, {32, 16, 8}, 7);
  const ModelValidationReport report = validate_model(ac, 8);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.summary().empty());
}

TEST(ValidateModel, RejectsWidthMismatch) {
  const ActorCritic ac(6, {4}, 7);
  const ModelValidationReport report = validate_model(ac, 8);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("8"), std::string::npos)
      << report.summary();
}

TEST(ValidateModel, RejectsNonFiniteParameters) {
  ActorCritic ac(8, {4}, 7);
  ac.policy_net().params()[3] = std::numeric_limits<double>::quiet_NaN();
  const ModelValidationReport report = validate_model(ac);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("finite"), std::string::npos)
      << report.summary();
}

}  // namespace
}  // namespace si
