#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace si {
namespace {

// Builds a contextual-bandit batch: in context A (obs[0]=1) rejecting pays
// +1, in context B (obs[0]=0) rejecting pays -1. The final rewards are
// broadcast per trajectory exactly like SchedInspector's sequence-final
// rewards: a trajectory is "good" when its actions match the context.
RolloutBatch make_bandit_batch(const ActorCritic& ac, Rng& rng, int episodes,
                               int steps_per_episode) {
  RolloutBatch batch;
  for (int e = 0; e < episodes; ++e) {
    Trajectory traj;
    const bool context_a = rng.bernoulli(0.5);
    int correct = 0;
    for (int s = 0; s < steps_per_episode; ++s) {
      Step step;
      step.obs = {context_a ? 1.0 : 0.0, 0.5};
      const SampledAction a = ac.sample(step.obs, rng);
      step.action = a.action;
      step.log_prob = a.log_prob;
      if ((context_a && a.action == 1) || (!context_a && a.action == 0))
        ++correct;
      traj.steps.push_back(std::move(step));
    }
    traj.reward = 2.0 * correct / steps_per_episode - 1.0;  // in [-1, 1]
    batch.add(std::move(traj));
  }
  return batch;
}

TEST(Ppo, LearnsContextualBandit) {
  ActorCritic ac(2, {8, 8}, 42);
  PpoConfig config;
  config.policy_iters = 20;
  config.value_iters = 20;
  PpoUpdater updater(ac, config);
  Rng rng(7);

  for (int epoch = 0; epoch < 30; ++epoch) {
    RolloutBatch batch = make_bandit_batch(ac, rng, 24, 8);
    updater.update(batch);
  }

  const std::vector<double> ctx_a = {1.0, 0.5};
  const std::vector<double> ctx_b = {0.0, 0.5};
  EXPECT_GT(ac.reject_prob(ctx_a), 0.8);
  EXPECT_LT(ac.reject_prob(ctx_b), 0.2);
}

TEST(Ppo, ValueNetworkLearnsReturns) {
  ActorCritic ac(2, {8}, 3);
  PpoConfig config;
  config.value_iters = 400;
  config.policy_iters = 1;
  PpoUpdater updater(ac, config);

  // Returns depend deterministically on the observation.
  RolloutBatch batch;
  for (int i = 0; i < 64; ++i) {
    Trajectory t;
    Step s;
    const double x = (i % 2 == 0) ? 1.0 : 0.0;
    s.obs = {x, 1.0 - x};
    s.action = 0;
    s.log_prob = std::log(0.5);
    t.steps.push_back(std::move(s));
    t.reward = x > 0.5 ? 2.0 : -2.0;
    batch.add(std::move(t));
  }
  updater.update(batch);
  const std::vector<double> hi = {1.0, 0.0};
  const std::vector<double> lo = {0.0, 1.0};
  EXPECT_NEAR(ac.value(hi), 2.0, 0.5);
  EXPECT_NEAR(ac.value(lo), -2.0, 0.5);
}

TEST(Ppo, KlEarlyStoppingBounds) {
  ActorCritic ac(2, {8}, 5);
  PpoConfig config;
  config.policy_iters = 500;  // would overshoot without the KL guard
  config.target_kl = 0.01;
  config.entropy_coef = 0.0;
  PpoUpdater updater(ac, config);
  // A maximally consistent signal: every trajectory rejected and won big,
  // driving the policy hard toward p(reject) = 1 and the KL upward.
  RolloutBatch batch;
  Rng rng(11);
  for (int i = 0; i < 32; ++i) {
    Trajectory t;
    Step s;
    s.obs = {rng.uniform(), rng.uniform()};
    s.action = 1;
    s.log_prob = ac.sample(s.obs, rng).action == 1
                     ? bernoulli_log_prob(0.0, 1)
                     : bernoulli_log_prob(0.0, 1);
    t.steps.push_back(std::move(s));
    t.reward = (i % 4 == 0) ? -1.0 : 1.0;  // mostly wins, some variance
    batch.add(std::move(t));
  }
  const PpoStats stats = updater.update(batch);
  EXPECT_LT(stats.policy_iters_run, 500);
}

TEST(Ppo, EmptyBatchThrows) {
  ActorCritic ac(2, {4}, 1);
  PpoUpdater updater(ac);
  RolloutBatch batch;
  EXPECT_THROW(updater.update(batch), ContractViolation);
}

TEST(Ppo, ObsSizeMismatchThrows) {
  ActorCritic ac(3, {4}, 1);
  PpoUpdater updater(ac);
  RolloutBatch batch;
  Trajectory t;
  Step s;
  s.obs = {1.0};  // wrong width
  s.log_prob = std::log(0.5);
  t.steps.push_back(std::move(s));
  t.reward = 1.0;
  batch.add(std::move(t));
  EXPECT_THROW(updater.update(batch), ContractViolation);
}

TEST(Ppo, RejectsBadConfig) {
  ActorCritic ac(2, {4}, 1);
  PpoConfig bad;
  bad.clip_ratio = 0.0;
  EXPECT_THROW(PpoUpdater(ac, bad), ContractViolation);
  bad = PpoConfig{};
  bad.policy_iters = 0;
  EXPECT_THROW(PpoUpdater(ac, bad), ContractViolation);
}

TEST(Ppo, StatsArePopulated) {
  ActorCritic ac(2, {8}, 9);
  PpoUpdater updater(ac);
  Rng rng(13);
  RolloutBatch batch = make_bandit_batch(ac, rng, 8, 4);
  const PpoStats stats = updater.update(batch);
  EXPECT_GT(stats.policy_iters_run, 0);
  EXPECT_GE(stats.entropy, 0.0);
  EXPECT_LE(stats.entropy, std::log(2.0) + 1e-9);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
}

TEST(Ppo, DeterministicGivenSameInputs) {
  auto run_once = [] {
    ActorCritic ac(2, {8}, 21);
    PpoUpdater updater(ac);
    Rng rng(23);
    RolloutBatch batch = make_bandit_batch(ac, rng, 8, 4);
    updater.update(batch);
    const std::vector<double> obs = {1.0, 0.5};
    return ac.reject_prob(obs);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Ppo, RewardlessBatchLeavesEntropyHigh) {
  // All-zero rewards carry no signal: the policy should stay near-uniform.
  ActorCritic ac(2, {8}, 25);
  PpoUpdater updater(ac);
  Rng rng(27);
  RolloutBatch batch;
  for (int i = 0; i < 16; ++i) {
    Trajectory t;
    Step s;
    s.obs = {rng.uniform(), rng.uniform()};
    const SampledAction a = ac.sample(s.obs, rng);
    s.action = a.action;
    s.log_prob = a.log_prob;
    t.steps.push_back(std::move(s));
    t.reward = 0.0;
    batch.add(std::move(t));
  }
  updater.update(batch);
  const std::vector<double> obs = {0.5, 0.5};
  EXPECT_GT(ac.reject_prob(obs), 0.1);
  EXPECT_LT(ac.reject_prob(obs), 0.9);
}


TEST(Ppo, LargeBatchParallelPathIsDeterministic) {
  // Batches above the parallel threshold exercise the chunked-thread
  // gradient accumulation; fixed chunk reduction order keeps results
  // bit-identical across runs.
  auto run_once = [] {
    ActorCritic ac(2, {8}, 31);
    PpoUpdater updater(ac);
    Rng rng(33);
    RolloutBatch batch = make_bandit_batch(ac, rng, 64, 16);  // 1024 steps
    updater.update(batch);
    const std::vector<double> obs = {1.0, 0.5};
    return ac.reject_prob(obs);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Ppo, NonFiniteBatchFlagsAndPreservesParams) {
  ActorCritic ac(2, {8}, 41);
  PpoUpdater updater(ac);
  const std::vector<double> before(ac.policy_net().params().begin(),
                                   ac.policy_net().params().end());

  // A NaN stored log-prob sends ratio = exp(logp - NaN) = NaN through the
  // surrogate; the updater must flag it and take no optimizer step.
  RolloutBatch batch;
  Trajectory t;
  Step s;
  s.obs = {0.5, 0.5};
  s.action = 1;
  s.log_prob = std::nan("");
  t.steps.push_back(std::move(s));
  t.reward = 1.0;
  batch.add(std::move(t));

  const PpoStats stats = updater.update(batch);
  EXPECT_TRUE(stats.non_finite);
  const auto after = ac.policy_net().params();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]);
}

TEST(Ppo, GradClipKeepsTrainingFiniteAndLearning) {
  ActorCritic ac(2, {8, 8}, 42);
  PpoConfig config;
  config.policy_iters = 20;
  config.value_iters = 20;
  config.max_grad_norm = 0.5;
  PpoUpdater updater(ac, config);
  Rng rng(7);
  for (int epoch = 0; epoch < 30; ++epoch) {
    RolloutBatch batch = make_bandit_batch(ac, rng, 24, 8);
    const PpoStats stats = updater.update(batch);
    EXPECT_FALSE(stats.non_finite);
  }
  for (const double p : ac.policy_net().params())
    EXPECT_TRUE(std::isfinite(p));
  const std::vector<double> ctx_a = {1.0, 0.5};
  const std::vector<double> ctx_b = {0.0, 0.5};
  EXPECT_GT(ac.reject_prob(ctx_a), ac.reject_prob(ctx_b));
}

TEST(Ppo, RejectsNegativeGradClip) {
  ActorCritic ac(2, {4}, 1);
  PpoConfig bad;
  bad.max_grad_norm = -1.0;
  EXPECT_THROW(PpoUpdater(ac, bad), ContractViolation);
}

TEST(Ppo, ResetDropsOptimizerState) {
  // After reset(), an identical update from identical parameters must give
  // identical results — the Adam moments really were cleared.
  ActorCritic ac(2, {8}, 43);
  const std::vector<double> p0(ac.policy_net().params().begin(),
                               ac.policy_net().params().end());
  const std::vector<double> v0(ac.value_net().params().begin(),
                               ac.value_net().params().end());
  PpoUpdater updater(ac);
  Rng rng(45);
  RolloutBatch batch = make_bandit_batch(ac, rng, 8, 4);
  updater.update(batch);
  const std::vector<double> after_first(ac.policy_net().params().begin(),
                                        ac.policy_net().params().end());

  std::copy(p0.begin(), p0.end(), ac.policy_net().params().begin());
  std::copy(v0.begin(), v0.end(), ac.value_net().params().begin());
  updater.reset();
  updater.update(batch);
  const auto after_second = ac.policy_net().params();
  for (std::size_t i = 0; i < after_first.size(); ++i)
    EXPECT_DOUBLE_EQ(after_first[i], after_second[i]);
}

TEST(Ppo, LargeBatchStillLearns) {
  ActorCritic ac(2, {8, 8}, 35);
  PpoConfig config;
  config.policy_iters = 20;
  config.value_iters = 20;
  PpoUpdater updater(ac, config);
  Rng rng(37);
  for (int epoch = 0; epoch < 12; ++epoch) {
    RolloutBatch batch = make_bandit_batch(ac, rng, 48, 16);  // 768 steps
    updater.update(batch);
  }
  const std::vector<double> ctx_a = {1.0, 0.5};
  const std::vector<double> ctx_b = {0.0, 0.5};
  EXPECT_GT(ac.reject_prob(ctx_a), ac.reject_prob(ctx_b));
}

}  // namespace
}  // namespace si
