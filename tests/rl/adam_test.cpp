#include "rl/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace si {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, grad = 2(x - 3).
  std::vector<double> params = {0.0};
  Adam opt(1, AdamConfig{.learning_rate = 0.05});
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> grads = {2.0 * (params[0] - 3.0)};
    opt.step(params, grads);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-3);
}

TEST(Adam, MinimizesMultiDimQuadratic) {
  const std::vector<double> target = {1.0, -2.0, 0.5, 10.0};
  std::vector<double> params(4, 0.0);
  Adam opt(4, AdamConfig{.learning_rate = 0.1});
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> grads(4);
    for (int d = 0; d < 4; ++d) grads[static_cast<std::size_t>(d)] =
        2.0 * (params[static_cast<std::size_t>(d)] -
               target[static_cast<std::size_t>(d)]);
    opt.step(params, grads);
  }
  for (int d = 0; d < 4; ++d)
    EXPECT_NEAR(params[static_cast<std::size_t>(d)],
                target[static_cast<std::size_t>(d)], 1e-2);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  std::vector<double> params = {0.0};
  Adam opt(1, AdamConfig{.learning_rate = 0.01});
  const std::vector<double> grads = {123.0};
  opt.step(params, grads);
  EXPECT_NEAR(std::abs(params[0]), 0.01, 1e-6);
}

TEST(Adam, StepCountAdvancesAndResets) {
  std::vector<double> params = {0.0};
  Adam opt(1);
  const std::vector<double> grads = {1.0};
  EXPECT_EQ(opt.steps_taken(), 0u);
  opt.step(params, grads);
  opt.step(params, grads);
  EXPECT_EQ(opt.steps_taken(), 2u);
  opt.reset();
  EXPECT_EQ(opt.steps_taken(), 0u);
}

TEST(Adam, ResetRestoresFirstStepBehaviour) {
  std::vector<double> p1 = {0.0};
  Adam opt(1, AdamConfig{.learning_rate = 0.01});
  const std::vector<double> grads = {5.0};
  opt.step(p1, grads);
  const double first_step = p1[0];
  opt.reset();
  std::vector<double> p2 = {0.0};
  opt.step(p2, grads);
  EXPECT_DOUBLE_EQ(p2[0], first_step);
}

TEST(Adam, ZeroGradLeavesParamsUnchanged) {
  std::vector<double> params = {1.5};
  Adam opt(1);
  const std::vector<double> grads = {0.0};
  opt.step(params, grads);
  EXPECT_DOUBLE_EQ(params[0], 1.5);
}

TEST(Adam, SizeMismatchThrows) {
  std::vector<double> params = {0.0, 0.0};
  Adam opt(1);
  const std::vector<double> grads = {1.0};
  EXPECT_THROW(opt.step(params, grads), ContractViolation);
}

TEST(Adam, RejectsBadConfig) {
  EXPECT_THROW(Adam(1, AdamConfig{.learning_rate = 0.0}), ContractViolation);
  EXPECT_THROW(Adam(1, AdamConfig{.beta1 = 1.0}), ContractViolation);
  EXPECT_THROW(Adam(1, AdamConfig{.beta2 = -0.1}), ContractViolation);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two coordinates with gradients of wildly different scales should move
  // at comparable speeds (Adam normalizes by RMS).
  std::vector<double> params = {0.0, 0.0};
  Adam opt(2, AdamConfig{.learning_rate = 0.01});
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> grads = {1e-4, 1e4};
    opt.step(params, grads);
  }
  // epsilon slightly damps the tiny-gradient coordinate; they remain within
  // a fraction of a percent of each other.
  EXPECT_NEAR(params[0], params[1], 1e-3);
}

}  // namespace
}  // namespace si
