// Golden equivalence tests for the batched MLP kernels: forward_batch and
// backward_batch must be bit-identical (exact double equality, not
// almost-equal) to the per-sample scalar path across architectures and
// batch sizes, including the blocked-loop remainders. The PPO updater and
// the parallel evaluator lean on this property for determinism, so any
// rounding drift here is a real bug, not test flakiness.
#include "rl/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/fast_math.hpp"

namespace si {
namespace {

std::vector<double> random_inputs(Rng& rng, int batch, int width) {
  std::vector<double> xs(static_cast<std::size_t>(batch) *
                         static_cast<std::size_t>(width));
  for (double& v : xs) v = rng.uniform(-2.0, 2.0);
  return xs;
}

// Architectures x batch sizes. Batches 1..5 cover the four-sample blocked
// loop's remainder lanes (0..3 leftover samples); 17 and 64 cover multiple
// full blocks with and without a remainder.
class MlpBatchEquivalence
    : public ::testing::TestWithParam<std::tuple<std::vector<int>, int>> {};

TEST_P(MlpBatchEquivalence, ForwardBatchBitIdenticalToScalar) {
  const auto& [arch, batch] = GetParam();
  Mlp net(arch);
  Rng rng(101);
  net.init_xavier(rng);
  const std::vector<double> xs = random_inputs(rng, batch, net.input_size());

  net.refresh_transpose();
  Mlp::BatchWorkspace bws;
  net.forward_batch(xs, batch, bws);
  const std::vector<double>& batched = bws.activations.back();
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(batch) *
                                static_cast<std::size_t>(net.output_size()));

  for (int s = 0; s < batch; ++s) {
    const std::span<const double> row(
        xs.data() + static_cast<std::size_t>(s) * net.input_size(),
        static_cast<std::size_t>(net.input_size()));
    const std::vector<double> scalar = net.forward(row);
    for (int o = 0; o < net.output_size(); ++o)
      EXPECT_EQ(scalar[static_cast<std::size_t>(o)],
                batched[static_cast<std::size_t>(s) * net.output_size() + o])
          << "sample " << s << " output " << o;
  }
}

TEST_P(MlpBatchEquivalence, BackwardBatchBitIdenticalToScalar) {
  const auto& [arch, batch] = GetParam();
  Mlp net(arch);
  Rng rng(103);
  net.init_xavier(rng);
  const std::vector<double> xs = random_inputs(rng, batch, net.input_size());
  std::vector<double> gout(static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(net.output_size()));
  for (double& v : gout) v = rng.uniform(-1.0, 1.0);

  net.refresh_transpose();
  Mlp::BatchWorkspace bws;
  net.forward_batch(xs, batch, bws);
  std::vector<double> batched_grads(net.param_count(), 0.0);
  net.backward_batch(bws, gout, batched_grads);

  // Reference: per-sample forward + backward_into accumulated in index
  // order — the exact sequence backward_batch promises to reproduce.
  std::vector<double> scalar_grads(net.param_count(), 0.0);
  Mlp::Workspace ws;
  for (int s = 0; s < batch; ++s) {
    const std::span<const double> row(
        xs.data() + static_cast<std::size_t>(s) * net.input_size(),
        static_cast<std::size_t>(net.input_size()));
    net.forward(row, ws);
    const std::span<const double> g(
        gout.data() + static_cast<std::size_t>(s) * net.output_size(),
        static_cast<std::size_t>(net.output_size()));
    net.backward_into(ws, g, scalar_grads);
  }

  for (std::size_t i = 0; i < net.param_count(); ++i)
    EXPECT_EQ(scalar_grads[i], batched_grads[i]) << "grad " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBatches, MlpBatchEquivalence,
    ::testing::Combine(
        ::testing::Values(std::vector<int>{2, 4, 1},
                          std::vector<int>{3, 8, 4, 1},
                          std::vector<int>{8, 32, 16, 8, 1},
                          std::vector<int>{5, 1}),
        ::testing::Values(1, 2, 3, 4, 5, 17, 64)));

TEST(MlpBatch, WorkspaceReuseAcrossBatchSizesIsExact) {
  // Buffers grow and never shrink; a large batch followed by a small one
  // must still produce exactly the small batch's results.
  Mlp net({4, 8, 2});
  Rng rng(107);
  net.init_xavier(rng);
  net.refresh_transpose();

  Mlp::BatchWorkspace reused;
  const std::vector<double> big = random_inputs(rng, 33, 4);
  net.forward_batch(big, 33, reused);

  const std::vector<double> small = random_inputs(rng, 3, 4);
  net.forward_batch(small, 3, reused);
  Mlp::BatchWorkspace fresh;
  net.forward_batch(small, 3, fresh);
  ASSERT_EQ(reused.batch, fresh.batch);
  for (std::size_t i = 0; i < 3u * 2u; ++i)
    EXPECT_EQ(reused.activations.back()[i], fresh.activations.back()[i]);
}

TEST(MlpBatch, ForwardBatchRequiresFreshTranspose) {
  Mlp net({3, 4, 1});
  Rng rng(109);
  net.init_xavier(rng);
  const std::vector<double> xs = random_inputs(rng, 2, 3);
  Mlp::BatchWorkspace ws;
  // Never refreshed: the kernel must refuse rather than race or read stale
  // weights.
  EXPECT_THROW(net.forward_batch(xs, 2, ws), ContractViolation);

  net.refresh_transpose();
  net.forward_batch(xs, 2, ws);  // fresh: fine

  net.params()[0] += 0.5;  // mutable access invalidates the cache
  EXPECT_THROW(net.forward_batch(xs, 2, ws), ContractViolation);
  net.refresh_transpose();
  net.forward_batch(xs, 2, ws);
}

TEST(MlpBatch, TransposeRefreshTracksParameterEdits) {
  // After an in-place parameter edit + refresh, the batched forward must
  // agree with the scalar forward on the *new* weights.
  Mlp net({2, 3, 1});
  Rng rng(113);
  net.init_xavier(rng);
  net.params()[1] = 0.75;
  net.refresh_transpose();
  const std::vector<double> xs = {0.3, -0.9};
  Mlp::BatchWorkspace ws;
  net.forward_batch(xs, 1, ws);
  EXPECT_EQ(net.forward(xs)[0], ws.activations.back()[0]);
}

TEST(MlpBatch, BatchSizeAndInputWidthValidated) {
  Mlp net({3, 4, 1});
  net.refresh_transpose();
  Mlp::BatchWorkspace ws;
  const std::vector<double> xs(6, 0.0);
  EXPECT_THROW(net.forward_batch(xs, 0, ws), ContractViolation);
  EXPECT_THROW(net.forward_batch(xs, 3, ws), ContractViolation);  // 9 needed
  net.forward_batch(xs, 2, ws);
  const std::vector<double> bad_gout(3, 0.0);  // batch * out = 2
  std::vector<double> grads(net.param_count(), 0.0);
  EXPECT_THROW(net.backward_batch(ws, bad_gout, grads), ContractViolation);
}

TEST(FastTanh, MatchesLibmWithinTolerance) {
  for (double x = -25.0; x <= 25.0; x += 0.0137)
    EXPECT_NEAR(fast_tanh(x), std::tanh(x), 1e-9) << "x = " << x;
}

TEST(FastTanh, SaturatesAndHandlesSpecials) {
  EXPECT_EQ(fast_tanh(0.0), 0.0);
  EXPECT_EQ(fast_tanh(20.0), 1.0);
  EXPECT_EQ(fast_tanh(-20.0), -1.0);
  EXPECT_EQ(fast_tanh(1e300), 1.0);
  EXPECT_EQ(fast_tanh(-1e300), -1.0);
  EXPECT_TRUE(std::isnan(fast_tanh(std::nan(""))));
}

TEST(FastTanh, ExactlyOdd) {
  for (double x = 0.0; x <= 22.0; x += 0.173)
    EXPECT_EQ(fast_tanh(-x), -fast_tanh(x)) << "x = " << x;
}

}  // namespace
}  // namespace si
