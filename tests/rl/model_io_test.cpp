#include "rl/model_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace si {
namespace {

TEST(ModelIo, RoundTripPreservesParameters) {
  ActorCritic original(8, {32, 16, 8}, 77);
  std::stringstream buffer;
  save_model(buffer, original);
  const ActorCritic restored = load_model(buffer);

  ASSERT_EQ(restored.obs_size(), original.obs_size());
  ASSERT_EQ(restored.param_count(), original.param_count());
  const std::vector<double> obs = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  EXPECT_DOUBLE_EQ(restored.reject_prob(obs), original.reject_prob(obs));
  EXPECT_DOUBLE_EQ(restored.value(obs), original.value(obs));
}

TEST(ModelIo, RoundTripBitExactParams) {
  ActorCritic original(3, {4}, 5);
  std::stringstream buffer;
  save_model(buffer, original);
  const ActorCritic restored = load_model(buffer);
  const auto po = original.policy_net().params();
  const auto pr = restored.policy_net().params();
  for (std::size_t i = 0; i < po.size(); ++i) EXPECT_DOUBLE_EQ(po[i], pr[i]);
}

TEST(ModelIo, ArchitectureRestoredFromFile) {
  ActorCritic original(5, {7, 3}, 9);
  std::stringstream buffer;
  save_model(buffer, original);
  const ActorCritic restored = load_model(buffer);
  EXPECT_EQ(restored.policy_net().layer_sizes(),
            (std::vector<int>{5, 7, 3, 1}));
}

TEST(ModelIo, BadHeaderThrows) {
  std::stringstream buffer("not-a-model v1\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(ModelIo, WrongVersionThrows) {
  std::stringstream buffer("schedinspector-model v9\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(ModelIo, TruncatedFileThrows) {
  ActorCritic original(3, {4}, 5);
  std::stringstream buffer;
  save_model(buffer, original);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/model.txt"), std::runtime_error);
}

TEST(ModelIo, FileRoundTrip) {
  ActorCritic original(4, {8}, 33);
  const std::string path = ::testing::TempDir() + "/si_model.txt";
  save_model_file(path, original);
  const ActorCritic restored = load_model_file(path);
  const std::vector<double> obs = {0.9, 0.1, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(restored.reject_prob(obs), original.reject_prob(obs));
}

TEST(ModelIo, AtomicSaveLeavesNoTmpFile) {
  ActorCritic model(4, {8}, 33);
  const std::string path = ::testing::TempDir() + "/si_atomic_model.txt";
  save_model_file(path, model);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ModelIo, SaveRejectsNonFiniteParameters) {
  ActorCritic model(3, {4}, 5);
  model.policy_net().params()[0] = std::nan("");
  std::stringstream buffer;
  try {
    save_model(buffer, model);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("model_io:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
}

TEST(ModelIo, FailedSavePreservesExistingFileAndLeavesNoTmp) {
  const std::string path = ::testing::TempDir() + "/si_preserved_model.txt";
  ActorCritic good(3, {4}, 5);
  save_model_file(path, good);

  ActorCritic bad(3, {4}, 6);
  bad.value_net().params()[0] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(save_model_file(path, bad), std::runtime_error);

  // The rejected write must not have clobbered the good file or left a
  // stray temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const ActorCritic restored = load_model_file(path);
  const auto po = good.policy_net().params();
  const auto pr = restored.policy_net().params();
  for (std::size_t i = 0; i < po.size(); ++i) EXPECT_DOUBLE_EQ(po[i], pr[i]);
}

TEST(ModelIo, LoadRejectsNonFiniteParameters) {
  // Build a syntactically valid payload that smuggles in an inf parameter;
  // the loader must reject it before handing the model to callers.
  ActorCritic model(2, {3}, 7);
  std::stringstream buffer;
  save_model(buffer, model);
  std::string text = buffer.str();
  // Skip header, layer count, layer sizes, and the parameter count: the
  // fifth line starts with the first policy parameter.
  std::size_t pos = 0;
  for (int newline = 0; newline < 4; ++newline)
    pos = text.find('\n', pos) + 1;
  const std::size_t end = text.find(' ', pos);
  text.replace(pos, end - pos, "inf");
  std::stringstream poisoned(text);
  EXPECT_THROW(load_model(poisoned), std::runtime_error);
}

TEST(ModelIo, CheckpointRoundTripPreservesEpochAndParams) {
  ActorCritic model(4, {6}, 21);
  std::stringstream buffer;
  save_checkpoint(buffer, model, 17);
  const ModelCheckpoint restored = load_checkpoint(buffer);
  EXPECT_EQ(restored.epoch, 17);
  const auto po = model.policy_net().params();
  const auto pr = restored.model.policy_net().params();
  ASSERT_EQ(po.size(), pr.size());
  for (std::size_t i = 0; i < po.size(); ++i) EXPECT_DOUBLE_EQ(po[i], pr[i]);
}

TEST(ModelIo, CheckpointFileOverwriteKeepsLatestEpoch) {
  const std::string path = ::testing::TempDir() + "/si_checkpoint.txt";
  ActorCritic model(4, {6}, 21);
  save_checkpoint_file(path, model, 0);
  save_checkpoint_file(path, model, 5);
  EXPECT_EQ(load_checkpoint_file(path).epoch, 5);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ModelIo, CheckpointRejectsModelHeader) {
  ActorCritic model(3, {4}, 5);
  std::stringstream buffer;
  save_model(buffer, model);
  EXPECT_THROW(load_checkpoint(buffer), std::runtime_error);
}

TEST(ModelIo, CheckpointRejectsNegativeEpoch) {
  ActorCritic model(3, {4}, 5);
  std::stringstream buffer;
  EXPECT_THROW(save_checkpoint(buffer, model, -1), std::runtime_error);
}

}  // namespace
}  // namespace si
