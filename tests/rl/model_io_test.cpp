#include "rl/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace si {
namespace {

TEST(ModelIo, RoundTripPreservesParameters) {
  ActorCritic original(8, {32, 16, 8}, 77);
  std::stringstream buffer;
  save_model(buffer, original);
  const ActorCritic restored = load_model(buffer);

  ASSERT_EQ(restored.obs_size(), original.obs_size());
  ASSERT_EQ(restored.param_count(), original.param_count());
  const std::vector<double> obs = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  EXPECT_DOUBLE_EQ(restored.reject_prob(obs), original.reject_prob(obs));
  EXPECT_DOUBLE_EQ(restored.value(obs), original.value(obs));
}

TEST(ModelIo, RoundTripBitExactParams) {
  ActorCritic original(3, {4}, 5);
  std::stringstream buffer;
  save_model(buffer, original);
  const ActorCritic restored = load_model(buffer);
  const auto po = original.policy_net().params();
  const auto pr = restored.policy_net().params();
  for (std::size_t i = 0; i < po.size(); ++i) EXPECT_DOUBLE_EQ(po[i], pr[i]);
}

TEST(ModelIo, ArchitectureRestoredFromFile) {
  ActorCritic original(5, {7, 3}, 9);
  std::stringstream buffer;
  save_model(buffer, original);
  const ActorCritic restored = load_model(buffer);
  EXPECT_EQ(restored.policy_net().layer_sizes(),
            (std::vector<int>{5, 7, 3, 1}));
}

TEST(ModelIo, BadHeaderThrows) {
  std::stringstream buffer("not-a-model v1\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(ModelIo, WrongVersionThrows) {
  std::stringstream buffer("schedinspector-model v9\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(ModelIo, TruncatedFileThrows) {
  ActorCritic original(3, {4}, 5);
  std::stringstream buffer;
  save_model(buffer, original);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/model.txt"), std::runtime_error);
}

TEST(ModelIo, FileRoundTrip) {
  ActorCritic original(4, {8}, 33);
  const std::string path = ::testing::TempDir() + "/si_model.txt";
  save_model_file(path, original);
  const ActorCritic restored = load_model_file(path);
  const std::vector<double> obs = {0.9, 0.1, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(restored.reject_prob(obs), original.reject_prob(obs));
}

}  // namespace
}  // namespace si
