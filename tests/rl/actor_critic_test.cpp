#include "rl/actor_critic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace si {
namespace {

TEST(Sigmoid, MidpointAndSymmetry) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(Sigmoid, ExtremeLogitsAreStable) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(sigmoid(1e308)));
  EXPECT_FALSE(std::isnan(sigmoid(-1e308)));
}

TEST(BernoulliLogProb, MatchesDirectComputation) {
  for (double z : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
    const double p = sigmoid(z);
    EXPECT_NEAR(bernoulli_log_prob(z, 1), std::log(p), 1e-10);
    EXPECT_NEAR(bernoulli_log_prob(z, 0), std::log(1.0 - p), 1e-10);
  }
}

TEST(BernoulliLogProb, StableForExtremeLogits) {
  // log prob of the likely action tends to 0; of the unlikely one, to -z.
  EXPECT_NEAR(bernoulli_log_prob(100.0, 1), 0.0, 1e-12);
  EXPECT_NEAR(bernoulli_log_prob(100.0, 0), -100.0, 1e-6);
  EXPECT_NEAR(bernoulli_log_prob(-100.0, 0), 0.0, 1e-12);
  EXPECT_NEAR(bernoulli_log_prob(-100.0, 1), -100.0, 1e-6);
}

TEST(BernoulliLogProb, InvalidActionThrows) {
  EXPECT_ANY_THROW(bernoulli_log_prob(0.0, 2));
}

TEST(BernoulliEntropy, MaximalAtZeroLogit) {
  EXPECT_NEAR(bernoulli_entropy(0.0), std::log(2.0), 1e-12);
  EXPECT_LT(bernoulli_entropy(1.0), bernoulli_entropy(0.0));
  EXPECT_LT(bernoulli_entropy(-1.0), bernoulli_entropy(0.0));
  EXPECT_NEAR(bernoulli_entropy(50.0), 0.0, 1e-9);
}

TEST(ActorCritic, PaperArchitectureParamCount) {
  ActorCritic ac(8, {32, 16, 8}, 1);
  // 961 parameters per network, policy + value.
  EXPECT_EQ(ac.param_count(), 2u * 961u);
  EXPECT_EQ(ac.obs_size(), 8);
}

TEST(ActorCritic, SampleRespectsPolicyProbability) {
  ActorCritic ac(2, {8}, 3);
  Rng rng(5);
  const std::vector<double> obs = {0.3, 0.7};
  const double p = ac.reject_prob(obs);
  int rejects = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    if (ac.sample(obs, rng).action == 1) ++rejects;
  EXPECT_NEAR(static_cast<double>(rejects) / kN, p, 0.02);
}

TEST(ActorCritic, SampleLogProbConsistentWithProb) {
  ActorCritic ac(2, {8}, 7);
  Rng rng(9);
  const std::vector<double> obs = {0.1, -0.4};
  const double p = ac.reject_prob(obs);
  for (int i = 0; i < 50; ++i) {
    const SampledAction s = ac.sample(obs, rng);
    const double expected = s.action == 1 ? std::log(p) : std::log(1.0 - p);
    EXPECT_NEAR(s.log_prob, expected, 1e-9);
    EXPECT_NEAR(s.prob, p, 1e-12);
  }
}

TEST(ActorCritic, GreedyMatchesProbabilityThreshold) {
  ActorCritic ac(3, {8, 4}, 11);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> obs = {rng.uniform(), rng.uniform(),
                                     rng.uniform()};
    const int greedy = ac.act_greedy(obs);
    const double p = ac.reject_prob(obs);
    EXPECT_EQ(greedy, p > 0.5 ? 1 : 0);
  }
}

TEST(ActorCritic, PolicyAndValueAreIndependentNetworks) {
  ActorCritic ac(2, {4}, 13);
  const std::vector<double> obs = {0.5, 0.5};
  const double v_before = ac.value(obs);
  // Perturb the policy network only.
  for (double& p : ac.policy_net().params()) p += 0.1;
  EXPECT_DOUBLE_EQ(ac.value(obs), v_before);
}

TEST(ActorCritic, SeedReproducibility) {
  ActorCritic a(4, {8}, 99);
  ActorCritic b(4, {8}, 99);
  const std::vector<double> obs = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(a.reject_prob(obs), b.reject_prob(obs));
  EXPECT_DOUBLE_EQ(a.value(obs), b.value(obs));
}

TEST(ActorCritic, DifferentSeedsDiffer) {
  ActorCritic a(4, {8}, 1);
  ActorCritic b(4, {8}, 2);
  const std::vector<double> obs = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NE(a.reject_prob(obs), b.reject_prob(obs));
}

}  // namespace
}  // namespace si
