#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace si {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, VarianceNeedsTwoSamples) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
}

TEST(Quantile, EndpointsAndMidpoint) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, LinearInterpolationBetweenPoints) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Quantile, UnsortedInputIsHandled) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, EmptySampleThrows) {
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
}

TEST(Quantile, OutOfRangeQThrows) {
  EXPECT_THROW(quantile({1.0}, -0.1), ContractViolation);
  EXPECT_THROW(quantile({1.0}, 1.1), ContractViolation);
}

TEST(BoxSummaryTest, KnownFiveNumberSummary) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxSummary b = box_summary(xs);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
  EXPECT_DOUBLE_EQ(b.mean, 5.0);
  EXPECT_EQ(b.count, 9u);
}

TEST(BoxSummaryTest, EmptyThrows) {
  EXPECT_THROW(box_summary({}), ContractViolation);
}

TEST(MeanOf, EmptyIsZero) { EXPECT_DOUBLE_EQ(mean_of({}), 0.0); }

TEST(MeanOf, SimpleAverage) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0, 6.0}), 4.0);
}

TEST(EmaSmooth, AlphaOneIsIdentity) {
  const std::vector<double> xs = {1.0, -2.0, 3.0};
  EXPECT_EQ(ema_smooth(xs, 1.0), xs);
}

TEST(EmaSmooth, SmoothsTowardHistory) {
  const auto out = ema_smooth({0.0, 10.0}, 0.5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(EmaSmooth, FirstValuePassesThrough) {
  const auto out = ema_smooth({42.0}, 0.1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 42.0);
}

TEST(EmaSmooth, BadAlphaThrows) {
  EXPECT_THROW(ema_smooth({1.0}, 0.0), ContractViolation);
  EXPECT_THROW(ema_smooth({1.0}, 1.5), ContractViolation);
}

}  // namespace
}  // namespace si
