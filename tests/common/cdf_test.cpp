#include "common/cdf.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace si {
namespace {

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(0.0), 0.0);
  EXPECT_THROW(cdf.inverse(0.5), ContractViolation);
  EXPECT_THROW(cdf.min(), ContractViolation);
}

TEST(EmpiricalCdf, StepFunctionValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(1.9), 0.0);
}

TEST(EmpiricalCdf, InverseMatchesQuantiles) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 30.0);
}

TEST(EmpiricalCdf, MinMax) {
  EmpiricalCdf cdf({3.0, -1.0, 7.0});
  EXPECT_DOUBLE_EQ(cdf.min(), -1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 7.0);
}

TEST(EmpiricalCdf, CurveIsMonotonic) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal());
  EmpiricalCdf cdf(sample);
  const auto curve = cdf.curve(-4.0, 4.0, 64);
  ASSERT_EQ(curve.size(), 64u);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);
}

TEST(EmpiricalCdf, CurveRequiresTwoPoints) {
  EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.curve(0.0, 1.0, 1), ContractViolation);
}

TEST(KsDistance, IdenticalSamplesAreZero) {
  EmpiricalCdf a({1.0, 2.0, 3.0});
  EmpiricalCdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(KsDistance, DisjointSamplesAreOne) {
  EmpiricalCdf a({1.0, 2.0});
  EmpiricalCdf b({10.0, 20.0});
  EXPECT_NEAR(ks_distance(a, b), 1.0, 1e-9);
}

TEST(KsDistance, SameDistributionIsSmall) {
  Rng rng(9);
  std::vector<double> s1;
  std::vector<double> s2;
  for (int i = 0; i < 4000; ++i) {
    s1.push_back(rng.normal());
    s2.push_back(rng.normal());
  }
  EXPECT_LT(ks_distance(EmpiricalCdf(s1), EmpiricalCdf(s2)), 0.06);
}

TEST(KsDistance, ShiftedDistributionIsLarge) {
  Rng rng(9);
  std::vector<double> s1;
  std::vector<double> s2;
  for (int i = 0; i < 4000; ++i) {
    s1.push_back(rng.normal());
    s2.push_back(rng.normal() + 2.0);
  }
  EXPECT_GT(ks_distance(EmpiricalCdf(s1), EmpiricalCdf(s2)), 0.5);
}

TEST(KsDistance, EmptyVsEmptyIsZeroEmptyVsFullIsOne) {
  EmpiricalCdf empty;
  EmpiricalCdf full({1.0});
  EXPECT_DOUBLE_EQ(ks_distance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance(empty, full), 1.0);
}

TEST(RenderCdfTable, ContainsLabelAndRows) {
  EmpiricalCdf rejected({0.1, 0.2});
  EmpiricalCdf total({0.1, 0.2, 0.3, 0.4});
  const std::string out = render_cdf_table("Waiting Time", rejected, total, 8);
  EXPECT_NE(out.find("Waiting Time"), std::string::npos);
  // Header + 8 data rows.
  std::size_t lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 2u + 8u);
}

TEST(RenderCdfTable, EmptySampleIsGraceful) {
  EmpiricalCdf empty;
  EmpiricalCdf total({1.0});
  const std::string out = render_cdf_table("x", empty, total, 4);
  EXPECT_NE(out.find("empty sample"), std::string::npos);
}

}  // namespace
}  // namespace si
