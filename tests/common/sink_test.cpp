#include "common/sink.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

namespace si {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(StringSink, AccumulatesAndClears) {
  StringSink sink;
  sink.write("hello ");
  sink.write("world");
  EXPECT_EQ(sink.str(), "hello world");
  sink.clear();
  EXPECT_EQ(sink.str(), "");
}

TEST(NullSink, DiscardsEverything) {
  NullSink sink;
  sink.write("dropped");
  sink.flush();
}

TEST(FileSink, WritesToFile) {
  const auto path = std::filesystem::temp_directory_path() / "si_sink_test.txt";
  {
    FileSink sink(path.string());
    EXPECT_EQ(sink.path(), path.string());
    sink.write("line one\n");
    sink.write("line two\n");
    sink.flush();
  }
  EXPECT_EQ(read_file(path), "line one\nline two\n");
  std::filesystem::remove(path);
}

TEST(FileSink, TruncatesByDefaultAppendsOnRequest) {
  const auto path =
      std::filesystem::temp_directory_path() / "si_sink_append_test.txt";
  { FileSink(path.string()).write("first"); }
  { FileSink(path.string()).write("second"); }
  EXPECT_EQ(read_file(path), "second");
  { FileSink(path.string(), /*append=*/true).write("+more"); }
  EXPECT_EQ(read_file(path), "second+more");
  std::filesystem::remove(path);
}

TEST(FileSink, ThrowsWhenUnopenable) {
  EXPECT_THROW(FileSink("/nonexistent-dir-si-test/out.txt"),
               std::runtime_error);
}

TEST(StandardSinks, AreStableSingletons) {
  EXPECT_EQ(&stdout_sink(), &stdout_sink());
  EXPECT_EQ(&stderr_sink(), &stderr_sink());
  EXPECT_NE(&stdout_sink(), &stderr_sink());
}

}  // namespace
}  // namespace si
