#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace si {
namespace {

TEST(Env, StringFallbackWhenUnset) {
  ::unsetenv("SI_TEST_VAR");
  EXPECT_EQ(env_string("SI_TEST_VAR", "fallback"), "fallback");
}

TEST(Env, StringReadsValue) {
  ::setenv("SI_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("SI_TEST_VAR", "fallback"), "hello");
  ::unsetenv("SI_TEST_VAR");
}

TEST(Env, EmptyStringUsesFallback) {
  ::setenv("SI_TEST_VAR", "", 1);
  EXPECT_EQ(env_string("SI_TEST_VAR", "fb"), "fb");
  ::unsetenv("SI_TEST_VAR");
}

TEST(Env, IntFallbackWhenUnset) {
  ::unsetenv("SI_TEST_INT");
  EXPECT_EQ(env_int("SI_TEST_INT", 99), 99);
}

TEST(Env, IntParsesValue) {
  ::setenv("SI_TEST_INT", "-42", 1);
  EXPECT_EQ(env_int("SI_TEST_INT", 0), -42);
  ::unsetenv("SI_TEST_INT");
}

TEST(Env, IntUnparsableUsesFallback) {
  ::setenv("SI_TEST_INT", "notanumber", 1);
  EXPECT_EQ(env_int("SI_TEST_INT", 7), 7);
  ::unsetenv("SI_TEST_INT");
}

TEST(Env, FullScaleRunFlag) {
  ::unsetenv("SCHEDINSPECTOR_FULL");
  EXPECT_FALSE(full_scale_run());
  ::setenv("SCHEDINSPECTOR_FULL", "1", 1);
  EXPECT_TRUE(full_scale_run());
  ::setenv("SCHEDINSPECTOR_FULL", "0", 1);
  EXPECT_FALSE(full_scale_run());
  ::unsetenv("SCHEDINSPECTOR_FULL");
}

TEST(Env, BenchScaleFastVsFull) {
  ::unsetenv("SCHEDINSPECTOR_FULL");
  const BenchScale fast = bench_scale();
  ::setenv("SCHEDINSPECTOR_FULL", "1", 1);
  const BenchScale full = bench_scale();
  ::unsetenv("SCHEDINSPECTOR_FULL");
  EXPECT_LT(fast.epochs, full.epochs);
  EXPECT_LT(fast.trajectories, full.trajectories);
  EXPECT_EQ(full.trajectories, 100);   // paper batch size
  EXPECT_EQ(full.sequence_length, 128);  // paper trajectory length
  EXPECT_EQ(full.eval_sequences, 50);
  EXPECT_EQ(full.eval_length, 256);
}

TEST(Env, BenchSeedDefaultAndOverride) {
  ::unsetenv("SCHEDINSPECTOR_SEED");
  EXPECT_EQ(bench_seed(), 42u);
  ::setenv("SCHEDINSPECTOR_SEED", "123", 1);
  EXPECT_EQ(bench_seed(), 123u);
  ::unsetenv("SCHEDINSPECTOR_SEED");
}

}  // namespace
}  // namespace si
