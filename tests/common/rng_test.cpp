#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace si {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(13);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShifts) {
  Rng rng(17);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  constexpr int kN = 200000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

struct GammaParams {
  double shape;
  double scale;
};

class GammaMoments : public ::testing::TestWithParam<GammaParams> {};

TEST_P(GammaMoments, MeanAndVarianceMatchTheory) {
  const auto [shape, scale] = GetParam();
  Rng rng(23);
  constexpr int kN = 300000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.03 * shape * scale + 0.01);
  EXPECT_NEAR(var, shape * scale * scale,
              0.1 * shape * scale * scale + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMoments,
                         ::testing::Values(GammaParams{0.5, 1.0},
                                           GammaParams{1.0, 2.0},
                                           GammaParams{4.2, 0.94},
                                           GammaParams{10.23, 75.0},
                                           GammaParams{312.0, 0.03}));

TEST(Rng, GammaRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(rng.gamma(0.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.gamma(1.0, 0.0), ContractViolation);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(29);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace si
