#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace si {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(22.125, 3);
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.125"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.row().cell("x").cell("y");
  t.row().cell("longer").cell("z");
  const std::string out = t.render();
  // Every line should place the separator at the same column.
  std::vector<std::size_t> bars;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = out.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = out.substr(start, nl - start);
    if (line.find('|') != std::string::npos)
      bars.push_back(line.find('|'));
    start = nl + 1;
  }
  ASSERT_GE(bars.size(), 3u);
  for (std::size_t b : bars) EXPECT_EQ(b, bars.front());
}

TEST(TextTable, IntegerCells) {
  TextTable t({"n"});
  t.row().cell(42);
  t.row().cell(static_cast<std::size_t>(7));
  t.row().cell(static_cast<long long>(-3));
  const std::string out = t.render();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("-3"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(TextTable, CsvEscapesCommasAndQuotes) {
  TextTable t({"a", "b"});
  t.row().cell("x,y").cell("he said \"hi\"");
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvPlainCellsUnquoted) {
  TextTable t({"a"});
  t.row().cell("plain");
  EXPECT_NE(t.render_csv().find("plain\n"), std::string::npos);
  EXPECT_EQ(t.render_csv().find("\"plain\""), std::string::npos);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(TextTable, CellWithoutRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.cell("x"), ContractViolation);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"a"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), ContractViolation);
}

TEST(TextTable, ShortRowsRenderPadded) {
  TextTable t({"a", "b"});
  t.row().cell("only");
  EXPECT_NO_THROW(t.render());
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

TEST(FormatPercent, SignedOutput) {
  EXPECT_EQ(format_percent(0.0123, 2), "+1.23%");
  EXPECT_EQ(format_percent(-0.005, 2), "-0.50%");
}

}  // namespace
}  // namespace si
