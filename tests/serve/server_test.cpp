// End-to-end tests of the inspection server over loopback TCP. Every
// server binds port 0 (kernel-assigned), so tests are parallel-safe.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch_inference.hpp"
#include "rl/model_io.hpp"
#include "serve/client.hpp"

namespace si::serve {
namespace {

std::shared_ptr<ServedModel> make_model(std::uint64_t seed = 7,
                                        int obs = 8) {
  return std::make_shared<ServedModel>(ActorCritic(obs, {32, 16, 8}, seed),
                                       "in-process", 0);
}

/// A model whose parameters are all NaN — passes nothing, used with
/// publish_model(validate=false) to exercise the runtime-fault rollback.
std::shared_ptr<ServedModel> make_broken_model(int obs = 8) {
  auto model = make_model(1, obs);
  for (double& p : model->ac.policy_net().params())
    p = std::numeric_limits<double>::quiet_NaN();
  return model;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("si_serve_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

TEST(Server, ModelDecisionMatchesDirectInference) {
  ServerConfig config;
  Server server(config);
  auto model = make_model();
  const ActorCritic reference = model->ac;  // copy before moving in
  ASSERT_TRUE(server.publish_model(std::move(model)).ok);
  server.start();

  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const std::vector<double> features = {0.1, 0.9, 0.3, 0.0,
                                        0.2, 0.55, 1.0, 0.4};
  const auto reply = client.decide(features, 17);
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->request_id, 17u);
  EXPECT_EQ(reply->status, ReplyStatus::kOk);
  EXPECT_EQ(reply->source, DecisionSource::kModel);
  EXPECT_EQ(reply->epoch, 1u);

  // The served decision is the same batched kernel VecEnv uses; compare
  // bit-for-bit against a direct PolicyBatch forward of the same row.
  reference.policy_net().refresh_transpose();
  PolicyBatch batch(8);
  batch.push_row(features);
  const double logit = batch.infer(reference.policy_net())[0];
  EXPECT_EQ(reply->reject, logit > 0.0 ? 1 : 0);
  EXPECT_DOUBLE_EQ(reply->prob, sigmoid(logit));
  server.stop();
}

TEST(Server, CoalescesConcurrentClients) {
  ServerConfig config;
  config.max_wait_us = 2000;  // generous linger so rows actually coalesce
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();

  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!connect_with_backoff(client, config.host, server.port())) {
        ++failures;
        return;
      }
      std::vector<double> features(8, 0.25 + 0.1 * c);
      for (int r = 0; r < kRequests; ++r) {
        const auto reply = client.decide(features, r);
        if (!reply || reply->status != ReplyStatus::kOk) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto& stats = server.stats();
  EXPECT_EQ(stats.decisions_model.load(), kClients * kRequests);
  // Coalescing must have batched at least some rows together.
  EXPECT_LT(stats.batches.load(), stats.batched_rows.load());
  server.stop();
}

TEST(Server, NoModelServesDegradedRuleDecision) {
  ServerConfig config;
  Server server(config);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto reply = client.decide(std::vector<double>(8, 0.5));
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->status, ReplyStatus::kDegraded);
  EXPECT_EQ(reply->reason, DegradedReason::kNoModel);
  EXPECT_EQ(reply->source, DecisionSource::kRule);
  EXPECT_EQ(reply->epoch, 0u);
  server.stop();
}

TEST(Server, WrongFeatureWidthGetsErrorReplyNotDisconnect) {
  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto bad = client.decide(std::vector<double>(3, 0.5), 1);
  ASSERT_TRUE(bad.has_value()) << client.error();
  EXPECT_EQ(bad->status, ReplyStatus::kError);
  // The connection survives: a correct request still works.
  const auto good = client.decide(std::vector<double>(8, 0.5), 2);
  ASSERT_TRUE(good.has_value()) << client.error();
  EXPECT_EQ(good->status, ReplyStatus::kOk);
  EXPECT_EQ(server.stats().bad_requests.load(), 1u);
  server.stop();
}

TEST(Server, DeadlineExceededIsExplicit) {
  ServerConfig config;
  // Make the coalescer linger far past the request deadline so expiry is
  // deterministic: a 1 ms deadline inside a 300 ms linger always misses
  // (a second request would flush earlier, but there is only one).
  config.max_wait_us = 300000;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto reply =
      client.decide(std::vector<double>(8, 0.5), 1, /*deadline_ms=*/1);
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->status, ReplyStatus::kDeadlineExceeded);
  EXPECT_EQ(reply->source, DecisionSource::kRule);  // best-effort decision
  EXPECT_EQ(server.stats().deadline_exceeded_total.load(), 1u);
  server.stop();
}

TEST(Server, HotSwapOverTheWire) {
  TempDir dir;
  const std::string model_a = dir.file("a.model");
  const std::string model_b = dir.file("b.model");
  save_model_file(model_a, make_model(11)->ac);
  save_checkpoint_file(model_b, make_model(22)->ac, 13);

  ServerConfig config;
  Server server(config);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));

  const auto swap_a = client.swap(model_a);
  ASSERT_TRUE(swap_a.has_value()) << client.error();
  EXPECT_EQ(swap_a->ok, 1);
  EXPECT_EQ(swap_a->epoch, 1u);

  const auto decided = client.decide(std::vector<double>(8, 0.5));
  ASSERT_TRUE(decided.has_value());
  EXPECT_EQ(decided->status, ReplyStatus::kOk);
  EXPECT_EQ(decided->epoch, 1u);

  // Checkpoints hot-swap through the same door as plain models.
  const auto swap_b = client.swap(model_b);
  ASSERT_TRUE(swap_b.has_value());
  EXPECT_EQ(swap_b->ok, 1);
  EXPECT_EQ(swap_b->epoch, 2u);
  server.stop();
}

TEST(Server, RejectedSwapKeepsLastGoodServing) {
  TempDir dir;
  const std::string good_path = dir.file("good.model");
  const std::string corrupt_path = dir.file("corrupt.model");
  save_model_file(good_path, make_model(11)->ac);
  {
    // Hand-truncate a valid model file mid-parameters.
    std::string text;
    {
      std::FILE* in = std::fopen(good_path.c_str(), "rb");
      ASSERT_NE(in, nullptr);
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, n);
      std::fclose(in);
    }
    std::FILE* out = std::fopen(corrupt_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(text.data(), 1, text.size() / 2, out);
    std::fclose(out);
  }

  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.swap_from_file(good_path).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));

  const auto swap = client.swap(corrupt_path);
  ASSERT_TRUE(swap.has_value()) << client.error();
  EXPECT_EQ(swap->ok, 0);
  EXPECT_FALSE(swap->message.empty());
  EXPECT_NE(swap->message.find("keeping last-good model"), std::string::npos)
      << swap->message;
  EXPECT_EQ(swap->epoch, 1u);  // unchanged

  // The original model still answers.
  const auto reply = client.decide(std::vector<double>(8, 0.5));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, ReplyStatus::kOk);
  EXPECT_EQ(reply->epoch, 1u);
  EXPECT_EQ(server.stats().swaps_failed.load(), 1u);
  server.stop();
}

TEST(Server, RuntimeFaultRollsBackToLastGood) {
  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model(11)).ok);  // epoch 1
  // Sneak a NaN-parameter model past validation (test-only door): epoch 2.
  ASSERT_TRUE(server.publish_model(make_broken_model(), false).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));

  const auto faulted = client.decide(std::vector<double>(8, 0.5), 1);
  ASSERT_TRUE(faulted.has_value()) << client.error();
  EXPECT_EQ(faulted->status, ReplyStatus::kDegraded);
  EXPECT_EQ(faulted->reason, DegradedReason::kInferenceFault);
  EXPECT_EQ(faulted->source, DecisionSource::kRule);

  // The slot rolled back: the next decision comes from the good model.
  const auto recovered = client.decide(std::vector<double>(8, 0.5), 2);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->status, ReplyStatus::kOk);
  EXPECT_EQ(recovered->source, DecisionSource::kModel);
  EXPECT_EQ(recovered->epoch, 3u);  // publish, publish, rollback
  EXPECT_EQ(server.stats().inference_faults.load(), 1u);
  server.stop();
}

TEST(Server, QueueSaturationShedsWithDegradedReply) {
  ServerConfig config;
  config.queue_capacity = 1;
  config.max_wait_us = 100000;  // hold the first admitted request in linger
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));

  // Pipeline a burst without reading: only one fits the queue, the rest
  // must be shed inline with degraded replies — never dropped.
  constexpr int kBurst = 12;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    DecisionRequest request;
    request.request_id = static_cast<std::uint64_t>(i);
    request.features.assign(8, 0.5);
    burst += encode_decision_request(request);
  }
  ASSERT_TRUE(client.send_raw(burst));
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value()) << client.error();
    DecisionReply reply;
    ASSERT_TRUE(decode_decision_reply(frame->payload, reply));
    if (reply.status == ReplyStatus::kDegraded &&
        reply.reason == DegradedReason::kQueueSaturated)
      ++shed;
  }
  EXPECT_GE(shed, 1);
  EXPECT_EQ(server.stats().shed_total.load(),
            static_cast<std::uint64_t>(shed));
  server.stop();
}

TEST(Server, StatsFrameExposesHealth) {
  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  ASSERT_TRUE(client.decide(std::vector<double>(8, 0.5)).has_value());
  const auto json = client.stats_json();
  ASSERT_TRUE(json.has_value()) << client.error();
  for (const char* key :
       {"serve.requests_total", "serve.decisions_model", "serve.queue_depth",
        "serve.model_epoch", "serve.p50_latency_us", "serve.p99_latency_us",
        "serve.latency_us", "serve.decisions_degraded"})
    EXPECT_NE(json->find(key), std::string::npos) << key << "\n" << *json;
  server.stop();
}

TEST(Server, StopDrainsAdmittedRequests) {
  ServerConfig config;
  config.max_wait_us = 50000;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  // Admit a request that will sit in the coalescer linger, then stop: the
  // drain must flush its reply before the server exits.
  DecisionRequest request;
  request.request_id = 5;
  request.features.assign(8, 0.5);
  ASSERT_TRUE(client.send_raw(encode_decision_request(request)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread stopper([&] { server.stop(); });
  const auto frame = client.read_frame();
  stopper.join();
  ASSERT_TRUE(frame.has_value()) << client.error();
  DecisionReply reply;
  ASSERT_TRUE(decode_decision_reply(frame->payload, reply));
  EXPECT_EQ(reply.request_id, 5u);
}

TEST(Server, RequestStopIsSignalSafeTrigger) {
  ServerConfig config;
  Server server(config);
  server.start();
  EXPECT_FALSE(server.draining());
  server.request_stop();  // what a SIGINT/SIGTERM handler calls
  EXPECT_TRUE(server.draining());
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Server, RefusesConnectionsBeyondCap) {
  ServerConfig config;
  config.max_connections = 2;
  Server server(config);
  server.start();
  ServeClient a;
  ServeClient b;
  ASSERT_TRUE(connect_with_backoff(a, config.host, server.port()));
  ASSERT_TRUE(connect_with_backoff(b, config.host, server.port()));
  // Force both accepts through before the third connects.
  ASSERT_TRUE(a.stats_json().has_value());
  ASSERT_TRUE(b.stats_json().has_value());
  ServeClient c;
  bool refused = false;
  if (!c.connect(config.host, server.port())) {
    refused = true;  // kernel-level refusal
  } else {
    // Accepted by the kernel but closed by the server: the first read fails.
    c.send_raw(encode_stats_request());
    refused = !c.read_frame().has_value();
  }
  EXPECT_TRUE(refused);
  EXPECT_GE(server.stats().connections_refused.load(), 1u);
  server.stop();
}

}  // namespace
}  // namespace si::serve
