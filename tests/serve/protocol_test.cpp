#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace si::serve {
namespace {

Frame must_parse(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes);
  const auto frame = reader.next();
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(frame.has_value());
  return frame.value_or(Frame{});
}

TEST(Protocol, DecisionRequestRoundTrip) {
  DecisionRequest request;
  request.request_id = 0x1122334455667788ULL;
  request.deadline_ms = 250;
  request.features = {0.0, -1.5, 3.25, 1e-300, 1e300};
  const Frame frame = must_parse(encode_decision_request(request));
  EXPECT_EQ(frame.type, FrameType::kDecisionRequest);
  DecisionRequest decoded;
  ASSERT_TRUE(decode_decision_request(frame.payload, decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.features, request.features);
}

TEST(Protocol, FeaturesRoundTripExactBits) {
  // The degraded-equivalence guarantee rides on doubles surviving the wire
  // bit-for-bit — including NaNs with payload bits, infinities, subnormals,
  // and negative zero.
  const std::vector<std::uint64_t> patterns = {
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::quiet_NaN()),
      0x7ff0000000000001ULL,  // signaling-NaN bit pattern
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity()),
      std::bit_cast<std::uint64_t>(-0.0),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::denorm_min()),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::max()),
  };
  DecisionRequest request;
  for (const std::uint64_t bits : patterns)
    request.features.push_back(std::bit_cast<double>(bits));
  const Frame frame = must_parse(encode_decision_request(request));
  DecisionRequest decoded;
  ASSERT_TRUE(decode_decision_request(frame.payload, decoded));
  ASSERT_EQ(decoded.features.size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.features[i]), patterns[i])
        << "feature " << i;
}

TEST(Protocol, DecisionReplyRoundTrip) {
  DecisionReply reply;
  reply.request_id = 42;
  reply.reject = 1;
  reply.status = ReplyStatus::kDegraded;
  reply.reason = DegradedReason::kQueueSaturated;
  reply.source = DecisionSource::kRule;
  reply.prob = 0.875;
  reply.epoch = 7;
  const Frame frame = must_parse(encode_decision_reply(reply));
  EXPECT_EQ(frame.type, FrameType::kDecisionReply);
  DecisionReply decoded;
  ASSERT_TRUE(decode_decision_reply(frame.payload, decoded));
  EXPECT_EQ(decoded.request_id, reply.request_id);
  EXPECT_EQ(decoded.reject, reply.reject);
  EXPECT_EQ(decoded.status, reply.status);
  EXPECT_EQ(decoded.reason, reply.reason);
  EXPECT_EQ(decoded.source, reply.source);
  EXPECT_DOUBLE_EQ(decoded.prob, reply.prob);
  EXPECT_EQ(decoded.epoch, reply.epoch);
}

TEST(Protocol, SwapRoundTrip) {
  SwapRequest request;
  request.path = "/tmp/some model.txt";
  const Frame req_frame = must_parse(encode_swap_request(request));
  SwapRequest decoded_req;
  ASSERT_TRUE(decode_swap_request(req_frame.payload, decoded_req));
  EXPECT_EQ(decoded_req.path, request.path);

  SwapReply reply;
  reply.ok = 0;
  reply.epoch = 3;
  reply.message = "validation failed: policy parameter 12 is not finite";
  const Frame rep_frame = must_parse(encode_swap_reply(reply));
  SwapReply decoded_rep;
  ASSERT_TRUE(decode_swap_reply(rep_frame.payload, decoded_rep));
  EXPECT_EQ(decoded_rep.ok, reply.ok);
  EXPECT_EQ(decoded_rep.epoch, reply.epoch);
  EXPECT_EQ(decoded_rep.message, reply.message);
}

TEST(Protocol, ReaderReassemblesByteAtATime) {
  DecisionRequest request;
  request.request_id = 9;
  request.features = {1.0, 2.0, 3.0};
  const std::string bytes =
      encode_decision_request(request) + encode_stats_request();
  FrameReader reader;
  std::vector<Frame> frames;
  for (const char c : bytes) {
    reader.feed(std::string_view(&c, 1));
    while (auto frame = reader.next()) frames.push_back(*std::move(frame));
  }
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kDecisionRequest);
  EXPECT_EQ(frames[1].type, FrameType::kStatsRequest);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Protocol, ReaderLatchesOnBadMagic) {
  FrameReader reader;
  reader.feed("ABCDEFGHIJKLMNOP");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), "bad frame magic");
  // Latched: even a valid frame afterwards is discarded.
  reader.feed(encode_stats_request());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(Protocol, ReaderRejectsUnknownType) {
  std::string bytes = encode_stats_request();
  bytes[4] = static_cast<char>(99);
  FrameReader reader;
  reader.feed(bytes);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("unknown frame type"), std::string::npos);
}

TEST(Protocol, ReaderRejectsOversizedLengthWithoutBuffering) {
  // A hostile length prefix must be rejected from the header alone — the
  // reader never waits for (or allocates) the claimed payload.
  std::string header;
  header.push_back('\x31');  // kFrameMagic little-endian: "1NIS"
  header.push_back('N');
  header.push_back('I');
  header.push_back('S');
  header.push_back(static_cast<char>(FrameType::kDecisionRequest));
  header.append(3, '\0');
  const std::uint32_t huge = 0x7fffffff;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  FrameReader reader;
  reader.feed(header);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("oversized frame"), std::string::npos);
}

TEST(Protocol, ReaderWaitsForPartialPayload) {
  const std::string bytes = encode_stats_reply("{\"ok\":true}");
  FrameReader reader;
  reader.feed(bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.ok());  // incomplete, not malformed
  reader.feed(bytes.substr(bytes.size() - 1));
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "{\"ok\":true}");
}

TEST(Protocol, DecodeRejectsTruncatedAndTrailingPayloads) {
  DecisionRequest request;
  request.features = {1.0, 2.0};
  const Frame frame = must_parse(encode_decision_request(request));
  DecisionRequest decoded;
  EXPECT_TRUE(decode_decision_request(frame.payload, decoded));
  EXPECT_FALSE(decode_decision_request(
      std::string_view(frame.payload).substr(0, frame.payload.size() - 1),
      decoded));
  EXPECT_FALSE(decode_decision_request(frame.payload + "x", decoded));
  EXPECT_FALSE(decode_decision_request("", decoded));
}

TEST(Protocol, DecodeRejectsHostileFeatureCount) {
  // Claimed count far beyond the payload: must fail before resizing.
  std::string payload;
  for (int i = 0; i < 12; ++i) payload.push_back('\0');  // id + deadline
  const std::uint32_t huge = 0x40000000;
  for (int i = 0; i < 4; ++i)
    payload.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  DecisionRequest decoded;
  EXPECT_FALSE(decode_decision_request(payload, decoded));
}

}  // namespace
}  // namespace si::serve
