// Observability tests for the serving daemon (DESIGN.md §10): the
// Prometheus side port, the rolling-window stats section, and the
// request-scoped span pipeline — including the exact decomposition
// contract serve.request = serve.admit + serve.queue_wait +
// serve.inference. Every server binds port 0, so tests are parallel-safe.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace si::serve {
namespace {

std::shared_ptr<ServedModel> make_model(std::uint64_t seed = 7,
                                        int obs = 8) {
  return std::make_shared<ServedModel>(ActorCritic(obs, {32, 16, 8}, seed),
                                       "in-process", 0);
}

/// Round-trips one raw HTTP/1.0 request against `port` and returns the
/// full response (headers + body); empty string on connect failure.
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(Observability, MetricsEndpointServesPrometheusText) {
  ServerConfig config;
  config.metrics_port = 0;  // kernel-assigned
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ASSERT_GT(server.metrics_port(), 0);

  // Drive one real decision so the counters are warm.
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  ASSERT_TRUE(
      client.decide({0.1, 0.9, 0.3, 0.0, 0.2, 0.5, 1.0, 0.4}, 1).has_value());

  const std::string response = http_request(
      server.metrics_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  for (const char* metric :
       {"serve_replies_total", "serve_requests_total",
        "serve_latency_us_bucket", "serve_latency_us_count",
        "serve_window_latency_us_bucket", "serve_window_req_per_s",
        "serve_queue_wait_us_count", "serve_infer_us_count",
        "serve_http_requests"}) {
    EXPECT_NE(response.find(metric), std::string::npos) << metric;
  }
  server.stop();
}

TEST(Observability, HttpSidePortStatusCodes) {
  ServerConfig config;
  config.metrics_port = 0;
  Server server(config);
  server.start();
  const int port = server.metrics_port();
  ASSERT_GT(port, 0);

  EXPECT_EQ(http_request(port, "GET /healthz HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 200 OK\r\n", 0),
            0u);
  EXPECT_EQ(http_request(port, "GET /nosuch HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 404 Not Found\r\n", 0),
            0u);
  EXPECT_EQ(http_request(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405 Method Not Allowed\r\n", 0),
            0u);
  // Query strings are stripped before path dispatch.
  EXPECT_EQ(http_request(port, "GET /healthz?verbose=1 HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 200 OK\r\n", 0),
            0u);
  EXPECT_GE(server.stats().http_requests.load(), 4u);
  server.stop();
}

TEST(Observability, MetricsPortDisabledByDefault) {
  ServerConfig config;
  Server server(config);
  server.start();
  EXPECT_LT(server.metrics_port(), 0);
  server.stop();
}

TEST(Observability, StatsJsonCarriesWindowedSection) {
  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  for (std::uint64_t r = 1; r <= 5; ++r)
    ASSERT_TRUE(
        client.decide({0.1, 0.9, 0.3, 0.0, 0.2, 0.5, 1.0, 0.4}, r)
            .has_value());
  const std::string json = server.stats_json();
  for (const char* key :
       {"serve.window.latency_us", "serve.window.count",
        "serve.window.p50_latency_us", "serve.window.p99_latency_us",
        "serve.window.p999_latency_us", "serve.window.req_per_s",
        "serve.queue_wait_p50_us", "serve.infer_p99_us"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  server.stop();
}

TEST(Observability, RequestSpansDecomposeExactly) {
  SpanCollector spans;
  ServerConfig config;
  config.spans = &spans;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();

  constexpr std::uint64_t kRequests = 8;
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  for (std::uint64_t r = 1; r <= kRequests; ++r)
    ASSERT_TRUE(
        client.decide({0.1, 0.9, 0.3, 0.0, 0.2, 0.5, 1.0, 0.4}, r)
            .has_value());
  server.stop();

  // Group the per-request pipeline spans by trace id.
  struct Trace {
    const SpanEvent* request = nullptr;
    const SpanEvent* admit = nullptr;
    const SpanEvent* queue_wait = nullptr;
    const SpanEvent* inference = nullptr;
    const SpanEvent* reply_write = nullptr;
  };
  const std::vector<SpanEvent> events = spans.snapshot();
  std::map<std::uint64_t, Trace> traces;
  for (const SpanEvent& event : events) {
    Trace& trace = traces[event.trace_id];
    if (event.name == "serve.request") trace.request = &event;
    if (event.name == "serve.admit") trace.admit = &event;
    if (event.name == "serve.queue_wait") trace.queue_wait = &event;
    if (event.name == "serve.inference") trace.inference = &event;
    if (event.name == "serve.reply_write") trace.reply_write = &event;
  }

  std::uint64_t complete = 0;
  for (const auto& [trace_id, trace] : traces) {
    if (trace.request == nullptr) continue;
    ++complete;
    ASSERT_NE(trace.admit, nullptr);
    ASSERT_NE(trace.queue_wait, nullptr);
    ASSERT_NE(trace.inference, nullptr);
    // The three pipeline segments tile [received, done) exactly: each
    // starts where the previous ended, and their durations sum to the
    // root span's duration. Same monotonic clock, no gaps, no overlap.
    EXPECT_EQ(trace.admit->ts_us, trace.request->ts_us);
    EXPECT_EQ(trace.queue_wait->ts_us,
              trace.admit->ts_us + trace.admit->dur_us);
    EXPECT_EQ(trace.inference->ts_us,
              trace.queue_wait->ts_us + trace.queue_wait->dur_us);
    EXPECT_EQ(trace.admit->dur_us + trace.queue_wait->dur_us +
                  trace.inference->dur_us,
              trace.request->dur_us);
    // All children hang off the root request span.
    EXPECT_EQ(trace.admit->parent_id, trace.request->span_id);
    EXPECT_EQ(trace.queue_wait->parent_id, trace.request->span_id);
    EXPECT_EQ(trace.inference->parent_id, trace.request->span_id);
    if (trace.reply_write != nullptr)
      EXPECT_EQ(trace.reply_write->parent_id, trace.request->span_id);
  }
  EXPECT_EQ(complete, kRequests);
}

TEST(Observability, DegradedShedEmitsInstantSpan) {
  SpanCollector spans;
  ServerConfig config;
  config.spans = &spans;
  Server server(config);
  // No model published: decisions degrade to the rule fallback, which
  // must surface as serve.degraded instants in the trace.
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto reply =
      client.decide({0.1, 0.9, 0.3, 0.0, 0.2, 0.5, 1.0, 0.4}, 1);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, ReplyStatus::kDegraded);
  server.stop();

  bool saw_degraded = false;
  for (const SpanEvent& event : spans.snapshot())
    if (event.name == "serve.degraded" &&
        event.phase == SpanEvent::Phase::kInstant)
      saw_degraded = true;
  EXPECT_TRUE(saw_degraded);
}

}  // namespace
}  // namespace si::serve
