// Chaos suite (DESIGN.md §9): hostile and unlucky clients — killed
// mid-request, malformed/oversized frames, slow-loris writers, saturation
// bursts. The server must stay up, shed or degrade deterministically, and
// leak no file descriptors. Servers bind port 0, so tests are
// parallel-safe; the fd audit walks /proc/self/fd.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"

namespace si::serve {
namespace {

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

std::shared_ptr<ServedModel> make_model() {
  return std::make_shared<ServedModel>(ActorCritic(8, {32, 16, 8}, 7),
                                       "in-process", 0);
}

/// Waits until `predicate` holds or ~2 s pass.
template <typename Fn>
bool eventually(Fn&& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(Chaos, MalformedFrameGetsErrorThenCloseServerSurvives) {
  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();

  ServeClient attacker;
  ASSERT_TRUE(connect_with_backoff(attacker, config.host, server.port()));
  ASSERT_TRUE(attacker.send_raw("this is not a frame at all!!"));
  const auto frame = attacker.read_frame();
  ASSERT_TRUE(frame.has_value()) << attacker.error();
  EXPECT_EQ(frame->type, FrameType::kError);
  // After the error frame the server closes the connection.
  EXPECT_FALSE(attacker.read_frame().has_value());

  // The server keeps serving everyone else.
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto reply = client.decide(std::vector<double>(8, 0.5));
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->status, ReplyStatus::kOk);
  EXPECT_GE(server.stats().protocol_errors.load(), 1u);
  server.stop();
}

TEST(Chaos, OversizedFrameIsRejectedFromHeaderAlone) {
  ServerConfig config;
  Server server(config);
  server.start();
  ServeClient attacker;
  ASSERT_TRUE(connect_with_backoff(attacker, config.host, server.port()));
  // Valid magic and type, hostile length: 256 MiB claimed, none sent.
  std::string header = "1NIS";
  header.push_back(static_cast<char>(FrameType::kDecisionRequest));
  header.append(3, '\0');
  const std::uint32_t huge = 256u * 1024 * 1024;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  ASSERT_TRUE(attacker.send_raw(header));
  const auto frame = attacker.read_frame();
  ASSERT_TRUE(frame.has_value()) << attacker.error();
  EXPECT_EQ(frame->type, FrameType::kError);
  EXPECT_NE(frame->payload.find("oversized"), std::string::npos);
  EXPECT_FALSE(attacker.read_frame().has_value());
  server.stop();
}

TEST(Chaos, ClientsKilledMidRequestDoNotWedgeTheServer) {
  ServerConfig config;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();

  DecisionRequest request;
  request.request_id = 1;
  request.features.assign(8, 0.5);
  const std::string frame = encode_decision_request(request);

  for (int round = 0; round < 20; ++round) {
    ServeClient victim;
    ASSERT_TRUE(connect_with_backoff(victim, config.host, server.port()));
    if (round % 2 == 0) {
      // Die with half a frame on the wire.
      ASSERT_TRUE(victim.send_raw(frame.substr(0, frame.size() / 2)));
    } else {
      // Die after a complete request but before reading the reply — the
      // reply becomes an orphan the server must discard, not deliver.
      ASSERT_TRUE(victim.send_raw(frame));
    }
    victim.close();
  }

  // Server is alive and still answering.
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto reply = client.decide(std::vector<double>(8, 0.5));
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->status, ReplyStatus::kOk);
  // All victim connections were reaped.
  EXPECT_TRUE(eventually(
      [&] { return server.stats().connections_active.load() <= 1; }));
  server.stop();
}

TEST(Chaos, SlowLorisWriterIsDisconnectedDeterministically) {
  ServerConfig config;
  // Tiny bound so the test converges fast, but comfortably above one stats
  // reply (~2 KiB with the windowed-latency section) so a well-behaved
  // client is never cut for a single in-flight response.
  config.max_write_buffer = 4096;
  Server server(config);
  server.start();

  // Raw socket with a minimal receive buffer: the attacker requests far
  // more reply bytes than it will ever read.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Each stats reply is ~2 KiB; thousands of pipelined requests overwhelm
  // any kernel buffering, so the server's outbound buffer must blow past
  // max_write_buffer and the connection must be cut.
  const std::string request = encode_stats_request();
  std::string burst;
  for (int i = 0; i < 4000; ++i) burst += request;
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n =
        ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // server already cut us off mid-send: fine
    sent += static_cast<std::size_t>(n);
  }
  EXPECT_TRUE(eventually(
      [&] { return server.stats().slow_writer_disconnects.load() >= 1; }));
  ::close(fd);

  // Well-behaved clients are unaffected.
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  EXPECT_TRUE(client.stats_json().has_value());
  server.stop();
}

TEST(Chaos, SaturationBurstShedsButAnswersEveryRequest) {
  ServerConfig config;
  config.queue_capacity = 4;
  config.max_wait_us = 50000;
  Server server(config);
  ASSERT_TRUE(server.publish_model(make_model()).ok);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 30;
  std::atomic<int> answered{0};
  std::atomic<int> lost{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!connect_with_backoff(client, config.host, server.port())) {
        lost += kPerClient;
        return;
      }
      std::string burst;
      for (int i = 0; i < kPerClient; ++i) {
        DecisionRequest request;
        request.request_id =
            static_cast<std::uint64_t>(c) * kPerClient + i;
        request.features.assign(8, 0.5);
        burst += encode_decision_request(request);
      }
      if (!client.send_raw(burst)) {
        lost += kPerClient;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const auto frame = client.read_frame();
        if (!frame) {
          ++lost;
          continue;
        }
        DecisionReply reply;
        if (decode_decision_reply(frame->payload, reply)) ++answered;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Robustness contract: saturation sheds (degrades) but never drops — a
  // reply for every single request.
  EXPECT_EQ(lost.load(), 0);
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  const auto& stats = server.stats();
  EXPECT_EQ(stats.replies_total.load(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GE(stats.shed_total.load() + stats.decisions_model.load(),
            static_cast<std::uint64_t>(kClients * kPerClient) -
                stats.decisions_degraded.load());
  server.stop();
}

TEST(Chaos, NoFdLeakAcrossAbuseAndRestart) {
  // Warm up lazily-created fds (logging etc.) before taking the baseline.
  {
    ServerConfig config;
    Server server(config);
    server.start();
    ServeClient client;
    ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
    ASSERT_TRUE(client.stats_json().has_value());
    server.stop();
  }
  const std::size_t baseline = open_fd_count();
  for (int round = 0; round < 3; ++round) {
    ServerConfig config;
    Server server(config);
    ASSERT_TRUE(server.publish_model(make_model()).ok);
    server.start();
    for (int i = 0; i < 8; ++i) {
      ServeClient client;
      ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
      if (i % 3 == 0) {
        client.send_raw("garbage garbage!");  // protocol error -> closed
        client.read_frame();
      } else if (i % 3 == 1) {
        client.decide(std::vector<double>(8, 0.5));
      }  // else: connect and vanish without a single byte
    }
    server.stop();
  }
  EXPECT_EQ(open_fd_count(), baseline);
}

}  // namespace
}  // namespace si::serve
