// Degraded-mode equivalence (DESIGN.md §9): a server reply tagged
// `degraded` must be bit-identical to the offline rule-inspector (or
// base-policy) decision for the same inspection view. The wire carries
// feature doubles as exact IEEE-754 bit patterns, so the server-side rule
// evaluates the very same vector the offline inspector sees.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/features.hpp"
#include "core/rule_inspector.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace si::serve {
namespace {

/// A grid of manual feature rows spanning every rule branch: below/above
/// each threshold, exactly at thresholds, plus non-finite values (which
/// take the server's non-finite-input degraded path, still through the
/// NaN-safe rule).
std::vector<std::vector<double>> equivalence_rows() {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> rows;
  // Layout: wait, est, procs, rejected, queue_delays, avail, runnable,
  // backfill (kWait=0, kEstimate=1, kProcs=2, kQueueDelays=4,
  // kClusterAvail=5).
  for (const double wait : {0.0, 0.34, 0.35, 0.9})
    for (const double est : {0.1, 0.30, 0.8})
      for (const double procs : {0.05, 0.10, 0.5})
        for (const double delays : {0.0, 0.219, 0.22, 0.9})
          for (const double avail : {0.1, 0.25, 0.5, 0.70, 0.95})
            rows.push_back({wait, est, procs, 0.3, delays, avail, 1.0, 0.0});
  rows.push_back({kNan, 0.5, 0.5, 0.0, 0.1, 0.1, 1.0, 0.0});
  rows.push_back({0.1, kNan, kNan, 0.0, 0.1, 0.1, 1.0, 0.0});
  rows.push_back({0.1, 0.5, 0.5, 0.0, kNan, 0.1, 1.0, 0.0});
  rows.push_back({0.1, 0.5, 0.5, 0.0, 0.1, kNan, 1.0, 0.0});
  rows.push_back({kInf, -kInf, kInf, 0.0, 0.1, 0.1, 1.0, 0.0});
  rows.push_back(std::vector<double>(8, kNan));
  return rows;
}

TEST(DegradedEquivalence, RepliesMatchOfflineRuleBitForBit) {
  ServerConfig config;  // no model published: every decision degrades
  Server server(config);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));

  std::uint64_t id = 0;
  for (const std::vector<double>& row : equivalence_rows()) {
    const bool offline = rule_inspector_reject(row, config.rule);
    const auto reply = client.decide(row, ++id);
    ASSERT_TRUE(reply.has_value()) << client.error();
    EXPECT_EQ(reply->status, ReplyStatus::kDegraded);
    EXPECT_EQ(reply->source, DecisionSource::kRule);
    EXPECT_EQ(reply->reject != 0, offline)
        << "row " << id << " diverged from the offline rule";
  }
  server.stop();
}

TEST(DegradedEquivalence, MatchesRuleInspectorOnRealViews) {
  // Features built from genuine InspectionViews by the same FeatureBuilder
  // the offline RuleInspector uses — the server's degraded verdict must
  // equal RuleInspector::reject(view) exactly.
  FeatureScales scales;
  scales.max_estimate = 7200.0;
  scales.cluster_procs = 128;
  FeatureBuilder features(FeatureMode::kManual, Metric::kBsld, scales, 600.0);
  RuleInspector offline(features);

  ServerConfig config;
  config.rule = offline.config();
  Server server(config);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));

  std::vector<const Job*> waiting;
  Job other;
  other.id = 2;
  other.submit = 0.0;
  other.run = 600.0;
  other.estimate = 900.0;
  other.procs = 16;
  waiting.push_back(&other);

  std::uint64_t id = 0;
  for (const double wait_s : {5.0, 600.0, 7200.0})
    for (const double est_s : {60.0, 1800.0, 7200.0})
      for (const int procs : {1, 32, 120})
        for (const int free_procs : {4, 64, 128}) {
          Job job;
          job.id = 1;
          job.submit = 0.0;
          job.run = est_s * 0.8;
          job.estimate = est_s;
          job.procs = procs;
          InspectionView view;
          view.now = wait_s;
          view.job = &job;
          view.job_wait = wait_s;
          view.job_rejections = 1;
          view.max_rejection_times = 72;
          view.free_procs = free_procs;
          view.total_procs = 128;
          view.waiting = &waiting;
          const std::vector<double> row = features.build(view);
          const bool offline_verdict = offline.reject(view);
          const auto reply = client.decide(row, ++id);
          ASSERT_TRUE(reply.has_value()) << client.error();
          EXPECT_EQ(reply->status, ReplyStatus::kDegraded);
          EXPECT_EQ(reply->reason, DegradedReason::kNoModel);
          EXPECT_EQ(reply->reject != 0, offline_verdict)
              << "view " << id << " diverged from RuleInspector";
        }
  server.stop();
}

TEST(DegradedEquivalence, NonManualWidthDegradesToBasePolicyAccept) {
  ServerConfig config;
  config.obs_size = 5;  // not the manual 8-wide layout: no rule available
  Server server(config);
  server.start();
  ServeClient client;
  ASSERT_TRUE(connect_with_backoff(client, config.host, server.port()));
  const auto reply = client.decide(std::vector<double>(5, 0.9));
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->status, ReplyStatus::kDegraded);
  EXPECT_EQ(reply->source, DecisionSource::kBase);
  EXPECT_EQ(reply->reject, 0);  // base policy always accepts
  server.stop();
}

}  // namespace
}  // namespace si::serve
