#include "sched/slurm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, double run, int procs, int user,
             int queue) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.run = run;
  j.estimate = run;
  j.procs = procs;
  j.user = user;
  j.queue = queue;
  return j;
}

Trace small_trace() {
  // user 0 dominates usage; queue 1 is the busy queue.
  std::vector<Job> jobs = {
      make_job(0, 0.0, 1000.0, 8, /*user=*/0, /*queue=*/1),
      make_job(1, 10.0, 1000.0, 8, 0, 1),
      make_job(2, 20.0, 100.0, 2, 1, 0),
      make_job(3, 30.0, 50.0, 1, 2, 0),
  };
  return Trace("small", 16, std::move(jobs));
}

TEST(Slurm, AgeFactorNormalizedBySevenDays) {
  SlurmMultifactorPolicy p(small_trace());
  Job j = make_job(0, 0.0, 10.0, 1, 0, 0);
  EXPECT_DOUBLE_EQ(p.age_factor(j, 0.0), 0.0);
  EXPECT_NEAR(p.age_factor(j, 3.5 * 24 * 3600), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(p.age_factor(j, 14.0 * 24 * 3600), 1.0);  // saturates
}

TEST(Slurm, FairshareStartsNeutral) {
  SlurmMultifactorPolicy p(small_trace());
  // No usage accrued yet: every user is maximally served.
  EXPECT_DOUBLE_EQ(p.fairshare_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(p.fairshare_factor(1), 1.0);
}

TEST(Slurm, FairshareDecaysWithUsage) {
  SlurmMultifactorPolicy p(small_trace());
  const Job heavy = make_job(0, 0.0, 1000.0, 8, /*user=*/1, 0);
  p.on_job_start(heavy, 0.0);
  // User 1 just consumed all running usage but was assigned a small share:
  // its factor must drop well below a user with no usage.
  EXPECT_LT(p.fairshare_factor(1), 0.5);
  EXPECT_GT(p.fairshare_factor(0), p.fairshare_factor(1));
}

TEST(Slurm, FairshareFactorInUnitInterval) {
  SlurmMultifactorPolicy p(small_trace());
  for (int user = 0; user < 3; ++user) {
    const double f = p.fairshare_factor(user);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Slurm, JobAttributeFactorNormalizedByMaxEstimate) {
  SlurmMultifactorPolicy p(small_trace());
  // max estimate in the trace is 1000 s.
  EXPECT_DOUBLE_EQ(p.job_attribute_factor(make_job(0, 0, 1000.0, 1, 0, 0)),
                   1.0);
  EXPECT_DOUBLE_EQ(p.job_attribute_factor(make_job(0, 0, 500.0, 1, 0, 0)),
                   0.5);
}

TEST(Slurm, PartitionFactorTracksQueueUsage) {
  SlurmMultifactorPolicy p(small_trace());
  // Queue 1 carried the bulk of the CPU usage => priority 1.0.
  EXPECT_DOUBLE_EQ(p.partition_factor(1), 1.0);
  EXPECT_GT(p.partition_factor(1), p.partition_factor(0));
  EXPECT_DOUBLE_EQ(p.partition_factor(99), 0.0);  // unknown queue
}

TEST(Slurm, PriorityIsWeightedSum) {
  SlurmMultifactorPolicy p(small_trace());
  const Job j = make_job(0, 0.0, 1000.0, 1, 0, 1);
  const double expected = 1000.0 * (p.age_factor(j, 3600.0) +
                                    p.fairshare_factor(0) +
                                    p.job_attribute_factor(j) +
                                    p.partition_factor(1));
  EXPECT_DOUBLE_EQ(p.priority(j, 3600.0), expected);
}

TEST(Slurm, ScoreIsNegatedPriority) {
  SlurmMultifactorPolicy p(small_trace());
  const Job j = make_job(0, 0.0, 500.0, 1, 1, 0);
  SchedContext ctx;
  ctx.now = 100.0;
  EXPECT_DOUBLE_EQ(p.score(j, ctx), -p.priority(j, 100.0));
}

TEST(Slurm, OlderJobOutranksEqualAlternatives) {
  SlurmMultifactorPolicy p(small_trace());
  SchedContext ctx;
  ctx.now = 24.0 * 3600;
  const Job old_job = make_job(0, 0.0, 500.0, 1, 1, 0);
  const Job new_job = make_job(1, 23.0 * 3600, 500.0, 1, 1, 0);
  EXPECT_LT(p.score(old_job, ctx), p.score(new_job, ctx));
}

TEST(Slurm, ResetClearsFairshareState) {
  SlurmMultifactorPolicy p(small_trace());
  p.on_job_start(make_job(0, 0.0, 1000.0, 8, 1, 0), 0.0);
  const double depressed = p.fairshare_factor(1);
  p.reset();
  EXPECT_DOUBLE_EQ(p.fairshare_factor(1), 1.0);
  EXPECT_LT(depressed, 1.0);
}

TEST(Slurm, UnknownUserGetsMinimalShare) {
  SlurmMultifactorPolicy p(small_trace());
  p.on_job_start(make_job(0, 0.0, 100.0, 1, /*user=*/42, 0), 0.0);
  // Unknown user with usage: factor collapses toward 0.
  EXPECT_LT(p.fairshare_factor(42), 0.01);
}

TEST(Slurm, EmptyTraceRejected) {
  EXPECT_ANY_THROW(SlurmMultifactorPolicy(Trace{}));
}

TEST(Slurm, WorksOnSyntheticSdscTrace) {
  const Trace t = make_trace("SDSC-SP2", 500, 3);
  SlurmMultifactorPolicy p(t);
  SchedContext ctx;
  ctx.now = 1000.0;
  for (const Job& j : t.jobs()) {
    const double s = p.score(j, ctx);
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_LE(s, 0.0);  // priorities are non-negative
  }
}


TEST(Slurm, CloneCopiesCalibrationButSharesNoState) {
  SlurmMultifactorPolicy p(small_trace());
  const PolicyPtr copy = p.clone();
  // The clone carries the calibrated shares...
  const Job j = make_job(0, 0.0, 500.0, 1, 1, 1);
  SchedContext ctx;
  ctx.now = 100.0;
  EXPECT_DOUBLE_EQ(copy->score(j, ctx), p.score(j, ctx));
  // ...but accruing usage on the original does not affect the clone.
  p.on_job_start(make_job(0, 0.0, 1000.0, 8, 1, 0), 0.0);
  EXPECT_NE(copy->score(j, ctx), p.score(j, ctx));
}

}  // namespace
}  // namespace si
