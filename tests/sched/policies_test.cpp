#include "sched/policies.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sched/f1.hpp"
#include "sched/factory.hpp"

namespace si {
namespace {

Job probe(std::int64_t id, Time submit, double est, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.estimate = est;
  j.run = est;
  j.procs = procs;
  return j;
}

SchedContext ctx_at(Time now) {
  SchedContext ctx;
  ctx.now = now;
  ctx.total_procs = 128;
  ctx.free_procs = 64;
  return ctx;
}

// A probe set with distinct attribute orderings:
//   id  submit  est   procs
//   0   0       100   8
//   1   50      400   2
//   2   100     50    32
std::vector<Job> probe_set() {
  return {probe(0, 0.0, 100.0, 8), probe(1, 50.0, 400.0, 2),
          probe(2, 100.0, 50.0, 32)};
}

std::int64_t best_by(const SchedulingPolicy& p, const std::vector<Job>& jobs,
                     Time now) {
  const SchedContext ctx = ctx_at(now);
  std::int64_t best = jobs.front().id;
  double best_score = p.score(jobs.front(), ctx);
  for (const Job& j : jobs) {
    const double s = p.score(j, ctx);
    if (s < best_score) {
      best_score = s;
      best = j.id;
    }
  }
  return best;
}

TEST(Policies, FcfsPicksOldest) {
  FcfsPolicy p;
  EXPECT_EQ(best_by(p, probe_set(), 200.0), 0);
}

TEST(Policies, LcfsPicksNewest) {
  LcfsPolicy p;
  EXPECT_EQ(best_by(p, probe_set(), 200.0), 2);
}

TEST(Policies, SjfPicksShortestEstimate) {
  SjfPolicy p;
  EXPECT_EQ(best_by(p, probe_set(), 200.0), 2);
}

TEST(Policies, SqfPicksSmallestRequest) {
  SqfPolicy p;
  EXPECT_EQ(best_by(p, probe_set(), 200.0), 1);
}

TEST(Policies, SafPicksSmallestArea) {
  SafPolicy p;
  // areas: 800, 800, 1600 — tie between 0 and 1 resolved by score equality;
  // our helper keeps the first strictly-smaller, so id 0 wins.
  EXPECT_EQ(best_by(p, probe_set(), 200.0), 0);
}

TEST(Policies, SrfPicksSmallestRatio) {
  SrfPolicy p;
  // ratios: 12.5, 200, 1.5625
  EXPECT_EQ(best_by(p, probe_set(), 200.0), 2);
}

TEST(Policies, ScoresMatchFormulas) {
  const Job j = probe(7, 123.0, 600.0, 16);
  const SchedContext ctx = ctx_at(1000.0);
  EXPECT_DOUBLE_EQ(FcfsPolicy{}.score(j, ctx), 123.0);
  EXPECT_DOUBLE_EQ(LcfsPolicy{}.score(j, ctx), -123.0);
  EXPECT_DOUBLE_EQ(SjfPolicy{}.score(j, ctx), 600.0);
  EXPECT_DOUBLE_EQ(SqfPolicy{}.score(j, ctx), 16.0);
  EXPECT_DOUBLE_EQ(SafPolicy{}.score(j, ctx), 9600.0);
  EXPECT_DOUBLE_EQ(SrfPolicy{}.score(j, ctx), 37.5);
}

TEST(F1, MatchesPublishedFormula) {
  F1Policy p;
  const Job j = probe(1, 1000.0, 3600.0, 8);
  const SchedContext ctx = ctx_at(2000.0);
  const double expected =
      std::log10(3600.0) * 8.0 + 870.0 * std::log10(1000.0);
  EXPECT_DOUBLE_EQ(p.score(j, ctx), expected);
}

TEST(F1, ClampsLogArgumentsToOne) {
  F1Policy p;
  const Job j = probe(1, 0.0, 0.5, 4);  // both logs clamp to log10(1) = 0
  EXPECT_DOUBLE_EQ(p.score(j, ctx_at(0.0)), 0.0);
}

TEST(F1, PrefersSmallShortOverLargeLongAtSameSubmit) {
  F1Policy p;
  const Job small = probe(0, 100.0, 60.0, 1);
  const Job large = probe(1, 100.0, 86400.0, 64);
  const SchedContext ctx = ctx_at(200.0);
  EXPECT_LT(p.score(small, ctx), p.score(large, ctx));
}

class FactoryNames : public ::testing::TestWithParam<const char*> {};

TEST_P(FactoryNames, BuildsPolicyWithMatchingName) {
  const PolicyPtr p = make_policy(GetParam());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, FactoryNames,
                         ::testing::Values("FCFS", "LCFS", "SJF", "SQF", "SAF",
                                           "SRF", "F1"));

TEST(Factory, ListsPaperPolicies) {
  const auto& names = heuristic_policy_names();
  EXPECT_EQ(names.size(), 7u);
  EXPECT_NE(std::find(names.begin(), names.end(), "SJF"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "F1"), names.end());
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_policy("EDF"), std::out_of_range);
  EXPECT_THROW(make_policy("Slurm"), std::out_of_range);
}

TEST(Policies, StatelessPoliciesIgnoreStartNotifications) {
  SjfPolicy p;
  const Job j = probe(0, 0.0, 10.0, 1);
  const double before = p.score(j, ctx_at(0.0));
  p.on_job_start(j, 5.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.score(j, ctx_at(0.0)), before);
}


TEST(Policies, ClonePreservesBehaviour) {
  for (const auto& name : heuristic_policy_names()) {
    const PolicyPtr original = make_policy(name);
    const PolicyPtr copy = original->clone();
    ASSERT_NE(copy, nullptr) << name;
    EXPECT_EQ(copy->name(), original->name());
    const Job j = probe(3, 250.0, 1800.0, 12);
    const SchedContext ctx = ctx_at(500.0);
    EXPECT_DOUBLE_EQ(copy->score(j, ctx), original->score(j, ctx)) << name;
  }
}

}  // namespace
}  // namespace si
