// Edge cases of the Slurm multifactor policy's fair-share decay and
// priority tie-breaking: accounts with zero accrued usage, the exact
// 2^(-usage/share/2) decay curve, degenerate all-zero-usage traces, and
// equal-priority jobs resolving by id both at the score level and through
// a full simulator run.
#include "sched/slurm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, double run, int procs, int user,
             int queue) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.run = run;
  j.estimate = run;
  j.procs = procs;
  j.user = user;
  j.queue = queue;
  return j;
}

Trace three_user_trace() {
  // Usage split 80 / 15 / 5 across users 0 / 1 / 2, all in queue 0.
  std::vector<Job> jobs = {
      make_job(0, 0.0, 1000.0, 8, /*user=*/0, /*queue=*/0),
      make_job(1, 10.0, 750.0, 2, 1, 0),
      make_job(2, 20.0, 500.0, 1, 2, 0),
  };
  return Trace("three-user", 16, std::move(jobs));
}

TEST(SlurmEdge, ZeroUsageAccountStaysMaximallyServed) {
  SlurmMultifactorPolicy p(three_user_trace());
  // User 0 burns through heavy usage; users 1 and 2 never start anything.
  for (int i = 0; i < 5; ++i)
    p.on_job_start(make_job(0, 0.0, 1000.0, 8, /*user=*/0, 0), 0.0);
  // A zero-usage account sits at the top of the decay curve *exactly*
  // (2^0 = 1), no matter how much everyone else consumed.
  EXPECT_DOUBLE_EQ(p.fairshare_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(p.fairshare_factor(2), 1.0);
  EXPECT_LT(p.fairshare_factor(0), 1.0);
}

TEST(SlurmEdge, ZeroUsageUnknownAccountAlsoNeutral) {
  SlurmMultifactorPolicy p(three_user_trace());
  p.on_job_start(make_job(0, 0.0, 1000.0, 8, 0, 0), 0.0);
  // Even an account absent from the calibration trace is neutral until it
  // actually consumes something (contrast UnknownUserGetsMinimalShare in
  // slurm_test.cpp, which accrues usage first).
  EXPECT_DOUBLE_EQ(p.fairshare_factor(99), 1.0);
}

TEST(SlurmEdge, FairshareDecayFollowsExpCurveExactly) {
  const Trace trace = three_user_trace();
  SlurmMultifactorPolicy p(trace);
  // Assigned share of user 1: 750*2 / (1000*8 + 750*2 + 500*1).
  const double total = 1000.0 * 8 + 750.0 * 2 + 500.0 * 1;
  const double share = 750.0 * 2 / total;

  p.on_job_start(make_job(0, 0.0, 1000.0, 8, /*user=*/0, 0), 0.0);
  p.on_job_start(make_job(1, 0.0, 750.0, 2, /*user=*/1, 0), 0.0);
  const double usage_frac = 750.0 * 2 / (1000.0 * 8 + 750.0 * 2);
  EXPECT_DOUBLE_EQ(p.fairshare_factor(1),
                   std::exp2(-usage_frac / share / 2.0));
}

TEST(SlurmEdge, FairshareDecayIsMonotoneInUsage) {
  SlurmMultifactorPolicy p(three_user_trace());
  // Fair-share usage is *relative*: a lone consumer owns 100% of the pot
  // no matter how much it starts, so give user 0 a fixed block of usage
  // first. Each subsequent start by user 1 then raises user 1's share of
  // the total and must strictly lower its factor.
  p.on_job_start(make_job(0, 0.0, 10000.0, 8, /*user=*/0, 0), 0.0);
  double previous = p.fairshare_factor(1);
  EXPECT_DOUBLE_EQ(previous, 1.0);
  for (int i = 0; i < 10; ++i) {
    p.on_job_start(make_job(i, 0.0, 750.0, 2, /*user=*/1, 0), 0.0);
    const double factor = p.fairshare_factor(1);
    EXPECT_LT(factor, previous) << "start " << i;
    EXPECT_GE(factor, 0.0);
    previous = factor;
  }
}

TEST(SlurmEdge, AllZeroUsageTraceRejected) {
  // A trace of only zero-runtime (cancelled) jobs carries no usage to
  // calibrate shares from; the constructor must refuse it rather than
  // divide by zero.
  std::vector<Job> jobs = {make_job(0, 0.0, 0.0, 4, 0, 0),
                           make_job(1, 5.0, 0.0, 2, 1, 0)};
  EXPECT_ANY_THROW(SlurmMultifactorPolicy(Trace("idle", 8, std::move(jobs))));
}

TEST(SlurmEdge, EqualPriorityJobsScoreIdentically) {
  SlurmMultifactorPolicy p(three_user_trace());
  SchedContext ctx;
  ctx.now = 100.0;
  // Identical in every factor input (submit, estimate, user, queue) but
  // distinct ids: the policy cannot distinguish them.
  const Job a = make_job(10, 0.0, 500.0, 2, 1, 0);
  const Job b = make_job(11, 0.0, 500.0, 2, 1, 0);
  EXPECT_EQ(p.score(a, ctx), p.score(b, ctx));
}

TEST(SlurmEdge, EqualPriorityTieBreaksByIdThroughTheSimulator) {
  // Three indistinguishable jobs on a one-processor cluster must run
  // serially in id order — the simulator's documented tie-break.
  std::vector<Job> jobs = {make_job(0, 0.0, 100.0, 1, 1, 0),
                           make_job(1, 0.0, 100.0, 1, 1, 0),
                           make_job(2, 0.0, 100.0, 1, 1, 0)};
  const Trace trace("ties", 1, jobs);
  SlurmMultifactorPolicy policy(trace);
  Simulator sim(1, SimConfig{});
  const SequenceResult result = sim.run(jobs, policy);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_DOUBLE_EQ(result.records[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[2].start, 200.0);
}

TEST(SlurmEdge, AgedJobBeatsTieOnceWaitsDiverge) {
  // The flip side of the tie-break: as soon as waits differ, the age
  // factor must break the symmetry toward the older job, not the id.
  SlurmMultifactorPolicy p(three_user_trace());
  SchedContext ctx;
  ctx.now = 7200.0;
  const Job older = make_job(11, 0.0, 500.0, 2, 1, 0);     // higher id
  const Job younger = make_job(10, 3600.0, 500.0, 2, 1, 0);
  EXPECT_LT(p.score(older, ctx), p.score(younger, ctx));
}

}  // namespace
}  // namespace si
