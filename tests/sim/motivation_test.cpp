// Reproduces the paper's §2.1 motivating example (Figure 1 / Table 1):
// a 5-node cluster scheduled by SJF without backfilling, with and without a
// scheduling inspector. Case (b) — the insufficient-resources case — matches
// Table 1 exactly. Case (a) matches the paper's base-scheduler row exactly;
// the inspected row differs slightly (avg bsld 1.60 vs the paper's 1.53)
// because the hand-drawn figure is not fully consistent with the committed-
// head scheduling semantics the paper's own simulator (§3.2) defines. See
// EXPERIMENTS.md for the full discussion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sched/policies.hpp"
#include "sim/simulator.hpp"

namespace si {
namespace {

constexpr double kMin = 60.0;  // the figure's x-axis unit, in seconds

Job make_job(std::int64_t id, double submit_min, double est_min,
             double run_min, int procs) {
  Job j;
  j.id = id;
  j.submit = submit_min * kMin;
  j.estimate = est_min * kMin;
  j.run = run_min * kMin;
  j.procs = procs;
  return j;
}

/// Rejects a specific job id for its first `times` inspections; accepts
/// everything else — scripting the figure's inspector behaviour.
class ScriptedInspector final : public Inspector {
 public:
  ScriptedInspector(std::int64_t job_id, int times)
      : job_id_(job_id), times_(times) {}

  bool reject(const InspectionView& view) override {
    if (view.job->id == job_id_ && rejected_ < times_) {
      ++rejected_;
      return true;
    }
    return false;
  }

 private:
  std::int64_t job_id_;
  int times_;
  int rejected_ = 0;
};

// Case (a): J0, J1 arrive at t0; J2 arrives at t1; the preliminary job Jp
// is already occupying 2 nodes. All jobs can run as soon as selected.
std::vector<Job> case_a_jobs() {
  return {
      make_job(0, 0.0, 1.0, 5.0, 2),  // Jp: runs t0..t5
      make_job(1, 0.0, 5.0, 5.0, 2),  // J0
      make_job(2, 0.0, 5.0, 5.0, 2),  // J1
      make_job(3, 1.0, 3.0, 3.0, 3),  // J2
  };
}

// Case (b): J0 arrives at t0 but cannot run (insufficient resources);
// J1 arrives at t1.
std::vector<Job> case_b_jobs() {
  return {
      make_job(0, 0.0, 1.0, 3.0, 2),  // Jp: runs t0..t3
      make_job(1, 0.0, 5.0, 5.0, 4),  // J0: needs 4 of 5 nodes
      make_job(2, 1.0, 3.0, 3.0, 2),  // J1
  };
}

// Mean over the example jobs J0.., excluding the preliminary job Jp.
double mean_wait_minutes(const SequenceResult& r) {
  double sum = 0.0;
  for (std::size_t i = 1; i < r.records.size(); ++i)
    sum += r.records[i].wait();
  return sum / kMin / static_cast<double>(r.records.size() - 1);
}

double mean_bsld(const SequenceResult& r) {
  double sum = 0.0;
  for (std::size_t i = 1; i < r.records.size(); ++i)
    sum += r.records[i].bounded_slowdown();
  return sum / static_cast<double>(r.records.size() - 1);
}

double completion_minutes(const SequenceResult& r) {
  double last = 0.0;
  for (const JobRecord& rec : r.records) last = std::max(last, rec.finish);
  return last / kMin;
}

TEST(Motivation, CaseA_BaseSchedulerMatchesTable1) {
  Simulator sim(5, SimConfig{});
  SjfPolicy sjf;
  const auto result = sim.run(case_a_jobs(), sjf);
  // Table 1, Case(a)-NoInspect: wait (0+5+4)/3 = 3; bsld (1+2+2.33)/3 = 1.77.
  EXPECT_DOUBLE_EQ(result.records[1].wait() / kMin, 0.0);  // J0
  EXPECT_DOUBLE_EQ(result.records[2].wait() / kMin, 5.0);  // J1
  EXPECT_DOUBLE_EQ(result.records[3].wait() / kMin, 4.0);  // J2
  EXPECT_NEAR(mean_wait_minutes(result), 3.0, 1e-12);
  EXPECT_NEAR(mean_bsld(result), (1.0 + 2.0 + 7.0 / 3.0) / 3.0, 1e-12);
  // Whole sequence completes at t10.
  EXPECT_DOUBLE_EQ(completion_minutes(result), 10.0);
}

TEST(Motivation, CaseA_InspectionImprovesBsld) {
  Simulator sim(5, SimConfig{});
  SjfPolicy sjf;
  const auto base = sim.run(case_a_jobs(), sjf);
  ScriptedInspector inspector(/*job_id=*/1, /*times=*/2);  // reject J0 twice
  const auto inspected = sim.run(case_a_jobs(), sjf, &inspector);

  // J2 runs immediately at t1 (bsld 1); J0 starts at t4.
  EXPECT_DOUBLE_EQ(inspected.records[3].wait() / kMin, 0.0);  // J2
  EXPECT_DOUBLE_EQ(inspected.records[1].wait() / kMin, 4.0);  // J0
  EXPECT_NEAR(inspected.records[1].bounded_slowdown(), 1.8, 1e-12);
  EXPECT_NEAR(inspected.records[3].bounded_slowdown(), 1.0, 1e-12);

  // Average bsld improves (1.60 vs 1.77); average wait stays equal (3 vs 3),
  // exactly the paper's "equal wait, better bsld" observation for case (a).
  EXPECT_LT(mean_bsld(inspected), mean_bsld(base));
  EXPECT_NEAR(mean_bsld(inspected), 1.6, 1e-12);
  EXPECT_NEAR(mean_wait_minutes(inspected), mean_wait_minutes(base), 1e-12);
}

TEST(Motivation, CaseB_BaseSchedulerMatchesTable1) {
  Simulator sim(5, SimConfig{});
  SjfPolicy sjf;
  const auto result = sim.run(case_b_jobs(), sjf);
  // Table 1, Case(b)-NoInspect: wait (3+7)/2 = 5; bsld (1.6+3.33)/2 = 2.47.
  EXPECT_DOUBLE_EQ(result.records[1].wait() / kMin, 3.0);  // J0
  EXPECT_DOUBLE_EQ(result.records[2].wait() / kMin, 7.0);  // J1
  EXPECT_NEAR(mean_wait_minutes(result), 5.0, 1e-12);
  EXPECT_NEAR(mean_bsld(result), (1.6 + 10.0 / 3.0) / 2.0, 1e-12);
}

TEST(Motivation, CaseB_InspectionMatchesTable1Exactly) {
  Simulator sim(5, SimConfig{});
  SjfPolicy sjf;
  ScriptedInspector inspector(/*job_id=*/1, /*times=*/1);  // reject J0 once
  const auto result = sim.run(case_b_jobs(), sjf, &inspector);
  // Table 1, Case(b)-Inspected: wait (4+0)/2 = 2; bsld (1.8+1)/2 = 1.4.
  EXPECT_DOUBLE_EQ(result.records[1].wait() / kMin, 4.0);  // J0
  EXPECT_DOUBLE_EQ(result.records[2].wait() / kMin, 0.0);  // J1
  EXPECT_NEAR(mean_wait_minutes(result), 2.0, 1e-12);
  EXPECT_NEAR(mean_bsld(result), 1.4, 1e-12);
  // The whole sequence also completes earlier (t9 vs t11).
  EXPECT_DOUBLE_EQ(completion_minutes(result), 9.0);
}

TEST(Motivation, CaseB_InspectionImprovesEverything) {
  Simulator sim(5, SimConfig{});
  SjfPolicy sjf;
  const auto base = sim.run(case_b_jobs(), sjf);
  ScriptedInspector inspector(1, 1);
  const auto inspected = sim.run(case_b_jobs(), sjf, &inspector);
  EXPECT_LT(mean_wait_minutes(inspected), mean_wait_minutes(base));
  EXPECT_LT(mean_bsld(inspected), mean_bsld(base));
  EXPECT_LT(completion_minutes(inspected), completion_minutes(base));
}

}  // namespace
}  // namespace si
