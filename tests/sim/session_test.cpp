// The resumable session API (sim/session.hpp) against the callback adapter
// (Simulator::run): both must drive the identical state machine, so any
// decision sequence produces bit-identical results either way.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/sink.hpp"
#include "obs/trace.hpp"
#include "sched/policies.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

std::vector<Job> sample_jobs(std::uint64_t seed = 9, std::size_t count = 64) {
  Trace trace = make_trace("SDSC-SP2", 300, 31);
  Rng rng(seed);
  return trace.sample_window(rng, count);
}

/// Deterministic scripted verdicts: reject every `period`-th consultation.
struct PeriodicDecider {
  int period;
  int calls = 0;
  bool operator()(const InspectionView&) { return ++calls % period == 0; }
};

class PeriodicInspector final : public Inspector {
 public:
  explicit PeriodicInspector(int period) : decider_{period} {}
  bool reject(const InspectionView& view) override { return decider_(view); }

 private:
  PeriodicDecider decider_;
};

void expect_same_result(const SequenceResult& a, const SequenceResult& b) {
  EXPECT_EQ(a.metrics.jobs, b.metrics.jobs);
  EXPECT_EQ(a.metrics.inspections, b.metrics.inspections);
  EXPECT_EQ(a.metrics.rejections, b.metrics.rejections);
  EXPECT_DOUBLE_EQ(a.metrics.avg_wait, b.metrics.avg_wait);
  EXPECT_DOUBLE_EQ(a.metrics.avg_bsld, b.metrics.avg_bsld);
  EXPECT_DOUBLE_EQ(a.metrics.max_bsld, b.metrics.max_bsld);
  EXPECT_DOUBLE_EQ(a.metrics.utilization, b.metrics.utilization);
  EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].start, b.records[i].start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.records[i].finish, b.records[i].finish) << "job " << i;
    EXPECT_EQ(a.records[i].rejections, b.records[i].rejections) << "job " << i;
  }
}

TEST(SimSession, MatchesCallbackForScriptedDecisions) {
  const std::vector<Job> jobs = sample_jobs();
  for (const int period : {1, 2, 3, 7}) {
    SCOPED_TRACE("period " + std::to_string(period));
    SimConfig config;
    config.backfill = true;
    Simulator sim(256, config);
    SjfPolicy policy;

    PeriodicInspector inspector(period);
    const SequenceResult via_callback = sim.run(jobs, policy, &inspector);

    PeriodicDecider decider{period};
    SimSession session(sim, jobs, policy);
    while (!session.done()) session.step(decider(session.view()));
    const SequenceResult via_session = session.take_result();

    expect_same_result(via_callback, via_session);
  }
}

TEST(SimSession, EmitsByteIdenticalTraces) {
  const std::vector<Job> jobs = sample_jobs(4, 48);
  SimConfig config;
  config.backfill = true;

  BufferTracer callback_buffer;
  {
    SimConfig traced = config;
    traced.tracer = &callback_buffer;
    Simulator sim(128, traced);
    SjfPolicy policy;
    PeriodicInspector inspector(3);
    sim.run(jobs, policy, &inspector);
  }

  BufferTracer session_buffer;
  {
    SimConfig traced = config;
    traced.tracer = &session_buffer;
    Simulator sim(128, traced);
    SjfPolicy policy;
    PeriodicDecider decider{3};
    SimSession session(sim, jobs, policy);
    while (!session.done()) session.step(decider(session.view()));
    session.take_result();
  }

  StringSink callback_text;
  JsonlTracer callback_out(callback_text);
  callback_buffer.drain_to(callback_out);
  StringSink session_text;
  JsonlTracer session_out(session_text);
  session_buffer.drain_to(session_out);
  ASSERT_FALSE(callback_text.str().empty());
  EXPECT_EQ(callback_text.str(), session_text.str());
}

TEST(SimSession, ViewExposesPendingDecision) {
  const std::vector<Job> jobs = sample_jobs();
  SimConfig config;
  Simulator sim(256, config);
  SjfPolicy policy;
  SimSession session(sim, jobs, policy);
  ASSERT_FALSE(session.done());
  std::size_t decisions = 0;
  while (!session.done()) {
    const InspectionView& view = session.view();
    ASSERT_NE(view.job, nullptr);
    EXPECT_GT(view.job->procs, 0);
    EXPECT_GE(view.job_wait, 0.0);
    EXPECT_LT(view.job_rejections, view.max_rejection_times);
    EXPECT_EQ(view.total_procs, 256);
    EXPECT_GE(view.free_procs, 0);
    ASSERT_NE(view.waiting, nullptr);
    ++decisions;
    session.step(false);
  }
  const SequenceResult result = session.take_result();
  EXPECT_EQ(result.metrics.inspections, decisions);
  EXPECT_EQ(result.metrics.rejections, 0u);
}

TEST(SimSession, RejectionBudgetLimitsConsultations) {
  const std::vector<Job> jobs = sample_jobs();
  SimConfig config;
  Simulator sim(256, config);
  SjfPolicy policy;
  // Rejecting everything still terminates: each job is only inspectable
  // while under its budget, after which its decision auto-accepts.
  SimSession session(sim, jobs, policy);
  while (!session.done()) session.step(true);
  const SequenceResult result = session.take_result();
  EXPECT_EQ(result.metrics.rejections, result.metrics.inspections);
  for (const JobRecord& record : result.records)
    EXPECT_LE(record.rejections, config.max_rejection_times);
}

TEST(SimSession, NonInspectingSessionMatchesNullInspectorRun) {
  const std::vector<Job> jobs = sample_jobs();
  SimConfig config;
  config.backfill = true;
  Simulator sim(256, config);
  SjfPolicy policy;
  const SequenceResult base = sim.run(jobs, policy);

  SimSession session(sim, jobs, policy, /*inspect=*/false);
  EXPECT_TRUE(session.done());
  const SequenceResult via_session = session.take_result();
  expect_same_result(base, via_session);
  EXPECT_EQ(via_session.metrics.inspections, 0u);
}

TEST(SimSession, SimulatorIsReusableAfterAbandonedSession) {
  const std::vector<Job> jobs = sample_jobs();
  SimConfig config;
  Simulator sim(256, config);
  SjfPolicy policy;
  const SequenceResult expected = sim.run(jobs, policy);
  {
    SimSession abandoned(sim, jobs, policy);
    ASSERT_FALSE(abandoned.done());
    abandoned.step(true);
    // Destroyed mid-sequence without take_result().
  }
  const SequenceResult after = sim.run(jobs, policy);
  expect_same_result(expected, after);
}

TEST(SimSession, BackToBackSessionsAreIndependent) {
  const std::vector<Job> jobs = sample_jobs();
  SimConfig config;
  Simulator sim(256, config);
  SjfPolicy policy;

  auto run_once = [&] {
    PeriodicDecider decider{2};
    SimSession session(sim, jobs, policy);
    while (!session.done()) session.step(decider(session.view()));
    return session.take_result();
  };
  const SequenceResult first = run_once();
  const SequenceResult second = run_once();
  expect_same_result(first, second);
}

}  // namespace
}  // namespace si
