// Fault-injection tests: deterministic seeded golden cases for node drains,
// job failures with bounded requeue, and estimate-wall kills — plus the
// guarantee that a disabled FaultModel leaves the simulator bit-identical to
// the fault-free implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

std::vector<Job> sample_jobs(std::size_t count = 160) {
  const Trace trace = make_trace("SDSC-SP2", 600, 17);
  Rng rng(23);
  return trace.sample_window(rng, count);
}

SequenceResult run_with(const FaultConfig& faults, int procs = 128,
                        std::vector<Job> jobs = sample_jobs()) {
  SimConfig config;
  config.faults = faults;
  Simulator sim(procs, config);
  PolicyPtr policy = make_policy("SJF");
  return sim.run(jobs, *policy);
}

FaultConfig stress_profile() {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 99;
  faults.drain_interval = 2000.0;
  faults.drain_fraction = 0.10;
  faults.drain_duration = 5000.0;
  faults.job_failure_prob = 0.10;
  faults.max_requeues = 2;
  faults.estimate_wall = true;
  return faults;
}

TEST(FaultInjection, DisabledModelIsBitIdenticalToDefaultConfig) {
  const SequenceResult base = run_with(FaultConfig{});
  // A config with every knob set but enabled == false must change nothing.
  FaultConfig off = stress_profile();
  off.enabled = false;
  const SequenceResult with_off = run_with(off);

  ASSERT_EQ(base.records.size(), with_off.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_EQ(base.records[i].start, with_off.records[i].start);
    EXPECT_EQ(base.records[i].finish, with_off.records[i].finish);
    EXPECT_EQ(base.records[i].requeues, 0);
    EXPECT_FALSE(base.records[i].killed);
    EXPECT_FALSE(base.records[i].wall_killed);
  }
  EXPECT_TRUE(base.fault_events.empty());
  EXPECT_TRUE(with_off.fault_events.empty());
  EXPECT_EQ(with_off.metrics.drain_events, 0u);
  EXPECT_EQ(with_off.metrics.requeues, 0u);
  EXPECT_DOUBLE_EQ(with_off.metrics.lost_node_seconds, 0.0);
}

TEST(FaultInjection, DeterministicAcrossRuns) {
  const SequenceResult a = run_with(stress_profile());
  const SequenceResult b = run_with(stress_profile());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].finish, b.records[i].finish);
    EXPECT_EQ(a.records[i].requeues, b.records[i].requeues);
    EXPECT_EQ(a.records[i].killed, b.records[i].killed);
    EXPECT_EQ(a.records[i].wall_killed, b.records[i].wall_killed);
  }
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  for (std::size_t i = 0; i < a.fault_events.size(); ++i) {
    EXPECT_EQ(a.fault_events[i].kind, b.fault_events[i].kind);
    EXPECT_EQ(a.fault_events[i].time, b.fault_events[i].time);
    EXPECT_EQ(a.fault_events[i].procs, b.fault_events[i].procs);
  }
  EXPECT_EQ(a.metrics.kills, b.metrics.kills);
  EXPECT_EQ(a.metrics.lost_node_seconds, b.metrics.lost_node_seconds);
}

TEST(FaultInjection, CertainFailureExhaustsRequeueBudgetThenKills) {
  FaultConfig faults;
  faults.enabled = true;
  faults.job_failure_prob = 1.0;
  faults.max_requeues = 2;
  const SequenceResult result = run_with(faults);

  for (const JobRecord& r : result.records) {
    EXPECT_TRUE(r.started());
    EXPECT_EQ(r.requeues, 2);
    EXPECT_TRUE(r.killed);
    EXPECT_FALSE(r.wall_killed);
  }
  EXPECT_EQ(result.metrics.kills, result.records.size());
  EXPECT_EQ(result.metrics.requeues, result.records.size() * 2);
  EXPECT_GT(result.metrics.lost_node_seconds, 0.0);
}

TEST(FaultInjection, RequeuesNeverExceedBudget) {
  const SequenceResult result = run_with(stress_profile());
  std::size_t requeues = 0;
  std::size_t kills = 0;
  for (const JobRecord& r : result.records) {
    EXPECT_LE(r.requeues, 2);
    // Only a job whose final attempt failed past the budget is killed.
    if (r.killed) {
      EXPECT_EQ(r.requeues, 2);
    }
    requeues += static_cast<std::size_t>(r.requeues);
    kills += r.killed ? 1u : 0u;
  }
  EXPECT_EQ(result.metrics.requeues, requeues);
  EXPECT_EQ(result.metrics.kills, kills);
}

TEST(FaultInjection, EstimateWallKillsAtTheEstimate) {
  // Jobs that overrun their estimate must be cut off exactly at it.
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    Job j;
    j.id = i;
    j.submit = 10.0 * i;
    j.run = 500.0;
    j.estimate = i % 2 == 0 ? 200.0 : 800.0;  // evens overrun, odds fit
    j.procs = 4;
    jobs.push_back(j);
  }
  FaultConfig faults;
  faults.enabled = true;
  faults.estimate_wall = true;
  const SequenceResult result = run_with(faults, 32, jobs);

  ASSERT_EQ(result.records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const JobRecord& r = result.records[i];
    if (i % 2 == 0) {
      EXPECT_TRUE(r.wall_killed);
      EXPECT_DOUBLE_EQ(r.finish - r.start, 200.0);
    } else {
      EXPECT_FALSE(r.wall_killed);
      EXPECT_DOUBLE_EQ(r.finish - r.start, 500.0);
    }
    EXPECT_FALSE(r.killed);
  }
  EXPECT_EQ(result.metrics.wall_kills, 2u);
}

TEST(FaultInjection, DrainsFireAndLoseCapacity) {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 7;
  faults.drain_interval = 1500.0;
  faults.drain_fraction = 0.10;
  faults.drain_duration = 4000.0;
  const SequenceResult result = run_with(faults);

  EXPECT_GT(result.metrics.drain_events, 0u);
  EXPECT_GT(result.metrics.lost_node_seconds, 0.0);
  EXPECT_FALSE(result.fault_events.empty());
  // Chronological log; recoveries never outnumber collected processors.
  int drained = 0;
  Time last = 0.0;
  for (const FaultEvent& e : result.fault_events) {
    EXPECT_GE(e.time, last);
    last = e.time;
    EXPECT_GT(e.procs, 0);
    drained += e.kind == FaultEvent::Kind::kDrain ? e.procs : -e.procs;
    EXPECT_GE(drained, 0);
  }
}

TEST(FaultInjection, UsageNeverExceedsCapacityTimeline) {
  const int total = 128;
  const SequenceResult result = run_with(stress_profile(), total);

  // Merge job usage and capacity changes into one sweep. At equal times the
  // simulator releases finished jobs, applies recoveries, collects drains,
  // and only then starts jobs — encode that order.
  struct Event {
    Time time;
    int order;  // 0 finish, 1 recover, 2 drain, 3 start
    int usage_delta;
    int capacity_delta;
  };
  std::vector<Event> events;
  for (const JobRecord& r : result.records) {
    events.push_back({r.start, 3, r.procs, 0});
    events.push_back({r.finish, 0, -r.procs, 0});
  }
  for (const FaultEvent& e : result.fault_events) {
    if (e.kind == FaultEvent::Kind::kDrain)
      events.push_back({e.time, 2, 0, -e.procs});
    else
      events.push_back({e.time, 1, 0, e.procs});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });
  int usage = 0;
  int capacity = total;
  for (const Event& e : events) {
    usage += e.usage_delta;
    capacity += e.capacity_delta;
    EXPECT_GE(usage, 0);
    EXPECT_LE(capacity, total);
    EXPECT_LE(usage, capacity) << "at t=" << e.time;
  }
  EXPECT_EQ(usage, 0);
}

TEST(FaultInjection, MetricCountersMatchRecords) {
  const SequenceResult result = run_with(stress_profile());
  std::size_t requeues = 0;
  std::size_t kills = 0;
  std::size_t wall_kills = 0;
  for (const JobRecord& r : result.records) {
    requeues += static_cast<std::size_t>(r.requeues);
    if (r.killed) ++kills;
    if (r.wall_killed) ++wall_kills;
  }
  EXPECT_EQ(result.metrics.requeues, requeues);
  EXPECT_EQ(result.metrics.kills, kills);
  EXPECT_EQ(result.metrics.wall_kills, wall_kills);
}

}  // namespace
}  // namespace si
