#include <gtest/gtest.h>

#include "sched/policies.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, double run, int procs,
             double estimate = -1.0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.run = run;
  j.estimate = estimate >= 0.0 ? estimate : run;
  j.procs = procs;
  return j;
}

SimConfig backfill_on() {
  SimConfig c;
  c.backfill = true;
  return c;
}

TEST(Backfill, ShortJobFillsHoleWithoutDelayingHead) {
  Simulator sim(4, backfill_on());
  FcfsPolicy fcfs;
  // job0 occupies 3 procs until t=100. job1 (4 procs) blocks with a
  // reservation at t=100. job2 (1 proc, 50 s) finishes by the reservation
  // and must backfill immediately.
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 100.0, 4),
       make_job(2, 2.0, 50.0, 1)},
      fcfs);
  EXPECT_DOUBLE_EQ(result.records[2].start, 2.0);    // backfilled
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);  // reservation held
}

TEST(Backfill, LongJobMayNotDelayReservation) {
  Simulator sim(4, backfill_on());
  FcfsPolicy fcfs;
  // Same shape, but the 1-proc candidate runs 500 s — past the t=100
  // reservation — and would steal the head's processors: it must wait.
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 100.0, 4),
       make_job(2, 2.0, 500.0, 1)},
      fcfs);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[2].start, 200.0);  // after the head
}

TEST(Backfill, ExtraNodesAllowLongBackfill) {
  Simulator sim(8, backfill_on());
  FcfsPolicy fcfs;
  // job0: 4 procs until t=100. job1 (head): 6 procs, reserved at t=100,
  // leaving extra = 8 - 6 = 2 at the shadow time. job2: 2 procs, 1000 s —
  // runs past the reservation but fits in the extra nodes: backfills now.
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 4), make_job(1, 1.0, 100.0, 6),
       make_job(2, 2.0, 1000.0, 2)},
      fcfs);
  EXPECT_DOUBLE_EQ(result.records[2].start, 2.0);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
}

TEST(Backfill, ReservationUsesEstimatesNotActuals) {
  Simulator sim(4, backfill_on());
  FcfsPolicy fcfs;
  // job0 is *estimated* to run 1000 s but actually finishes at t=100. The
  // backfill window therefore looks 1000 s long, so the 500 s 1-proc job
  // backfills at t=2 even though it runs past the actual completion.
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 3, /*estimate=*/1000.0),
       make_job(1, 1.0, 100.0, 4), make_job(2, 2.0, 500.0, 1)},
      fcfs);
  EXPECT_DOUBLE_EQ(result.records[2].start, 2.0);
  // The head starts once resources actually free (t=100 completion) is not
  // enough — job2 holds 1 proc until t=502.
  EXPECT_DOUBLE_EQ(result.records[1].start, 502.0);
}

TEST(Backfill, MultipleJobsBackfillInPriorityOrder) {
  Simulator sim(8, backfill_on());
  SjfPolicy sjf;
  // Head needs the whole machine at t=100. Three 1-proc short jobs all fit
  // the hole; they all backfill immediately.
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 5), make_job(1, 1.0, 100.0, 8, 100.0),
       make_job(2, 2.0, 50.0, 1, 90.0), make_job(3, 2.0, 40.0, 1, 90.0),
       make_job(4, 2.0, 30.0, 1, 90.0)},
      sjf);
  EXPECT_DOUBLE_EQ(result.records[2].start, 2.0);
  EXPECT_DOUBLE_EQ(result.records[3].start, 2.0);
  EXPECT_DOUBLE_EQ(result.records[4].start, 2.0);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
}

TEST(Backfill, DisabledMeansNoLeapfrogging) {
  Simulator sim(4, SimConfig{});  // backfill off
  FcfsPolicy fcfs;
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 100.0, 4),
       make_job(2, 2.0, 50.0, 1)},
      fcfs);
  EXPECT_DOUBLE_EQ(result.records[2].start, 200.0);  // waits for the head
}

TEST(Backfill, ImprovesUtilizationOnCongestedWorkload) {
  const Trace trace = make_trace("SDSC-SP2", 400, 21);
  std::vector<Job> jobs = trace.window(0, 256);
  SjfPolicy sjf;
  Simulator plain(trace.cluster_procs(), SimConfig{});
  Simulator easy(trace.cluster_procs(), backfill_on());
  const auto base = plain.run(jobs, sjf);
  const auto backfilled = easy.run(jobs, sjf);
  EXPECT_GE(backfilled.metrics.utilization, base.metrics.utilization * 0.999);
  EXPECT_LE(backfilled.metrics.avg_wait, base.metrics.avg_wait * 1.001);
}

TEST(Backfill, AllJobsStillComplete) {
  const Trace trace = make_trace("CTC-SP2", 400, 23);
  std::vector<Job> jobs = trace.window(50, 256);
  SjfPolicy sjf;
  Simulator sim(trace.cluster_procs(), backfill_on());
  const auto result = sim.run(jobs, sjf);
  for (const JobRecord& r : result.records) {
    EXPECT_TRUE(r.started());
    EXPECT_GE(r.start, r.submit);
  }
}

}  // namespace
}  // namespace si
