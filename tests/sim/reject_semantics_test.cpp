// Focused tests of the reject-and-retry semantics (§3.2) and of the
// InspectionView contents the simulator hands the inspector.
#include <gtest/gtest.h>

#include <vector>

#include "sched/policies.hpp"
#include "sim/simulator.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, double run, int procs,
             double estimate = -1.0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.run = run;
  j.estimate = estimate >= 0.0 ? estimate : run;
  j.procs = procs;
  return j;
}

/// Records every InspectionView it sees (flattened) and applies a scripted
/// decision sequence (missing entries = accept).
class RecordingInspector final : public Inspector {
 public:
  explicit RecordingInspector(std::vector<bool> script = {})
      : script_(std::move(script)) {}

  bool reject(const InspectionView& view) override {
    Seen seen;
    seen.now = view.now;
    seen.job_id = view.job->id;
    seen.job_rejections = view.job_rejections;
    seen.free_procs = view.free_procs;
    seen.backfillable = view.backfillable_jobs;
    seen.runnable = view.runnable();
    for (const Job* j : *view.waiting) seen.waiting_ids.push_back(j->id);
    views_.push_back(std::move(seen));
    const std::size_t index = views_.size() - 1;
    return index < script_.size() && script_[index];
  }

  struct Seen {
    Time now = 0.0;
    std::int64_t job_id = 0;
    int job_rejections = 0;
    int free_procs = 0;
    int backfillable = 0;
    bool runnable = false;
    std::vector<std::int64_t> waiting_ids;
  };
  const std::vector<Seen>& views() const { return views_; }

 private:
  std::vector<bool> script_;
  std::vector<Seen> views_;
};

TEST(RejectSemantics, RetryAfterExactlyMaxInterval) {
  SimConfig config;
  config.max_interval = 600.0;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  RecordingInspector inspector({true});  // reject once
  sim.run({make_job(0, 0.0, 100.0, 2)}, fcfs, &inspector);
  ASSERT_EQ(inspector.views().size(), 2u);
  EXPECT_DOUBLE_EQ(inspector.views()[0].now, 0.0);
  EXPECT_DOUBLE_EQ(inspector.views()[1].now, 600.0);
}

TEST(RejectSemantics, RejectionCountVisibleToInspector) {
  SimConfig config;
  config.max_rejection_times = 3;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  RecordingInspector inspector({true, true, true});
  sim.run({make_job(0, 0.0, 100.0, 2)}, fcfs, &inspector);
  ASSERT_EQ(inspector.views().size(), 3u);
  EXPECT_EQ(inspector.views()[0].job_rejections, 0);
  EXPECT_EQ(inspector.views()[1].job_rejections, 1);
  EXPECT_EQ(inspector.views()[2].job_rejections, 2);
  // Fourth inspection never happens: the budget forces acceptance.
}

TEST(RejectSemantics, CompletionCreatesEarlierRetry) {
  SimConfig config;
  config.max_interval = 600.0;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  // job0 runs 0..50 on the full cluster; job1's rejection at t=0 retries at
  // the completion (t=50), well before the 600 s bound.
  RecordingInspector inspector({false, true});
  sim.run({make_job(0, 0.0, 50.0, 4), make_job(1, 1.0, 10.0, 4)}, fcfs,
          &inspector);
  ASSERT_GE(inspector.views().size(), 3u);
  EXPECT_DOUBLE_EQ(inspector.views()[1].now, 1.0);   // rejected here
  EXPECT_DOUBLE_EQ(inspector.views()[2].now, 50.0);  // retried at completion
}

TEST(InspectionViewContents, WaitingListExcludesCandidate) {
  Simulator sim(2, SimConfig{});
  SjfPolicy sjf;
  RecordingInspector inspector;
  // Three jobs submitted together; cluster fits one at a time.
  sim.run({make_job(0, 0.0, 10.0, 2, 10.0), make_job(1, 0.0, 20.0, 2, 20.0),
           make_job(2, 0.0, 30.0, 2, 30.0)},
          sjf, &inspector);
  ASSERT_FALSE(inspector.views().empty());
  const auto& first = inspector.views().front();
  EXPECT_EQ(first.job_id, 0);  // SJF picks the shortest
  EXPECT_EQ(first.waiting_ids.size(), 2u);
  for (std::int64_t id : first.waiting_ids) EXPECT_NE(id, first.job_id);
}

TEST(InspectionViewContents, RunnableFlagMatchesFreeProcs) {
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  RecordingInspector inspector;
  sim.run({make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 10.0, 2)}, fcfs,
          &inspector);
  ASSERT_GE(inspector.views().size(), 2u);
  EXPECT_TRUE(inspector.views()[0].runnable);   // 3 <= 4
  EXPECT_FALSE(inspector.views()[1].runnable);  // 2 > 1 free
}

TEST(InspectionViewContents, BackfillableCountWhenBlocked) {
  SimConfig config;
  config.backfill = true;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  RecordingInspector inspector;
  // job0 occupies 3 procs until t=100. job1 (4 procs, FCFS head at t=1)
  // cannot run; job2 (1 proc, 50 s) would backfill under job1's
  // reservation. At job1's inspection, job2 is already waiting.
  sim.run({make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 100.0, 4),
           make_job(2, 1.0, 50.0, 1)},
          fcfs, &inspector);
  bool saw_blocked_head = false;
  for (const auto& v : inspector.views()) {
    if (v.job_id == 1 && !v.runnable) {
      saw_blocked_head = true;
      EXPECT_EQ(v.backfillable, 1);
    }
  }
  EXPECT_TRUE(saw_blocked_head);
}

TEST(InspectionViewContents, BackfillableZeroWhenDisabled) {
  Simulator sim(4, SimConfig{});  // backfill off
  FcfsPolicy fcfs;
  RecordingInspector inspector;
  sim.run({make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 100.0, 4),
           make_job(2, 1.0, 50.0, 1)},
          fcfs, &inspector);
  for (const auto& v : inspector.views()) EXPECT_EQ(v.backfillable, 0);
}

TEST(RejectSemantics, RejectingNonRunnableJobIsCheap) {
  // §4.4.1: "rejecting a job that needs to wait for resources does not
  // impact the performance" — the schedule with and without such a
  // rejection is identical.
  SimConfig config;
  config.max_interval = 600.0;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  const std::vector<Job> jobs = {make_job(0, 0.0, 100.0, 4),
                                 make_job(1, 1.0, 50.0, 4)};
  const auto base = sim.run(jobs, fcfs);
  RecordingInspector inspector({false, true});  // reject job1 once at t=1
  const auto inspected = sim.run(jobs, fcfs, &inspector);
  EXPECT_DOUBLE_EQ(base.records[1].start, inspected.records[1].start);
  EXPECT_DOUBLE_EQ(base.metrics.avg_bsld, inspected.metrics.avg_bsld);
}

}  // namespace
}  // namespace si
