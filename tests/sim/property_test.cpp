// Property tests: simulator invariants that must hold for every
// (trace, policy, backfill, inspector) combination — the schedule is
// feasible (no processor oversubscription at any instant), every job runs
// exactly once, completions use actual runtimes, and runs are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/rl_inspector.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

using PropertyParam = std::tuple<const char* /*trace*/, const char* /*policy*/,
                                 bool /*backfill*/, int /*inspector: 0=none,
                                 1=random, 2=always*/>;

class SimulatorProperties : public ::testing::TestWithParam<PropertyParam> {
 protected:
  SequenceResult run_case(int cluster_cap = 0) {
    const auto [trace_name, policy_name, backfill, inspector_kind] =
        GetParam();
    trace_ = make_trace(trace_name, 600, 17);
    policy_ = make_policy(policy_name);
    SimConfig config;
    config.backfill = backfill;
    config.max_rejection_times = 6;
    Simulator sim(cluster_cap > 0 ? cluster_cap : trace_.cluster_procs(),
                  config);
    Rng rng(23);
    jobs_ = trace_.sample_window(rng, 192);

    Rng inspector_rng(29);
    RandomInspector random_inspector(0.4, inspector_rng);
    AlwaysRejectInspector always_inspector;
    Inspector* inspector = nullptr;
    if (inspector_kind == 1) inspector = &random_inspector;
    if (inspector_kind == 2) inspector = &always_inspector;
    return sim.run(jobs_, *policy_, inspector);
  }

  Trace trace_;
  PolicyPtr policy_;
  std::vector<Job> jobs_;
};

TEST_P(SimulatorProperties, EveryJobRunsExactlyOnceWithActualRuntime) {
  const SequenceResult result = run_case();
  ASSERT_EQ(result.records.size(), jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobRecord& r = result.records[i];
    EXPECT_TRUE(r.started());
    EXPECT_GE(r.start, jobs_[i].submit);
    EXPECT_DOUBLE_EQ(r.finish, r.start + jobs_[i].run);
    EXPECT_EQ(r.procs, jobs_[i].procs);
  }
}

TEST_P(SimulatorProperties, NoProcessorOversubscription) {
  const SequenceResult result = run_case();
  // Sweep start/finish events and track concurrent usage.
  std::vector<std::pair<Time, int>> events;
  for (const JobRecord& r : result.records) {
    events.emplace_back(r.start, r.procs);
    events.emplace_back(r.finish, -r.procs);
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // releases before acquisitions at ties
  });
  int in_use = 0;
  for (const auto& [time, delta] : events) {
    in_use += delta;
    EXPECT_LE(in_use, trace_.cluster_procs()) << "at t=" << time;
    EXPECT_GE(in_use, 0);
  }
  EXPECT_EQ(in_use, 0);
}

TEST_P(SimulatorProperties, RejectionBudgetRespected) {
  const SequenceResult result = run_case();
  for (const JobRecord& r : result.records) {
    EXPECT_GE(r.rejections, 0);
    EXPECT_LE(r.rejections, 6);
  }
  EXPECT_EQ(result.metrics.rejections,
            static_cast<std::size_t>([&] {
              std::size_t total = 0;
              for (const JobRecord& r : result.records)
                total += static_cast<std::size_t>(r.rejections);
              return total;
            }()));
}

TEST_P(SimulatorProperties, MetricsAreConsistentWithRecords) {
  const SequenceResult result = run_case();
  double wait_sum = 0.0;
  double worst = 0.0;
  for (const JobRecord& r : result.records) {
    wait_sum += r.wait();
    worst = std::max(worst, r.bounded_slowdown());
  }
  EXPECT_NEAR(result.metrics.avg_wait,
              wait_sum / static_cast<double>(result.records.size()), 1e-9);
  EXPECT_DOUBLE_EQ(result.metrics.max_bsld, worst);
  EXPECT_GE(result.metrics.avg_bsld, 1.0);
  EXPECT_GT(result.metrics.utilization, 0.0);
  EXPECT_LE(result.metrics.utilization, 1.0 + 1e-12);
}

TEST_P(SimulatorProperties, DeterministicAcrossRuns) {
  const SequenceResult a = run_case();
  // Random inspectors draw from a fresh identically-seeded stream each
  // run_case(), so even they repeat exactly.
  const SequenceResult b = run_case();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].rejections, b.records[i].rejections);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorProperties,
    ::testing::Combine(::testing::Values("SDSC-SP2", "Lublin"),
                       ::testing::Values("FCFS", "SJF", "SAF", "F1"),
                       ::testing::Bool(), ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      const int inspector = std::get<3>(info.param);
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param) +
                         (std::get<2>(info.param) ? "_easy" : "_plain");
      name += inspector == 0 ? "_noinsp"
                             : (inspector == 1 ? "_random" : "_always");
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// The same invariants must survive fault injection: with drains shrinking
// capacity, jobs failing mid-run, and estimate walls, the schedule stays
// feasible against the *instantaneous* capacity, every job still terminates
// (normally or killed), and the run stays deterministic.
using FaultParam = std::tuple<const char* /*policy*/, bool /*backfill*/,
                              int /*inspector*/>;

class SimulatorFaultProperties : public ::testing::TestWithParam<FaultParam> {
 protected:
  SequenceResult run_case() {
    const auto [policy_name, backfill, inspector_kind] = GetParam();
    trace_ = make_trace("SDSC-SP2", 600, 17);
    policy_ = make_policy(policy_name);
    SimConfig config;
    config.backfill = backfill;
    config.max_rejection_times = 6;
    config.faults.enabled = true;
    config.faults.seed = 41;
    config.faults.drain_interval = 1800.0;
    config.faults.drain_fraction = 0.10;
    config.faults.drain_duration = 3600.0;
    config.faults.job_failure_prob = 0.05;
    config.faults.max_requeues = 2;
    config.faults.estimate_wall = true;
    Simulator sim(trace_.cluster_procs(), config);
    Rng rng(23);
    jobs_ = trace_.sample_window(rng, 192);

    Rng inspector_rng(29);
    RandomInspector random_inspector(0.4, inspector_rng);
    AlwaysRejectInspector always_inspector;
    Inspector* inspector = nullptr;
    if (inspector_kind == 1) inspector = &random_inspector;
    if (inspector_kind == 2) inspector = &always_inspector;
    return sim.run(jobs_, *policy_, inspector);
  }

  Trace trace_;
  PolicyPtr policy_;
  std::vector<Job> jobs_;
};

TEST_P(SimulatorFaultProperties, EveryJobTerminates) {
  const SequenceResult result = run_case();
  ASSERT_EQ(result.records.size(), jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobRecord& r = result.records[i];
    EXPECT_TRUE(r.started());
    EXPECT_GE(r.start, jobs_[i].submit);
    EXPECT_GE(r.finish, r.start);
    EXPECT_LE(r.requeues, 2);  // the profile's max_requeues
    if (!r.killed && !r.wall_killed) {
      EXPECT_DOUBLE_EQ(r.finish, r.start + jobs_[i].run);
    }
  }
}

TEST_P(SimulatorFaultProperties, NoOversubscriptionAgainstDrainedCapacity) {
  const SequenceResult result = run_case();
  // Capacity timeline reconstructed from the fault-event log; at equal
  // timestamps the simulator releases jobs, recovers, drains, then starts.
  struct Event {
    Time time;
    int order;
    int usage;
    int capacity;
  };
  std::vector<Event> events;
  for (const JobRecord& r : result.records) {
    events.push_back({r.start, 3, r.procs, 0});
    events.push_back({r.finish, 0, -r.procs, 0});
  }
  for (const FaultEvent& e : result.fault_events) {
    if (e.kind == FaultEvent::Kind::kDrain)
      events.push_back({e.time, 2, 0, -e.procs});
    else
      events.push_back({e.time, 1, 0, e.procs});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });
  int usage = 0;
  int capacity = trace_.cluster_procs();
  for (const Event& e : events) {
    usage += e.usage;
    capacity += e.capacity;
    EXPECT_LE(usage, capacity) << "at t=" << e.time;
    EXPECT_GE(usage, 0);
    EXPECT_LE(capacity, trace_.cluster_procs());
  }
  EXPECT_EQ(usage, 0);
}

TEST_P(SimulatorFaultProperties, DeterministicAcrossRuns) {
  const SequenceResult a = run_case();
  const SequenceResult b = run_case();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].start, b.records[i].start);
    EXPECT_DOUBLE_EQ(a.records[i].finish, b.records[i].finish);
    EXPECT_EQ(a.records[i].requeues, b.records[i].requeues);
    EXPECT_EQ(a.records[i].killed, b.records[i].killed);
  }
  EXPECT_EQ(a.fault_events.size(), b.fault_events.size());
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, SimulatorFaultProperties,
    ::testing::Combine(::testing::Values("FCFS", "SJF", "SAF", "F1"),
                       ::testing::Bool(), ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<FaultParam>& info) {
      const int inspector = std::get<2>(info.param);
      std::string name = std::string(std::get<0>(info.param)) +
                         (std::get<1>(info.param) ? "_easy" : "_plain");
      name += inspector == 0 ? "_noinsp"
                             : (inspector == 1 ? "_random" : "_always");
      return name;
    });

}  // namespace
}  // namespace si

