#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/check.hpp"

namespace si {
namespace {

JobRecord rec(Time submit, Time start, Time run, int procs) {
  JobRecord r;
  r.submit = submit;
  r.start = start;
  r.run = run;
  r.finish = start + run;
  r.procs = procs;
  return r;
}

TEST(MetricNames, RoundTrip) {
  EXPECT_EQ(metric_from_name("bsld"), Metric::kBsld);
  EXPECT_EQ(metric_from_name("wait"), Metric::kWait);
  EXPECT_EQ(metric_from_name("mbsld"), Metric::kMaxBsld);
  EXPECT_EQ(metric_name(Metric::kBsld), "bsld");
  EXPECT_EQ(metric_name(Metric::kWait), "wait");
  EXPECT_EQ(metric_name(Metric::kMaxBsld), "mbsld");
}

TEST(MetricNames, UnknownThrows) {
  EXPECT_THROW(metric_from_name("makespan"), std::out_of_range);
}

TEST(ComputeMetrics, EmptyRecords) {
  const SequenceMetrics m = compute_metrics({}, 4);
  EXPECT_EQ(m.jobs, 0u);
  EXPECT_DOUBLE_EQ(m.avg_wait, 0.0);
}

TEST(ComputeMetrics, SingleImmediateJob) {
  const SequenceMetrics m = compute_metrics({rec(0, 0, 100, 2)}, 4);
  EXPECT_DOUBLE_EQ(m.avg_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_bsld, 1.0);
  EXPECT_DOUBLE_EQ(m.max_bsld, 1.0);
  EXPECT_DOUBLE_EQ(m.makespan, 100.0);
  // 100 s * 2 procs / (4 procs * 100 s) = 0.5
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
}

TEST(ComputeMetrics, AveragesAcrossJobs) {
  const std::vector<JobRecord> rs = {rec(0, 0, 100, 1), rec(0, 100, 100, 1)};
  const SequenceMetrics m = compute_metrics(rs, 2);
  EXPECT_DOUBLE_EQ(m.avg_wait, 50.0);
  // bslds: 1 and (100+100)/100 = 2
  EXPECT_DOUBLE_EQ(m.avg_bsld, 1.5);
  EXPECT_DOUBLE_EQ(m.max_bsld, 2.0);
  EXPECT_DOUBLE_EQ(m.makespan, 200.0);
  EXPECT_DOUBLE_EQ(m.utilization, 200.0 / 400.0);
}

TEST(ComputeMetrics, MetricValueSelector) {
  SequenceMetrics m;
  m.avg_bsld = 1.0;
  m.avg_wait = 2.0;
  m.max_bsld = 3.0;
  EXPECT_DOUBLE_EQ(m.value(Metric::kBsld), 1.0);
  EXPECT_DOUBLE_EQ(m.value(Metric::kWait), 2.0);
  EXPECT_DOUBLE_EQ(m.value(Metric::kMaxBsld), 3.0);
}

TEST(ComputeMetrics, RejectionRatio) {
  SequenceMetrics m;
  EXPECT_DOUBLE_EQ(m.rejection_ratio(), 0.0);
  m.inspections = 10;
  m.rejections = 3;
  EXPECT_DOUBLE_EQ(m.rejection_ratio(), 0.3);
}

TEST(ComputeMetrics, UnstartedRecordIsContractViolation) {
  JobRecord r;
  r.submit = 0.0;  // never started
  EXPECT_THROW(compute_metrics({r}, 2), ContractViolation);
}

TEST(ComputeMetrics, NonPositiveClusterThrows) {
  EXPECT_THROW(compute_metrics({}, 0), ContractViolation);
}

TEST(ComputeMetrics, ShortJobBoundedByThreshold) {
  // 1-second job waiting 99 seconds: bsld = (99+1)/10 = 10.
  const SequenceMetrics m = compute_metrics({rec(0, 99, 1, 1)}, 1);
  EXPECT_DOUBLE_EQ(m.avg_bsld, 10.0);
}

}  // namespace
}  // namespace si
