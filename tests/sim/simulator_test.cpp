#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/rl_inspector.hpp"
#include "sched/policies.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, double run, int procs,
             double estimate = -1.0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.run = run;
  j.estimate = estimate >= 0.0 ? estimate : run;
  j.procs = procs;
  return j;
}

TEST(Simulator, SingleJobStartsImmediately) {
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  const auto result = sim.run({make_job(0, 0.0, 100.0, 2)}, fcfs);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_DOUBLE_EQ(result.records[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.records[0].finish, 100.0);
  EXPECT_DOUBLE_EQ(result.metrics.avg_wait, 0.0);
}

TEST(Simulator, JobWaitsForResources) {
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  // First job fills the cluster; second must wait for it.
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 4), make_job(1, 10.0, 50.0, 4)}, fcfs);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[1].wait(), 90.0);
}

TEST(Simulator, ParallelJobsShareCluster) {
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 2), make_job(1, 0.0, 100.0, 2)}, fcfs);
  EXPECT_DOUBLE_EQ(result.records[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.records[1].start, 0.0);
}

TEST(Simulator, SjfOrdersByEstimate) {
  Simulator sim(2, SimConfig{});
  SjfPolicy sjf;
  // Jobs 1 and 2 wait together while the cluster is busy until t=100; SJF
  // commits to the shorter one when they are first considered.
  const auto result =
      sim.run({make_job(0, 0.0, 100.0, 2), make_job(1, 1.0, 50.0, 2),
               make_job(2, 1.0, 10.0, 2)},
              sjf);
  EXPECT_DOUBLE_EQ(result.records[2].start, 100.0);   // shortest first
  EXPECT_DOUBLE_EQ(result.records[1].start, 110.0);
}

TEST(Simulator, HeadCommitmentFreezesQueueOrder) {
  // §3.2 semantics: once the base policy picks a job, the simulator waits
  // for its resources; a shorter job arriving later cannot leapfrog it
  // without backfilling. (SchedInspector's rejections exist precisely to
  // avoid such harmful commitments.)
  Simulator sim(2, SimConfig{});
  SjfPolicy sjf;
  const auto result =
      sim.run({make_job(0, 0.0, 100.0, 2), make_job(1, 1.0, 50.0, 2),
               make_job(2, 2.0, 10.0, 2)},
              sjf);
  // Job 1 was committed at t=1, before the shorter job 2 arrived.
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[2].start, 150.0);
}

TEST(Simulator, FcfsOrdersBySubmission) {
  Simulator sim(2, SimConfig{});
  FcfsPolicy fcfs;
  const auto result =
      sim.run({make_job(0, 0.0, 100.0, 2), make_job(1, 1.0, 50.0, 2),
               make_job(2, 2.0, 10.0, 2)},
              fcfs);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[2].start, 150.0);
}

TEST(Simulator, TieBrokenBySmallerId) {
  Simulator sim(2, SimConfig{});
  SjfPolicy sjf;
  // Jobs 1 and 2 have equal estimates; the paper breaks ties by smaller id.
  const auto result =
      sim.run({make_job(0, 0.0, 100.0, 2), make_job(1, 1.0, 50.0, 2),
               make_job(2, 2.0, 50.0, 2)},
              sjf);
  EXPECT_LT(result.records[1].start, result.records[2].start);
}

TEST(Simulator, HeadOfLineBlocksWithoutBackfill) {
  // The committed head (4 procs) blocks a later 1-proc job even though it
  // would fit — the §2.1 case (b) semantics.
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  const auto result = sim.run(
      {make_job(0, 0.0, 100.0, 3), make_job(1, 1.0, 500.0, 4),
       make_job(2, 2.0, 10.0, 1)},
      fcfs);
  // Job 1 starts when job 0 finishes; job 2 cannot leapfrog it.
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[2].start, 600.0);
}

TEST(Simulator, EstimatedTimeDoesNotAffectCompletion) {
  Simulator sim(2, SimConfig{});
  SjfPolicy sjf;
  // Estimate wildly exceeds actual runtime; completion uses the actual.
  const auto result =
      sim.run({make_job(0, 0.0, 10.0, 2, /*estimate=*/10000.0)}, sjf);
  EXPECT_DOUBLE_EQ(result.records[0].finish, 10.0);
}

TEST(Simulator, EstimateDrivesSjfOrdering) {
  Simulator sim(2, SimConfig{});
  SjfPolicy sjf;
  // Job 1 has the larger actual runtime but the smaller estimate: SJF must
  // trust the estimate.
  const auto result =
      sim.run({make_job(0, 0.0, 100.0, 2), make_job(1, 1.0, 500.0, 2, 10.0),
               make_job(2, 2.0, 20.0, 2, 50.0)},
              sjf);
  EXPECT_DOUBLE_EQ(result.records[1].start, 100.0);
  EXPECT_DOUBLE_EQ(result.records[2].start, 600.0);
}

TEST(Simulator, RejectionDelaysScheduling) {
  SimConfig config;
  config.max_interval = 600.0;
  config.max_rejection_times = 1;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  AlwaysRejectInspector inspector;
  const auto result = sim.run({make_job(0, 0.0, 100.0, 2)}, fcfs, &inspector);
  // One rejection, then the budget forces acceptance at t = 600.
  EXPECT_EQ(result.records[0].rejections, 1);
  EXPECT_DOUBLE_EQ(result.records[0].start, 600.0);
  EXPECT_EQ(result.metrics.rejections, 1u);
  EXPECT_EQ(result.metrics.inspections, 1u);
}

TEST(Simulator, MaxRejectionTimesBoundsDelay) {
  SimConfig config;
  config.max_interval = 600.0;
  config.max_rejection_times = 72;
  Simulator sim(4, config);
  FcfsPolicy fcfs;
  AlwaysRejectInspector inspector;
  const auto result = sim.run({make_job(0, 0.0, 100.0, 2)}, fcfs, &inspector);
  EXPECT_EQ(result.records[0].rejections, 72);
  // 72 rejections x 600 s = 43200 s (12 h), the paper's bound.
  EXPECT_DOUBLE_EQ(result.records[0].start, 43200.0);
}

TEST(Simulator, RejectionRetriesEarlyOnArrival) {
  SimConfig config;
  config.max_interval = 600.0;
  Simulator sim(4, config);
  SjfPolicy sjf;
  // Reject the first decision only; a new arrival at t=50 creates the next
  // scheduling point before the 600 s retry bound.
  class RejectOnce final : public Inspector {
   public:
    bool reject(const InspectionView&) override { return count_++ == 0; }

   private:
    int count_ = 0;
  };
  RejectOnce inspector;
  Simulator sim2(2, config);
  const auto result = sim2.run(
      {make_job(0, 0.0, 100.0, 2), make_job(1, 50.0, 10.0, 2)}, sjf,
      &inspector);
  // At t=50 the shorter job 1 is selected and accepted.
  EXPECT_DOUBLE_EQ(result.records[1].start, 50.0);
  EXPECT_DOUBLE_EQ(result.records[0].start, 60.0);
}

TEST(Simulator, NoInspectorMeansNoInspections) {
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  const auto result = sim.run({make_job(0, 0.0, 10.0, 1)}, fcfs);
  EXPECT_EQ(result.metrics.inspections, 0u);
  EXPECT_EQ(result.metrics.rejections, 0u);
}

TEST(Simulator, AllJobsComplete) {
  Simulator sim(8, SimConfig{});
  SjfPolicy sjf;
  const Trace trace = make_trace("SDSC-SP2", 300, 5);
  std::vector<Job> jobs = trace.window(0, 200);
  for (Job& j : jobs) j.procs = std::min(j.procs, 8);
  const auto result = sim.run(jobs, sjf);
  for (const JobRecord& r : result.records) {
    EXPECT_TRUE(r.started());
    EXPECT_GE(r.start, r.submit);
    EXPECT_DOUBLE_EQ(r.finish, r.start + r.run);
  }
}

TEST(Simulator, UtilizationInUnitInterval) {
  Simulator sim(8, SimConfig{});
  SjfPolicy sjf;
  const Trace trace = make_trace("HPC2N", 300, 5);
  std::vector<Job> jobs = trace.window(10, 150);
  for (Job& j : jobs) j.procs = std::min(j.procs, 8);
  const auto result = sim.run(jobs, sjf);
  EXPECT_GT(result.metrics.utilization, 0.0);
  EXPECT_LE(result.metrics.utilization, 1.0);
}

TEST(Simulator, DeterministicForSameInput) {
  Simulator sim(16, SimConfig{});
  SjfPolicy sjf;
  const Trace trace = make_trace("CTC-SP2", 300, 5);
  std::vector<Job> jobs = trace.window(0, 100);
  for (Job& j : jobs) j.procs = std::min(j.procs, 16);
  const auto a = sim.run(jobs, sjf);
  const auto b = sim.run(jobs, sjf);
  EXPECT_DOUBLE_EQ(a.metrics.avg_bsld, b.metrics.avg_bsld);
  EXPECT_DOUBLE_EQ(a.metrics.avg_wait, b.metrics.avg_wait);
}

TEST(Simulator, RejectsInvalidInputs) {
  Simulator sim(4, SimConfig{});
  FcfsPolicy fcfs;
  EXPECT_THROW(sim.run({}, fcfs), ContractViolation);
  EXPECT_THROW(sim.run({make_job(0, 0.0, 1.0, 8)}, fcfs), ContractViolation);
  // Unsorted submits
  EXPECT_THROW(sim.run({make_job(0, 10.0, 1.0, 1), make_job(1, 0.0, 1.0, 1)},
                       fcfs),
               ContractViolation);
}

TEST(Simulator, RejectsBadConfig) {
  EXPECT_THROW(Simulator(0, SimConfig{}), ContractViolation);
  SimConfig bad;
  bad.max_interval = 0.0;
  EXPECT_THROW(Simulator(4, bad), ContractViolation);
}

TEST(Simulator, RandomInspectorStillCompletesEverything) {
  SimConfig config;
  config.max_rejection_times = 5;
  Simulator sim(16, config);
  SjfPolicy sjf;
  Rng rng(3);
  RandomInspector inspector(0.5, rng);
  const Trace trace = make_trace("SDSC-SP2", 200, 9);
  std::vector<Job> jobs = trace.window(0, 120);
  for (Job& j : jobs) j.procs = std::min(j.procs, 16);
  const auto result = sim.run(jobs, sjf, &inspector);
  for (const JobRecord& r : result.records) {
    EXPECT_TRUE(r.started());
    EXPECT_LE(r.rejections, 5);
  }
  EXPECT_GT(result.metrics.rejections, 0u);
}

}  // namespace
}  // namespace si
