// Golden-file test for lenient SWF ingestion: one fixed "messy archive"
// corpus exercising every degradation path — truncated records, records
// that do not parse at all, negative runtimes (with and without a
// repairable request time), negative submit times, zero processor counts,
// oversized requests, and out-of-order submits — pinned to the exact jobs,
// ordering, and ingest-report counters that must come out. Any change to
// the lenient repair rules shows up here field by field.
#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace si {
namespace {

// Line numbers (used by the error-message assertions):
//  1-2  header comments
//  3    clean record: req procs 8, request 600 s, user 7, queue 2
//  4    truncated to 5 fields: falls back to alloc procs, estimate = run
//  5    unparsable garbage token -> skipped
//  6    negative runtime with a request time -> repaired from the request
//  7    negative submit time -> clamped to 0
//  8    negative runtime, no request -> unrepairable, dropped as invalid
//  9    zero processor count -> skipped
//  10   requests more processors than the cluster -> clamped to MaxProcs
//  11   submits *earlier* than every preceding record -> sorted into place
const char kMessyCorpus[] =
    "; messy archive excerpt (see swf_lenient_golden_test.cpp)\n"
    "; MaxProcs: 64\n"
    "1 100.0 -1 300.0 4 -1 -1 8 600.0 -1 1 7 -1 -1 2 -1 -1 -1\n"
    "2 50.0 -1 200.0 4\n"
    "3 banana 0 0 0\n"
    "4 400.0 -1 -1.0 8 -1 -1 8 900.0\n"
    "5 -30.0 -1 120.0 2 -1 -1 2 120.0\n"
    "6 500.0 -1 -1.0 4\n"
    "7 10.0 -1 60.0 0 -1 -1 0 60.0\n"
    "8 20.0 -1 80.0 128 -1 -1 128 80.0\n"
    "9 5.0 -1 40.0 1\n";

struct GoldenJob {
  std::int64_t id;
  double submit;
  double run;
  double estimate;
  int procs;
  int user;
  int queue;
};

// Expected output, in the submit-sorted order the Trace guarantees. The
// Trace constructor rebases ids to 0..n-1 (and submits to start at 0), so
// the comments carry each row's original SWF job number.
const GoldenJob kGoldenJobs[] = {
    {0, 0.0, 120.0, 120.0, 2, 0, 0},   // swf 5: submit clamped from -30
    {1, 5.0, 40.0, 40.0, 1, 0, 0},     // swf 9: sorted ahead of earlier lines
    {2, 20.0, 80.0, 80.0, 64, 0, 0},   // swf 8: procs clamped 128 -> 64
    {3, 50.0, 200.0, 200.0, 4, 0, 0},  // swf 2: truncated, est = run
    {4, 100.0, 300.0, 600.0, 8, 7, 2},  // swf 1: the clean record
    {5, 400.0, 900.0, 900.0, 8, 0, 0},  // swf 4: run repaired from request
};

Trace ingest(SwfIngestReport* report) {
  SwfOptions options;
  options.mode = SwfMode::kLenient;
  return read_swf_text(kMessyCorpus, "messy", options, report);
}

TEST(SwfLenientGolden, JobsMatchFieldByField) {
  const Trace trace = ingest(nullptr);
  EXPECT_EQ(trace.cluster_procs(), 64);
  ASSERT_EQ(trace.jobs().size(), std::size(kGoldenJobs));
  for (std::size_t i = 0; i < std::size(kGoldenJobs); ++i) {
    const GoldenJob& want = kGoldenJobs[i];
    const Job& got = trace.jobs()[i];
    SCOPED_TRACE("job index " + std::to_string(i));
    EXPECT_EQ(got.id, want.id);
    EXPECT_DOUBLE_EQ(got.submit, want.submit);
    EXPECT_DOUBLE_EQ(got.run, want.run);
    EXPECT_DOUBLE_EQ(got.estimate, want.estimate);
    EXPECT_EQ(got.procs, want.procs);
    EXPECT_EQ(got.user, want.user);
    EXPECT_EQ(got.queue, want.queue);
  }
}

TEST(SwfLenientGolden, ReportCountersMatchExactly) {
  SwfIngestReport report;
  ingest(&report);
  EXPECT_EQ(report.record_lines, 9u);
  EXPECT_EQ(report.jobs, 6u);
  EXPECT_EQ(report.skipped, 2u);          // garbage line + zero procs
  EXPECT_EQ(report.repaired, 2u);         // negative run + negative submit
  EXPECT_EQ(report.dropped_invalid, 1u);  // unrepairable negative run
}

TEST(SwfLenientGolden, ErrorsNameTheOffendingLines) {
  SwfIngestReport report;
  ingest(&report);
  const std::string all = [&report] {
    std::string joined;
    for (const std::string& e : report.errors) joined += e + "\n";
    return joined;
  }();
  EXPECT_NE(all.find("line 5: unparsable record"), std::string::npos) << all;
  EXPECT_NE(all.find("line 6: negative run time repaired from request"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("line 7: negative submit time clamped to 0"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("line 9: no usable processor count"), std::string::npos)
      << all;
}

TEST(SwfLenientGolden, OutOfOrderSubmitsComeOutSorted) {
  const Trace trace = ingest(nullptr);
  for (std::size_t i = 1; i < trace.jobs().size(); ++i)
    EXPECT_LE(trace.jobs()[i - 1].submit, trace.jobs()[i].submit) << i;
}

TEST(SwfLenientGolden, StrictModeDiesAtTheFirstBadLineInstead) {
  SwfOptions strict;  // default mode
  try {
    read_swf_text(kMessyCorpus, "messy", strict);
    FAIL() << "strict ingestion accepted the messy corpus";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST(SwfLenientGolden, SummaryReflectsTheGoldenCounters) {
  SwfIngestReport report;
  ingest(&report);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("6 jobs from 9 records"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("2 skipped"), std::string::npos) << summary;
  EXPECT_NE(summary.find("2 repaired"), std::string::npos) << summary;
  EXPECT_NE(summary.find("1 dropped invalid"), std::string::npos) << summary;
}

}  // namespace
}  // namespace si
