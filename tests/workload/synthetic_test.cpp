#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace si {
namespace {

class Table2Traces : public ::testing::TestWithParam<const char*> {};

TEST_P(Table2Traces, CalibratedMeansHitTargets) {
  const SyntheticTraceSpec spec = table2_spec(GetParam());
  const Trace t = generate_synthetic(spec, 6000, 42);
  const TraceStats s = t.stats();
  // Inter-arrival is calibrated exactly on the sample mean.
  EXPECT_NEAR(s.mean_interarrival, spec.target_mean_interarrival,
              spec.target_mean_interarrival * 0.01);
  // Estimates are calibrated before clamping; allow 5%.
  EXPECT_NEAR(s.mean_estimate, spec.target_mean_estimate,
              spec.target_mean_estimate * 0.05);
  // Size is discrete; the bisection lands within 10%.
  EXPECT_NEAR(s.mean_procs, spec.target_mean_procs,
              spec.target_mean_procs * 0.10);
  EXPECT_EQ(s.cluster_procs, spec.cluster_procs);
}

TEST_P(Table2Traces, JobsAreValid) {
  const SyntheticTraceSpec spec = table2_spec(GetParam());
  const Trace t = generate_synthetic(spec, 2000, 1);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.procs, 1);
    EXPECT_LE(j.procs, spec.cluster_procs);
    EXPECT_GT(j.run, 0.0);
    EXPECT_GE(j.estimate, j.run);  // slack factor >= 1
    EXPECT_GE(j.user, 0);
    EXPECT_LT(j.user, spec.num_users);
    EXPECT_GE(j.queue, 0);
    EXPECT_LT(j.queue, spec.num_queues);
  }
}

TEST_P(Table2Traces, DeterministicInSeed) {
  const SyntheticTraceSpec spec = table2_spec(GetParam());
  const Trace a = generate_synthetic(spec, 500, 9);
  const Trace b = generate_synthetic(spec, 500, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_DOUBLE_EQ(a.jobs()[i].run, b.jobs()[i].run);
    EXPECT_EQ(a.jobs()[i].procs, b.jobs()[i].procs);
    EXPECT_EQ(a.jobs()[i].user, b.jobs()[i].user);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperTraces, Table2Traces,
                         ::testing::Values("CTC-SP2", "SDSC-SP2", "HPC2N"));

TEST(Synthetic, UnknownTable2NameThrows) {
  EXPECT_THROW(table2_spec("Lublin"), std::out_of_range);
  EXPECT_THROW(table2_spec("nope"), std::out_of_range);
}

TEST(Synthetic, ZipfUsersAreSkewed) {
  const SyntheticTraceSpec spec = table2_spec("SDSC-SP2");
  const Trace t = generate_synthetic(spec, 6000, 5);
  std::vector<int> counts(static_cast<std::size_t>(spec.num_users), 0);
  for (const Job& j : t.jobs()) ++counts[static_cast<std::size_t>(j.user)];
  // The busiest user should dominate a uniform share by a wide margin.
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  const double uniform_share = 6000.0 / spec.num_users;
  EXPECT_GT(max_count, 3.0 * uniform_share);
}

TEST(Synthetic, BurstyArrivalsHaveHighCv) {
  // Gamma gaps with shape < 1 should give coefficient of variation > 1.
  const SyntheticTraceSpec spec = table2_spec("SDSC-SP2");
  const Trace t = generate_synthetic(spec, 4000, 11);
  double mean = 0.0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < t.size(); ++i) {
    gaps.push_back(t.jobs()[i].submit - t.jobs()[i - 1].submit);
    mean += gaps.back();
  }
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  EXPECT_GT(std::sqrt(var) / mean, 1.0);
}

TEST(Synthetic, SmallJobCountStillWorks) {
  const SyntheticTraceSpec spec = table2_spec("HPC2N");
  const Trace t = generate_synthetic(spec, 2, 3);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Synthetic, RejectsDegenerateRequests) {
  SyntheticTraceSpec spec = table2_spec("HPC2N");
  EXPECT_ANY_THROW(generate_synthetic(spec, 1, 3));
  spec.target_mean_interarrival = 0.0;
  EXPECT_ANY_THROW(generate_synthetic(spec, 10, 3));
}

}  // namespace
}  // namespace si
