// Property sweeps over the workload substrate: every registry trace
// satisfies the Trace invariants, SWF round-trips, and the parser survives
// arbitrary junk without crashing.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "workload/registry.hpp"
#include "workload/swf.hpp"

namespace si {
namespace {

class TraceProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceProperties, InvariantsHold) {
  const Trace t = make_trace(GetParam(), 1500, 99);
  ASSERT_EQ(t.size(), 1500u);
  EXPECT_DOUBLE_EQ(t.jobs().front().submit, 0.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Job& j = t.jobs()[i];
    EXPECT_EQ(j.id, static_cast<std::int64_t>(i));
    EXPECT_GE(j.procs, 1);
    EXPECT_LE(j.procs, t.cluster_procs());
    EXPECT_GT(j.run, 0.0);
    EXPECT_GE(j.estimate, j.run * 0.999);
    if (i > 0) EXPECT_GE(j.submit, t.jobs()[i - 1].submit);
  }
}

TEST_P(TraceProperties, SwfRoundTripPreservesScheduleInputs) {
  const Trace original = make_trace(GetParam(), 400, 7);
  const Trace restored =
      read_swf_text(write_swf_text(original), original.name());
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.cluster_procs(), original.cluster_procs());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.jobs()[i].submit, original.jobs()[i].submit);
    EXPECT_DOUBLE_EQ(restored.jobs()[i].run, original.jobs()[i].run);
    EXPECT_DOUBLE_EQ(restored.jobs()[i].estimate,
                     original.jobs()[i].estimate);
    EXPECT_EQ(restored.jobs()[i].procs, original.jobs()[i].procs);
  }
}

TEST_P(TraceProperties, SplitPartitionsWithoutLoss) {
  const Trace t = make_trace(GetParam(), 1000, 3);
  const auto [train, test] = t.split(0.2);
  EXPECT_EQ(train.size() + test.size(), t.size());
  EXPECT_EQ(train.size(), 200u);
  // Window sampling from either split stays in bounds.
  Rng rng(5);
  EXPECT_EQ(train.sample_window(rng, 128).size(), 128u);
  EXPECT_EQ(test.sample_window(rng, 256).size(), 256u);
}

INSTANTIATE_TEST_SUITE_P(AllTraces, TraceProperties,
                         ::testing::Values("CTC-SP2", "SDSC-SP2", "HPC2N",
                                           "Lublin"));

TEST(SwfFuzz, RandomJunkNeverCrashes) {
  Rng rng(123);
  const std::string alphabet =
      "0123456789 .-;eE+\tabcXYZ\n";
  for (int round = 0; round < 200; ++round) {
    std::string text = "; MaxProcs: 64\n";
    const int len = static_cast<int>(rng.uniform_index(400));
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.uniform_index(alphabet.size())];
    // Must either parse into a valid trace or throw a std::exception —
    // never crash or corrupt.
    try {
      const Trace t = read_swf_text(text, "fuzz");
      for (const Job& j : t.jobs()) {
        EXPECT_GE(j.procs, 1);
        EXPECT_LE(j.procs, 64);
      }
    } catch (const std::exception&) {
      // acceptable outcome for malformed input
    }
  }
}

TEST(SwfFuzz, NumericEdgeValuesHandled) {
  // Huge, tiny, and scientific-notation fields.
  const std::string text =
      "; MaxProcs: 128\n"
      "1 0 -1 1e5 4 -1 -1 4 2e5 -1 1 10 -1 -1 2 -1 -1 -1\n"
      "2 1e3 -1 0.5 1 -1 -1 1 1 -1 1 11 -1 -1 1 -1 -1 -1\n";
  const Trace t = read_swf_text(text, "edge");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.jobs()[0].run, 1e5);
  EXPECT_DOUBLE_EQ(t.jobs()[1].run, 0.5);
}

}  // namespace
}  // namespace si
