#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace si {
namespace {

constexpr const char* kSample = R"(; Comment line
; MaxProcs: 128
; UnixStartTime: 0
1 0 -1 100 4 -1 -1 4 200 -1 1 10 -1 -1 2 -1 -1 -1
2 50 -1 300 8 -1 -1 8 600 -1 1 11 -1 -1 1 -1 -1 -1
)";

TEST(Swf, ParsesHeaderMaxProcs) {
  const Trace t = read_swf_text(kSample, "sample");
  EXPECT_EQ(t.cluster_procs(), 128);
}

TEST(Swf, ParsesJobFields) {
  const Trace t = read_swf_text(kSample, "sample");
  ASSERT_EQ(t.size(), 2u);
  const Job& j0 = t.jobs()[0];
  EXPECT_DOUBLE_EQ(j0.submit, 0.0);
  EXPECT_DOUBLE_EQ(j0.run, 100.0);
  EXPECT_DOUBLE_EQ(j0.estimate, 200.0);  // requested time field
  EXPECT_EQ(j0.procs, 4);                // requested processors field
  EXPECT_EQ(j0.user, 10);
  EXPECT_EQ(j0.queue, 2);
}

TEST(Swf, UsesAllocatedProcsWhenRequestedMissing) {
  const std::string text = "; MaxProcs: 64\n1 0 -1 100 4 -1 -1 -1 -1 -1 1\n";
  const Trace t = read_swf_text(text, "x");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.jobs()[0].procs, 4);
  // estimate falls back to actual runtime
  EXPECT_DOUBLE_EQ(t.jobs()[0].estimate, 100.0);
}

TEST(Swf, DropsInvalidRecordsByDefault) {
  const std::string text =
      "; MaxProcs: 64\n"
      "1 0 -1 -1 4 -1 -1 4 100 -1 0\n"   // negative runtime: cancelled
      "2 10 -1 50 0 -1 -1 0 100 -1 1\n"  // zero processors
      "3 20 -1 50 2 -1 -1 2 100 -1 1\n";
  const Trace t = read_swf_text(text, "x");
  EXPECT_EQ(t.size(), 1u);
}

TEST(Swf, KeepsInvalidWhenAskedButStillValidates) {
  SwfOptions opts;
  opts.drop_invalid = false;
  const std::string text = "; MaxProcs: 64\n1 0 -1 50 0 -1 -1 0 100 -1 1\n";
  // Zero-processor jobs violate the Trace invariant.
  EXPECT_ANY_THROW(read_swf_text(text, "x", opts));
}

TEST(Swf, ClampsOversizedRequests) {
  const std::string text = "; MaxProcs: 8\n1 0 -1 50 16 -1 -1 16 100 -1 1\n";
  const Trace t = read_swf_text(text, "x");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.jobs()[0].procs, 8);
}

TEST(Swf, NoHeaderUsesDefaultClusterProcs) {
  SwfOptions opts;
  opts.default_cluster_procs = 32;
  const std::string text = "1 0 -1 50 4 -1 -1 4 100 -1 1\n";
  const Trace t = read_swf_text(text, "x", opts);
  EXPECT_EQ(t.cluster_procs(), 32);
}

TEST(Swf, NoHeaderNoDefaultThrows) {
  const std::string text = "1 0 -1 50 4 -1 -1 4 100 -1 1\n";
  EXPECT_THROW(read_swf_text(text, "x"), std::runtime_error);
}

TEST(Swf, MalformedRecordThrows) {
  const std::string text = "; MaxProcs: 8\nnot numbers at all\n";
  EXPECT_THROW(read_swf_text(text, "x"), std::runtime_error);
}

TEST(Swf, TooFewFieldsThrows) {
  const std::string text = "; MaxProcs: 8\n1 0 3\n";
  EXPECT_THROW(read_swf_text(text, "x"), std::runtime_error);
}

TEST(Swf, MaxNodesHeaderAlsoAccepted) {
  const std::string text = "; MaxNodes: 100\n1 0 -1 50 4 -1 -1 4 100 -1 1\n";
  EXPECT_EQ(read_swf_text(text, "x").cluster_procs(), 100);
}

TEST(Swf, RoundTripPreservesJobs) {
  const Trace original = read_swf_text(kSample, "sample");
  const std::string text = write_swf_text(original);
  const Trace restored = read_swf_text(text, "sample");
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.cluster_procs(), original.cluster_procs());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.jobs()[i].submit, original.jobs()[i].submit);
    EXPECT_DOUBLE_EQ(restored.jobs()[i].run, original.jobs()[i].run);
    EXPECT_DOUBLE_EQ(restored.jobs()[i].estimate, original.jobs()[i].estimate);
    EXPECT_EQ(restored.jobs()[i].procs, original.jobs()[i].procs);
    EXPECT_EQ(restored.jobs()[i].user, original.jobs()[i].user);
    EXPECT_EQ(restored.jobs()[i].queue, original.jobs()[i].queue);
  }
}

TEST(Swf, LoadMissingFileThrows) {
  EXPECT_THROW(load_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

TEST(Swf, BlankLinesAndWhitespaceSkipped) {
  const std::string text =
      "; MaxProcs: 8\n\n   \n  1 0 -1 50 4 -1 -1 4 100 -1 1\n";
  EXPECT_EQ(read_swf_text(text, "x").size(), 1u);
}

// A deliberately messy corpus: one good record, one unparsable line, one
// with too few fields, one negative submit, one negative runtime with a
// usable request, and one with no processor count at all.
constexpr const char* kMessy =
    "; MaxProcs: 64\n"
    "1 0 -1 100 4 -1 -1 4 200 -1 1\n"
    "garbage line here\n"
    "2 10 3\n"
    "3 -50 -1 100 4 -1 -1 4 200 -1 1\n"
    "4 20 -1 -1 4 -1 -1 4 300 -1 0\n"
    "5 30 -1 100 -1 -1 -1 -1 -1 -1 1\n";

TEST(Swf, LenientSkipsAndRepairsMalformedRecords) {
  SwfOptions opts;
  opts.mode = SwfMode::kLenient;
  SwfIngestReport report;
  const Trace t = read_swf_text(kMessy, "messy", opts, &report);

  // Jobs 1, 3 (submit clamped), and 4 (run repaired) survive.
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(report.record_lines, 6u);
  EXPECT_EQ(report.jobs, 3u);
  EXPECT_EQ(report.skipped, 3u);    // garbage, too-few-fields, no procs
  EXPECT_EQ(report.repaired, 2u);   // negative submit, negative runtime
  EXPECT_EQ(report.errors.size(), 5u);

  EXPECT_DOUBLE_EQ(t.jobs()[1].submit, 0.0);      // clamped from -50
  EXPECT_DOUBLE_EQ(t.jobs()[2].run, 300.0);       // repaired from request
  EXPECT_DOUBLE_EQ(t.jobs()[2].estimate, 300.0);
}

TEST(Swf, LenientErrorsCarryLineNumbers) {
  SwfOptions opts;
  opts.mode = SwfMode::kLenient;
  SwfIngestReport report;
  read_swf_text(kMessy, "messy", opts, &report);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].find("line 3"), std::string::npos);
  EXPECT_NE(report.errors[0].find("unparsable"), std::string::npos);
}

TEST(Swf, LenientSummaryMentionsCounts) {
  SwfOptions opts;
  opts.mode = SwfMode::kLenient;
  SwfIngestReport report;
  read_swf_text(kMessy, "messy", opts, &report);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("3 jobs"), std::string::npos);
  EXPECT_NE(summary.find("6 records"), std::string::npos);
  EXPECT_NE(summary.find("3 skipped"), std::string::npos);
  EXPECT_NE(summary.find("2 repaired"), std::string::npos);
}

TEST(Swf, StrictStillThrowsOnMessyCorpusWithLineNumber) {
  try {
    read_swf_text(kMessy, "messy");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Swf, LenientMatchesStrictOnCleanInput) {
  SwfOptions lenient;
  lenient.mode = SwfMode::kLenient;
  SwfIngestReport report;
  const Trace a = read_swf_text(kSample, "sample");
  const Trace b = read_swf_text(kSample, "sample", lenient, &report);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_DOUBLE_EQ(a.jobs()[i].run, b.jobs()[i].run);
    EXPECT_EQ(a.jobs()[i].procs, b.jobs()[i].procs);
  }
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_TRUE(report.errors.empty());
}

TEST(Swf, ReportCountsDroppedInvalidRecords) {
  SwfOptions opts;
  opts.mode = SwfMode::kLenient;
  SwfIngestReport report;
  const std::string text =
      "; MaxProcs: 64\n"
      "1 0 -1 -1 4 -1 -1 4 -1 -1 0\n"  // negative run, no request: invalid
      "2 10 -1 50 2 -1 -1 2 100 -1 1\n";
  const Trace t = read_swf_text(text, "x", opts, &report);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(report.dropped_invalid, 1u);
}

}  // namespace
}  // namespace si
