#include "workload/lublin.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace si {
namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

TEST(Lublin, DeterministicInSeed) {
  LublinParams p;
  const Trace a = generate_lublin(p, 200, 7);
  const Trace b = generate_lublin(p, 200, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_DOUBLE_EQ(a.jobs()[i].run, b.jobs()[i].run);
    EXPECT_EQ(a.jobs()[i].procs, b.jobs()[i].procs);
  }
}

TEST(Lublin, DifferentSeedsDiffer) {
  LublinParams p;
  const Trace a = generate_lublin(p, 50, 1);
  const Trace b = generate_lublin(p, 50, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_diff |= a.jobs()[i].run != b.jobs()[i].run;
  EXPECT_TRUE(any_diff);
}

TEST(Lublin, SizesWithinCluster) {
  LublinParams p;
  p.cluster_procs = 256;
  const Trace t = generate_lublin(p, 2000, 3);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.procs, 1);
    EXPECT_LE(j.procs, 256);
  }
}

TEST(Lublin, SerialFractionNearParameter) {
  LublinParams p;
  Rng rng(11);
  int serial = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    if (lublin_sample_size(p, rng) == 1) ++serial;
  // Serial probability 0.244 plus a few parallel draws rounding down to 1.
  EXPECT_NEAR(static_cast<double>(serial) / kN, p.serial_prob, 0.05);
}

TEST(Lublin, PowerOfTwoBias) {
  LublinParams p;
  Rng rng(13);
  int pow2 = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    if (is_power_of_two(lublin_sample_size(p, rng))) ++pow2;
  // Power-of-two rounding applies to most parallel jobs, and serial jobs
  // (size 1) are powers of two as well.
  EXPECT_GT(static_cast<double>(pow2) / kN, 0.6);
}

TEST(Lublin, RuntimesArePositiveAndBounded) {
  LublinParams p;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double r = lublin_sample_runtime(p, 4, rng);
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 7.0 * 24.0 * 3600.0);
  }
}

TEST(Lublin, RuntimeScaleIsMultiplicative) {
  LublinParams p1;
  LublinParams p2;
  p2.runtime_scale = 2.0;
  Rng r1(19);
  Rng r2(19);
  double sum1 = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < 5000; ++i) {
    sum1 += lublin_sample_runtime(p1, 8, r1);
    sum2 += lublin_sample_runtime(p2, 8, r2);
  }
  EXPECT_NEAR(sum2 / sum1, 2.0, 0.05);
}

TEST(Lublin, LargerJobsRunLongerOnAverage) {
  // The hyper-gamma mixing probability shifts toward the long component as
  // size grows (p = pb - pa * size).
  LublinParams p;
  Rng r1(23);
  Rng r2(23);
  double small_sum = 0.0;
  double large_sum = 0.0;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    small_sum += lublin_sample_runtime(p, 1, r1);
    large_sum += lublin_sample_runtime(p, 100, r2);
  }
  EXPECT_GT(large_sum / kN, small_sum / kN);
}

TEST(Lublin, MeanInterarrivalNearTarget) {
  LublinParams p;
  p.mean_interarrival = 771.0;
  const Trace t = generate_lublin(p, 8000, 29);
  const double measured = t.stats().mean_interarrival;
  // The daily-cycle modulation perturbs the gamma mean; stay within 30%.
  EXPECT_NEAR(measured, 771.0, 771.0 * 0.3);
}

TEST(Lublin, EstimatesAtLeastRuntimeInFiveMinuteGranules) {
  LublinParams p;
  const Trace t = generate_lublin(p, 1000, 31);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.estimate, j.run);
    EXPECT_NEAR(std::fmod(j.estimate, 300.0), 0.0, 1e-6);
  }
}

TEST(Lublin, SubmitTimesNonDecreasing) {
  LublinParams p;
  const Trace t = generate_lublin(p, 1000, 37);
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GE(t.jobs()[i].submit, t.jobs()[i - 1].submit);
}

TEST(Lublin, TraceNameAndCluster) {
  LublinParams p;
  p.cluster_procs = 256;
  const Trace t = generate_lublin(p, 10, 1);
  EXPECT_EQ(t.name(), "Lublin");
  EXPECT_EQ(t.cluster_procs(), 256);
}

}  // namespace
}  // namespace si
