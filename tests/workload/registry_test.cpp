#include "workload/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace si {
namespace {

TEST(Registry, Table2NamesInPaperOrder) {
  const auto& names = table2_trace_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "CTC-SP2");
  EXPECT_EQ(names[1], "SDSC-SP2");
  EXPECT_EQ(names[2], "HPC2N");
  EXPECT_EQ(names[3], "Lublin");
}

TEST(Registry, BuildsAllFourTraces) {
  for (const auto& name : table2_trace_names()) {
    const Trace t = make_trace(name, 1000, 42);
    EXPECT_EQ(t.name().substr(0, name.size()), name) << name;
    EXPECT_EQ(t.size(), 1000u);
    EXPECT_GT(t.cluster_procs(), 0);
  }
}

TEST(Registry, ClusterSizesMatchTable2) {
  EXPECT_EQ(make_trace("CTC-SP2", 100, 1).cluster_procs(), 338);
  EXPECT_EQ(make_trace("SDSC-SP2", 100, 1).cluster_procs(), 128);
  EXPECT_EQ(make_trace("HPC2N", 100, 1).cluster_procs(), 240);
  EXPECT_EQ(make_trace("Lublin", 100, 1).cluster_procs(), 256);
}

TEST(Registry, LublinCalibratedToTable2Estimate) {
  const Trace t = make_trace("Lublin", 6000, 42);
  const TraceStats s = t.stats();
  // Pilot calibration lands the mean estimate near 4862 s; the pilot and
  // production samples differ, so allow 15%.
  EXPECT_NEAR(s.mean_estimate, 4862.0, 4862.0 * 0.15);
  EXPECT_NEAR(s.mean_interarrival, 771.0, 771.0 * 0.3);
}

TEST(Registry, LublinMeanSizeNearTable2) {
  const Trace t = make_trace("Lublin", 6000, 42);
  // Table 2 reports mean size 22 for the Lublin trace.
  EXPECT_NEAR(t.stats().mean_procs, 22.0, 8.0);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_trace("KIT-FH2", 100, 1), std::out_of_range);
}

TEST(Registry, DeterministicAcrossCalls) {
  const Trace a = make_trace("SDSC-SP2", 300, 77);
  const Trace b = make_trace("SDSC-SP2", 300, 77);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.jobs()[i].run, b.jobs()[i].run);
}

TEST(Registry, SeedChangesTrace) {
  const Trace a = make_trace("SDSC-SP2", 300, 1);
  const Trace b = make_trace("SDSC-SP2", 300, 2);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    differs |= a.jobs()[i].run != b.jobs()[i].run;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace si
