#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace si {
namespace {

Job make_job(std::int64_t id, Time submit, Time run, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.run = run;
  j.estimate = run;
  j.procs = procs;
  return j;
}

TEST(Trace, SortsAndRebases) {
  std::vector<Job> jobs = {make_job(0, 100.0, 10.0, 1),
                           make_job(1, 50.0, 20.0, 2)};
  Trace trace("t", 8, jobs);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.jobs()[0].submit, 0.0);
  EXPECT_DOUBLE_EQ(trace.jobs()[1].submit, 50.0);
  // ids renumbered in submit order
  EXPECT_EQ(trace.jobs()[0].id, 0);
  EXPECT_EQ(trace.jobs()[1].id, 1);
  // the t=0 job is the one that ran 20 s
  EXPECT_DOUBLE_EQ(trace.jobs()[0].run, 20.0);
}

TEST(Trace, TieBreaksBySubmitThenId) {
  std::vector<Job> jobs = {make_job(5, 10.0, 1.0, 1),
                           make_job(2, 10.0, 2.0, 1)};
  Trace trace("t", 4, jobs);
  EXPECT_DOUBLE_EQ(trace.jobs()[0].run, 2.0);  // id 2 before id 5
}

TEST(Trace, StatsMatchHandComputation) {
  std::vector<Job> jobs = {make_job(0, 0.0, 100.0, 2),
                           make_job(1, 10.0, 200.0, 4),
                           make_job(2, 30.0, 300.0, 6)};
  Trace trace("t", 16, jobs);
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_EQ(s.cluster_procs, 16);
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 15.0);  // 30 / 2
  EXPECT_DOUBLE_EQ(s.mean_estimate, 200.0);
  EXPECT_DOUBLE_EQ(s.mean_procs, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_run, 200.0);
  EXPECT_DOUBLE_EQ(s.max_estimate, 300.0);
  EXPECT_EQ(s.max_procs, 6);
}

TEST(Trace, EmptyStats) {
  Trace trace;
  EXPECT_EQ(trace.stats().jobs, 0u);
}

TEST(Trace, WindowIsRebased) {
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(make_job(i, 100.0 * i, 10.0, 1));
  Trace trace("t", 4, jobs);
  const auto window = trace.window(3, 4);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_DOUBLE_EQ(window[0].submit, 0.0);
  EXPECT_DOUBLE_EQ(window[1].submit, 100.0);
  EXPECT_EQ(window[0].id, 0);
  EXPECT_EQ(window[3].id, 3);
}

TEST(Trace, WindowOutOfRangeThrows) {
  std::vector<Job> jobs = {make_job(0, 0.0, 1.0, 1)};
  Trace trace("t", 4, jobs);
  EXPECT_THROW(trace.window(0, 2), ContractViolation);
  EXPECT_THROW(trace.window(1, 1), ContractViolation);
}

TEST(Trace, SampleWindowDeterministicInSeed) {
  std::vector<Job> jobs;
  for (int i = 0; i < 100; ++i)
    jobs.push_back(make_job(i, 10.0 * i, static_cast<double>(i + 1), 1));
  Trace trace("t", 4, jobs);
  Rng a(99);
  Rng b(99);
  const auto wa = trace.sample_window(a, 16);
  const auto wb = trace.sample_window(b, 16);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i)
    EXPECT_DOUBLE_EQ(wa[i].run, wb[i].run);
}

TEST(Trace, SampleWindowCoversFullLengthEdge) {
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back(make_job(i, 10.0 * i, 1.0, 1));
  Trace trace("t", 4, jobs);
  Rng rng(1);
  const auto w = trace.sample_window(rng, 5);
  EXPECT_EQ(w.size(), 5u);
}

TEST(Trace, SplitPreservesJobsAndOrder) {
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(make_job(i, 10.0 * i, static_cast<double>(100 + i), 1));
  Trace trace("t", 4, jobs);
  const auto [train, test] = trace.split(0.2);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(test.size(), 8u);
  EXPECT_DOUBLE_EQ(train.jobs()[0].run, 100.0);
  EXPECT_DOUBLE_EQ(test.jobs()[0].run, 102.0);
  EXPECT_EQ(train.name(), "t-train");
  EXPECT_EQ(test.name(), "t-test");
}

TEST(Trace, SplitFractionBounds) {
  std::vector<Job> jobs = {make_job(0, 0.0, 1.0, 1),
                           make_job(1, 1.0, 1.0, 1)};
  Trace trace("t", 4, jobs);
  EXPECT_THROW(trace.split(0.0), ContractViolation);
  EXPECT_THROW(trace.split(1.0), ContractViolation);
}

TEST(Trace, RejectsJobsExceedingCluster) {
  std::vector<Job> jobs = {make_job(0, 0.0, 1.0, 100)};
  EXPECT_THROW(Trace("t", 8, jobs), ContractViolation);
}

TEST(Trace, RejectsNonPositiveProcs) {
  std::vector<Job> jobs = {make_job(0, 0.0, 1.0, 0)};
  EXPECT_THROW(Trace("t", 8, jobs), ContractViolation);
}

TEST(RebaseSequence, EmptyIsNoop) {
  std::vector<Job> jobs;
  rebase_sequence(jobs);
  EXPECT_TRUE(jobs.empty());
}

TEST(RebaseSequence, ShiftsToZeroAndRenumbers) {
  std::vector<Job> jobs = {make_job(17, 500.0, 1.0, 1),
                           make_job(23, 600.0, 1.0, 1)};
  rebase_sequence(jobs);
  EXPECT_DOUBLE_EQ(jobs[0].submit, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].submit, 100.0);
  EXPECT_EQ(jobs[0].id, 0);
  EXPECT_EQ(jobs[1].id, 1);
}

}  // namespace
}  // namespace si
