#include "workload/job.hpp"

#include <gtest/gtest.h>

namespace si {
namespace {

TEST(Job, EstimatedAreaAndRatio) {
  Job j;
  j.estimate = 100.0;
  j.procs = 4;
  EXPECT_DOUBLE_EQ(j.estimated_area(), 400.0);
  EXPECT_DOUBLE_EQ(j.estimated_ratio(), 25.0);
}

TEST(JobRecord, WaitIsStartMinusSubmit) {
  JobRecord r;
  r.submit = 10.0;
  r.start = 25.0;
  EXPECT_TRUE(r.started());
  EXPECT_DOUBLE_EQ(r.wait(), 15.0);
}

TEST(JobRecord, UnstartedHasZeroWait) {
  JobRecord r;
  r.submit = 10.0;
  EXPECT_FALSE(r.started());
  EXPECT_DOUBLE_EQ(r.wait(), 0.0);
}

TEST(JobRecord, BoundedSlowdownIsAtLeastOne) {
  JobRecord r;
  r.submit = 0.0;
  r.start = 0.0;
  r.run = 100.0;
  EXPECT_DOUBLE_EQ(r.bounded_slowdown(), 1.0);
}

TEST(JobRecord, BoundedSlowdownBasicFormula) {
  JobRecord r;
  r.submit = 0.0;
  r.start = 50.0;  // wait 50
  r.run = 100.0;
  // (50 + 100) / max(100, 10) = 1.5
  EXPECT_DOUBLE_EQ(r.bounded_slowdown(), 1.5);
}

TEST(JobRecord, TenSecondThresholdBoundsShortJobs) {
  JobRecord r;
  r.submit = 0.0;
  r.start = 90.0;  // wait 90
  r.run = 1.0;     // a 1 s job: denominator clamps to 10 s
  // (90 + 1) / 10 = 9.1 instead of 91.
  EXPECT_DOUBLE_EQ(r.bounded_slowdown(), 9.1);
}

TEST(JobRecord, ThresholdBoundaryExactlyTenSeconds) {
  JobRecord r;
  r.submit = 0.0;
  r.start = 10.0;
  r.run = 10.0;
  // (10 + 10) / 10 = 2.
  EXPECT_DOUBLE_EQ(r.bounded_slowdown(), 2.0);
}

TEST(JobRecord, PaperTable1Values) {
  // Case(a)-NoInspect J2: wait 4 min, exec 3 min -> bsld 2.33.
  JobRecord r;
  r.submit = 60.0;      // arrives t1 (minutes in seconds)
  r.start = 60.0 * 5;   // starts t5
  r.run = 60.0 * 3;
  EXPECT_NEAR(r.bounded_slowdown(), (4.0 + 3.0) / 3.0, 1e-12);
}

}  // namespace
}  // namespace si
