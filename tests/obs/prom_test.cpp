#include "obs/prom.hpp"

#include <gtest/gtest.h>

namespace si {
namespace {

TEST(PrometheusName, PassesThroughLegalNames) {
  EXPECT_EQ(prometheus_name("serve_latency_us"), "serve_latency_us");
  EXPECT_EQ(prometheus_name("ns:sub_system"), "ns:sub_system");
}

TEST(PrometheusName, SanitizesIllegalCharacters) {
  EXPECT_EQ(prometheus_name("serve.latency_us"), "serve_latency_us");
  EXPECT_EQ(prometheus_name("a-b c/d"), "a_b_c_d");
}

TEST(PrometheusName, LeadingDigitGainsUnderscore) {
  EXPECT_EQ(prometheus_name("99th_percentile"), "_99th_percentile");
}

TEST(PrometheusName, EmptyBecomesUnderscore) {
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(PrometheusLabelEscape, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(prometheus_label_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(prometheus_label_escape("plain"), "plain");
}

TEST(PrometheusText, CountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("serve.replies").inc(3);
  registry.gauge("serve.queue_depth").set(2.5);
  EXPECT_EQ(prometheus_text(registry),
            "# TYPE serve_replies counter\n"
            "serve_replies 3\n"
            "# TYPE serve_queue_depth gauge\n"
            "serve_queue_depth 2.5\n");
}

TEST(PrometheusText, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("lat.us", {1.0, 2.0, 5.0});
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(1.5);
  hist.observe(9.0);  // overflow bucket
  EXPECT_EQ(prometheus_text(registry),
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{le=\"1\"} 1\n"
            "lat_us_bucket{le=\"2\"} 3\n"
            "lat_us_bucket{le=\"5\"} 3\n"
            "lat_us_bucket{le=\"+Inf\"} 4\n"
            "lat_us_sum 12.5\n"
            "lat_us_count 4\n");
}

TEST(PrometheusText, InstrumentsRenderInNameOrder) {
  MetricsRegistry registry;
  registry.counter("zz").inc();
  registry.counter("aa").inc(2);
  const std::string text = prometheus_text(registry);
  EXPECT_LT(text.find("aa 2"), text.find("zz 1"));
}

}  // namespace
}  // namespace si
