// Simulator event-trace tests: JSONL schema round-trip through
// parse_flat_json, byte-identical same-seed traces, and the guarantee that
// a null tracer/metrics pointer leaves SequenceMetrics bit-identical.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/rule_inspector.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

std::vector<Job> sample_jobs(std::size_t count = 160) {
  const Trace trace = make_trace("SDSC-SP2", 600, 17);
  Rng rng(23);
  return trace.sample_window(rng, count);
}

FaultConfig stress_profile() {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 99;
  faults.drain_interval = 2000.0;
  faults.drain_fraction = 0.10;
  faults.drain_duration = 5000.0;
  faults.job_failure_prob = 0.10;
  faults.max_requeues = 2;
  faults.estimate_wall = true;
  return faults;
}

// Runs one traced, fault-injected, inspected sequence and returns the
// emitted JSONL plus the sequence metrics.
struct TracedRun {
  std::string jsonl;
  SequenceMetrics metrics;
};

TracedRun run_traced(bool with_tracer, MetricsRegistry* registry = nullptr) {
  const Trace trace = make_trace("SDSC-SP2", 600, 17);
  StringSink sink;
  JsonlTracer tracer(sink);
  SimConfig config;
  config.faults = stress_profile();
  if (with_tracer) config.tracer = &tracer;
  config.metrics = registry;
  Simulator sim(128, config);
  PolicyPtr policy = make_policy("SJF");
  FeatureBuilder features(FeatureMode::kManual, Metric::kBsld,
                          FeatureScales::from_trace(trace), 600.0);
  RuleInspector inspector(features);
  const SequenceResult result = sim.run(sample_jobs(), *policy, &inspector);
  return TracedRun{sink.str(), result.metrics};
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Trace, EveryRecordMatchesTheEventSchema) {
  // kind -> required non-"ev"/"t" fields (DESIGN.md §5; kept in sync with
  // tools/check_trace_schema.py).
  const std::map<std::string, std::set<std::string>> schema = {
      {"run_begin", {"jobs", "procs", "backfill"}},
      {"submit", {"job", "procs", "submit"}},
      {"sched_point", {"job", "free", "waiting"}},
      {"inspect", {"job", "reject", "rejections", "free"}},
      {"reject", {"job", "rejections"}},
      {"start", {"job", "procs", "wait"}},
      {"finish", {"job", "procs", "run"}},
      {"requeue", {"job", "attempt"}},
      {"kill", {"job", "procs", "run", "reason"}},
      {"drain", {"procs"}},
      {"restore", {"procs"}},
      {"trajectory", {"epoch", "traj"}},
      {"run_end",
       {"jobs", "inspections", "rejections", "avg_wait", "avg_bsld",
        "max_bsld", "util", "makespan"}},
  };

  const TracedRun run = run_traced(true);
  const std::vector<std::string> lines = split_lines(run.jsonl);
  ASSERT_FALSE(lines.empty());

  std::map<std::string, int> seen;
  for (const std::string& line : lines) {
    JsonFlatObject record;
    std::string error;
    ASSERT_TRUE(parse_flat_json(line, record, &error))
        << error << " in: " << line;
    ASSERT_EQ(record["ev"].kind, JsonValue::Kind::kString) << line;
    const std::string& kind = record["ev"].string;
    const auto it = schema.find(kind);
    ASSERT_NE(it, schema.end()) << "unknown event kind: " << kind;
    EXPECT_EQ(record["t"].kind, JsonValue::Kind::kNumber) << line;
    for (const std::string& field : it->second)
      EXPECT_TRUE(record.count(field))
          << kind << " missing " << field << " in: " << line;
    // Strict in the other direction too: no undocumented fields.
    for (const auto& [key, value] : record)
      EXPECT_TRUE(key == "ev" || key == "t" || it->second.count(key))
          << kind << " has undocumented field " << key;
    ++seen[kind];
  }

  EXPECT_EQ(seen["run_begin"], 1);
  EXPECT_EQ(seen["run_end"], 1);
  EXPECT_EQ(seen["submit"], 160);
  // The stress fault profile makes every fault-path event kind appear.
  EXPECT_GT(seen["start"], 0);
  EXPECT_GT(seen["finish"], 0);
  EXPECT_GT(seen["inspect"], 0);
  EXPECT_GT(seen["requeue"], 0);
  EXPECT_GT(seen["drain"], 0);
  EXPECT_GT(seen["restore"], 0);
  EXPECT_GT(seen["sched_point"], 0);
}

TEST(Trace, RunEndTotalsMatchSequenceMetrics) {
  const TracedRun run = run_traced(true);
  const std::vector<std::string> lines = split_lines(run.jsonl);
  JsonFlatObject record;
  ASSERT_TRUE(parse_flat_json(lines.back(), record));
  ASSERT_EQ(record["ev"].string, "run_end");
  EXPECT_EQ(record["jobs"].number, static_cast<double>(run.metrics.jobs));
  EXPECT_EQ(record["inspections"].number,
            static_cast<double>(run.metrics.inspections));
  EXPECT_EQ(record["rejections"].number,
            static_cast<double>(run.metrics.rejections));
}

TEST(Trace, SameSeedTracesAreByteIdentical) {
  const TracedRun a = run_traced(true);
  const TracedRun b = run_traced(true);
  EXPECT_EQ(a.jsonl, b.jsonl);
}

TEST(Trace, DisabledTracingLeavesMetricsBitIdentical) {
  MetricsRegistry registry;
  const TracedRun traced = run_traced(true, &registry);
  const TracedRun bare = run_traced(false);
  EXPECT_TRUE(bare.jsonl.empty());
  // Exact (bit-level) equality: tracing must not perturb the simulation.
  EXPECT_EQ(traced.metrics.jobs, bare.metrics.jobs);
  EXPECT_EQ(traced.metrics.avg_wait, bare.metrics.avg_wait);
  EXPECT_EQ(traced.metrics.avg_bsld, bare.metrics.avg_bsld);
  EXPECT_EQ(traced.metrics.max_bsld, bare.metrics.max_bsld);
  EXPECT_EQ(traced.metrics.utilization, bare.metrics.utilization);
  EXPECT_EQ(traced.metrics.makespan, bare.metrics.makespan);
  EXPECT_EQ(traced.metrics.inspections, bare.metrics.inspections);
  EXPECT_EQ(traced.metrics.rejections, bare.metrics.rejections);
  EXPECT_EQ(traced.metrics.requeues, bare.metrics.requeues);
  EXPECT_EQ(traced.metrics.kills, bare.metrics.kills);
  EXPECT_EQ(traced.metrics.wall_kills, bare.metrics.wall_kills);
  EXPECT_EQ(traced.metrics.drain_events, bare.metrics.drain_events);
  EXPECT_EQ(traced.metrics.lost_node_seconds, bare.metrics.lost_node_seconds);
}

TEST(Trace, SimulatorRecordsIntoMetricsRegistry) {
  MetricsRegistry registry;
  const TracedRun run = run_traced(true, &registry);
  EXPECT_EQ(registry.counter("sim.runs").value(), 1u);
  EXPECT_EQ(registry.counter("sim.jobs").value(), run.metrics.jobs);
  EXPECT_EQ(registry.counter("sim.inspections").value(),
            run.metrics.inspections);
  EXPECT_EQ(registry.counter("sim.requeues").value(), run.metrics.requeues);
  EXPECT_EQ(registry.histogram("sim.job_wait_seconds", {}).count(),
            run.metrics.jobs);
  EXPECT_EQ(registry.histogram("sim.job_bsld", {}).count(), run.metrics.jobs);
}

TEST(BufferTracer, DrainsEventsInOrder) {
  BufferTracer buffer;
  TraceEvent submit;
  submit.kind = TraceEvent::Kind::kSubmit;
  submit.time = 1.0;
  submit.job = 7;
  submit.procs = 2;
  submit.submit = 1.0;
  TraceEvent finish;
  finish.kind = TraceEvent::Kind::kFinish;
  finish.time = 5.0;
  finish.job = 7;
  finish.procs = 2;
  buffer.on_event(submit);
  buffer.on_event(finish);
  ASSERT_EQ(buffer.events().size(), 2u);

  StringSink sink;
  JsonlTracer jsonl(sink);
  buffer.drain_to(jsonl);
  EXPECT_EQ(sink.str(),
            trace_event_jsonl(submit) + trace_event_jsonl(finish));
  buffer.clear();
  EXPECT_TRUE(buffer.events().empty());
}

}  // namespace
}  // namespace si
