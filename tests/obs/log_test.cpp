#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/json.hpp"

namespace si {
namespace {

TEST(LogLevel, NamesRoundTrip) {
  for (const std::string& name : known_log_levels())
    EXPECT_EQ(log_level_name(log_level_from_name(name)), name);
  EXPECT_THROW(log_level_from_name("verbose"), std::out_of_range);
}

TEST(Logger, TextSinkFormat) {
  Logger logger;
  StringSink sink;
  logger.add_text_sink(sink);
  logger.log(LogLevel::kWarn, "trainer", "rolled back");
  EXPECT_EQ(sink.str(), "[warn] trainer: rolled back\n");
}

TEST(Logger, JsonlSinkFormat) {
  Logger logger;
  StringSink sink;
  logger.add_jsonl_sink(sink);
  logger.log(LogLevel::kError, "sim", "bad \"thing\"");
  JsonFlatObject record;
  std::string line = sink.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing newline
  ASSERT_TRUE(parse_flat_json(line, record));
  EXPECT_EQ(record["level"].string, "error");
  EXPECT_EQ(record["component"].string, "sim");
  EXPECT_EQ(record["msg"].string, "bad \"thing\"");
}

TEST(Logger, LevelFiltersRecords) {
  Logger logger;
  StringSink sink;
  logger.add_text_sink(sink);
  logger.set_level(LogLevel::kWarn);
  logger.log(LogLevel::kInfo, "c", "dropped");
  logger.log(LogLevel::kWarn, "c", "kept");
  EXPECT_EQ(sink.str(), "[warn] c: kept\n");
  logger.set_level(LogLevel::kOff);
  logger.log(LogLevel::kError, "c", "also dropped");
  EXPECT_EQ(sink.str(), "[warn] c: kept\n");
}

TEST(Logger, DisabledWithoutSinks) {
  Logger logger;
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.log(LogLevel::kError, "c", "nowhere");  // must not crash
  StringSink sink;
  logger.add_text_sink(sink);
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.clear_sinks();
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(Logger, MacroSkipsMessageConstructionWhenDisabled) {
  Logger logger;  // no sinks: disabled
  int evaluations = 0;
  auto message = [&]() {
    ++evaluations;
    return std::string("expensive");
  };
  SI_LOG(logger, LogLevel::kError, "c", message());
  EXPECT_EQ(evaluations, 0);
  StringSink sink;
  logger.add_text_sink(sink);
  SI_LOG(logger, LogLevel::kError, "c", message());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(sink.str(), "[error] c: expensive\n");
}

TEST(Logger, FanOutToMultipleSinks) {
  Logger logger;
  StringSink text;
  StringSink jsonl;
  logger.add_text_sink(text);
  logger.add_jsonl_sink(jsonl);
  logger.log(LogLevel::kInfo, "c", "m");
  EXPECT_EQ(text.str(), "[info] c: m\n");
  EXPECT_EQ(jsonl.str(),
            "{\"level\":\"info\",\"component\":\"c\",\"msg\":\"m\"}\n");
}

TEST(GlobalLogger, ExistsAndStartsSinkless) {
  // The global logger is shared test-wide, so only probe identity.
  EXPECT_EQ(&global_logger(), &global_logger());
}

}  // namespace
}  // namespace si
