#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include "common/sink.hpp"

namespace si {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauge, KeepsLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // <= 1  -> bucket 0
  h.observe(1.0);  // == 1  -> bucket 0 (inclusive)
  h.observe(1.5);  // <= 2  -> bucket 1
  h.observe(5.0);  // == 5  -> bucket 2
  h.observe(9.0);  // > 5   -> overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.4);
}

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinABucket) {
  Histogram h({100.0, 200.0});
  for (int i = 0; i < 10; ++i) h.observe(150.0);
  // All mass in (100, 200]: linear interpolation inside that bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 150.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 200.0);
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZero) {
  Histogram h({10.0, 20.0});
  h.observe(5.0);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 5.0);  // 0 + 0.5 * 10
}

TEST(HistogramQuantile, OverflowBucketClampsToLastBound) {
  Histogram h({1.0, 2.0});
  h.observe(99.0);
  h.observe(99.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 2.0);
}

TEST(MetricsRegistry, CsvEscapesHostileInstrumentNames) {
  MetricsRegistry registry;
  registry.counter("a,b").inc();
  registry.gauge("say \"hi\"").set(1.0);
  registry.counter("line\nbreak").inc(2);
  const std::string csv = registry.to_csv();
  // RFC 4180: quoted fields with embedded quotes doubled — a hostile name
  // can never add columns or rows to the export.
  EXPECT_NE(csv.find("counter,\"a,b\",value,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,\"say \"\"hi\"\"\",value,1"), std::string::npos);
  EXPECT_NE(csv.find("counter,\"line\nbreak\",value,2"), std::string::npos);
}

TEST(MetricsRegistry, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  Counter& a = registry.counter("a");
  a.inc();
  registry.counter("zz");  // later insertion must not invalidate `a`
  EXPECT_EQ(&registry.counter("a"), &a);
  EXPECT_EQ(registry.counter("a").value(), 1u);
  EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistry, HistogramBoundsFixedByFirstLookup) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  Histogram& again = registry.histogram("h", {99.0});
  EXPECT_EQ(&h, &again);
  ASSERT_EQ(again.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(again.bounds()[1], 2.0);
}

TEST(MetricsRegistry, JsonExportIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("b").inc(2);
  registry.counter("a").inc();
  registry.gauge("g").set(1.5);
  registry.histogram("h", {1.0, 2.0}).observe(1.5);
  EXPECT_EQ(registry.to_json(),
            "{\"counters\":{\"a\":1,\"b\":2},"
            "\"gauges\":{\"g\":1.5},"
            "\"histograms\":{\"h\":{\"bounds\":[1,2],\"counts\":[0,1,0],"
            "\"sum\":1.5,\"count\":1}}}\n");
}

TEST(MetricsRegistry, CsvExportListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("c").inc(3);
  registry.gauge("g").set(0.25);
  registry.histogram("h", {10.0}).observe(99.0);
  EXPECT_EQ(registry.to_csv(),
            "kind,name,key,value\n"
            "counter,c,value,3\n"
            "gauge,g,value,0.25\n"
            "histogram,h,le_10,0\n"
            "histogram,h,le_inf,1\n"
            "histogram,h,sum,99\n"
            "histogram,h,count,1\n");
}

TEST(MetricsRegistry, WritesThroughSinks) {
  MetricsRegistry registry;
  registry.counter("c").inc();
  StringSink json;
  StringSink csv;
  registry.write_json(json);
  registry.write_csv(csv);
  EXPECT_EQ(json.str(), registry.to_json());
  EXPECT_EQ(csv.str(), registry.to_csv());
}

}  // namespace
}  // namespace si
