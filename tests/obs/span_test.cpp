#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace si {
namespace {

SpanEvent complete_event(std::string name, std::int64_t ts_us,
                         std::int64_t dur_us = 1,
                         std::uint64_t span_id = 0) {
  SpanEvent event;
  event.name = std::move(name);
  event.cat = "test";
  event.trace_id = 1;
  event.span_id = span_id;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  return event;
}

TEST(SpanCollector, IdsStartAtOneAndIncrement) {
  SpanCollector spans;
  EXPECT_EQ(spans.next_trace_id(), 1u);
  EXPECT_EQ(spans.next_trace_id(), 2u);
  EXPECT_EQ(spans.next_span_id(), 1u);
  EXPECT_EQ(spans.next_span_id(), 2u);
}

TEST(SpanCollector, RecordAssignsSpanIdWhenUnset) {
  SpanCollector spans;
  spans.record(complete_event("a", 10));
  const std::vector<SpanEvent> out = spans.snapshot();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].span_id, 0u);
}

TEST(SpanCollector, RingDropsOldestAtCapacity) {
  SpanCollector spans(/*capacity=*/3);
  for (int i = 0; i < 5; ++i)
    spans.record(complete_event("e" + std::to_string(i), i));
  EXPECT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.dropped(), 2u);
  const std::vector<SpanEvent> out = spans.snapshot();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.front().name, "e2");  // e0 and e1 were evicted
  EXPECT_EQ(out.back().name, "e4");
}

TEST(SpanCollector, SnapshotSortsByTimestampThenSpanId) {
  SpanCollector spans;
  spans.record(complete_event("late", 300, 1, 7));
  spans.record(complete_event("tie_b", 100, 1, 9));
  spans.record(complete_event("tie_a", 100, 1, 8));
  spans.record(complete_event("early", 50, 1, 6));
  const std::vector<SpanEvent> out = spans.snapshot();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].name, "early");
  EXPECT_EQ(out[1].name, "tie_a");  // ts tie broken by span id
  EXPECT_EQ(out[2].name, "tie_b");
  EXPECT_EQ(out[3].name, "late");
}

TEST(SpanCollector, ExportIsDeterministicUnderConcurrentRecording) {
  SpanCollector spans;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&spans, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Fixed timestamps + collector-assigned span ids: arrival order
        // varies run to run, the sorted export must not.
        SpanEvent event = complete_event("t" + std::to_string(t), i);
        event.tid = static_cast<std::uint32_t>(t);
        spans.record(std::move(event));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kPerThread));
  const std::string first = spans.to_jsonl();
  const std::string second = spans.to_jsonl();
  EXPECT_EQ(first, second);
  // Sorted by (ts, span_id): timestamps must be non-decreasing.
  const std::vector<SpanEvent> out = spans.snapshot();
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LE(out[i - 1].ts_us, out[i].ts_us);
}

TEST(SpanCollector, HostileNamesAndArgsAreEscaped) {
  SpanCollector spans;
  SpanEvent event = complete_event("evil\"name\n", 1);
  event.args.emplace_back("k\"ey", "va\\lue\n");
  spans.record(std::move(event));
  const std::string jsonl = spans.to_jsonl();
  // One event, one line: raw newlines must have been escaped away.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("evil\\\"name\\n"), std::string::npos);
  EXPECT_NE(jsonl.find("k\\\"ey"), std::string::npos);
  EXPECT_NE(jsonl.find("va\\\\lue\\n"), std::string::npos);
}

TEST(SpanCollector, ChromeJsonWrapsEventsAndNamesThreads) {
  SpanCollector spans;
  spans.register_thread(2, "serve-inference");
  spans.record(complete_event("serve.request", 5));
  spans.instant("serve.degraded", "serve", /*trace_id=*/1, /*tid=*/2,
                {{"reason", "queue_saturated"}});
  const std::string json = spans.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"serve-inference\""), std::string::npos);
  // Instants carry the thread scope marker; completes carry a duration.
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"queue_saturated\""), std::string::npos);
}

TEST(ScopedSpan, NestingBuildsParentChainAndSharesTrace) {
  SpanCollector spans;
  {
    ScopedSpan outer(&spans, "outer", "test");
    EXPECT_NE(SpanCollector::current_span(), 0u);
    EXPECT_NE(SpanCollector::current_trace(), 0u);
    {
      ScopedSpan inner(&spans, "inner", "test");
      ScopedSpan leaf(&spans, "leaf", "test");
      (void)leaf;
    }
  }
  // The outermost scope owned the trace: fully unwound = no open trace.
  EXPECT_EQ(SpanCollector::current_span(), 0u);
  EXPECT_EQ(SpanCollector::current_trace(), 0u);

  const std::vector<SpanEvent> out = spans.snapshot();
  ASSERT_EQ(out.size(), 3u);
  const SpanEvent* outer = nullptr;
  const SpanEvent* inner = nullptr;
  const SpanEvent* leaf = nullptr;
  for (const SpanEvent& event : out) {
    if (event.name == "outer") outer = &event;
    if (event.name == "inner") inner = &event;
    if (event.name == "leaf") leaf = &event;
  }
  ASSERT_TRUE(outer != nullptr && inner != nullptr && leaf != nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(leaf->parent_id, inner->span_id);
  EXPECT_EQ(outer->trace_id, inner->trace_id);
  EXPECT_EQ(inner->trace_id, leaf->trace_id);
}

TEST(ScopedSpan, PinnedTraceIsJoinedNotOwned) {
  SpanCollector spans;
  SpanCollector::set_current_trace(42);
  {
    ScopedSpan scope(&spans, "pinned", "test");
    (void)scope;
  }
  // The scope joined trace 42 and must not clear it on exit.
  EXPECT_EQ(SpanCollector::current_trace(), 42u);
  SpanCollector::set_current_trace(0);
  const std::vector<SpanEvent> out = spans.snapshot();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].trace_id, 42u);
}

TEST(ScopedSpan, NullCollectorIsANoOp) {
  {
    ScopedSpan scope(nullptr, "ghost", "test");
    scope.arg("k", "v");
    EXPECT_EQ(SpanCollector::current_span(), 0u);
    EXPECT_EQ(SpanCollector::current_trace(), 0u);
  }
  SUCCEED();
}

TEST(ScopedSpan, ArgAddedInsideScopeIsExported) {
  SpanCollector spans;
  {
    ScopedSpan scope(&spans, "work", "test");
    scope.arg("result", "ok");
  }
  const std::vector<SpanEvent> out = spans.snapshot();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].args.size(), 1u);
  EXPECT_EQ(out[0].args[0].first, "result");
  EXPECT_EQ(out[0].args[0].second, "ok");
}

}  // namespace
}  // namespace si
