#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace si {
namespace {

TEST(JsonEscape, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  // %.17g is round-trippable: parsing the text recovers the exact double.
  const double value = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(value)), value);
}

TEST(JsonObject, EmitsFieldsInCallOrder) {
  JsonObject obj;
  obj.field("s", "x\"y").field("i", 42).field("d", 1.5).field("b", true);
  obj.raw("a", "[1,2]");
  EXPECT_EQ(obj.str(), "{\"s\":\"x\\\"y\",\"i\":42,\"d\":1.5,\"b\":true,"
                       "\"a\":[1,2]}");
}

TEST(JsonObject, EmptyObject) { EXPECT_EQ(JsonObject().str(), "{}"); }

TEST(ParseFlatJson, ParsesAllScalarKinds) {
  JsonFlatObject out;
  ASSERT_TRUE(parse_flat_json(
      "{\"s\":\"a\\nb\",\"n\":-2.5,\"t\":true,\"f\":false,\"z\":null}", out));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out["s"].kind, JsonValue::Kind::kString);
  EXPECT_EQ(out["s"].string, "a\nb");
  EXPECT_EQ(out["n"].kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(out["n"].number, -2.5);
  EXPECT_EQ(out["t"].kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(out["t"].boolean);
  EXPECT_FALSE(out["f"].boolean);
  EXPECT_EQ(out["z"].kind, JsonValue::Kind::kNull);
}

TEST(ParseFlatJson, RejectsMalformedInput) {
  JsonFlatObject out;
  std::string error;
  EXPECT_FALSE(parse_flat_json("", out, &error));
  EXPECT_FALSE(parse_flat_json("{\"a\":1", out, &error));
  EXPECT_FALSE(parse_flat_json("{\"a\":1} trailing", out, &error));
  EXPECT_FALSE(parse_flat_json("{\"a\":{\"nested\":1}}", out, &error));
  EXPECT_FALSE(parse_flat_json("{\"a\":tru}", out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ParseFlatJson, RoundTripsJsonObjectOutput) {
  JsonObject obj;
  obj.field("ev", "start").field("t", 12.5).field("job", 7).field("ok", true);
  JsonFlatObject out;
  std::string error;
  ASSERT_TRUE(parse_flat_json(obj.str(), out, &error)) << error;
  EXPECT_EQ(out["ev"].string, "start");
  EXPECT_DOUBLE_EQ(out["t"].number, 12.5);
  EXPECT_DOUBLE_EQ(out["job"].number, 7.0);
  EXPECT_TRUE(out["ok"].boolean);
}

}  // namespace
}  // namespace si
