// Trainer-side observability: per-epoch telemetry JSONL, byte-identical
// multi-threaded rollout traces, train.* metrics, and the guarantee that
// enabling all of it leaves the training results bit-identical.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "workload/registry.hpp"

namespace si {
namespace {

TrainerConfig tiny_config() {
  TrainerConfig config;
  config.epochs = 3;
  config.trajectories_per_epoch = 4;
  config.sequence_length = 32;
  config.seed = 11;
  return config;
}

TrainResult train_with(const TrainerConfig& config) {
  const Trace trace = make_trace("SDSC-SP2", 300, 3);
  PolicyPtr policy = make_policy("SJF");
  Trainer trainer(trace, *policy, config);
  ActorCritic ac = trainer.make_agent();
  return trainer.train(ac);
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Telemetry, WritesOneJsonlRecordPerEpoch) {
  const auto path =
      std::filesystem::temp_directory_path() / "si_telemetry_test.jsonl";
  TrainerConfig config = tiny_config();
  config.telemetry_path = path.string();
  const TrainResult result = train_with(config);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), result.curve.size());
  const std::vector<std::string> required = {
      "epoch",          "epochs",         "mean_reward",
      "rejection_ratio", "approx_kl",     "entropy",
      "policy_loss",    "value_loss",     "skipped_updates",
      "rollout_seconds", "update_seconds", "elapsed_seconds"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    JsonFlatObject record;
    std::string error;
    ASSERT_TRUE(parse_flat_json(lines[i], record, &error)) << error;
    for (const std::string& key : required)
      EXPECT_TRUE(record.count(key)) << "epoch record missing " << key;
    EXPECT_EQ(record["epoch"].number, static_cast<double>(i));
    EXPECT_EQ(record["mean_reward"].number, result.curve[i].mean_reward);
    EXPECT_GE(record["rollout_seconds"].number, 0.0);
    EXPECT_GE(record["update_seconds"].number, 0.0);
  }
  std::filesystem::remove(path);
}

TEST(Telemetry, EpochStatsCarryPhaseWallTimes) {
  const TrainResult result = train_with(tiny_config());
  for (const EpochStats& e : result.curve) {
    EXPECT_GE(e.rollout_seconds, 0.0);
    EXPECT_GE(e.update_seconds, 0.0);
    EXPECT_GT(e.rollout_seconds + e.update_seconds, 0.0);
  }
}

// Rollouts run on worker threads; the per-trajectory buffering must still
// produce a byte-identical stream for the same seed.
TEST(Telemetry, TrainerTracesAreByteIdenticalAcrossRuns) {
  std::string traces[2];
  for (std::string& out : traces) {
    StringSink sink;
    JsonlTracer tracer(sink);
    TrainerConfig config = tiny_config();
    config.tracer = &tracer;
    train_with(config);
    out = sink.str();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(Telemetry, TraceContainsOrderedTrajectoryMarkers) {
  StringSink sink;
  JsonlTracer tracer(sink);
  TrainerConfig config = tiny_config();
  config.tracer = &tracer;
  train_with(config);

  std::ifstream in;  // parse from the captured string instead
  std::vector<std::pair<int, int>> markers;
  std::istringstream stream(sink.str());
  std::string line;
  while (std::getline(stream, line)) {
    JsonFlatObject record;
    ASSERT_TRUE(parse_flat_json(line, record)) << line;
    if (record["ev"].string != "trajectory") continue;
    markers.emplace_back(static_cast<int>(record["epoch"].number),
                         static_cast<int>(record["traj"].number));
  }
  ASSERT_EQ(markers.size(), 3u * 4u);  // epochs x trajectories
  for (std::size_t i = 0; i < markers.size(); ++i) {
    EXPECT_EQ(markers[i].first, static_cast<int>(i / 4));
    EXPECT_EQ(markers[i].second, static_cast<int>(i % 4));
  }
}

TEST(Telemetry, TrainerRecordsIntoMetricsRegistry) {
  MetricsRegistry registry;
  TrainerConfig config = tiny_config();
  config.metrics = &registry;
  const TrainResult result = train_with(config);
  EXPECT_EQ(registry.counter("train.epochs").value(), 3u);
  EXPECT_EQ(registry.counter("train.trajectories").value() +
                registry.counter("train.invalid_trajectories").value(),
            12u);
  EXPECT_EQ(registry.gauge("train.converged_improvement").value(),
            result.converged_improvement);
}

TEST(Telemetry, FullObservabilityLeavesTrainingBitIdentical) {
  const TrainResult bare = train_with(tiny_config());

  const auto path =
      std::filesystem::temp_directory_path() / "si_telemetry_bitident.jsonl";
  StringSink sink;
  JsonlTracer tracer(sink);
  MetricsRegistry registry;
  TrainerConfig config = tiny_config();
  config.telemetry_path = path.string();
  config.tracer = &tracer;
  config.metrics = &registry;
  const TrainResult instrumented = train_with(config);
  std::filesystem::remove(path);

  ASSERT_EQ(instrumented.curve.size(), bare.curve.size());
  for (std::size_t i = 0; i < bare.curve.size(); ++i) {
    EXPECT_EQ(instrumented.curve[i].mean_reward, bare.curve[i].mean_reward);
    EXPECT_EQ(instrumented.curve[i].mean_improvement,
              bare.curve[i].mean_improvement);
    EXPECT_EQ(instrumented.curve[i].rejection_ratio,
              bare.curve[i].rejection_ratio);
    EXPECT_EQ(instrumented.curve[i].policy_loss, bare.curve[i].policy_loss);
    EXPECT_EQ(instrumented.curve[i].value_loss, bare.curve[i].value_loss);
  }
  EXPECT_EQ(instrumented.converged_improvement, bare.converged_improvement);
  EXPECT_EQ(instrumented.converged_rejection_ratio,
            bare.converged_rejection_ratio);
}

}  // namespace
}  // namespace si
