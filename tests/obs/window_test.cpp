#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace si {
namespace {

TEST(AtomicHistogram, SnapshotMatchesPlainHistogram) {
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  AtomicHistogram atomic(bounds);
  Histogram plain(bounds);
  for (const double v : {0.5, 1.0, 1.5, 5.0, 9.0}) {
    atomic.observe(v);
    plain.observe(v);
  }
  const Histogram snap = atomic.snapshot();
  EXPECT_EQ(snap.counts(), plain.counts());
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_DOUBLE_EQ(snap.sum(), plain.sum());
}

TEST(AtomicHistogram, ConcurrentObserveLosesNothing) {
  AtomicHistogram hist({10.0, 100.0, 1000.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i)
        hist.observe(static_cast<double>(i % 2000));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Sum of i % 2000 over kPerThread = 10 full cycles of 0..1999.
  const double per_thread = 10.0 * (1999.0 * 2000.0 / 2.0);
  EXPECT_DOUBLE_EQ(hist.sum(), kThreads * per_thread);
  const Histogram snap = hist.snapshot();
  std::uint64_t folded = 0;
  for (const std::uint64_t n : snap.counts()) folded += n;
  EXPECT_EQ(folded, hist.count());
}

TEST(AtomicHistogram, MergeBucketAndResetRoundTrip) {
  AtomicHistogram hist({1.0, 2.0});
  hist.merge_bucket(1, 4, 6.0);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 6.0);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.snapshot().count(), 0u);
}

TEST(WindowedHistogram, EmptyWindowQuantileIsZero) {
  WindowedHistogram window({1.0, 10.0}, /*slot_span_us=*/1000, /*slots=*/4);
  const Histogram merged = window.merge(/*now_us=*/0);
  EXPECT_EQ(merged.count(), 0u);
  EXPECT_EQ(window.count(0), 0u);
  EXPECT_DOUBLE_EQ(histogram_quantile(merged, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(merged, 0.99), 0.0);
}

TEST(WindowedHistogram, SingleBucketInterpolates) {
  WindowedHistogram window({100.0, 200.0}, 1000, 4);
  for (int i = 0; i < 10; ++i) window.observe(150.0, /*now_us=*/0);
  const Histogram merged = window.merge(0);
  EXPECT_EQ(merged.count(), 10u);
  // All mass in (100, 200]: the quantile interpolates inside that bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(merged, 0.5), 150.0);
  EXPECT_GT(histogram_quantile(merged, 0.99), 150.0);
  EXPECT_LE(histogram_quantile(merged, 0.99), 200.0);
}

TEST(WindowedHistogram, MergeThenQuantileSpansSlots) {
  WindowedHistogram window({10.0, 100.0, 1000.0}, 1000, 4);
  // 50 fast observations in slot 0, 50 slow in slot 2: the merged view
  // must mix them as one distribution.
  for (int i = 0; i < 50; ++i) window.observe(5.0, 100);
  for (int i = 0; i < 50; ++i) window.observe(500.0, 2100);
  const Histogram merged = window.merge(2500);
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_DOUBLE_EQ(merged.sum(), 50 * 5.0 + 50 * 500.0);
  const double p50 = histogram_quantile(merged, 0.5);
  EXPECT_LE(p50, 10.0);  // half the mass is in the first bucket
  EXPECT_GT(histogram_quantile(merged, 0.99), 100.0);
}

TEST(WindowedHistogram, RotationExpiresSlotsExactlyAtTheBoundary) {
  WindowedHistogram window({10.0}, /*slot_span_us=*/1000, /*slots=*/3);
  window.observe(1.0, 0);  // slot epoch 0
  EXPECT_EQ(window.count(0), 1u);
  // Window covers epochs [now/1000 - 2, now/1000]: epoch 0 is still
  // visible at now=2999 and gone at now=3000.
  EXPECT_EQ(window.count(2999), 1u);
  EXPECT_EQ(window.count(3000), 0u);
  EXPECT_EQ(window.merge(3000).count(), 0u);
}

TEST(WindowedHistogram, LateObservationReusesRotatedSlot) {
  WindowedHistogram window({10.0}, 1000, 2);
  window.observe(1.0, 0);     // epoch 0 -> ring slot 0
  window.observe(2.0, 2000);  // epoch 2 -> ring slot 0 again: must reset
  EXPECT_EQ(window.count(2000), 1u);
  const Histogram merged = window.merge(2000);
  EXPECT_EQ(merged.count(), 1u);
  EXPECT_DOUBLE_EQ(merged.sum(), 2.0);
}

TEST(WindowedHistogram, SpanAccessors) {
  WindowedHistogram window({1.0}, 250000, 8);
  EXPECT_EQ(window.slot_span_us(), 250000);
  EXPECT_EQ(window.window_span_us(), 2000000);
  ASSERT_EQ(window.bounds().size(), 1u);
}

TEST(WindowedHistogram, DeterministicMergeAfterConcurrentRecording) {
  WindowedHistogram window({10.0, 100.0, 1000.0}, 1000, 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&window] {
      for (int i = 0; i < kPerThread; ++i)
        window.observe(static_cast<double>(i % 500),
                       /*now_us=*/(i % 4) * 1000);
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram merged = window.merge(3999);
  EXPECT_EQ(merged.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(window.count(3999), merged.count());
  // Two merges of the quiescent window agree exactly.
  const Histogram again = window.merge(3999);
  EXPECT_EQ(again.counts(), merged.counts());
  EXPECT_DOUBLE_EQ(again.sum(), merged.sum());
}

TEST(EwmaRate, FirstUpdatePrimesAndReportsZero) {
  EwmaRate rate(/*tau_s=*/10.0);
  EXPECT_DOUBLE_EQ(rate.update(100, 0), 0.0);
  EXPECT_DOUBLE_EQ(rate.value(), 0.0);
}

TEST(EwmaRate, ConvergesTowardSteadyRate) {
  EwmaRate rate(/*tau_s=*/1.0);
  // 1000 events/sec fed once per second: after several time constants the
  // estimate approaches 1000 from below, monotonically.
  rate.update(0, 0);
  double previous = 0.0;
  for (int s = 1; s <= 10; ++s) {
    const double estimate =
        rate.update(static_cast<std::uint64_t>(s) * 1000,
                    static_cast<std::int64_t>(s) * 1000000);
    EXPECT_GT(estimate, previous);
    previous = estimate;
  }
  EXPECT_NEAR(previous, 1000.0, 1.0);
  EXPECT_DOUBLE_EQ(rate.value(), previous);
}

TEST(EwmaRate, NonAdvancingClockKeepsLastEstimate) {
  EwmaRate rate(1.0);
  rate.update(0, 0);
  const double estimate = rate.update(1000, 1000000);
  EXPECT_DOUBLE_EQ(rate.update(2000, 1000000), estimate);  // dt == 0
}

}  // namespace
}  // namespace si
