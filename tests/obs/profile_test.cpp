#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <string>

namespace si {
namespace {

// The profiler is process-wide; every test starts from a clean, disabled
// state and leaves it that way.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::set_enabled(false);
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::set_enabled(false);
    Profiler::instance().reset();
  }
};

TEST_F(ProfileTest, DisabledScopesRecordNothing) {
  {
    SI_PROFILE_SCOPE("quiet");
  }
  EXPECT_EQ(Profiler::instance().report().find("quiet"), std::string::npos);
}

TEST_F(ProfileTest, EnabledScopesBuildHierarchicalTree) {
  Profiler::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    SI_PROFILE_SCOPE("outer");
    SI_PROFILE_SCOPE("inner");
  }
  const std::string report = Profiler::instance().report();
  EXPECT_NE(report.find("outer"), std::string::npos);
  EXPECT_NE(report.find("inner"), std::string::npos);
  EXPECT_NE(report.find("3 calls"), std::string::npos);
  // "inner" nests under "outer": it appears after and indented.
  EXPECT_LT(report.find("outer"), report.find("inner"));
  EXPECT_NE(report.find("  inner"), std::string::npos);
}

TEST_F(ProfileTest, ScopesStartedWhileEnabledRecordOnExit) {
  Profiler::set_enabled(true);
  {
    SI_PROFILE_SCOPE("timed");
  }
  // Disabling afterwards keeps the already-recorded data.
  Profiler::set_enabled(false);
  EXPECT_NE(Profiler::instance().report().find("timed"), std::string::npos);
}

TEST_F(ProfileTest, ResetClearsTheTree) {
  Profiler::set_enabled(true);
  {
    SI_PROFILE_SCOPE("gone");
  }
  Profiler::instance().reset();
  EXPECT_EQ(Profiler::instance().report().find("gone"), std::string::npos);
}

TEST_F(ProfileTest, WriteReportGoesThroughSink) {
  Profiler::set_enabled(true);
  {
    SI_PROFILE_SCOPE("sinked");
  }
  StringSink sink;
  Profiler::instance().write_report(sink);
  EXPECT_EQ(sink.str(), Profiler::instance().report());
}

}  // namespace
}  // namespace si
