// Seeded random simulation-case generation for the property/differential
// harness (DESIGN.md §7). One 64-bit seed deterministically expands into a
// complete simulation case: a synthetic workload (arrival process, runtime
// and width mixture deliberately covering the awkward corners — sub-10 s
// runs for the bsld threshold, under- and over-estimates, full-width jobs),
// a SimConfig (backfill on/off, rejection budgets, fault injection), a base
// policy drawn from every name the CLI accepts (the seven Table 3
// heuristics plus Slurm), and an inspector (none / never-reject / random /
// distilled-rule / always-reject).
//
// run_case() executes a case end to end, owning the policy, feature
// builder, inspector, and RNG it needs, with optional oracle/tracer
// installed — the single entry point the harness, tools, and tests share so
// every consumer exercises the identical construction path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/inspector.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace si {

class Rng;
class SimOracle;
class SimTracer;

/// Bounds for generate_case's draws. Defaults keep single cases to a few
/// dozen jobs so a harness can afford thousands of them.
struct CaseOptions {
  int min_jobs = 8;
  int max_jobs = 48;
  int min_cluster_procs = 16;
  int max_cluster_procs = 128;
  /// Probability that fault injection is enabled for a case.
  double fault_prob = 0.4;
};

/// One fully-specified simulation: workload + configuration + policy +
/// inspector. Everything derives from `seed`; re-generating with the same
/// seed and options yields an identical case.
struct SimCase {
  enum class InspectorKind { kNone, kNever, kRandom, kRule, kAlwaysReject };

  std::uint64_t seed = 0;
  int total_procs = 0;
  std::vector<Job> jobs;
  SimConfig config;  ///< tracer/metrics/oracle left null; run_case installs
  std::string policy;  ///< a known_policies() name (heuristics + Slurm)
  Metric metric = Metric::kBsld;  ///< feature metric for the rule inspector
  InspectorKind inspector = InspectorKind::kNone;
  double reject_prob = 0.0;  ///< kRandom only

  /// One-line description ("seed=7 procs=64 jobs=23 policy=SJF ..."), the
  /// failure-message anchor that makes any harness failure reproducible.
  std::string str() const;
};

const char* inspector_kind_name(SimCase::InspectorKind kind);

/// Expands `seed` into a complete case. Deterministic and platform-stable
/// (all draws flow through si::Rng).
SimCase generate_case(std::uint64_t seed, const CaseOptions& options = {});

/// Generates just a workload: `count` jobs on a `total_procs` cluster,
/// submit-sorted, re-based to t = 0, ids 0..count-1.
std::vector<Job> generate_workload(Rng& rng, int total_procs, int count);

/// An inspector that never rejects — metamorphically equivalent to running
/// without an inspector (identical records; only the inspections counter
/// differs).
class NeverRejectInspector final : public Inspector {
 public:
  bool reject(const InspectionView&) override { return false; }
};

/// Runs `sim_case` to completion, constructing the policy, feature builder,
/// inspector, and inspector RNG the case calls for. `oracle` / `tracer`
/// (either may be null) are installed for the run.
SequenceResult run_case(const SimCase& sim_case, SimOracle* oracle = nullptr,
                        SimTracer* tracer = nullptr);

}  // namespace si
