#include "check/generator.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/features.hpp"
#include "core/rl_inspector.hpp"
#include "core/rule_inspector.hpp"
#include "sched/factory.hpp"
#include "workload/trace.hpp"

namespace si {

namespace {

/// Runtime mixture: mostly "ordinary" batch jobs, with deliberate mass on
/// the corners the metrics care about — sub-threshold (< 10 s) runs,
/// zero-second runs, and multi-hour tails.
double draw_runtime(Rng& rng) {
  const double p = rng.uniform();
  if (p < 0.10) return static_cast<double>(rng.uniform_int(0, 9));
  if (p < 0.75) return rng.uniform(10.0, 1800.0);
  return rng.uniform(1800.0, 4.0 * 3600.0);
}

/// Width mixture: mostly narrow, some half-cluster, occasionally the full
/// machine (exercises blocking and the EASY reservation).
int draw_procs(Rng& rng, int total_procs) {
  const double p = rng.uniform();
  if (p < 0.70)
    return static_cast<int>(
        rng.uniform_int(1, std::max(1, total_procs / 8)));
  if (p < 0.95)
    return static_cast<int>(
        rng.uniform_int(1, std::max(1, total_procs / 2)));
  return static_cast<int>(rng.uniform_int(1, total_procs));
}

}  // namespace

const char* inspector_kind_name(SimCase::InspectorKind kind) {
  switch (kind) {
    case SimCase::InspectorKind::kNone: return "none";
    case SimCase::InspectorKind::kNever: return "never";
    case SimCase::InspectorKind::kRandom: return "random";
    case SimCase::InspectorKind::kRule: return "rule";
    case SimCase::InspectorKind::kAlwaysReject: return "always";
  }
  return "?";
}

std::string SimCase::str() const {
  std::ostringstream out;
  out << "seed=" << seed << " procs=" << total_procs
      << " jobs=" << jobs.size() << " policy=" << policy
      << " inspector=" << inspector_kind_name(inspector);
  if (inspector == InspectorKind::kRandom) out << "(p=" << reject_prob << ")";
  out << " metric=" << metric_name(metric)
      << " backfill=" << (config.backfill ? 1 : 0)
      << " max_interval=" << config.max_interval
      << " max_rejections=" << config.max_rejection_times;
  if (config.faults.enabled)
    out << " faults(drain_interval=" << config.faults.drain_interval
        << ",failure_prob=" << config.faults.job_failure_prob
        << ",max_requeues=" << config.faults.max_requeues
        << ",estimate_wall=" << (config.faults.estimate_wall ? 1 : 0) << ")";
  else
    out << " faults=off";
  return out.str();
}

std::vector<Job> generate_workload(Rng& rng, int total_procs, int count) {
  SI_REQUIRE(total_procs > 0 && count > 0);
  // Mean inter-arrival spanning "saturated" to "mostly idle" regimes.
  const double mean_gap = rng.uniform(5.0, 600.0);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  double submit = 0.0;
  for (int i = 0; i < count; ++i) {
    Job job;
    job.id = i;
    job.submit = submit;
    job.run = draw_runtime(rng);
    // Estimates: exact ~25% of the time, otherwise off by up to 3x in
    // either direction (underestimates feed the estimate-wall kill path,
    // overestimates stress the EASY shadow).
    if (rng.uniform() < 0.25)
      job.estimate = job.run;
    else
      job.estimate = std::max(1.0, job.run * rng.uniform(0.3, 3.0));
    job.procs = draw_procs(rng, total_procs);
    job.user = static_cast<int>(rng.uniform_int(0, 7));
    job.queue = static_cast<int>(rng.uniform_int(0, 2));
    jobs.push_back(job);
    submit += rng.exponential(1.0 / mean_gap);
  }
  rebase_sequence(jobs);
  return jobs;
}

SimCase generate_case(std::uint64_t seed, const CaseOptions& options) {
  Rng rng(seed);
  SimCase sim_case;
  sim_case.seed = seed;
  sim_case.total_procs = static_cast<int>(rng.uniform_int(
      options.min_cluster_procs, options.max_cluster_procs));
  const int count = static_cast<int>(
      rng.uniform_int(options.min_jobs, options.max_jobs));
  sim_case.jobs = generate_workload(rng, sim_case.total_procs, count);

  sim_case.config.backfill = rng.bernoulli(0.5);
  const double intervals[] = {30.0, 120.0, 600.0};
  sim_case.config.max_interval = intervals[rng.uniform_index(3)];
  const int budgets[] = {1, 4, 72};
  sim_case.config.max_rejection_times =
      budgets[rng.uniform_index(3)];

  if (rng.bernoulli(options.fault_prob)) {
    FaultConfig& faults = sim_case.config.faults;
    faults.enabled = true;
    faults.seed = rng.next_u64();
    faults.drain_interval = rng.bernoulli(0.6) ? rng.uniform(600.0, 7200.0)
                                               : 0.0;
    faults.drain_fraction = rng.uniform(0.02, 0.2);
    faults.drain_duration = rng.uniform(600.0, 7200.0);
    faults.job_failure_prob = rng.bernoulli(0.6) ? rng.uniform(0.0, 0.3) : 0.0;
    faults.max_requeues = static_cast<int>(rng.uniform_int(0, 3));
    faults.estimate_wall = rng.bernoulli(0.5);
  }

  const std::vector<std::string>& policies = known_policies();
  sim_case.policy = policies[rng.uniform_index(policies.size())];
  const Metric metrics[] = {Metric::kBsld, Metric::kWait, Metric::kMaxBsld};
  sim_case.metric = metrics[rng.uniform_index(3)];

  const double pick = rng.uniform();
  if (pick < 0.30) {
    sim_case.inspector = SimCase::InspectorKind::kNone;
  } else if (pick < 0.45) {
    sim_case.inspector = SimCase::InspectorKind::kNever;
  } else if (pick < 0.75) {
    sim_case.inspector = SimCase::InspectorKind::kRandom;
    sim_case.reject_prob = rng.uniform(0.1, 0.9);
  } else if (pick < 0.92) {
    sim_case.inspector = SimCase::InspectorKind::kRule;
  } else {
    sim_case.inspector = SimCase::InspectorKind::kAlwaysReject;
  }
  return sim_case;
}

SequenceResult run_case(const SimCase& sim_case, SimOracle* oracle,
                        SimTracer* tracer) {
  SI_REQUIRE(!sim_case.jobs.empty());
  SimConfig config = sim_case.config;
  config.oracle = oracle;
  config.tracer = tracer;

  // Slurm calibrates on the trace; every other policy is stateless.
  Trace trace("generated", sim_case.total_procs, sim_case.jobs);
  PolicyPtr policy = sim_case.policy == "Slurm"
                         ? make_slurm_policy(trace)
                         : make_policy(sim_case.policy);

  FeatureScales scales = FeatureScales::from_trace(trace);
  FeatureBuilder features(FeatureMode::kManual, sim_case.metric, scales,
                          config.max_interval);
  Rng inspector_rng(sim_case.seed ^ 0x1235c70cba5e11feULL);

  NeverRejectInspector never;
  RandomInspector random(sim_case.reject_prob, inspector_rng);
  RuleInspector rule(features);
  AlwaysRejectInspector always;
  Inspector* inspector = nullptr;
  switch (sim_case.inspector) {
    case SimCase::InspectorKind::kNone: inspector = nullptr; break;
    case SimCase::InspectorKind::kNever: inspector = &never; break;
    case SimCase::InspectorKind::kRandom: inspector = &random; break;
    case SimCase::InspectorKind::kRule: inspector = &rule; break;
    case SimCase::InspectorKind::kAlwaysReject: inspector = &always; break;
  }

  Simulator sim(sim_case.total_procs, config);
  return sim.run(sim_case.jobs, *policy, inspector);
}

}  // namespace si
