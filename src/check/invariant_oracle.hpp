// The runtime invariant oracle — the production SimOracle (DESIGN.md §7).
// Installed via SimConfig::oracle, it shadows every simulated sequence with
// an independent mirror of the scheduler state and validates, at each
// scheduling transition:
//
//   * node-capacity conservation — running + free + drained processors sum
//     to the cluster size at every event, no pool ever goes negative, and
//     the simulator's reported free count matches the mirror;
//   * legal starts — no job starts before its submit time, after exceeding
//     MAX_REJECTION_TIMES, twice concurrently, or ahead of the blocked
//     reservation without being an EASY backfill;
//   * EASY backfilling — backfilled jobs either finish (by estimate) before
//     the reserved head job's shadow start or fit into the spare processors
//     at the shadow time; on fault-free runs the shadow itself is
//     recomputed independently and compared against the simulator's;
//   * monotonic simulated time — time never moves backwards, at any hook;
//   * per-job metric consistency — wait = start − submit, the bounded
//     slowdown formula with the paper's 10 s threshold, exact outcome
//     arithmetic per termination kind, and a full independent recomputation
//     of the sequence metrics (avg/max bsld, avg wait, utilization,
//     makespan, fault counters) that must match the reported values
//     bit-for-bit.
//
// The oracle is a pure observer: it never changes simulator behaviour, and
// a null SimConfig::oracle skips every hook (bit-identical runs). By
// default violations are collected (capped message list, exact count) so a
// property harness can report all of them; halt_on_violation throws
// si::ContractViolation at the first offence instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/oracle.hpp"
#include "workload/job.hpp"

namespace si {

/// One recorded invariant violation.
struct InvariantViolation {
  Time time = 0.0;        ///< simulated time of the offence
  std::int64_t job = -1;  ///< offending job id, -1 when not job-specific
  std::string what;

  /// "t=<time> job=<id>: <what>" (job part omitted when -1).
  std::string str() const;
};

struct InvariantOracleOptions {
  /// Throw si::ContractViolation at the first violation instead of
  /// collecting it. Off by default: harnesses want the full list.
  bool halt_on_violation = false;
  /// How many violation records are retained; the total count keeps
  /// growing past the cap.
  std::size_t max_recorded = 64;
};

class InvariantOracle final : public SimOracle {
 public:
  explicit InvariantOracle(InvariantOracleOptions options = {});

  // --- SimOracle hooks ---
  void on_run_begin(const std::vector<Job>& jobs, int total_procs,
                    const SimConfig& config) override;
  void on_time_advance(Time from, Time to) override;
  void on_sched_point(Time now, std::size_t index, int free_procs,
                      std::size_t waiting_jobs) override;
  void on_inspect(Time now, std::size_t index, int prior_rejections,
                  bool rejected) override;
  void on_block(Time now, std::size_t index) override;
  void on_backfill_window(Time now, std::size_t blocked_index,
                          Time shadow_time, int shadow_extra) override;
  void on_job_start(Time now, std::size_t index, const Job& job,
                    int free_procs_after, bool backfilled) override;
  void on_job_release(Time now, std::size_t index, const JobRecord& record,
                      int procs, int free_procs_after, bool requeued) override;
  void on_capacity_change(Time now, int delta, int drained_total,
                          int free_procs) override;
  void on_run_end(const std::vector<JobRecord>& records,
                  const SequenceMetrics& metrics) override;

  // --- results (cumulative across runs until clear()) ---
  bool ok() const { return violation_count_ == 0; }
  std::size_t violation_count() const { return violation_count_; }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  /// How many sequences this oracle has fully validated (run_end reached).
  std::size_t runs_checked() const { return runs_checked_; }
  /// Multi-line human-readable report; "ok (N runs checked)" when clean.
  std::string report() const;
  /// Forgets accumulated violations and run counters.
  void clear();

 private:
  enum class JobState { kPending, kRunning, kDone };

  struct RunningMirror {
    std::size_t index = 0;
    Time estimated_finish = 0.0;
    int procs = 0;
  };

  void fail(Time time, std::int64_t job, std::string what);
  /// Every-hook bookkeeping: monotonic time.
  void touch(Time now);
  /// Conservation checks valid at settled transitions.
  void check_settled(Time now);
  /// Independent EASY shadow recomputation from the mirror running set.
  void recompute_shadow(int procs_needed, Time now, Time* time,
                        int* extra) const;

  InvariantOracleOptions options_;
  std::vector<InvariantViolation> violations_;
  std::size_t violation_count_ = 0;
  std::size_t runs_checked_ = 0;

  // --- per-run mirror state ---
  const std::vector<Job>* jobs_ = nullptr;
  int total_procs_ = 0;
  int max_rejection_times_ = 0;
  bool faults_enabled_ = false;
  bool backfill_enabled_ = false;
  Time last_time_ = 0.0;
  int free_ = 0;
  int drained_ = 0;
  int running_procs_ = 0;
  std::vector<RunningMirror> running_;
  std::vector<JobState> states_;
  std::vector<int> rejections_;
  std::vector<int> requeues_;
  std::vector<char> ever_started_;
  bool has_blocked_ = false;
  std::size_t blocked_ = 0;
  // EASY backfill window (valid until the next non-start hook).
  bool window_active_ = false;
  Time window_time_ = 0.0;     ///< simulated instant the window was opened
  Time window_shadow_ = 0.0;   ///< reserved head job's shadow start
  int window_extra_ = 0;       ///< spare processors left at the shadow
  std::size_t inspections_seen_ = 0;
  std::size_t rejections_seen_ = 0;
};

}  // namespace si
