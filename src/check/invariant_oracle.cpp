#include "check/invariant_oracle.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"

namespace si {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::infinity();

std::string format_time(Time t) {
  std::ostringstream out;
  out.precision(17);
  out << t;
  return out.str();
}
}  // namespace

std::string InvariantViolation::str() const {
  std::string out = "t=" + format_time(time);
  if (job >= 0) out += " job=" + std::to_string(job);
  return out + ": " + what;
}

InvariantOracle::InvariantOracle(InvariantOracleOptions options)
    : options_(options) {}

void InvariantOracle::fail(Time time, std::int64_t job, std::string what) {
  InvariantViolation violation;
  violation.time = time;
  violation.job = job;
  violation.what = std::move(what);
  ++violation_count_;
  if (violations_.size() < options_.max_recorded)
    violations_.push_back(violation);
  if (options_.halt_on_violation)
    throw ContractViolation("simulator invariant violated: " +
                            violation.str());
}

void InvariantOracle::touch(Time now) {
  if (now < last_time_)
    fail(now, -1,
         "time moved backwards (last seen " + format_time(last_time_) + ")");
  last_time_ = std::max(last_time_, now);
}

void InvariantOracle::check_settled(Time now) {
  if (free_ < 0)
    fail(now, -1, "free pool negative: " + std::to_string(free_));
  if (drained_ < 0)
    fail(now, -1, "drained pool negative: " + std::to_string(drained_));
  if (running_procs_ + free_ + drained_ != total_procs_)
    fail(now, -1,
         "capacity not conserved: running " + std::to_string(running_procs_) +
             " + free " + std::to_string(free_) + " + drained " +
             std::to_string(drained_) +
             " != " + std::to_string(total_procs_));
}

void InvariantOracle::on_run_begin(const std::vector<Job>& jobs,
                                   int total_procs, const SimConfig& config) {
  jobs_ = &jobs;
  total_procs_ = total_procs;
  max_rejection_times_ = config.max_rejection_times;
  faults_enabled_ = config.faults.enabled;
  backfill_enabled_ = config.backfill;
  last_time_ = jobs.empty() ? 0.0 : jobs.front().submit;
  free_ = total_procs;
  drained_ = 0;
  running_procs_ = 0;
  running_.clear();
  states_.assign(jobs.size(), JobState::kPending);
  rejections_.assign(jobs.size(), 0);
  requeues_.assign(jobs.size(), 0);
  ever_started_.assign(jobs.size(), 0);
  has_blocked_ = false;
  blocked_ = 0;
  window_active_ = false;
  inspections_seen_ = 0;
  rejections_seen_ = 0;
}

void InvariantOracle::on_time_advance(Time from, Time to) {
  window_active_ = false;
  touch(from);
  if (to <= from)
    fail(to, -1,
         "non-monotonic time advance from " + format_time(from) + " to " +
             format_time(to));
  last_time_ = std::max(last_time_, to);
}

void InvariantOracle::on_sched_point(Time now, std::size_t index,
                                     int free_procs,
                                     std::size_t waiting_jobs) {
  window_active_ = false;
  touch(now);
  check_settled(now);
  if (jobs_ == nullptr || index >= jobs_->size()) {
    fail(now, -1, "sched point for out-of-range job index");
    return;
  }
  const Job& job = (*jobs_)[index];
  if (waiting_jobs == 0)
    fail(now, job.id, "sched point with an empty waiting queue");
  if (states_[index] != JobState::kPending)
    fail(now, job.id, "sched point picked a running/terminated job");
  if (job.submit > now)
    fail(now, job.id, "sched point before the job's submit time");
  if (free_procs != free_)
    fail(now, job.id,
         "free-processor mismatch: simulator reports " +
             std::to_string(free_procs) + ", mirror holds " +
             std::to_string(free_));
}

void InvariantOracle::on_inspect(Time now, std::size_t index,
                                 int prior_rejections, bool rejected) {
  window_active_ = false;
  touch(now);
  if (jobs_ == nullptr || index >= jobs_->size()) {
    fail(now, -1, "inspection of out-of-range job index");
    return;
  }
  const Job& job = (*jobs_)[index];
  ++inspections_seen_;
  if (prior_rejections >= max_rejection_times_)
    fail(now, job.id,
         "inspected past MAX_REJECTION_TIMES (" +
             std::to_string(prior_rejections) + " >= " +
             std::to_string(max_rejection_times_) + ")");
  if (prior_rejections != rejections_[index])
    fail(now, job.id,
         "rejection count drifted: simulator says " +
             std::to_string(prior_rejections) + ", mirror counted " +
             std::to_string(rejections_[index]));
  if (rejected) {
    ++rejections_[index];
    ++rejections_seen_;
    if (rejections_[index] > max_rejection_times_)
      fail(now, job.id, "rejection budget exceeded");
  }
}

void InvariantOracle::on_block(Time now, std::size_t index) {
  window_active_ = false;
  touch(now);
  if (jobs_ == nullptr || index >= jobs_->size()) {
    fail(now, -1, "blocked reservation for out-of-range job index");
    return;
  }
  const Job& job = (*jobs_)[index];
  if (has_blocked_)
    fail(now, job.id, "second blocked reservation while one is held");
  if (job.procs <= free_)
    fail(now, job.id, "job blocked although it fits the free pool");
  has_blocked_ = true;
  blocked_ = index;
}

void InvariantOracle::recompute_shadow(int procs_needed, Time now, Time* time,
                                       int* extra) const {
  if (procs_needed <= free_) {
    *time = now;
    *extra = free_ - procs_needed;
    return;
  }
  // Same semantics as Simulator::compute_shadow on the fault-free path, but
  // implemented independently over the oracle's own running-set mirror:
  // releases happen at max(estimated finish, now), walked in (time, procs)
  // order.
  std::vector<std::pair<Time, int>> releases;
  releases.reserve(running_.size());
  for (const RunningMirror& r : running_)
    releases.emplace_back(std::max(r.estimated_finish, now), r.procs);
  std::sort(releases.begin(), releases.end());
  int free = free_;
  for (const auto& [release_time, procs] : releases) {
    free += procs;
    if (free >= procs_needed) {
      *time = release_time;
      *extra = free - procs_needed;
      return;
    }
  }
  *time = kInf;
  *extra = 0;
}

void InvariantOracle::on_backfill_window(Time now, std::size_t blocked_index,
                                         Time shadow_time, int shadow_extra) {
  touch(now);
  if (jobs_ == nullptr || blocked_index >= jobs_->size()) {
    fail(now, -1, "backfill window for out-of-range job index");
    return;
  }
  const Job& blocked_job = (*jobs_)[blocked_index];
  if (!has_blocked_ || blocked_ != blocked_index)
    fail(now, blocked_job.id,
         "backfill window opened without a matching blocked reservation");
  if (shadow_time < now)
    fail(now, blocked_job.id, "shadow start lies in the past");
  if (!faults_enabled_) {
    // Differential check: the oracle's own shadow must match the
    // simulator's exactly (drain recoveries make the estimate streams
    // diverge by design, so the cross-check is fault-free only).
    Time expect_time = 0.0;
    int expect_extra = 0;
    recompute_shadow(blocked_job.procs, now, &expect_time, &expect_extra);
    if (expect_time != shadow_time || expect_extra != shadow_extra)
      fail(now, blocked_job.id,
           "shadow mismatch: simulator (" + format_time(shadow_time) + ", " +
               std::to_string(shadow_extra) + "), oracle (" +
               format_time(expect_time) + ", " +
               std::to_string(expect_extra) + ")");
  }
  window_active_ = true;
  window_time_ = now;
  window_shadow_ = shadow_time;
  window_extra_ = shadow_extra;
}

void InvariantOracle::on_job_start(Time now, std::size_t index, const Job& job,
                                   int free_procs_after, bool backfilled) {
  touch(now);
  if (jobs_ == nullptr || index >= jobs_->size()) {
    fail(now, -1, "start of out-of-range job index");
    return;
  }
  if (states_[index] == JobState::kRunning)
    fail(now, job.id, "job started twice without an intermediate release");
  if (states_[index] == JobState::kDone)
    fail(now, job.id, "terminated job restarted");
  if (now < job.submit)
    fail(now, job.id,
         "job started before its submit time " + format_time(job.submit));
  if (rejections_[index] > max_rejection_times_)
    fail(now, job.id, "job started beyond its rejection budget");
  if (job.procs > free_)
    fail(now, job.id,
         "start oversubscribes the free pool (" + std::to_string(job.procs) +
             " > " + std::to_string(free_) + ")");

  if (backfilled) {
    if (!window_active_ || window_time_ != now) {
      fail(now, job.id, "backfilled start outside a backfill window");
    } else {
      // The EASY contract: never delay the reserved head job. Either the
      // backfilled job is estimated to finish before the shadow start, or
      // it fits into the processors left spare at the shadow.
      const bool ends_before_shadow = now + job.estimate <= window_shadow_;
      if (!ends_before_shadow) {
        if (job.procs > window_extra_)
          fail(now, job.id,
               "backfill delays the reserved job: runs past the shadow (" +
                   format_time(window_shadow_) + ") and needs " +
                   std::to_string(job.procs) + " > spare " +
                   std::to_string(window_extra_));
        else
          window_extra_ -= job.procs;
      }
    }
    if (!has_blocked_)
      fail(now, job.id, "backfilled start without a blocked reservation");
  } else {
    window_active_ = false;
    if (has_blocked_) {
      if (index == blocked_) {
        has_blocked_ = false;  // the reservation is being satisfied
      } else {
        fail(now, job.id,
             "job started ahead of the blocked reservation without backfill");
      }
    }
  }

  free_ -= job.procs;
  running_procs_ += job.procs;
  RunningMirror mirror;
  mirror.index = index;
  mirror.estimated_finish = now + job.estimate;
  mirror.procs = job.procs;
  running_.push_back(mirror);
  states_[index] = JobState::kRunning;
  ever_started_[index] = 1;
  if (free_procs_after != free_)
    fail(now, job.id,
         "free-processor mismatch after start: simulator reports " +
             std::to_string(free_procs_after) + ", mirror holds " +
             std::to_string(free_));
  check_settled(now);
}

void InvariantOracle::on_job_release(Time now, std::size_t index,
                                     const JobRecord& record, int procs,
                                     int free_procs_after, bool requeued) {
  window_active_ = false;
  touch(now);
  if (jobs_ == nullptr || index >= jobs_->size()) {
    fail(now, -1, "release of out-of-range job index");
    return;
  }
  const Job& job = (*jobs_)[index];
  if (record.id != job.id)
    fail(now, job.id, "record/job id mismatch at release");
  if (states_[index] != JobState::kRunning)
    fail(now, job.id, "release of a job that is not running");
  auto it = std::find_if(
      running_.begin(), running_.end(),
      [index](const RunningMirror& r) { return r.index == index; });
  if (it == running_.end()) {
    fail(now, job.id, "release of a job absent from the running mirror");
  } else {
    if (it->procs != procs)
      fail(now, job.id,
           "release processor count drifted: " + std::to_string(procs) +
               " vs allocated " + std::to_string(it->procs));
    running_.erase(it);
  }
  free_ += procs;
  running_procs_ -= procs;
  if (requeued) {
    states_[index] = JobState::kPending;
    ++requeues_[index];
    if (record.requeues != requeues_[index])
      fail(now, job.id,
           "requeue count drifted: record says " +
               std::to_string(record.requeues) + ", mirror counted " +
               std::to_string(requeues_[index]));
    if (record.started())
      fail(now, job.id, "requeued job still carries a start time");
  } else {
    states_[index] = JobState::kDone;
    if (record.finish != now)
      fail(now, job.id, "release time differs from the recorded finish");
  }
  if (free_procs_after != free_)
    fail(now, job.id,
         "free-processor mismatch after release: simulator reports " +
             std::to_string(free_procs_after) + ", mirror holds " +
             std::to_string(free_));
  check_settled(now);
}

void InvariantOracle::on_capacity_change(Time now, int delta,
                                         int drained_total, int free_procs) {
  // Deliberately no free-pool check here: during a graceful drain the
  // collected processors come out of the *releasing job*, and the paired
  // on_job_release that settles the pools follows within the same instant.
  (void)free_procs;
  window_active_ = false;
  touch(now);
  if (delta == 0) fail(now, -1, "zero-delta capacity change");
  drained_ += delta;
  free_ -= delta;
  if (drained_ != drained_total)
    fail(now, -1,
         "drained-pool mismatch: simulator reports " +
             std::to_string(drained_total) + ", mirror holds " +
             std::to_string(drained_));
  if (drained_ < 0)
    fail(now, -1, "drained pool negative after capacity change");
  if (drained_ > total_procs_)
    fail(now, -1, "drained pool exceeds the cluster size");
}

void InvariantOracle::on_run_end(const std::vector<JobRecord>& records,
                                 const SequenceMetrics& metrics) {
  window_active_ = false;
  const Time now = last_time_;
  if (jobs_ == nullptr) {
    fail(now, -1, "run end without a run begin");
    return;
  }
  const std::vector<Job>& jobs = *jobs_;
  if (records.size() != jobs.size())
    fail(now, -1, "record count differs from the job count");
  if (!running_.empty())
    fail(now, -1,
         std::to_string(running_.size()) + " jobs still running at run end");
  if (has_blocked_)
    fail(now, -1, "blocked reservation still held at run end");

  // Independent recomputation of the sequence metrics, accumulated in
  // record order exactly as sim/metrics.cpp does so agreement is exact.
  double wait_sum = 0.0;
  double bsld_sum = 0.0;
  double max_bsld = 0.0;
  double makespan = 0.0;
  double busy_node_seconds = 0.0;
  std::size_t requeues = 0;
  std::size_t kills = 0;
  std::size_t wall_kills = 0;
  const std::size_t n = std::min(records.size(), jobs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const JobRecord& r = records[i];
    const Job& job = jobs[i];
    if (!r.started()) {
      fail(now, job.id, "job never started");
      continue;
    }
    if (states_[i] != JobState::kDone)
      fail(now, job.id, "recorded as finished but mirror disagrees");
    if (r.id != job.id) fail(now, job.id, "record id drifted");
    if (r.submit != job.submit) fail(now, job.id, "record submit drifted");
    if (r.procs != job.procs) fail(now, job.id, "record procs drifted");
    if (r.start < job.submit)
      fail(now, job.id, "recorded start precedes submit");
    if (r.finish < r.start) fail(now, job.id, "recorded finish precedes start");
    if (r.rejections != rejections_[i])
      fail(now, job.id,
           "final rejection count drifted: record " +
               std::to_string(r.rejections) + ", mirror " +
               std::to_string(rejections_[i]));
    if (r.rejections > max_rejection_times_)
      fail(now, job.id, "final rejection count exceeds the budget");
    if (r.requeues != requeues_[i])
      fail(now, job.id, "final requeue count drifted");
    if (r.killed && r.wall_killed)
      fail(now, job.id, "job both budget-killed and wall-killed");
    // Exact outcome arithmetic per termination kind.
    if (r.wall_killed) {
      if (r.run != job.estimate)
        fail(now, job.id, "wall-killed run differs from the estimate");
      if (r.finish != r.start + job.estimate)
        fail(now, job.id, "wall-killed finish is not start + estimate");
    } else if (r.killed) {
      if (r.run != r.finish - r.start)
        fail(now, job.id, "killed run differs from the executed span");
    } else {
      if (r.run != job.run)
        fail(now, job.id, "completed run differs from the actual runtime");
      if (r.finish != r.start + job.run)
        fail(now, job.id, "wait = start - submit / finish = start + run "
                          "violated: finish is not start + run");
    }
    // Per-job metric consistency: wait and the paper's bounded slowdown
    // with the 10 s interactivity threshold.
    const double wait = r.start - r.submit;
    if (r.wait() != wait) fail(now, job.id, "wait() is not start - submit");
    const double denom = r.run > 10.0 ? r.run : 10.0;
    const double sld = (wait + r.run) / denom;
    const double bsld = sld > 1.0 ? sld : 1.0;
    if (r.bounded_slowdown() != bsld)
      fail(now, job.id, "bounded slowdown deviates from the paper formula");
    wait_sum += wait;
    bsld_sum += bsld;
    max_bsld = std::max(max_bsld, bsld);
    makespan = std::max(makespan, r.finish);
    busy_node_seconds += r.run * static_cast<double>(r.procs);
    requeues += static_cast<std::size_t>(r.requeues);
    if (r.killed) ++kills;
    if (r.wall_killed) ++wall_kills;
  }
  const auto count = static_cast<double>(records.size());
  const double avg_wait = count > 0.0 ? wait_sum / count : 0.0;
  const double avg_bsld = count > 0.0 ? bsld_sum / count : 0.0;
  const double utilization =
      makespan > 0.0
          ? busy_node_seconds / (static_cast<double>(total_procs_) * makespan)
          : 0.0;
  if (metrics.jobs != records.size())
    fail(now, -1, "metrics job count drifted");
  if (metrics.avg_wait != avg_wait)
    fail(now, -1, "reported avg wait deviates from the recomputation");
  if (metrics.avg_bsld != avg_bsld)
    fail(now, -1, "reported avg bsld deviates from the recomputation");
  if (metrics.max_bsld != max_bsld)
    fail(now, -1, "reported max bsld deviates from the recomputation");
  if (metrics.utilization != utilization)
    fail(now, -1, "reported utilization deviates from the recomputation");
  if (utilization > 1.0 + 1e-12)
    fail(now, -1, "utilization exceeds 1");
  if (metrics.makespan != makespan)
    fail(now, -1, "reported makespan deviates from the recomputation");
  if (metrics.inspections != inspections_seen_)
    fail(now, -1, "reported inspections deviate from the observed count");
  if (metrics.rejections != rejections_seen_)
    fail(now, -1, "reported rejections deviate from the observed count");
  if (metrics.requeues != requeues)
    fail(now, -1, "reported requeues deviate from the records");
  if (metrics.kills != kills)
    fail(now, -1, "reported kills deviate from the records");
  if (metrics.wall_kills != wall_kills)
    fail(now, -1, "reported wall kills deviate from the records");
  ++runs_checked_;
  jobs_ = nullptr;
}

std::string InvariantOracle::report() const {
  std::ostringstream out;
  if (ok()) {
    out << "invariant oracle: ok (" << runs_checked_ << " runs checked)";
    return out.str();
  }
  out << "invariant oracle: " << violation_count_ << " violations across "
      << runs_checked_ << " completed runs\n";
  for (const InvariantViolation& v : violations_) out << "  " << v.str() << "\n";
  if (violation_count_ > violations_.size())
    out << "  ... " << (violation_count_ - violations_.size()) << " more\n";
  return out.str();
}

void InvariantOracle::clear() {
  violations_.clear();
  violation_count_ = 0;
  runs_checked_ = 0;
}

}  // namespace si
