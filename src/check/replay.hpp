// Trace-replay validation (DESIGN.md §7). A PR-2 JSONL event trace is a
// complete account of a simulated sequence: every submit, start, finish /
// kill / requeue, rejection, and capacity change, plus the simulator's own
// reported sequence metrics on the run_end record. The replay validator
// re-derives the per-job records purely from those events, recomputes the
// sequence metrics through the same sim/metrics.cpp aggregation, and
// cross-checks:
//
//   * per-job story — every job is submitted exactly once, starts only
//     after its submit, finishes/kills only while running, and its traced
//     wait equals start − submit exactly;
//   * free-pool consistency — replaying start/finish/kill/requeue/drain/
//     restore deltas reproduces the free-processor count the simulator
//     reported on every sched_point and inspect record;
//   * counter consistency — inspect/reject records agree with each other
//     and with the run_end totals;
//   * metric consistency — the replayed avg wait, avg bsld, max bsld,
//     utilization, and makespan equal the reported values *bit-for-bit*
//     (the trace serializes doubles with %.17g, which round-trips).
//
// Works on a JSONL stream/file (tools/replay_validate) or directly on
// in-memory TraceEvents from a BufferTracer (the property harness). Traces
// holding several runs (e.g. trainer rollouts) are split on run_begin and
// validated independently; trajectory markers are ignored.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/metrics.hpp"

namespace si {

/// Validation outcome for one run_begin..run_end span.
struct ReplayRunReport {
  std::size_t jobs = 0;
  SequenceMetrics replayed;  ///< recomputed from the event stream
  SequenceMetrics reported;  ///< as serialized on the run_end record
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

/// Validation outcome for a whole trace.
struct ReplayReport {
  std::size_t lines = 0;  ///< JSONL lines consumed (0 for in-memory replay)
  std::vector<ReplayRunReport> runs;
  /// Stream-level problems: malformed lines, events outside a run, a
  /// truncated final run.
  std::vector<std::string> errors;

  bool ok() const;
  std::size_t error_count() const;
  /// Human-readable summary; one line per run plus every error.
  std::string str() const;
};

/// Replays already-decoded events (e.g. a BufferTracer's buffer).
ReplayReport replay_validate_events(const std::vector<TraceEvent>& events);

/// Replays a JSONL trace stream; blank lines are skipped.
ReplayReport replay_validate_stream(std::istream& in);

/// Opens and replays a JSONL trace file; a missing/unreadable file yields a
/// stream-level error.
ReplayReport replay_validate_file(const std::string& path);

/// Decodes one JSONL trace line into a TraceEvent. Returns false and fills
/// `error` on malformed input or an unknown event kind. The event's
/// `reason` pointer refers to static storage.
bool parse_trace_line(const std::string& line, TraceEvent& out,
                      std::string* error);

}  // namespace si
