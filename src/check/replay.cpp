#include "check/replay.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "obs/json.hpp"

namespace si {

namespace {

std::string format_time(double t) {
  std::ostringstream out;
  out.precision(17);
  out << t;
  return out.str();
}

/// Replays one trace, one event at a time. Stream-level errors (events
/// outside a run, truncation) go to `stream_errors`; everything scoped to a
/// run goes into that run's report.
class ReplayMachine {
 public:
  explicit ReplayMachine(ReplayReport& report) : report_(report) {}

  void feed(const TraceEvent& event) {
    switch (event.kind) {
      case TraceEvent::Kind::kRunBegin:
        if (active_) {
          fail("run_begin while a run is still open");
          close_run();
        }
        begin_run(event);
        return;
      case TraceEvent::Kind::kTrajectory:
        return;  // trainer rollout markers carry no scheduling state
      default:
        break;
    }
    if (!active_) {
      report_.errors.push_back("event '" +
                               std::string(trace_event_kind_name(event.kind)) +
                               "' at t=" + format_time(event.time) +
                               " outside any run");
      return;
    }
    switch (event.kind) {
      case TraceEvent::Kind::kSubmit: on_submit(event); break;
      case TraceEvent::Kind::kSchedPoint: on_sched_point(event); break;
      case TraceEvent::Kind::kInspect: on_inspect(event); break;
      case TraceEvent::Kind::kReject: on_reject(event); break;
      case TraceEvent::Kind::kStart: on_start(event); break;
      case TraceEvent::Kind::kFinish: on_release(event, Release::kFinish); break;
      case TraceEvent::Kind::kRequeue: on_release(event, Release::kRequeue); break;
      case TraceEvent::Kind::kKill: on_release(event, Release::kKill); break;
      case TraceEvent::Kind::kDrain: free_ -= event.procs; break;
      case TraceEvent::Kind::kRestore: free_ += event.procs; break;
      case TraceEvent::Kind::kRunEnd: on_run_end(event); break;
      default: break;  // run_begin / trajectory handled above
    }
  }

  void finish_stream() {
    if (active_) {
      fail("trace truncated: run without a run_end record");
      close_run();
    }
  }

 private:
  enum class Release { kFinish, kRequeue, kKill };

  void fail(std::string what) {
    if (active_)
      run_.errors.push_back(std::move(what));
    else
      report_.errors.push_back(std::move(what));
  }

  void begin_run(const TraceEvent& event) {
    active_ = true;
    run_ = ReplayRunReport{};
    total_procs_ = event.procs;
    declared_jobs_ =
        event.jobs >= 0 ? static_cast<std::size_t>(event.jobs) : 0;
    records_.clear();
    slot_.clear();
    running_.clear();
    free_ = total_procs_;
    inspections_ = 0;
    inspect_rejects_ = 0;
    reject_events_ = 0;
    if (total_procs_ <= 0) fail("run_begin with a non-positive cluster size");
  }

  void close_run() {
    run_.jobs = records_.size();
    report_.runs.push_back(std::move(run_));
    active_ = false;
  }

  /// The record slot for `id`, or nullptr (with an error) when unknown.
  JobRecord* find(std::int64_t id, const char* context) {
    auto it = slot_.find(id);
    if (it == slot_.end()) {
      fail(std::string(context) + " for a job never submitted: id " +
           std::to_string(id));
      return nullptr;
    }
    return &records_[it->second];
  }

  void on_submit(const TraceEvent& event) {
    if (slot_.count(event.job) != 0) {
      fail("job " + std::to_string(event.job) + " submitted twice");
      return;
    }
    slot_.emplace(event.job, records_.size());
    JobRecord record;
    record.id = event.job;
    record.submit = event.submit;
    record.procs = event.procs;
    records_.push_back(record);
    if (event.time != event.submit)
      fail("submit record for job " + std::to_string(event.job) +
           " not emitted at its submit time");
  }

  void on_sched_point(const TraceEvent& event) {
    JobRecord* record = find(event.job, "sched_point");
    if (record == nullptr) return;
    if (event.free_procs != free_)
      fail("free-pool divergence at sched_point t=" + format_time(event.time) +
           ": trace says " + std::to_string(event.free_procs) +
           ", replay holds " + std::to_string(free_));
    if (running_.count(event.job) != 0)
      fail("sched_point picked running job " + std::to_string(event.job));
    if (record->submit > event.time)
      fail("sched_point for job " + std::to_string(event.job) +
           " before its submit time");
  }

  void on_inspect(const TraceEvent& event) {
    JobRecord* record = find(event.job, "inspect");
    if (record == nullptr) return;
    ++inspections_;
    if (event.reject) ++inspect_rejects_;
    if (event.free_procs != free_)
      fail("free-pool divergence at inspect t=" + format_time(event.time) +
           ": trace says " + std::to_string(event.free_procs) +
           ", replay holds " + std::to_string(free_));
  }

  void on_reject(const TraceEvent& event) {
    JobRecord* record = find(event.job, "reject");
    if (record == nullptr) return;
    ++reject_events_;
    if (event.rejections != record->rejections + 1)
      fail("rejection count for job " + std::to_string(event.job) +
           " jumped from " + std::to_string(record->rejections) + " to " +
           std::to_string(event.rejections));
    record->rejections = event.rejections;
  }

  void on_start(const TraceEvent& event) {
    JobRecord* record = find(event.job, "start");
    if (record == nullptr) return;
    if (running_.count(event.job) != 0) {
      fail("job " + std::to_string(event.job) + " started while running");
      return;
    }
    if (event.time < record->submit)
      fail("job " + std::to_string(event.job) + " started at t=" +
           format_time(event.time) + ", before its submit " +
           format_time(record->submit));
    if (event.procs != record->procs)
      fail("job " + std::to_string(event.job) +
           " started with a different processor count");
    // Exact: the simulator computed the traced wait as now - submit with
    // these very doubles, and %.17g round-trips them.
    if (event.wait != event.time - record->submit)
      fail("traced wait for job " + std::to_string(event.job) +
           " is not start - submit");
    record->start = event.time;
    record->finish = -1.0;
    running_.emplace(event.job, event.procs);
    free_ -= event.procs;
    if (free_ < 0)
      fail("free pool negative after starting job " +
           std::to_string(event.job));
  }

  void on_release(const TraceEvent& event, Release kind) {
    JobRecord* record = find(event.job, "release");
    if (record == nullptr) return;
    auto it = running_.find(event.job);
    if (it == running_.end()) {
      fail("job " + std::to_string(event.job) + " released while not running");
      return;
    }
    free_ += it->second;
    running_.erase(it);
    if (!record->started()) {
      fail("job " + std::to_string(event.job) + " released without a start");
      return;
    }
    if (event.time < record->start)
      fail("job " + std::to_string(event.job) + " released before its start");
    switch (kind) {
      case Release::kFinish:
      case Release::kKill:
        if (event.procs != record->procs)
          fail("job " + std::to_string(event.job) +
               " released with a different processor count");
        record->finish = event.time;
        record->run = event.run;
        if (event.run < 0.0)
          fail("release of job " + std::to_string(event.job) +
               " carries no executed runtime");
        if (kind == Release::kKill) {
          const std::string reason =
              event.reason != nullptr ? event.reason : "";
          if (reason == "wall")
            record->wall_killed = true;
          else if (reason == "budget")
            record->killed = true;
          else
            fail("kill of job " + std::to_string(event.job) +
                 " with unknown reason '" + reason + "'");
        }
        break;
      case Release::kRequeue:
        record->start = -1.0;
        record->finish = -1.0;
        if (event.attempt != record->requeues + 1)
          fail("requeue attempt for job " + std::to_string(event.job) +
               " jumped from " + std::to_string(record->requeues) + " to " +
               std::to_string(event.attempt));
        record->requeues = event.attempt;
        break;
    }
  }

  void on_run_end(const TraceEvent& event) {
    if (!running_.empty())
      fail(std::to_string(running_.size()) + " jobs still running at run_end");
    if (declared_jobs_ != records_.size())
      fail("run_begin declared " + std::to_string(declared_jobs_) +
           " jobs but " + std::to_string(records_.size()) + " were submitted");
    if (event.jobs >= 0 &&
        static_cast<std::size_t>(event.jobs) != records_.size())
      fail("run_end declares " + std::to_string(event.jobs) + " jobs but " +
           std::to_string(records_.size()) + " were submitted");
    bool all_finished = true;
    for (const JobRecord& record : records_) {
      if (record.started() && record.finish >= record.start) continue;
      all_finished = false;
      fail("job " + std::to_string(record.id) + " never finished");
    }

    run_.reported.jobs =
        event.jobs >= 0 ? static_cast<std::size_t>(event.jobs) : 0;
    run_.reported.avg_wait = event.avg_wait;
    run_.reported.avg_bsld = event.avg_bsld;
    run_.reported.max_bsld = event.max_bsld;
    run_.reported.utilization = event.util;
    run_.reported.makespan = event.makespan;
    run_.reported.inspections =
        event.inspections >= 0 ? static_cast<std::size_t>(event.inspections)
                               : 0;
    run_.reported.rejections =
        event.total_rejections >= 0
            ? static_cast<std::size_t>(event.total_rejections)
            : 0;

    if (all_finished && !records_.empty() && total_procs_ > 0) {
      // Records sit in submit order == the simulator's job-index order, so
      // this accumulates in the same sequence and agreement is bit-exact.
      run_.replayed = compute_metrics(records_, total_procs_);
      run_.replayed.inspections = inspections_;
      run_.replayed.rejections = reject_events_;
      if (inspect_rejects_ != reject_events_)
        fail("inspect records flag " + std::to_string(inspect_rejects_) +
             " rejections but " + std::to_string(reject_events_) +
             " reject records exist");
      compare("avg_wait", run_.replayed.avg_wait, run_.reported.avg_wait);
      compare("avg_bsld", run_.replayed.avg_bsld, run_.reported.avg_bsld);
      compare("max_bsld", run_.replayed.max_bsld, run_.reported.max_bsld);
      compare("util", run_.replayed.utilization, run_.reported.utilization);
      compare("makespan", run_.replayed.makespan, run_.reported.makespan);
      if (run_.replayed.inspections != run_.reported.inspections)
        fail("replayed " + std::to_string(run_.replayed.inspections) +
             " inspections, run_end reports " +
             std::to_string(run_.reported.inspections));
      if (run_.replayed.rejections != run_.reported.rejections)
        fail("replayed " + std::to_string(run_.replayed.rejections) +
             " rejections, run_end reports " +
             std::to_string(run_.reported.rejections));
    }
    close_run();
  }

  void compare(const char* name, double replayed, double reported) {
    if (replayed == reported) return;
    fail(std::string(name) + " diverges: replayed " + format_time(replayed) +
         ", reported " + format_time(reported));
  }

  ReplayReport& report_;
  bool active_ = false;
  ReplayRunReport run_;
  int total_procs_ = 0;
  std::size_t declared_jobs_ = 0;
  std::vector<JobRecord> records_;
  std::unordered_map<std::int64_t, std::size_t> slot_;
  std::unordered_map<std::int64_t, int> running_;  ///< id -> allocated procs
  int free_ = 0;
  std::size_t inspections_ = 0;
  std::size_t inspect_rejects_ = 0;
  std::size_t reject_events_ = 0;
};

bool get_number(const JsonFlatObject& obj, const char* key, double& out) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kNumber)
    return false;
  out = it->second.number;
  return true;
}

bool get_int(const JsonFlatObject& obj, const char* key, std::int64_t& out) {
  double number = 0.0;
  if (!get_number(obj, key, number)) return false;
  out = static_cast<std::int64_t>(number);
  return true;
}

bool get_int(const JsonFlatObject& obj, const char* key, int& out) {
  std::int64_t wide = 0;
  if (!get_int(obj, key, wide)) return false;
  out = static_cast<int>(wide);
  return true;
}

bool get_bool(const JsonFlatObject& obj, const char* key, bool& out) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kBool)
    return false;
  out = it->second.boolean;
  return true;
}

}  // namespace

bool parse_trace_line(const std::string& line, TraceEvent& out,
                      std::string* error) {
  JsonFlatObject obj;
  if (!parse_flat_json(line, obj, error)) return false;
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  auto ev = obj.find("ev");
  if (ev == obj.end() || ev->second.kind != JsonValue::Kind::kString)
    return fail("missing 'ev' field");
  const std::string& name = ev->second.string;
  out = TraceEvent{};
  if (!get_number(obj, "t", out.time)) return fail("missing 't' field");

  // Field sets mirror trace_event_jsonl exactly; a kind with a missing
  // field is malformed.
  if (name == "run_begin") {
    out.kind = TraceEvent::Kind::kRunBegin;
    if (!get_int(obj, "jobs", out.jobs) || !get_int(obj, "procs", out.procs) ||
        !get_bool(obj, "backfill", out.backfill))
      return fail("malformed run_begin record");
  } else if (name == "submit") {
    out.kind = TraceEvent::Kind::kSubmit;
    if (!get_int(obj, "job", out.job) || !get_int(obj, "procs", out.procs) ||
        !get_number(obj, "submit", out.submit))
      return fail("malformed submit record");
  } else if (name == "sched_point") {
    out.kind = TraceEvent::Kind::kSchedPoint;
    if (!get_int(obj, "job", out.job) ||
        !get_int(obj, "free", out.free_procs) ||
        !get_int(obj, "waiting", out.waiting))
      return fail("malformed sched_point record");
  } else if (name == "inspect") {
    out.kind = TraceEvent::Kind::kInspect;
    if (!get_int(obj, "job", out.job) || !get_bool(obj, "reject", out.reject) ||
        !get_int(obj, "rejections", out.rejections) ||
        !get_int(obj, "free", out.free_procs))
      return fail("malformed inspect record");
  } else if (name == "reject") {
    out.kind = TraceEvent::Kind::kReject;
    if (!get_int(obj, "job", out.job) ||
        !get_int(obj, "rejections", out.rejections))
      return fail("malformed reject record");
  } else if (name == "start") {
    out.kind = TraceEvent::Kind::kStart;
    if (!get_int(obj, "job", out.job) || !get_int(obj, "procs", out.procs) ||
        !get_number(obj, "wait", out.wait))
      return fail("malformed start record");
  } else if (name == "finish") {
    out.kind = TraceEvent::Kind::kFinish;
    if (!get_int(obj, "job", out.job) || !get_int(obj, "procs", out.procs) ||
        !get_number(obj, "run", out.run))
      return fail("malformed finish record");
  } else if (name == "requeue") {
    out.kind = TraceEvent::Kind::kRequeue;
    if (!get_int(obj, "job", out.job) || !get_int(obj, "attempt", out.attempt))
      return fail("malformed requeue record");
  } else if (name == "kill") {
    out.kind = TraceEvent::Kind::kKill;
    std::string reason;
    auto it = obj.find("reason");
    if (it != obj.end() && it->second.kind == JsonValue::Kind::kString)
      reason = it->second.string;
    if (!get_int(obj, "job", out.job) || !get_int(obj, "procs", out.procs) ||
        !get_number(obj, "run", out.run) || reason.empty())
      return fail("malformed kill record");
    if (reason == "wall")
      out.reason = "wall";
    else if (reason == "budget")
      out.reason = "budget";
    else
      return fail("unknown kill reason '" + reason + "'");
  } else if (name == "drain") {
    out.kind = TraceEvent::Kind::kDrain;
    if (!get_int(obj, "procs", out.procs))
      return fail("malformed drain record");
  } else if (name == "restore") {
    out.kind = TraceEvent::Kind::kRestore;
    if (!get_int(obj, "procs", out.procs))
      return fail("malformed restore record");
  } else if (name == "trajectory") {
    out.kind = TraceEvent::Kind::kTrajectory;
    if (!get_int(obj, "epoch", out.epoch) || !get_int(obj, "traj", out.traj))
      return fail("malformed trajectory record");
  } else if (name == "run_end") {
    out.kind = TraceEvent::Kind::kRunEnd;
    if (!get_int(obj, "jobs", out.jobs) ||
        !get_int(obj, "inspections", out.inspections) ||
        !get_int(obj, "rejections", out.total_rejections) ||
        !get_number(obj, "avg_wait", out.avg_wait) ||
        !get_number(obj, "avg_bsld", out.avg_bsld) ||
        !get_number(obj, "max_bsld", out.max_bsld) ||
        !get_number(obj, "util", out.util) ||
        !get_number(obj, "makespan", out.makespan))
      return fail("malformed run_end record");
  } else {
    return fail("unknown event kind '" + name + "'");
  }
  return true;
}

bool ReplayReport::ok() const { return error_count() == 0; }

std::size_t ReplayReport::error_count() const {
  std::size_t count = errors.size();
  for (const ReplayRunReport& run : runs) count += run.errors.size();
  return count;
}

std::string ReplayReport::str() const {
  std::ostringstream out;
  out << "replay: " << runs.size() << " runs, " << error_count()
      << " errors\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ReplayRunReport& run = runs[i];
    out << "  run " << i << ": " << run.jobs << " jobs, "
        << (run.ok() ? "ok" : std::to_string(run.errors.size()) + " errors")
        << "\n";
    for (const std::string& error : run.errors)
      out << "    " << error << "\n";
  }
  for (const std::string& error : errors) out << "  " << error << "\n";
  return out.str();
}

ReplayReport replay_validate_events(const std::vector<TraceEvent>& events) {
  ReplayReport report;
  ReplayMachine machine(report);
  for (const TraceEvent& event : events) machine.feed(event);
  machine.finish_stream();
  return report;
}

ReplayReport replay_validate_stream(std::istream& in) {
  ReplayReport report;
  ReplayMachine machine(report);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++report.lines;
    TraceEvent event;
    std::string error;
    if (!parse_trace_line(line, event, &error)) {
      report.errors.push_back("line " + std::to_string(report.lines) + ": " +
                              error);
      continue;
    }
    machine.feed(event);
  }
  machine.finish_stream();
  return report;
}

ReplayReport replay_validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ReplayReport report;
    report.errors.push_back("cannot open trace file: " + path);
    return report;
  }
  return replay_validate_stream(in);
}

}  // namespace si
