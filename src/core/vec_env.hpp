// Vectorized paired-rollout collection (§3.4). The training and evaluation
// loops run many independent (base, inspected) rollout pairs; with the
// callback Inspector every decision costs one scalar ActorCritic forward.
// VecEnv inverts that: it keeps `width` sequences in flight as resumable
// SimSessions advanced in lock step, gathers every pending InspectionView
// into one row-major feature block, performs a single batched policy-net
// forward per tick through the Mlp::forward_batch kernels, and scatters the
// resulting actions back into the paused sessions.
//
// The bit-identicality contract: every sequence's outcome — metrics,
// recorded trajectory (observations, actions, log-probs), decision records,
// and emitted trace bytes — is exactly what the scalar callback path
// produces for the same (jobs, seed), for every batch width and regardless
// of which other sequences share the batch or in which order they complete.
// Three properties make that hold:
//   * per-sample bit-identical batched kernels (rl/mlp.hpp): each row of
//     forward_batch accumulates the same partial-sum sequence as a scalar
//     forward, so the logit per decision is the exact same double;
//   * per-env RNG streams: each spec's sampling draws come from its own
//     Rng(seed), consumed in that sequence's own decision order;
//   * per-env simulators/policies: lanes never share mutable state.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/analysis.hpp"
#include "core/batch_inference.hpp"
#include "core/features.hpp"
#include "rl/actor_critic.hpp"
#include "rl/buffer.hpp"
#include "sched/policy.hpp"
#include "sim/session.hpp"
#include "sim/simulator.hpp"

namespace si {

/// How the actor turns a policy logit into a reject/accept action.
enum class ActionSelect {
  kSample,  ///< draw from pi(reject | state) — training-time exploration
  kGreedy,  ///< reject iff P(reject) > 0.5 — inference
};

/// Base vs. inspected outcome of one paired rollout.
struct PairedRollout {
  SequenceMetrics base;
  SequenceMetrics inspected;
};

/// One requested paired rollout. All pointers are non-owning and must stay
/// valid for the duration of the collection call.
struct RolloutSpec {
  const std::vector<Job>* jobs = nullptr;
  /// Seed of this sequence's private sampling stream (kSample only).
  std::uint64_t seed = 0;
  /// When set, cleared and refilled with the inspected run's PPO steps
  /// (observation, action, log-prob per decision; reward left 0 for the
  /// caller to fill).
  Trajectory* trajectory = nullptr;
  /// When set, every inspected decision is recorded (Figure 13 analysis).
  DecisionRecorder* recorder = nullptr;
  /// When set, both runs of this pair trace into this sink instead of the
  /// SimConfig's tracer — e.g. the trainer's per-trajectory buffers.
  SimTracer* tracer = nullptr;
};

/// A fixed-width pool of rollout lanes (simulator + policy clone + RNG)
/// advanced in lock step. One VecEnv is single-threaded and reusable across
/// collection calls; the trainer/evaluator thread fan-out composes by
/// giving each worker its own VecEnv.
class VecEnv {
 public:
  /// `width` concurrent sequences per tick. A SimConfig carrying a tracer,
  /// metrics registry, or oracle requires width 1: those sinks observe
  /// global event order, and width 1 reproduces the serial order exactly.
  /// `policy` is cloned per lane (stateful policies never shared).
  VecEnv(int total_procs, const SimConfig& sim, const ActorCritic& ac,
         const FeatureBuilder& features, const SchedulingPolicy& policy,
         int width);

  int width() const { return static_cast<int>(lanes_.size()); }

  /// Forwards to PolicyBatch::set_spans: every batched forward this env
  /// performs records a "forward_batch" span (DESIGN.md §10). Null spans
  /// (the default) keeps collection on the untraced hot path.
  void set_spans(SpanCollector* spans, std::string cat,
                 std::uint32_t tid = 0) {
    batch_.set_spans(spans, std::move(cat), tid);
  }

  /// Collects every spec's paired rollout, `width` sequences in flight.
  /// Results land in spec order. Requires the policy net's transpose cache
  /// to be fresh (ActorCritic::policy_net().refresh_transpose() after the
  /// last parameter change, called once before any concurrent use).
  std::vector<PairedRollout> rollout_batch(std::span<const RolloutSpec> specs,
                                           ActionSelect select);

 private:
  struct Lane {
    Simulator sim;
    PolicyPtr policy;
    std::unique_ptr<SimSession> session;  ///< null when idle
    Rng rng{0};              ///< the active spec's sampling stream
    std::size_t spec = 0;    ///< index into the current specs span
  };

  const ActorCritic& ac_;
  const FeatureBuilder& features_;
  SimTracer* default_tracer_;  ///< the SimConfig's tracer (width-1 only)
  std::vector<Lane> lanes_;

  // Reused per tick; steady state performs no per-decision allocation
  // beyond trajectory/recorder copies the scalar path also makes.
  std::vector<std::size_t> pending_;  ///< lanes paused at a decision
  PolicyBatch batch_;  ///< shared gather -> forward_batch entry point
  std::vector<double> obs_row_;
};

}  // namespace si
