// A hand-written inspector distilled from §5's analysis of what the RL
// agent learns. The paper summarizes the learned strategy as: delay jobs
// that (a) have waited only briefly, (b) are long and/or wide, (c) arrive
// when the cluster is either very full (big gain: avoid saturating it) or
// very idle (small loss: few waiting jobs pay for the delay), and (d) never
// delay once the queue-delay feature exceeds a hard cap (the paper observes
// 0.22).
//
// This rule inspector is both an interpretable deployment option (no model
// file, auditable thresholds) and the natural ablation baseline: how much of
// the RL agent's gain do the distilled rules alone recover?
#pragma once

#include "core/features.hpp"
#include "sim/inspector.hpp"

namespace si {

/// Thresholds over the *manual* (normalized, [0,1]) features of §3.3.
struct RuleInspectorConfig {
  double max_wait = 0.35;        ///< only delay jobs that waited less
  double min_estimate = 0.30;    ///< ...that are estimated longer
  double min_procs = 0.10;       ///< ...or request more processors
  double queue_delay_cap = 0.22; ///< never delay above this (paper's cap)
  double busy_threshold = 0.25;  ///< cluster availability below => "full"
  double idle_threshold = 0.70;  ///< cluster availability above => "idle"
};

/// The distilled rule evaluated directly on a manual (8-wide, normalized)
/// feature vector. This is the whole decision function: RuleInspector
/// delegates here, and the inspection server's degraded path calls it
/// straight on wire-decoded features — so a reply tagged `degraded` is
/// bit-identical to the offline rule decision for the same view. Every
/// threshold comparison is NaN-safe (a NaN feature fails each guard and the
/// rule falls through to "accept"), so arbitrary client doubles stay
/// deterministic.
bool rule_inspector_reject(const std::vector<double>& manual_features,
                           const RuleInspectorConfig& config);

class RuleInspector final : public Inspector {
 public:
  /// `features` must be a FeatureMode::kManual builder (the thresholds are
  /// defined over the manual feature vector).
  explicit RuleInspector(const FeatureBuilder& features,
                         RuleInspectorConfig config = {});

  bool reject(const InspectionView& view) override;

  /// The rule evaluated on an already-built manual feature vector
  /// (exposed for tests).
  bool reject_features(const std::vector<double>& features) const;

  const RuleInspectorConfig& config() const { return config_; }

 private:
  const FeatureBuilder& features_;
  RuleInspectorConfig config_;
};

}  // namespace si
