// Paired rollouts (§3.4): every reward compares the inspected schedule
// against the base scheduler on the same job sequence, so a training or
// evaluation rollout always runs the simulator twice — once plain, once with
// the inspector — and derives the reward / improvement from the pair.
#pragma once

#include "core/analysis.hpp"
#include "core/features.hpp"
#include "core/reward.hpp"
#include "core/rl_inspector.hpp"
#include "rl/actor_critic.hpp"
#include "rl/buffer.hpp"
#include "sim/simulator.hpp"

namespace si {

/// One training rollout: base and inspected metrics plus the recorded
/// trajectory (reward already filled in).
struct TrainingRollout {
  SequenceMetrics base;
  SequenceMetrics inspected;
  Trajectory trajectory;
};

/// Runs the paired training rollout on `jobs` (policy sampled, steps
/// recorded, final reward computed per `reward_kind` on `metric`).
TrainingRollout rollout_training(Simulator& sim, const std::vector<Job>& jobs,
                                 SchedulingPolicy& policy,
                                 const ActorCritic& ac,
                                 const FeatureBuilder& features,
                                 Metric metric, RewardKind reward_kind,
                                 Rng& rng);

/// One evaluation pair: base vs. greedy-inspected metrics.
struct EvalPair {
  SequenceMetrics base;
  SequenceMetrics inspected;
};

/// Runs the paired greedy rollout; optionally records every decision for
/// Figure 13-style analysis.
EvalPair rollout_eval(Simulator& sim, const std::vector<Job>& jobs,
                      SchedulingPolicy& policy, const ActorCritic& ac,
                      const FeatureBuilder& features,
                      DecisionRecorder* recorder = nullptr);

}  // namespace si
