// Paired rollouts (§3.4): every reward compares the inspected schedule
// against the base scheduler on the same job sequence, so a training or
// evaluation rollout always runs the simulator twice — once plain, once with
// the inspector — and derives the reward / improvement from the pair.
//
// One shared scalar driver (run_paired) serves both flavours, parameterized
// on sample-vs-greedy action selection and optional Trajectory /
// DecisionRecorder recording; core/vec_env.hpp is its batched counterpart
// with the identical contract per sequence.
#pragma once

#include "core/analysis.hpp"
#include "core/features.hpp"
#include "core/reward.hpp"
#include "core/rl_inspector.hpp"
#include "core/vec_env.hpp"
#include "rl/actor_critic.hpp"
#include "rl/buffer.hpp"
#include "sim/simulator.hpp"

namespace si {

/// One evaluation pair: base vs. greedy-inspected metrics.
using EvalPair = PairedRollout;

/// One training rollout: base and inspected metrics plus the recorded
/// trajectory (reward already filled in).
struct TrainingRollout {
  SequenceMetrics base;
  SequenceMetrics inspected;
  Trajectory trajectory;
};

/// The shared scalar paired-rollout driver: base run, then the inspected
/// run through the callback RlInspector. `rng` is required for kSample and
/// ignored for kGreedy; `trajectory` / `recorder` (either may be null)
/// receive the inspected run's steps / decisions.
PairedRollout run_paired(Simulator& sim, const std::vector<Job>& jobs,
                         SchedulingPolicy& policy, const ActorCritic& ac,
                         const FeatureBuilder& features, ActionSelect select,
                         Rng* rng, Trajectory* trajectory = nullptr,
                         DecisionRecorder* recorder = nullptr);

/// Runs the paired training rollout on `jobs` (policy sampled, steps
/// recorded, final reward computed per `reward_kind` on `metric`).
TrainingRollout rollout_training(Simulator& sim, const std::vector<Job>& jobs,
                                 SchedulingPolicy& policy,
                                 const ActorCritic& ac,
                                 const FeatureBuilder& features,
                                 Metric metric, RewardKind reward_kind,
                                 Rng& rng);

/// Runs the paired greedy rollout; optionally records every decision for
/// Figure 13-style analysis.
EvalPair rollout_eval(Simulator& sim, const std::vector<Job>& jobs,
                      SchedulingPolicy& policy, const ActorCritic& ac,
                      const FeatureBuilder& features,
                      DecisionRecorder* recorder = nullptr);

}  // namespace si
