#include "core/vec_env.hpp"

#include "common/check.hpp"
#include "obs/profile.hpp"

namespace si {

VecEnv::VecEnv(int total_procs, const SimConfig& sim, const ActorCritic& ac,
               const FeatureBuilder& features, const SchedulingPolicy& policy,
               int width)
    : ac_(ac),
      features_(features),
      default_tracer_(sim.tracer),
      batch_(features.feature_count()) {
  SI_REQUIRE(width >= 1);
  SI_REQUIRE(ac_.obs_size() == features_.feature_count());
  // Interleaved lanes emit events in lock-step order, not serial per-run
  // order; sinks that observe the global stream only keep their byte-exact
  // serial output at width 1.
  if (sim.tracer != nullptr || sim.metrics != nullptr || sim.oracle != nullptr)
    SI_REQUIRE(width == 1);
  lanes_.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    lanes_.push_back(Lane{Simulator(total_procs, sim), policy.clone(),
                          nullptr, Rng{0}, 0});
}

std::vector<PairedRollout> VecEnv::rollout_batch(
    std::span<const RolloutSpec> specs, ActionSelect select) {
  SI_PROFILE_SCOPE("rollout/vec_batch");
  std::vector<PairedRollout> out(specs.size());
  std::size_t next_spec = 0;

  // Claims the next unstarted spec for `lane`: base run first, then the
  // inspected session. A session that never pauses (no inspectable
  // decision) completes inline and the lane claims the next spec. Returns
  // true when the lane ends up paused at a decision.
  const auto launch = [&](Lane& lane) -> bool {
    while (next_spec < specs.size()) {
      const RolloutSpec& spec = specs[next_spec];
      lane.spec = next_spec++;
      SI_REQUIRE(spec.jobs != nullptr && !spec.jobs->empty());
      lane.sim.set_tracer(spec.tracer != nullptr ? spec.tracer
                                                 : default_tracer_);
      if (spec.trajectory != nullptr) {
        spec.trajectory->steps.clear();
        spec.trajectory->reward = 0.0;
      }
      out[lane.spec].base = lane.sim.run(*spec.jobs, *lane.policy).metrics;
      lane.rng = Rng(spec.seed);
      lane.session =
          std::make_unique<SimSession>(lane.sim, *spec.jobs, *lane.policy);
      if (!lane.session->done()) return true;
      out[lane.spec].inspected = lane.session->take_result().metrics;
      lane.session.reset();
    }
    return false;
  };

  pending_.clear();
  for (std::size_t l = 0; l < lanes_.size(); ++l)
    if (launch(lanes_[l])) pending_.push_back(l);

  while (!pending_.empty()) {
    // Gather: one feature row per paused lane, in lane-slot order.
    const std::size_t batch = pending_.size();
    batch_.clear();
    for (const std::size_t l : pending_) {
      features_.build_into(lanes_[l].session->view(), obs_row_);
      batch_.push_row(obs_row_);
    }

    // One batched actor forward for every pending decision. Per row this is
    // bit-identical to the scalar Mlp::forward the callback inspector runs
    // (rl/mlp.hpp), so each lane sees the exact logit it would see alone.
    const std::span<const double> logits = batch_.infer(ac_.policy_net());

    // Scatter: act, record, and step every lane; lanes whose sequence
    // completed claim the next spec. Surviving lanes keep their relative
    // order so the next gather is deterministic.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t l = pending_[i];
      Lane& lane = lanes_[l];
      const RolloutSpec& spec = specs[lane.spec];
      const double logit = logits[i];
      int action = 0;
      double log_prob = 0.0;
      if (select == ActionSelect::kSample) {
        const double prob = sigmoid(logit);
        action = lane.rng.bernoulli(prob) ? 1 : 0;
        log_prob = bernoulli_log_prob(logit, action);
      } else {
        action = logit > 0.0 ? 1 : 0;
      }
      const std::span<const double> row = batch_.row(static_cast<int>(i));
      if (spec.recorder != nullptr) {
        obs_row_.assign(row.begin(), row.end());
        spec.recorder->record(obs_row_, action == 1);
      }
      if (spec.trajectory != nullptr) {
        Step step;
        step.action = action;
        step.log_prob = log_prob;
        step.obs.assign(row.begin(), row.end());
        spec.trajectory->steps.push_back(std::move(step));
      }
      lane.session->step(action == 1);
      if (!lane.session->done()) {
        pending_[keep++] = l;
        continue;
      }
      out[lane.spec].inspected = lane.session->take_result().metrics;
      lane.session.reset();
      if (launch(lane)) pending_[keep++] = l;
    }
    pending_.resize(keep);
  }
  return out;
}

}  // namespace si
