// The shared batch-inference entry point: gather observation rows into one
// row-major block, run a single Mlp::forward_batch over them, and read the
// per-row logits back. Both batched decision makers — VecEnv (training /
// evaluation rollouts) and the inspection server (src/serve) — funnel their
// pending decisions through this class, so the gather/forward/scatter shape
// is defined exactly once and the per-row bit-identicality contract of the
// batched kernels (rl/mlp.hpp) is inherited by every consumer.
#pragma once

#include <span>
#include <vector>

#include "obs/span.hpp"
#include "rl/mlp.hpp"

namespace si {

/// A reusable gather buffer plus batch workspace. Steady-state use performs
/// zero heap allocation: buffers grow to the high-water batch size and stay.
class PolicyBatch {
 public:
  explicit PolicyBatch(int obs_width);

  int obs_width() const { return obs_width_; }
  int rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Drops the gathered rows (capacity is kept).
  void clear();

  /// Appends one observation row; `obs` must be exactly obs_width() long.
  void push_row(std::span<const double> obs);

  /// Row `i` of the gathered block. Valid until clear()/push_row().
  std::span<const double> row(int i) const;

  /// One batched policy-net forward over the gathered rows; returns the
  /// per-row logits (rows() entries, valid until the next infer()).
  /// Requires rows() >= 1 and net.input_size() == obs_width(), and — like
  /// Mlp::forward_batch — a fresh transpose cache (refresh_transpose()
  /// after the last parameter change). Per row the logit is bit-identical
  /// to a scalar Mlp::forward of the same observation.
  std::span<const double> infer(const Mlp& net);

  /// Span tracing hook (DESIGN.md §10): when set, every infer() records a
  /// "forward_batch" span under `cat` with the row count, attributed to
  /// virtual thread lane `tid`. Null (the default) keeps infer() on the
  /// untraced hot path.
  void set_spans(SpanCollector* spans, std::string cat,
                 std::uint32_t tid = 0) {
    spans_ = spans;
    span_cat_ = std::move(cat);
    span_tid_ = tid;
  }

 private:
  int obs_width_;
  int rows_ = 0;
  std::vector<double> block_;  ///< row-major rows_ x obs_width_
  Mlp::BatchWorkspace ws_;
  SpanCollector* spans_ = nullptr;
  std::string span_cat_;
  std::uint32_t span_tid_ = 0;
};

}  // namespace si
