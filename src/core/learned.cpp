#include "core/learned.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace si {

namespace {
std::vector<int> score_net_layers(const std::vector<int>& hidden) {
  std::vector<int> layers;
  layers.push_back(3);  // wait, estimate, procs
  for (int h : hidden) layers.push_back(h);
  layers.push_back(1);
  return layers;
}
}  // namespace

NeuralPriorityPolicy::NeuralPriorityPolicy(double max_estimate,
                                           int cluster_procs,
                                           double wait_scale,
                                           std::vector<int> hidden)
    : net_(score_net_layers(hidden)),
      max_estimate_(max_estimate),
      cluster_procs_(cluster_procs),
      wait_scale_(wait_scale) {
  SI_REQUIRE(max_estimate_ > 0.0);
  SI_REQUIRE(cluster_procs_ > 0);
  SI_REQUIRE(wait_scale_ > 0.0);
  init_like_sjf();
}

void NeuralPriorityPolicy::init_like_sjf() {
  // Zero weights except a positive path from the estimate input through the
  // first hidden unit: score ~ tanh(est) — monotone in the estimate, i.e.
  // SJF-like ordering.
  auto params = net_.params();
  std::fill(params.begin(), params.end(), 0.0);
  const auto& layers = net_.layer_sizes();
  // First layer weight (row 0, column 1 = estimate input).
  params[1] = 1.0;
  // Chain of unit weights through the first neuron of every later layer.
  std::size_t offset =
      static_cast<std::size_t>(layers[0]) * static_cast<std::size_t>(layers[1]) +
      static_cast<std::size_t>(layers[1]);
  for (std::size_t l = 1; l + 1 < layers.size(); ++l) {
    params[offset] = 1.0;  // weight (0,0) of layer l
    offset += static_cast<std::size_t>(layers[l]) *
                  static_cast<std::size_t>(layers[l + 1]) +
              static_cast<std::size_t>(layers[l + 1]);
  }
}

double NeuralPriorityPolicy::score(const Job& job,
                                   const SchedContext& ctx) const {
  const double wait = std::max(ctx.now - job.submit, 0.0);
  const double features[3] = {
      wait / (wait + wait_scale_),
      std::clamp(job.estimate / max_estimate_, 0.0, 1.0),
      std::clamp(static_cast<double>(job.procs) /
                     static_cast<double>(cluster_procs_),
                 0.0, 1.0)};
  return net_.forward(features, ws_)[0];
}

EsResult train_neural_priority(NeuralPriorityPolicy& policy,
                               const Trace& trace, const EsConfig& config) {
  SI_REQUIRE(config.generations > 0);
  SI_REQUIRE(config.population >= 2);
  SI_REQUIRE(config.elites >= 1 && config.elites <= config.population);
  SI_REQUIRE(config.windows > 0);
  SI_REQUIRE(static_cast<std::size_t>(config.sequence_length) <=
             trace.size());

  Rng rng(config.seed);

  // Fixed evaluation windows: every candidate in every generation faces the
  // same workload, so fitness differences are purely due to the policy.
  std::vector<std::vector<Job>> windows;
  windows.reserve(static_cast<std::size_t>(config.windows));
  for (int w = 0; w < config.windows; ++w)
    windows.push_back(trace.sample_window(
        rng, static_cast<std::size_t>(config.sequence_length)));

  Simulator sim(trace.cluster_procs(), SimConfig{});
  auto fitness = [&](NeuralPriorityPolicy& candidate) {
    double total = 0.0;
    for (const auto& jobs : windows)
      total += sim.run(jobs, candidate).metrics.value(config.metric);
    return total / static_cast<double>(config.windows);
  };

  const std::size_t dim = policy.net().param_count();
  std::vector<double> mean(policy.net().params().begin(),
                           policy.net().params().end());
  double sigma = config.sigma;

  EsResult result;
  std::vector<std::vector<double>> candidates(
      static_cast<std::size_t>(config.population));
  std::vector<double> scores(static_cast<std::size_t>(config.population));
  std::vector<double> best_params = mean;
  double best_score = std::numeric_limits<double>::infinity();

  for (int gen = 0; gen < config.generations; ++gen) {
    for (int c = 0; c < config.population; ++c) {
      auto& params = candidates[static_cast<std::size_t>(c)];
      params = mean;
      // Keep the current mean itself in the population (elitism).
      if (c > 0)
        for (std::size_t d = 0; d < dim; ++d)
          params[d] += sigma * rng.normal();
      std::copy(params.begin(), params.end(),
                policy.net().params().begin());
      scores[static_cast<std::size_t>(c)] = fitness(policy);
    }

    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores[a] < scores[b];
    });

    // New mean = average of the elite candidates.
    std::vector<double> next(dim, 0.0);
    for (int e = 0; e < config.elites; ++e) {
      const auto& elite = candidates[order[static_cast<std::size_t>(e)]];
      for (std::size_t d = 0; d < dim; ++d) next[d] += elite[d];
    }
    for (double& v : next) v /= static_cast<double>(config.elites);
    mean = std::move(next);
    sigma *= config.sigma_decay;

    if (scores[order.front()] < best_score) {
      best_score = scores[order.front()];
      best_params = candidates[order.front()];
    }

    EsGeneration g;
    g.generation = gen;
    g.best = scores[order.front()];
    g.mean = std::accumulate(scores.begin(), scores.end(), 0.0) /
             static_cast<double>(scores.size());
    result.curve.push_back(g);
  }

  // Ship the best candidate ever evaluated, not the final mean — ES means
  // can drift past the optimum late in a run.
  std::copy(best_params.begin(), best_params.end(),
            policy.net().params().begin());
  result.final_value = best_score;
  return result;
}

}  // namespace si
