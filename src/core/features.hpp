// State-feature building (§3.3). The raw scheduling context exposed by the
// simulator is summarized into a small, normalized feature vector that the
// RL agent observes:
//
//   manual (the paper's design, 8 features):
//     wait_j, est_j, res_j            — the scheduled job
//     rejected_times                   — vs. MAX_REJECTION_TIMES
//     queue_delays                     — metric-aware cost of one idle step
//     cluster_availability             — free / total processors
//     runnable                         — can the job start right now
//     backfilling_contributions        — EASY-backfillable waiting jobs
//
//   compacted (ablation, Figure 5): only the current job + cluster state,
//     dropping the aggregated queue-delay / backfill features.
//
//   native (ablation, Figure 5): the raw environmental state — candidate
//     job, cluster state, and the first kNativeQueueJobs waiting jobs'
//     individual attributes, zero-padded.
//
// All features are normalized into [0, 1]; unbounded quantities use the
// soft map x / (x + scale) with trace-derived scales.
#pragma once

#include <string>
#include <vector>

#include "sim/inspector.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace si {

enum class FeatureMode { kManual, kCompacted, kNative };

std::string feature_mode_name(FeatureMode mode);

/// Trace-derived normalization scales.
struct FeatureScales {
  double max_estimate = 1.0;   ///< seconds; caps the est feature
  int cluster_procs = 1;       ///< caps the res feature
  double wait_scale = 3600.0;  ///< soft scale of job waiting time
  double queue_delay_scale = 10.0;   ///< soft scale of the queue-delay sum
  double backfill_scale = 5.0;       ///< soft scale of the backfillable count

  /// Derives scales from a trace: max estimate, cluster size, and a waiting
  /// scale of 10x the mean inter-arrival (a "fairly long wait" for that
  /// workload).
  static FeatureScales from_trace(const Trace& trace);
};

class FeatureBuilder {
 public:
  /// `max_interval` is the simulator's rejection retry bound — the Δt used
  /// when pricing the queue-delay feature.
  FeatureBuilder(FeatureMode mode, Metric metric, FeatureScales scales,
                 double max_interval);

  FeatureMode mode() const { return mode_; }
  int feature_count() const;
  std::vector<std::string> feature_names() const;

  /// Builds the feature vector for one inspection opportunity.
  std::vector<double> build(const InspectionView& view) const;

  /// Allocation-free variant: clears and refills `out` in place so a hot
  /// caller can reuse one buffer across decisions.
  void build_into(const InspectionView& view, std::vector<double>& out) const;

  /// The metric-aware queue-delay sum *before* soft normalization (exposed
  /// for tests and for the Figure 13 analysis): for bsld-like metrics,
  /// sum over waiting jobs of max_interval / max(est_j, 10); for wait, the
  /// number of waiting jobs times max_interval (in hours, to keep the
  /// magnitude comparable).
  double raw_queue_delay(const InspectionView& view) const;

  /// Number of waiting jobs the native mode embeds individually.
  static constexpr int kNativeQueueJobs = 16;

 private:
  FeatureMode mode_;
  Metric metric_;
  FeatureScales scales_;
  double max_interval_;

  double norm_wait(double wait) const;
  double norm_estimate(double est) const;
  double norm_procs(int procs) const;
  void append_manual(const InspectionView& view,
                     std::vector<double>& out) const;
  void append_compacted(const InspectionView& view,
                        std::vector<double>& out) const;
  void append_native(const InspectionView& view,
                     std::vector<double>& out) const;
};

}  // namespace si
