#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <thread>

#include "common/check.hpp"
#include "common/sink.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "rl/model_io.hpp"
#include "sim/simulator.hpp"

namespace si {

namespace {

bool all_finite(std::span<const double> values) {
  for (const double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

bool agent_finite(const ActorCritic& ac) {
  return all_finite(ac.policy_net().params()) &&
         all_finite(ac.value_net().params());
}

// A rollout is usable for PPO only if its reward and every recorded step are
// finite; a diverged policy can poison log-probs without crashing the sim.
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool rollout_valid(const TrainingRollout& rollout, Metric metric) {
  if (!std::isfinite(rollout.trajectory.reward)) return false;
  if (!std::isfinite(rollout.base.value(metric)) ||
      !std::isfinite(rollout.inspected.value(metric)))
    return false;
  for (const Step& step : rollout.trajectory.steps) {
    if (!std::isfinite(step.log_prob)) return false;
    if (!all_finite(step.obs)) return false;
  }
  return true;
}

}  // namespace

Trainer::Trainer(const Trace& trace, SchedulingPolicy& policy,
                 TrainerConfig config)
    : trace_(trace),
      policy_(policy),
      config_(std::move(config)),
      features_(config_.features, config_.metric,
                FeatureScales::from_trace(trace), config_.sim.max_interval) {
  SI_REQUIRE(config_.epochs > 0);
  SI_REQUIRE(config_.trajectories_per_epoch > 0);
  SI_REQUIRE(config_.sequence_length > 0);
  SI_REQUIRE(config_.max_workers >= 0);
  SI_REQUIRE(config_.rollout_batch >= 1);
  SI_REQUIRE(static_cast<std::size_t>(config_.sequence_length) <=
             trace_.size());
}

ActorCritic Trainer::make_agent() const {
  ActorCritic ac(features_.feature_count(), config_.hidden,
                 config_.seed ^ 0xac0ac0ULL);
  ac.policy_net().set_output_bias(config_.initial_reject_logit);
  return ac;
}

TrainResult Trainer::train(ActorCritic& ac) {
  SI_REQUIRE(ac.obs_size() == features_.feature_count());
  Rng rng(config_.seed);
  PpoUpdater updater(ac, config_.ppo);

  TrainResult result;

  // Crash-safe resume: pick up the parameters and epoch of an existing
  // checkpoint. A missing file means a fresh run (first launch).
  int start_epoch = 0;
  if (!config_.resume_from.empty() &&
      std::filesystem::exists(config_.resume_from)) {
    const ModelCheckpoint checkpoint =
        load_checkpoint_file(config_.resume_from);
    SI_REQUIRE(checkpoint.model.obs_size() == ac.obs_size());
    SI_REQUIRE(checkpoint.model.param_count() == ac.param_count());
    std::copy(checkpoint.model.policy_net().params().begin(),
              checkpoint.model.policy_net().params().end(),
              ac.policy_net().params().begin());
    std::copy(checkpoint.model.value_net().params().begin(),
              checkpoint.model.value_net().params().end(),
              ac.value_net().params().begin());
    start_epoch = std::min(checkpoint.epoch + 1, config_.epochs);
    result.resumed_epochs = start_epoch;
  }

  // Last-good parameter snapshot for NaN rollback.
  std::vector<double> good_policy(ac.policy_net().params().begin(),
                                  ac.policy_net().params().end());
  std::vector<double> good_value(ac.value_net().params().begin(),
                                 ac.value_net().params().end());
  const auto save_snapshot = [&] {
    good_policy.assign(ac.policy_net().params().begin(),
                       ac.policy_net().params().end());
    good_value.assign(ac.value_net().params().begin(),
                      ac.value_net().params().end());
  };
  const auto restore_snapshot = [&] {
    std::copy(good_policy.begin(), good_policy.end(),
              ac.policy_net().params().begin());
    std::copy(good_value.begin(), good_value.end(),
              ac.value_net().params().begin());
    updater.reset();
  };

  // Rollout workers: each owns a private VecEnv (per-lane simulators and
  // policy clones) so stateful policies (Slurm fair-share) never race.
  // Trajectories are seeded and stored by index, so results are identical
  // for any worker count and any batch width.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers =
      config_.max_workers > 0
          ? std::min<std::size_t>(
                static_cast<std::size_t>(config_.max_workers),
                static_cast<std::size_t>(config_.trajectories_per_epoch))
          : std::min<std::size_t>(
                {hw, 8, static_cast<std::size_t>(config_.trajectories_per_epoch)});

  result.curve.reserve(static_cast<std::size_t>(config_.epochs));

  const auto traj_count =
      static_cast<std::size_t>(config_.trajectories_per_epoch);
  std::vector<TrainingRollout> rollouts(traj_count);
  std::vector<std::vector<Job>> windows(traj_count);
  std::vector<std::uint64_t> seeds(traj_count);

  // --- observability plumbing (all inert unless configured) ---
  std::unique_ptr<FileSink> telemetry;
  if (!config_.telemetry_path.empty())
    telemetry = std::make_unique<FileSink>(config_.telemetry_path);
  // Worker simulators must not share the caller's tracer/metrics/oracle
  // pointers: they run concurrently. Tracing instead buffers per trajectory
  // below.
  SimConfig worker_sim = config_.sim;
  worker_sim.tracer = nullptr;
  worker_sim.metrics = nullptr;
  worker_sim.oracle = nullptr;
  std::vector<BufferTracer> trajectory_traces(
      config_.tracer != nullptr ? traj_count : 0);
  const auto train_start = std::chrono::steady_clock::now();
  int executed_epochs = 0;
  if (config_.spans != nullptr)
    config_.spans->register_thread(0, "trainer");

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    RolloutBatch batch;
    EpochStats stats;
    stats.epoch = epoch;
    std::size_t inspections = 0;
    std::size_t rejections = 0;

    // Deterministic per-trajectory inputs drawn from the master stream.
    // Drawn even for resumed epochs so the remaining epochs consume the
    // same stream positions an uninterrupted run would have.
    for (std::size_t t = 0; t < traj_count; ++t) {
      windows[t] = trace_.sample_window(
          rng, static_cast<std::size_t>(config_.sequence_length));
      seeds[t] = rng.next_u64();
    }
    if (epoch < start_epoch) continue;

    // One span trace per executed epoch: train.epoch wraps the phase
    // children recorded below (reset explicitly at the end of the body so
    // the duration covers exactly this iteration).
    std::optional<ScopedSpan> epoch_span;
    if (config_.spans != nullptr)
      epoch_span.emplace(config_.spans, "train.epoch", "train", 0u,
                         std::vector<std::pair<std::string, std::string>>{
                             {"epoch", std::to_string(epoch)}});

    const auto rollout_start = std::chrono::steady_clock::now();
    {
      SI_PROFILE_SCOPE("trainer/rollouts");
      ScopedSpan rollout_span(config_.spans, "train.rollouts", "train");
      // The batched forward kernels read the policy net's transpose cache;
      // refreshing it is not thread-safe, so do it once here, before the
      // worker fan-out, while the parameters are quiescent.
      ac.policy_net().refresh_transpose();
      const auto width = static_cast<std::size_t>(std::min<std::size_t>(
          static_cast<std::size_t>(config_.rollout_batch), traj_count));
      std::vector<RolloutSpec> specs(traj_count);
      for (std::size_t t = 0; t < traj_count; ++t) {
        specs[t].jobs = &windows[t];
        specs[t].seed = seeds[t];
        specs[t].trajectory = &rollouts[t].trajectory;
        if (config_.tracer != nullptr) {
          trajectory_traces[t].clear();
          specs[t].tracer = &trajectory_traces[t];
        }
      }
      std::atomic<std::size_t> next{0};
      std::atomic<std::uint32_t> next_worker_tid{1};
      auto worker = [&] {
        VecEnv env(trace_.cluster_procs(), worker_sim, ac, features_, policy_,
                   static_cast<int>(width));
        if (config_.spans != nullptr) {
          const std::uint32_t tid = next_worker_tid.fetch_add(1);
          config_.spans->register_thread(tid,
                                         "rollout-worker-" +
                                             std::to_string(tid - 1));
          env.set_spans(config_.spans, "train", tid);
        }
        for (;;) {
          const std::size_t begin = next.fetch_add(width);
          if (begin >= traj_count) break;
          const std::size_t end = std::min(begin + width, traj_count);
          const std::vector<PairedRollout> pairs = env.rollout_batch(
              std::span<const RolloutSpec>(specs.data() + begin, end - begin),
              ActionSelect::kSample);
          for (std::size_t t = begin; t < end; ++t) {
            rollouts[t].base = pairs[t - begin].base;
            rollouts[t].inspected = pairs[t - begin].inspected;
            rollouts[t].trajectory.reward = compute_reward(
                config_.reward, rollouts[t].base.value(config_.metric),
                rollouts[t].inspected.value(config_.metric),
                reward_floor(config_.metric));
          }
        }
      };
      const std::size_t chunks = (traj_count + width - 1) / width;
      if (workers <= 1 || chunks <= 1) {
        worker();
      } else {
        std::vector<std::thread> pool;
        const std::size_t spawn = std::min(workers, chunks);
        pool.reserve(spawn);
        for (std::size_t w = 0; w < spawn; ++w) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
      }
    }
    stats.rollout_seconds = seconds_since(rollout_start);

    // Drain the buffered per-trajectory traces in trajectory order: the
    // emitted stream is byte-identical for any worker count.
    if (config_.tracer != nullptr) {
      for (std::size_t t = 0; t < traj_count; ++t) {
        TraceEvent marker;
        marker.kind = TraceEvent::Kind::kTrajectory;
        marker.time = windows[t].front().submit;
        marker.epoch = epoch;
        marker.traj = static_cast<int>(t);
        config_.tracer->on_event(marker);
        trajectory_traces[t].drain_to(*config_.tracer);
      }
    }

    std::size_t valid = 0;
    for (TrainingRollout& rollout : rollouts) {
      if (!rollout_valid(rollout, config_.metric)) {
        ++stats.invalid_trajectories;
        continue;
      }
      ++valid;
      const double orig = rollout.base.value(config_.metric);
      const double inspected = rollout.inspected.value(config_.metric);
      stats.mean_reward += rollout.trajectory.reward;
      stats.mean_improvement += orig - inspected;
      stats.mean_pct_improvement += (orig - inspected) / std::max(orig, 1e-9);
      inspections += rollout.inspected.inspections;
      rejections += rollout.inspected.rejections;
      batch.add(std::move(rollout.trajectory));
    }

    // Guard the divisors: an epoch can lose every trajectory to non-finite
    // values, and means over zero samples must not turn into NaN.
    const double n = valid > 0 ? static_cast<double>(valid) : 1.0;
    stats.mean_reward /= n;
    stats.mean_improvement /= n;
    stats.mean_pct_improvement /= n;
    stats.rejection_ratio =
        inspections > 0
            ? static_cast<double>(rejections) / static_cast<double>(inspections)
            : 0.0;

    const auto update_start = std::chrono::steady_clock::now();
    if (!batch.empty()) {
      SI_PROFILE_SCOPE("trainer/update");
      ScopedSpan update_span(config_.spans, "train.update", "train");
      const PpoStats ppo = updater.update(batch);
      if (ppo.non_finite || !agent_finite(ac)) {
        // The update diverged: discard it and continue from the last-good
        // parameters instead of corrupting the policy.
        restore_snapshot();
        stats.skipped_updates = 1;
        SI_LOG_WARN("trainer",
                    "epoch " + std::to_string(epoch) +
                        ": PPO update produced non-finite values; rolled "
                        "back to last good parameters");
      } else {
        stats.approx_kl = ppo.approx_kl;
        stats.entropy = ppo.entropy;
        stats.policy_loss = ppo.policy_loss;
        stats.value_loss = ppo.value_loss;
        save_snapshot();
      }
    } else {
      stats.skipped_updates = 1;
      SI_LOG_WARN("trainer", "epoch " + std::to_string(epoch) +
                                 ": no valid trajectories; update skipped");
    }
    stats.update_seconds = seconds_since(update_start);
    result.skipped_updates += stats.skipped_updates;
    result.curve.push_back(stats);
    ++executed_epochs;

    if (!config_.checkpoint_path.empty()) {
      SI_PROFILE_SCOPE("trainer/checkpoint");
      ScopedSpan checkpoint_span(config_.spans, "train.checkpoint", "train");
      save_checkpoint_file(config_.checkpoint_path, ac, epoch);
    }
    epoch_span.reset();

    const double elapsed = seconds_since(train_start);
    if (telemetry != nullptr) {
      JsonObject record;
      record.field("epoch", stats.epoch)
          .field("epochs", config_.epochs)
          .field("mean_reward", stats.mean_reward)
          .field("mean_improvement", stats.mean_improvement)
          .field("mean_pct_improvement", stats.mean_pct_improvement)
          .field("rejection_ratio", stats.rejection_ratio)
          .field("approx_kl", stats.approx_kl)
          .field("entropy", stats.entropy)
          .field("policy_loss", stats.policy_loss)
          .field("value_loss", stats.value_loss)
          .field("skipped_updates", stats.skipped_updates)
          .field("invalid_trajectories", stats.invalid_trajectories)
          .field("rollout_seconds", stats.rollout_seconds)
          .field("update_seconds", stats.update_seconds)
          .field("elapsed_seconds", elapsed);
      telemetry->write(record.str() + "\n");
      telemetry->flush();
    }
    if (config_.progress) {
      const int remaining = config_.epochs - (epoch + 1);
      const double eta =
          executed_epochs > 0
              ? elapsed / static_cast<double>(executed_epochs) *
                    static_cast<double>(remaining)
              : 0.0;
      std::fprintf(stderr,
                   "[train] epoch %d/%d  reward %.4f  reject %.3f  "
                   "elapsed %.1fs  eta %.1fs\n",
                   epoch + 1, config_.epochs, stats.mean_reward,
                   stats.rejection_ratio, elapsed, eta);
    }
    if (config_.metrics != nullptr) {
      MetricsRegistry& m = *config_.metrics;
      m.counter("train.epochs").inc();
      m.counter("train.trajectories").inc(valid);
      m.counter("train.invalid_trajectories").inc(
          static_cast<std::uint64_t>(stats.invalid_trajectories));
      m.counter("train.skipped_updates").inc(
          static_cast<std::uint64_t>(stats.skipped_updates));
    }
  }

  // "Converged" value: mean over the final quarter of the curve (empty when
  // a resumed run had nothing left to train).
  if (!result.curve.empty()) {
    const std::size_t tail = std::max<std::size_t>(result.curve.size() / 4, 1);
    for (std::size_t i = result.curve.size() - tail; i < result.curve.size();
         ++i) {
      result.converged_improvement += result.curve[i].mean_improvement;
      result.converged_rejection_ratio += result.curve[i].rejection_ratio;
    }
    result.converged_improvement /= static_cast<double>(tail);
    result.converged_rejection_ratio /= static_cast<double>(tail);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("train.converged_improvement")
        .set(result.converged_improvement);
    config_.metrics->gauge("train.converged_rejection_ratio")
        .set(result.converged_rejection_ratio);
  }
  return result;
}

TrainedInspector train_inspector(const Trace& trace, SchedulingPolicy& policy,
                                 const TrainerConfig& config) {
  Trainer trainer(trace, policy, config);
  TrainedInspector out{trainer.make_agent(), TrainResult{}};
  out.result = trainer.train(out.agent);
  return out;
}

}  // namespace si
