#include "core/reward.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace si {

std::string reward_kind_name(RewardKind kind) {
  switch (kind) {
    case RewardKind::kNative:
      return "native";
    case RewardKind::kWinLoss:
      return "winloss";
    case RewardKind::kPercentage:
      return "percentage";
  }
  return "?";
}

RewardKind reward_kind_from_name(const std::string& name) {
  if (name == "native") return RewardKind::kNative;
  if (name == "winloss") return RewardKind::kWinLoss;
  if (name == "percentage") return RewardKind::kPercentage;
  throw std::out_of_range("unknown reward kind: " + name);
}

double compute_reward(RewardKind kind, double orig, double inspected,
                      double floor) {
  SI_REQUIRE(orig >= 0.0);
  SI_REQUIRE(inspected >= 0.0);
  SI_REQUIRE(floor > 0.0);
  switch (kind) {
    case RewardKind::kNative:
      return orig - inspected;
    case RewardKind::kWinLoss:
      if (inspected < orig) return 1.0;
      if (inspected > orig) return -1.0;
      return 0.0;
    case RewardKind::kPercentage:
      return (orig - inspected) / std::max(orig, floor);
  }
  return 0.0;
}

double reward_floor(Metric metric) {
  switch (metric) {
    case Metric::kBsld:
    case Metric::kMaxBsld:
      return 1.0;  // bounded slowdown >= 1 by definition
    case Metric::kWait:
      return 600.0;  // differences under the retry interval are noise
  }
  return 1.0;
}

}  // namespace si
