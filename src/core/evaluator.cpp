#include "core/evaluator.hpp"

#include <atomic>
#include <span>
#include <thread>

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace si {

namespace {

/// Resolves the worker count for `n` independent sequences. A tracer,
/// metrics registry, or correctness oracle in the SimConfig forces serial
/// execution: those sinks observe events in emission order and are not
/// thread-safe.
std::size_t eval_workers(const EvalConfig& config, std::size_t n) {
  if (config.sim.tracer != nullptr || config.sim.metrics != nullptr ||
      config.sim.oracle != nullptr)
    return 1;
  std::size_t workers =
      config.max_workers > 0
          ? static_cast<std::size_t>(config.max_workers)
          : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::min(workers, n);
}

/// Runs `work(index)` over [0, n) across `workers` threads, pulling indices
/// from a shared counter. Each worker gets its own simulator and policy
/// clone; results are stored by index, so the outcome is identical for any
/// worker count.
template <typename MakeWorkerState, typename Work>
void parallel_sequences(std::size_t n, std::size_t workers,
                        MakeWorkerState&& make_state, Work&& work) {
  if (workers <= 1) {
    auto state = make_state();
    for (std::size_t t = 0; t < n; ++t) work(state, t);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto body = [&] {
    auto state = make_state();
    for (;;) {
      const std::size_t t = next.fetch_add(1);
      if (t >= n) break;
      work(state, t);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(body);
  for (std::thread& th : pool) th.join();
}

}  // namespace

std::vector<double> EvalResult::base_values(Metric metric) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const EvalPair& p : pairs) out.push_back(p.base.value(metric));
  return out;
}

std::vector<double> EvalResult::inspected_values(Metric metric) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const EvalPair& p : pairs) out.push_back(p.inspected.value(metric));
  return out;
}

double EvalResult::mean_base(Metric metric) const {
  return mean_of(base_values(metric));
}

double EvalResult::mean_inspected(Metric metric) const {
  return mean_of(inspected_values(metric));
}

double EvalResult::mean_base_utilization() const {
  std::vector<double> u;
  u.reserve(pairs.size());
  for (const EvalPair& p : pairs) u.push_back(p.base.utilization);
  return mean_of(u);
}

double EvalResult::mean_inspected_utilization() const {
  std::vector<double> u;
  u.reserve(pairs.size());
  for (const EvalPair& p : pairs) u.push_back(p.inspected.utilization);
  return mean_of(u);
}

BoxSummary EvalResult::base_box(Metric metric) const {
  return box_summary(base_values(metric));
}

BoxSummary EvalResult::inspected_box(Metric metric) const {
  return box_summary(inspected_values(metric));
}

EvalResult evaluate(const Trace& test_trace, SchedulingPolicy& policy,
                    const ActorCritic& ac, const FeatureBuilder& features,
                    const EvalConfig& config, DecisionRecorder* recorder) {
  SI_REQUIRE(config.sequences > 0);
  SI_REQUIRE(config.sequence_length > 0);
  SI_REQUIRE(static_cast<std::size_t>(config.sequence_length) <=
             test_trace.size());

  // Windows are drawn serially from the master stream; the rollouts are
  // embarrassingly parallel and collected by index.
  const auto n = static_cast<std::size_t>(config.sequences);
  Rng rng(config.seed);
  std::vector<std::vector<Job>> windows(n);
  for (std::size_t s = 0; s < n; ++s)
    windows[s] = test_trace.sample_window(
        rng, static_cast<std::size_t>(config.sequence_length));

  // Each sequence records into its own recorder; merging in sequence order
  // afterwards reproduces the serial record stream exactly.
  std::vector<DecisionRecorder> recorders;
  if (recorder != nullptr)
    recorders.assign(n, DecisionRecorder(recorder->feature_names()));

  std::vector<RolloutSpec> specs(n);
  for (std::size_t t = 0; t < n; ++t) {
    specs[t].jobs = &windows[t];
    if (recorder != nullptr) specs[t].recorder = &recorders[t];
  }

  // Greedy rollouts batch `rollout_batch` sequences per VecEnv; sinks that
  // observe global event order (tracer/metrics/oracle) require the serial
  // width-1 path, which reproduces the scalar stream byte for byte. The
  // batched kernels read the policy transpose cache, refreshed here before
  // any thread fan-out (not thread-safe).
  SI_REQUIRE(config.rollout_batch >= 1);
  const bool serial_sinks = config.sim.tracer != nullptr ||
                            config.sim.metrics != nullptr ||
                            config.sim.oracle != nullptr;
  const std::size_t width =
      serial_sinks ? 1
                   : std::min<std::size_t>(
                         static_cast<std::size_t>(config.rollout_batch), n);
  ac.policy_net().refresh_transpose();

  EvalResult result;
  result.pairs.resize(n);
  const std::size_t chunks = (n + width - 1) / width;
  const std::size_t workers = std::min(eval_workers(config, n), chunks);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    VecEnv env(test_trace.cluster_procs(), config.sim, ac, features, policy,
               static_cast<int>(width));
    for (;;) {
      const std::size_t begin = next.fetch_add(width);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + width, n);
      const std::vector<PairedRollout> pairs = env.rollout_batch(
          std::span<const RolloutSpec>(specs.data() + begin, end - begin),
          ActionSelect::kGreedy);
      for (std::size_t t = begin; t < end; ++t)
        result.pairs[t] = pairs[t - begin];
    }
  };
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (recorder != nullptr)
    for (const DecisionRecorder& r : recorders) recorder->merge_from(r);
  return result;
}

std::vector<double> evaluate_base(const Trace& test_trace,
                                  SchedulingPolicy& policy, Metric metric,
                                  const EvalConfig& config) {
  SI_REQUIRE(config.sequences > 0);
  const auto n = static_cast<std::size_t>(config.sequences);
  Rng rng(config.seed);
  std::vector<std::vector<Job>> windows(n);
  for (std::size_t s = 0; s < n; ++s)
    windows[s] = test_trace.sample_window(
        rng, static_cast<std::size_t>(config.sequence_length));

  std::vector<double> out(n);
  struct WorkerState {
    Simulator sim;
    PolicyPtr policy;
  };
  parallel_sequences(
      n, eval_workers(config, n),
      [&] {
        return WorkerState{Simulator(test_trace.cluster_procs(), config.sim),
                           policy.clone()};
      },
      [&](WorkerState& state, std::size_t t) {
        out[t] = state.sim.run(windows[t], *state.policy).metrics.value(metric);
      });
  return out;
}

}  // namespace si
