#include "core/evaluator.hpp"

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace si {

std::vector<double> EvalResult::base_values(Metric metric) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const EvalPair& p : pairs) out.push_back(p.base.value(metric));
  return out;
}

std::vector<double> EvalResult::inspected_values(Metric metric) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const EvalPair& p : pairs) out.push_back(p.inspected.value(metric));
  return out;
}

double EvalResult::mean_base(Metric metric) const {
  return mean_of(base_values(metric));
}

double EvalResult::mean_inspected(Metric metric) const {
  return mean_of(inspected_values(metric));
}

double EvalResult::mean_base_utilization() const {
  std::vector<double> u;
  u.reserve(pairs.size());
  for (const EvalPair& p : pairs) u.push_back(p.base.utilization);
  return mean_of(u);
}

double EvalResult::mean_inspected_utilization() const {
  std::vector<double> u;
  u.reserve(pairs.size());
  for (const EvalPair& p : pairs) u.push_back(p.inspected.utilization);
  return mean_of(u);
}

BoxSummary EvalResult::base_box(Metric metric) const {
  return box_summary(base_values(metric));
}

BoxSummary EvalResult::inspected_box(Metric metric) const {
  return box_summary(inspected_values(metric));
}

EvalResult evaluate(const Trace& test_trace, SchedulingPolicy& policy,
                    const ActorCritic& ac, const FeatureBuilder& features,
                    const EvalConfig& config, DecisionRecorder* recorder) {
  SI_REQUIRE(config.sequences > 0);
  SI_REQUIRE(config.sequence_length > 0);
  SI_REQUIRE(static_cast<std::size_t>(config.sequence_length) <=
             test_trace.size());

  Rng rng(config.seed);
  Simulator sim(test_trace.cluster_procs(), config.sim);
  EvalResult result;
  result.pairs.reserve(static_cast<std::size_t>(config.sequences));
  for (int s = 0; s < config.sequences; ++s) {
    const std::vector<Job> jobs = test_trace.sample_window(
        rng, static_cast<std::size_t>(config.sequence_length));
    result.pairs.push_back(
        rollout_eval(sim, jobs, policy, ac, features, recorder));
  }
  return result;
}

std::vector<double> evaluate_base(const Trace& test_trace,
                                  SchedulingPolicy& policy, Metric metric,
                                  const EvalConfig& config) {
  SI_REQUIRE(config.sequences > 0);
  Rng rng(config.seed);
  Simulator sim(test_trace.cluster_procs(), config.sim);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(config.sequences));
  for (int s = 0; s < config.sequences; ++s) {
    const std::vector<Job> jobs = test_trace.sample_window(
        rng, static_cast<std::size_t>(config.sequence_length));
    out.push_back(sim.run(jobs, policy).metrics.value(metric));
  }
  return out;
}

}  // namespace si
