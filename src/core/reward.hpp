// Reward functions (§3.4). All three compare the inspected schedule's
// metric value against the base scheduler's on the *same* job sequence;
// lower metric values are better, so positive rewards mean the inspector
// helped:
//
//   native:     orig - inspected            (high variance across sequences)
//   win/loss:   sign(orig - inspected)      (variance-free, gain-blind)
//   percentage: (orig - inspected) / orig   (the paper's design: variance-
//                                            normalized, big gains rewarded)
#pragma once

#include <string>

#include "sim/metrics.hpp"

namespace si {

enum class RewardKind { kNative, kWinLoss, kPercentage };

std::string reward_kind_name(RewardKind kind);

/// Parses "native" / "winloss" / "percentage"; throws std::out_of_range
/// otherwise.
RewardKind reward_kind_from_name(const std::string& name);

/// Computes the trajectory-final reward given the base scheduler's metric
/// value `orig` and the inspected run's `inspected`. Requires orig >= 0 and
/// inspected >= 0 (all supported metrics are non-negative). `floor` bounds
/// the percentage reward's denominator: sequences whose base metric is near
/// zero (e.g. every job starts instantly, wait == 0) would otherwise yield
/// astronomically negative rewards that destabilize training.
double compute_reward(RewardKind kind, double orig, double inspected,
                      double floor = 1e-9);

/// The natural denominator floor per metric: bounded slowdowns are >= 1 by
/// definition; for waiting time, differences below the 600 s retry interval
/// are scheduling noise.
double reward_floor(Metric metric);

}  // namespace si
