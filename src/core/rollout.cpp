#include "core/rollout.hpp"

#include "obs/profile.hpp"

namespace si {

TrainingRollout rollout_training(Simulator& sim, const std::vector<Job>& jobs,
                                 SchedulingPolicy& policy,
                                 const ActorCritic& ac,
                                 const FeatureBuilder& features,
                                 Metric metric, RewardKind reward_kind,
                                 Rng& rng) {
  SI_PROFILE_SCOPE("rollout/training");
  TrainingRollout out;
  out.base = sim.run(jobs, policy).metrics;

  RlInspector inspector(ac, features, InspectorMode::kSample, &rng);
  inspector.set_trajectory(&out.trajectory);
  out.inspected = sim.run(jobs, policy, &inspector).metrics;

  out.trajectory.reward =
      compute_reward(reward_kind, out.base.value(metric),
                     out.inspected.value(metric), reward_floor(metric));
  return out;
}

EvalPair rollout_eval(Simulator& sim, const std::vector<Job>& jobs,
                      SchedulingPolicy& policy, const ActorCritic& ac,
                      const FeatureBuilder& features,
                      DecisionRecorder* recorder) {
  SI_PROFILE_SCOPE("rollout/eval");
  EvalPair out;
  out.base = sim.run(jobs, policy).metrics;

  RlInspector inspector(ac, features, InspectorMode::kGreedy);
  inspector.set_recorder(recorder);
  out.inspected = sim.run(jobs, policy, &inspector).metrics;
  return out;
}

}  // namespace si
