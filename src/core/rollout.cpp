#include "core/rollout.hpp"

#include "common/check.hpp"
#include "obs/profile.hpp"

namespace si {

PairedRollout run_paired(Simulator& sim, const std::vector<Job>& jobs,
                         SchedulingPolicy& policy, const ActorCritic& ac,
                         const FeatureBuilder& features, ActionSelect select,
                         Rng* rng, Trajectory* trajectory,
                         DecisionRecorder* recorder) {
  SI_REQUIRE(select != ActionSelect::kSample || rng != nullptr);
  PairedRollout out;
  out.base = sim.run(jobs, policy).metrics;

  RlInspector inspector(ac, features,
                        select == ActionSelect::kSample
                            ? InspectorMode::kSample
                            : InspectorMode::kGreedy,
                        rng);
  inspector.set_trajectory(trajectory);
  inspector.set_recorder(recorder);
  out.inspected = sim.run(jobs, policy, &inspector).metrics;
  return out;
}

TrainingRollout rollout_training(Simulator& sim, const std::vector<Job>& jobs,
                                 SchedulingPolicy& policy,
                                 const ActorCritic& ac,
                                 const FeatureBuilder& features,
                                 Metric metric, RewardKind reward_kind,
                                 Rng& rng) {
  SI_PROFILE_SCOPE("rollout/training");
  TrainingRollout out;
  const PairedRollout pair =
      run_paired(sim, jobs, policy, ac, features, ActionSelect::kSample, &rng,
                 &out.trajectory);
  out.base = pair.base;
  out.inspected = pair.inspected;
  out.trajectory.reward =
      compute_reward(reward_kind, out.base.value(metric),
                     out.inspected.value(metric), reward_floor(metric));
  return out;
}

EvalPair rollout_eval(Simulator& sim, const std::vector<Job>& jobs,
                      SchedulingPolicy& policy, const ActorCritic& ac,
                      const FeatureBuilder& features,
                      DecisionRecorder* recorder) {
  SI_PROFILE_SCOPE("rollout/eval");
  return run_paired(sim, jobs, policy, ac, features, ActionSelect::kGreedy,
                    nullptr, nullptr, recorder);
}

}  // namespace si
