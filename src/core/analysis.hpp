// Decision analysis for §5 / Figure 13: record every inspection's feature
// vector and outcome while a trained model schedules a trace, then compare
// the feature distributions of rejected samples against all samples via
// empirical CDFs.
#pragma once

#include <string>
#include <vector>

#include "common/cdf.hpp"

namespace si {

class DecisionRecorder {
 public:
  explicit DecisionRecorder(std::vector<std::string> feature_names);

  /// Records one inspection: its features and whether it was rejected.
  void record(const std::vector<double>& features, bool rejected);

  /// Appends every sample of `other` in its record order. Lets parallel
  /// evaluation record into per-sequence recorders and merge them back in
  /// sequence order, reproducing the serial record stream exactly.
  void merge_from(const DecisionRecorder& other);

  std::size_t total_samples() const { return total_; }
  std::size_t rejected_samples() const { return rejected_; }
  double rejection_ratio() const;

  const std::vector<std::string>& feature_names() const { return names_; }

  /// Distribution of feature `i` over all inspection samples.
  EmpiricalCdf cdf_total(std::size_t feature) const;
  /// Distribution of feature `i` over rejected samples only.
  EmpiricalCdf cdf_rejected(std::size_t feature) const;

  /// Largest feature value ever seen among rejected samples — the paper's
  /// "hard cap" observation (queue delays above 0.22 are never rejected).
  double rejected_max(std::size_t feature) const;

  /// Renders the rejected-vs-total CDF table of every feature (Figure 13).
  std::string render(std::size_t points) const;

 private:
  std::vector<std::string> names_;
  // values_[f] holds feature f of every sample, in record order;
  // rejected_flags_ holds the matching outcomes.
  std::vector<std::vector<double>> values_;
  std::vector<bool> rejected_flags_;
  std::size_t total_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace si
