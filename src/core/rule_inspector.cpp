#include "core/rule_inspector.hpp"

#include "common/check.hpp"

namespace si {

namespace {
// Manual feature indices (§3.3 / FeatureBuilder::feature_names()).
constexpr std::size_t kWait = 0;
constexpr std::size_t kEstimate = 1;
constexpr std::size_t kProcs = 2;
constexpr std::size_t kQueueDelays = 4;
constexpr std::size_t kClusterAvail = 5;
}  // namespace

RuleInspector::RuleInspector(const FeatureBuilder& features,
                             RuleInspectorConfig config)
    : features_(features), config_(config) {
  SI_REQUIRE(features_.mode() == FeatureMode::kManual);
}

bool rule_inspector_reject(const std::vector<double>& f,
                           const RuleInspectorConfig& config) {
  SI_REQUIRE(f.size() == 8);
  // Hard cap: a crowded queue makes every delay expensive (§5).
  if (f[kQueueDelays] > config.queue_delay_cap) return false;
  // Only delay jobs that have not waited long yet.
  if (f[kWait] > config.max_wait) return false;
  // The job must be worth delaying: long or wide.
  const bool demanding =
      f[kEstimate] >= config.min_estimate || f[kProcs] >= config.min_procs;
  if (!demanding) return false;
  // The cluster state must make the delay a big-gain (full) or small-loss
  // (idle) opportunity; moderately loaded clusters see no rejections.
  const double avail = f[kClusterAvail];
  return avail <= config.busy_threshold || avail >= config.idle_threshold;
}

bool RuleInspector::reject_features(const std::vector<double>& f) const {
  return rule_inspector_reject(f, config_);
}

bool RuleInspector::reject(const InspectionView& view) {
  return reject_features(features_.build(view));
}

}  // namespace si
