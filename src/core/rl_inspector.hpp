// The RL-backed scheduling inspector — SchedInspector itself. Plugs an
// actor-critic policy into the simulator's Inspector hook, translating every
// inspection opportunity through the feature builder. In sampling mode it
// explores (training); in greedy mode it takes the argmax action
// (inference). It can transparently record training steps into a Trajectory
// and/or analysis samples into a DecisionRecorder.
#pragma once

#include "core/analysis.hpp"
#include "core/features.hpp"
#include "rl/actor_critic.hpp"
#include "rl/buffer.hpp"
#include "sim/inspector.hpp"

namespace si {

enum class InspectorMode {
  kSample,  ///< draw from pi(reject | state) — training-time exploration
  kGreedy,  ///< reject iff P(reject) > 0.5 — inference
};

class RlInspector final : public Inspector {
 public:
  /// `rng` is required in sampling mode and may be null in greedy mode.
  RlInspector(const ActorCritic& ac, const FeatureBuilder& features,
              InspectorMode mode, Rng* rng = nullptr);

  bool reject(const InspectionView& view) override;

  /// When set, every decision appends a Step (obs, action, logp) — PPO
  /// rollout collection. Pass nullptr to stop recording.
  void set_trajectory(Trajectory* trajectory) { trajectory_ = trajectory; }

  /// When set, every decision is recorded for Figure 13-style analysis.
  void set_recorder(DecisionRecorder* recorder) { recorder_ = recorder; }

 private:
  const ActorCritic& ac_;
  const FeatureBuilder& features_;
  InspectorMode mode_;
  Rng* rng_;
  Trajectory* trajectory_ = nullptr;
  DecisionRecorder* recorder_ = nullptr;
  /// Reused across decisions so steady-state inference (greedy mode with no
  /// trajectory recording) performs zero heap allocation per decision.
  Mlp::Workspace ws_;
  std::vector<double> obs_scratch_;
};

/// An inspector that rejects with fixed probability — the naive random
/// baseline used by tests and ablations.
class RandomInspector final : public Inspector {
 public:
  RandomInspector(double reject_prob, Rng& rng);
  bool reject(const InspectionView& view) override;

 private:
  double reject_prob_;
  Rng& rng_;
};

/// An inspector that always rejects (until each job's budget runs out) —
/// the worst-case stressor used by simulator tests.
class AlwaysRejectInspector final : public Inspector {
 public:
  bool reject(const InspectionView&) override { return true; }
};

}  // namespace si
