// Test-time evaluation (§4.4): sample N job-sequence windows from the test
// split, schedule each with the base policy and with the greedy trained
// inspector, and aggregate all metrics per side. Powers Figure 8/10/12,
// Tables 4/5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/analysis.hpp"
#include "core/features.hpp"
#include "core/rollout.hpp"
#include "rl/actor_critic.hpp"
#include "sched/policy.hpp"
#include "sim/config.hpp"
#include "workload/trace.hpp"

namespace si {

struct EvalConfig {
  int sequences = 50;        ///< paper: 50 sampled sequences
  int sequence_length = 256; ///< paper: 256 continuous jobs each
  SimConfig sim;
  std::uint64_t seed = 7;
  /// Worker threads for the per-sequence rollouts: 0 = one per hardware
  /// thread (capped at the sequence count), 1 = serial, N = exactly N.
  /// Results are collected by sequence index and are bit-identical for any
  /// setting. Evaluation falls back to serial when the SimConfig carries a
  /// tracer or metrics registry (those sinks are not thread-safe).
  int max_workers = 0;
  /// Sequences each worker keeps in flight (VecEnv width): pending
  /// inspection decisions across the batch share one batched policy-net
  /// forward per tick. Bit-identical for any width (core/vec_env.hpp).
  /// Clamped to 1 when the SimConfig carries a tracer, metrics registry, or
  /// oracle — those sinks observe global event order.
  int rollout_batch = 8;
};

/// All per-sequence pairs plus aggregate helpers.
struct EvalResult {
  std::vector<EvalPair> pairs;

  std::vector<double> base_values(Metric metric) const;
  std::vector<double> inspected_values(Metric metric) const;
  double mean_base(Metric metric) const;
  double mean_inspected(Metric metric) const;
  double mean_base_utilization() const;
  double mean_inspected_utilization() const;
  BoxSummary base_box(Metric metric) const;
  BoxSummary inspected_box(Metric metric) const;
};

/// Runs the paired evaluation. `recorder`, when given, collects every
/// inspection decision of the inspected runs (Figure 13).
EvalResult evaluate(const Trace& test_trace, SchedulingPolicy& policy,
                    const ActorCritic& ac, const FeatureBuilder& features,
                    const EvalConfig& config,
                    DecisionRecorder* recorder = nullptr);

/// Evaluates the base policy alone over the sampled sequences (used for the
/// Base->Y column of Table 4). Returns per-sequence metric values.
std::vector<double> evaluate_base(const Trace& test_trace,
                                  SchedulingPolicy& policy, Metric metric,
                                  const EvalConfig& config);

}  // namespace si
