#include "core/analysis.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace si {

DecisionRecorder::DecisionRecorder(std::vector<std::string> feature_names)
    : names_(std::move(feature_names)), values_(names_.size()) {
  SI_REQUIRE(!names_.empty());
}

void DecisionRecorder::record(const std::vector<double>& features,
                              bool rejected) {
  SI_REQUIRE(features.size() == names_.size());
  for (std::size_t f = 0; f < features.size(); ++f)
    values_[f].push_back(features[f]);
  rejected_flags_.push_back(rejected);
  ++total_;
  if (rejected) ++rejected_;
}

void DecisionRecorder::merge_from(const DecisionRecorder& other) {
  SI_REQUIRE(other.names_.size() == names_.size());
  for (std::size_t f = 0; f < values_.size(); ++f)
    values_[f].insert(values_[f].end(), other.values_[f].begin(),
                      other.values_[f].end());
  rejected_flags_.insert(rejected_flags_.end(), other.rejected_flags_.begin(),
                         other.rejected_flags_.end());
  total_ += other.total_;
  rejected_ += other.rejected_;
}

double DecisionRecorder::rejection_ratio() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(rejected_) / static_cast<double>(total_);
}

EmpiricalCdf DecisionRecorder::cdf_total(std::size_t feature) const {
  SI_REQUIRE(feature < values_.size());
  return EmpiricalCdf(values_[feature]);
}

EmpiricalCdf DecisionRecorder::cdf_rejected(std::size_t feature) const {
  SI_REQUIRE(feature < values_.size());
  std::vector<double> sample;
  sample.reserve(rejected_);
  const auto& all = values_[feature];
  for (std::size_t i = 0; i < all.size(); ++i)
    if (rejected_flags_[i]) sample.push_back(all[i]);
  return EmpiricalCdf(std::move(sample));
}

double DecisionRecorder::rejected_max(std::size_t feature) const {
  SI_REQUIRE(feature < values_.size());
  double worst = 0.0;
  const auto& all = values_[feature];
  for (std::size_t i = 0; i < all.size(); ++i)
    if (rejected_flags_[i]) worst = std::max(worst, all[i]);
  return worst;
}

std::string DecisionRecorder::render(std::size_t points) const {
  std::string out;
  out += "total samples: " + std::to_string(total_) +
         ", rejected samples: " + std::to_string(rejected_) + "\n";
  for (std::size_t f = 0; f < names_.size(); ++f) {
    out += render_cdf_table(names_[f], cdf_rejected(f), cdf_total(f), points);
    out += '\n';
  }
  return out;
}

}  // namespace si
