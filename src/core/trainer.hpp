// The SchedInspector training loop (§3, §4.1): per epoch, sample a batch of
// job-sequence windows from the training trace, roll each out twice (base +
// inspected) to build trajectories with sequence-final rewards, and run one
// PPO update. The per-epoch statistics form the training curves of
// Figures 4-7, 9, 11, 12.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/reward.hpp"
#include "core/rollout.hpp"
#include "obs/span.hpp"
#include "rl/ppo.hpp"
#include "sched/policy.hpp"
#include "sim/config.hpp"
#include "workload/trace.hpp"

namespace si {

struct TrainerConfig {
  Metric metric = Metric::kBsld;
  RewardKind reward = RewardKind::kPercentage;
  FeatureMode features = FeatureMode::kManual;
  SimConfig sim;                      ///< backfill, MAX_INTERVAL, MAX_REJECTION_TIMES
  PpoConfig ppo;
  std::vector<int> hidden = {32, 16, 8};  ///< the paper's MLP (§3.1)
  int epochs = 40;
  int trajectories_per_epoch = 100;   ///< paper: batch size 100
  int sequence_length = 128;          ///< paper: 128 sequential jobs
  std::uint64_t seed = 42;
  /// When non-empty, an atomic checkpoint (model + epoch) is written here
  /// after every completed epoch.
  std::string checkpoint_path;
  /// When non-empty and the file exists, training resumes from the stored
  /// checkpoint: its parameters are loaded and the already-completed epochs
  /// are skipped (their RNG draws are replayed so the remaining epochs see
  /// the same sequence windows an uninterrupted run would have seen).
  std::string resume_from;
  /// Initial output bias of the policy head. A fresh agent starts biased
  /// toward *accepting* (sigmoid(-2) ~ 12% rejection) instead of the
  /// destructive 50% a zero-bias net would produce — rejections are the
  /// exception, not the rule, and exploration still samples plenty of them.
  double initial_reject_logit = -2.0;

  // --- observability (all inert by default; see DESIGN.md §5) ---
  /// When non-empty, one JSONL telemetry record per executed epoch (reward,
  /// losses, KL, rejection rate, skipped updates, per-phase wall time) is
  /// written here, flushed per line so crashes keep the prefix.
  std::string telemetry_path;
  /// Prints a per-epoch progress line (epoch i/N, mean reward, elapsed,
  /// ETA) to stderr so long runs are not silent. Off by default; the CLI
  /// enables it unless --quiet.
  bool progress = false;
  /// When set, every rollout's simulator events are traced through this
  /// sink (non-owning). Rollouts run on worker threads, so each trajectory
  /// is buffered and drained in trajectory order: the emitted stream is
  /// deterministic and byte-identical for any worker count. Each
  /// trajectory is delimited by a {"ev":"trajectory",...} marker. Null
  /// (default) leaves training bit-identical to the untraced build.
  SimTracer* tracer = nullptr;
  /// When set, training bumps the train.* counters/gauges documented in
  /// DESIGN.md §5 (accessed only from the training thread).
  MetricsRegistry* metrics = nullptr;
  /// When set, each epoch records a span tree (train.epoch with
  /// train.rollouts / train.update / train.checkpoint children, one trace
  /// id per epoch) plus the per-worker forward_batch spans, exportable as
  /// Chrome trace JSON (DESIGN.md §10). Null keeps training untraced.
  SpanCollector* spans = nullptr;
  /// Rollout worker threads: 0 = auto (hardware threads, capped at 8 and at
  /// the trajectory count), 1 = serial, N = exactly N (still capped at the
  /// trajectory count). Rollouts are seeded and stored by trajectory index,
  /// so results are bit-identical for any setting.
  int max_workers = 0;
  /// Sequences each rollout worker keeps in flight (VecEnv width): all
  /// pending inspection decisions across the batch are answered by one
  /// batched policy-net forward per tick instead of one scalar forward
  /// each. Per-sequence results are bit-identical for any width (see
  /// core/vec_env.hpp); 1 degenerates to the scalar callback path.
  int rollout_batch = 8;
};

/// Per-epoch training diagnostics.
struct EpochStats {
  int epoch = 0;
  double mean_reward = 0.0;
  /// Mean absolute improvement orig - inspected on the training metric —
  /// the y-axis of Figure 4/7 (positive = inspector beats base policy).
  double mean_improvement = 0.0;
  /// Mean relative improvement (orig - inspected) / orig.
  double mean_pct_improvement = 0.0;
  /// Rejections / inspections across the epoch's rollouts (Figure 7's
  /// right axis).
  double rejection_ratio = 0.0;
  double approx_kl = 0.0;
  double entropy = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  /// PPO updates skipped this epoch (0 or 1): the update produced NaN/Inf
  /// and was rolled back, or the epoch had no valid trajectories.
  int skipped_updates = 0;
  /// Trajectories dropped for non-finite rewards/observations this epoch.
  int invalid_trajectories = 0;
  /// Wall time of the epoch's two phases (telemetry only — simulated
  /// results never depend on these).
  double rollout_seconds = 0.0;
  double update_seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> curve;  ///< one entry per *executed* epoch
  /// Mean improvement over the final quarter of epochs — the "converged"
  /// value quoted in the paper's text.
  double converged_improvement = 0.0;
  double converged_rejection_ratio = 0.0;
  /// Total PPO updates skipped (NaN rollback or empty epochs).
  int skipped_updates = 0;
  /// Epochs restored from `resume_from` instead of being trained.
  int resumed_epochs = 0;
};

/// Trains SchedInspector for one (trace, policy, metric) combination.
class Trainer {
 public:
  /// `trace` is the training split; `policy` is the base scheduler (reset
  /// per rollout by the simulator; must outlive the trainer).
  Trainer(const Trace& trace, SchedulingPolicy& policy, TrainerConfig config);

  /// A fresh actor-critic with the right observation width, seeded from the
  /// trainer config.
  ActorCritic make_agent() const;

  /// Runs the configured number of epochs, mutating `ac` in place.
  TrainResult train(ActorCritic& ac);

  const FeatureBuilder& features() const { return features_; }
  const TrainerConfig& config() const { return config_; }

 private:
  const Trace& trace_;
  SchedulingPolicy& policy_;
  TrainerConfig config_;
  FeatureBuilder features_;
};

/// Convenience: build trainer + agent, train, and return both the model and
/// the curve.
struct TrainedInspector {
  ActorCritic agent;
  TrainResult result;
};
TrainedInspector train_inspector(const Trace& trace, SchedulingPolicy& policy,
                                 const TrainerConfig& config);

}  // namespace si
