// A learned (neural) priority policy plus its evolution-strategy trainer —
// the "intelligent scheduling policy" of the paper's future work (§7:
// "incorporate SchedInspector with intelligent scheduling policies, such as
// RLScheduler"). Like RLScheduler and F1, the policy maps per-job features
// to a priority score; unlike the fixed F1 regression it is trained, on the
// target workload, to directly minimize a chosen metric.
//
// Training uses a simple (mu, lambda) evolution strategy over the score
// network's weights: each generation perturbs the current parameters,
// evaluates every candidate on a fixed set of job-sequence windows in the
// simulator, and moves to the mean of the elite. ES needs no gradient
// through the (discrete, non-differentiable) scheduling process and is
// deterministic given its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "rl/mlp.hpp"
#include "sched/policy.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace si {

/// A scheduling policy whose priority score is a small MLP over normalized
/// job features [wait, estimate, procs] (the attributes Table 3's heuristics
/// weigh). Lower network output = scheduled first.
class NeuralPriorityPolicy final : public SchedulingPolicy {
 public:
  /// Scales normalize the features; typically derived from the training
  /// trace. `hidden` defaults to one small layer — priority functions are
  /// simple shapes (F1 is log-linear).
  NeuralPriorityPolicy(double max_estimate, int cluster_procs,
                       double wait_scale, std::vector<int> hidden = {8, 4});

  std::string name() const override { return "NeuralPriority"; }
  PolicyPtr clone() const override {
    return std::make_unique<NeuralPriorityPolicy>(*this);
  }
  double score(const Job& job, const SchedContext& ctx) const override;

  Mlp& net() { return net_; }
  const Mlp& net() const { return net_; }

  /// Seeds the network with SJF-like behaviour (score grows with the
  /// estimate) so ES starts from a sensible policy instead of noise.
  void init_like_sjf();

 private:
  Mlp net_;
  double max_estimate_;
  int cluster_procs_;
  double wait_scale_;
  /// score() is on the simulator's per-scheduling-point hot path; the
  /// workspace keeps it allocation-free. Policies are cloned per worker
  /// thread, so the mutable cache is never shared across threads.
  mutable Mlp::Workspace ws_;
};

/// (mu, lambda) evolution strategy configuration.
struct EsConfig {
  Metric metric = Metric::kBsld;
  int generations = 15;
  int population = 16;       ///< lambda: candidates per generation
  int elites = 4;            ///< mu: averaged into the next mean
  double sigma = 0.1;        ///< perturbation standard deviation
  double sigma_decay = 0.95; ///< per-generation sigma shrink
  int windows = 8;           ///< evaluation sequences per candidate
  int sequence_length = 64;
  std::uint64_t seed = 42;
};

/// Per-generation ES diagnostics.
struct EsGeneration {
  int generation = 0;
  double best = 0.0;   ///< best candidate's mean metric (lower = better)
  double mean = 0.0;   ///< population mean
};

struct EsResult {
  std::vector<EsGeneration> curve;
  double final_value = 0.0;  ///< the trained policy's mean metric
};

/// Trains `policy`'s network in place on windows sampled from `trace`.
EsResult train_neural_priority(NeuralPriorityPolicy& policy,
                               const Trace& trace, const EsConfig& config);

}  // namespace si
