#include "core/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace si {

std::string feature_mode_name(FeatureMode mode) {
  switch (mode) {
    case FeatureMode::kManual:
      return "manual";
    case FeatureMode::kCompacted:
      return "compacted";
    case FeatureMode::kNative:
      return "native";
  }
  return "?";
}

FeatureScales FeatureScales::from_trace(const Trace& trace) {
  const TraceStats stats = trace.stats();
  FeatureScales scales;
  scales.max_estimate = std::max(stats.max_estimate, 1.0);
  scales.cluster_procs = std::max(stats.cluster_procs, 1);
  scales.wait_scale = std::max(stats.mean_interarrival * 10.0, 600.0);
  return scales;
}

FeatureBuilder::FeatureBuilder(FeatureMode mode, Metric metric,
                               FeatureScales scales, double max_interval)
    : mode_(mode), metric_(metric), scales_(scales),
      max_interval_(max_interval) {
  SI_REQUIRE(max_interval_ > 0.0);
  SI_REQUIRE(scales_.max_estimate > 0.0);
  SI_REQUIRE(scales_.cluster_procs > 0);
}

int FeatureBuilder::feature_count() const {
  switch (mode_) {
    case FeatureMode::kManual:
      return 8;
    case FeatureMode::kCompacted:
      return 5;
    case FeatureMode::kNative:
      return 5 + 3 * kNativeQueueJobs;
  }
  return 0;
}

std::vector<std::string> FeatureBuilder::feature_names() const {
  switch (mode_) {
    case FeatureMode::kManual:
      return {"wait",       "estimate",    "procs",    "rejected_times",
              "queue_delays", "cluster_avail", "runnable", "backfill_contrib"};
    case FeatureMode::kCompacted:
      return {"wait", "estimate", "procs", "cluster_avail", "runnable"};
    case FeatureMode::kNative: {
      std::vector<std::string> names = {"wait", "estimate", "procs",
                                        "cluster_avail", "runnable"};
      for (int i = 0; i < kNativeQueueJobs; ++i) {
        const std::string suffix = std::to_string(i);
        names.push_back("q" + suffix + "_wait");
        names.push_back("q" + suffix + "_estimate");
        names.push_back("q" + suffix + "_procs");
      }
      return names;
    }
  }
  return {};
}

double FeatureBuilder::norm_wait(double wait) const {
  const double w = std::max(wait, 0.0);
  return w / (w + scales_.wait_scale);
}

double FeatureBuilder::norm_estimate(double est) const {
  return std::clamp(est / scales_.max_estimate, 0.0, 1.0);
}

double FeatureBuilder::norm_procs(int procs) const {
  return std::clamp(
      static_cast<double>(procs) / static_cast<double>(scales_.cluster_procs),
      0.0, 1.0);
}

double FeatureBuilder::raw_queue_delay(const InspectionView& view) const {
  SI_REQUIRE(view.waiting != nullptr);
  double total = 0.0;
  switch (metric_) {
    case Metric::kBsld:
    case Metric::kMaxBsld:
      // A Δt idle raises every waiting job's bsld by ~Δt / max(est_j, 10).
      for (const Job* j : *view.waiting)
        total += max_interval_ / std::max(j->estimate, 10.0);
      break;
    case Metric::kWait:
      // A Δt idle raises every waiting job's wait by Δt; express the sum in
      // hours to keep the raw magnitude in the same ballpark as the bsld
      // variant before soft normalization.
      total = static_cast<double>(view.waiting->size()) * max_interval_ /
              3600.0;
      break;
  }
  return total;
}

void FeatureBuilder::append_manual(const InspectionView& view,
                                   std::vector<double>& out) const {
  const Job& job = *view.job;
  out.push_back(norm_wait(view.job_wait));
  out.push_back(norm_estimate(job.estimate));
  out.push_back(norm_procs(job.procs));
  out.push_back(view.max_rejection_times > 0
                    ? static_cast<double>(view.job_rejections) /
                          static_cast<double>(view.max_rejection_times)
                    : 0.0);
  const double qd = raw_queue_delay(view);
  out.push_back(qd / (qd + scales_.queue_delay_scale));
  out.push_back(static_cast<double>(view.free_procs) /
                static_cast<double>(view.total_procs));
  out.push_back(view.runnable() ? 1.0 : 0.0);
  const double bf = view.backfill_enabled
                        ? static_cast<double>(view.backfillable_jobs)
                        : 0.0;
  out.push_back(bf / (bf + scales_.backfill_scale));
}

void FeatureBuilder::append_compacted(const InspectionView& view,
                                      std::vector<double>& out) const {
  const Job& job = *view.job;
  out.push_back(norm_wait(view.job_wait));
  out.push_back(norm_estimate(job.estimate));
  out.push_back(norm_procs(job.procs));
  out.push_back(static_cast<double>(view.free_procs) /
                static_cast<double>(view.total_procs));
  out.push_back(view.runnable() ? 1.0 : 0.0);
}

void FeatureBuilder::append_native(const InspectionView& view,
                                   std::vector<double>& out) const {
  append_compacted(view, out);
  // The raw environment: individual attributes of up to kNativeQueueJobs
  // waiting jobs, zero-padded — no aggregation, mimicking the "feed the raw
  // state and let the network figure it out" strategy the paper ablates.
  const auto& waiting = *view.waiting;
  for (int i = 0; i < kNativeQueueJobs; ++i) {
    if (static_cast<std::size_t>(i) < waiting.size()) {
      const Job& j = *waiting[static_cast<std::size_t>(i)];
      out.push_back(norm_wait(view.now - j.submit));
      out.push_back(norm_estimate(j.estimate));
      out.push_back(norm_procs(j.procs));
    } else {
      out.push_back(0.0);
      out.push_back(0.0);
      out.push_back(0.0);
    }
  }
}

std::vector<double> FeatureBuilder::build(const InspectionView& view) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(feature_count()));
  build_into(view, out);
  return out;
}

void FeatureBuilder::build_into(const InspectionView& view,
                                std::vector<double>& out) const {
  SI_REQUIRE(view.job != nullptr);
  SI_REQUIRE(view.waiting != nullptr);
  SI_REQUIRE(view.total_procs > 0);
  out.clear();
  switch (mode_) {
    case FeatureMode::kManual:
      append_manual(view, out);
      break;
    case FeatureMode::kCompacted:
      append_compacted(view, out);
      break;
    case FeatureMode::kNative:
      append_native(view, out);
      break;
  }
  SI_ENSURE(static_cast<int>(out.size()) == feature_count());
}

}  // namespace si
