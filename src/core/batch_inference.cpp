#include "core/batch_inference.hpp"

#include "common/check.hpp"

namespace si {

PolicyBatch::PolicyBatch(int obs_width) : obs_width_(obs_width) {
  SI_REQUIRE(obs_width >= 1);
}

void PolicyBatch::clear() {
  rows_ = 0;
  block_.clear();
}

void PolicyBatch::push_row(std::span<const double> obs) {
  SI_REQUIRE(static_cast<int>(obs.size()) == obs_width_);
  block_.insert(block_.end(), obs.begin(), obs.end());
  ++rows_;
}

std::span<const double> PolicyBatch::row(int i) const {
  SI_REQUIRE(i >= 0 && i < rows_);
  return std::span<const double>(block_).subspan(
      static_cast<std::size_t>(i) * static_cast<std::size_t>(obs_width_),
      static_cast<std::size_t>(obs_width_));
}

std::span<const double> PolicyBatch::infer(const Mlp& net) {
  SI_REQUIRE(rows_ >= 1);
  SI_REQUIRE(net.input_size() == obs_width_);
  SI_REQUIRE(net.output_size() == 1);
  if (spans_ != nullptr) {
    // Guarded so the untraced hot path (VecEnv ticks) never pays the
    // args-vector allocation.
    ScopedSpan span(spans_, "forward_batch", span_cat_, span_tid_,
                    {{"rows", std::to_string(rows_)}});
    net.forward_batch(block_, rows_, ws_);
  } else {
    net.forward_batch(block_, rows_, ws_);
  }
  return std::span<const double>(ws_.activations.back())
      .first(static_cast<std::size_t>(rows_));
}

}  // namespace si
