#include "core/rl_inspector.hpp"

#include "common/check.hpp"

namespace si {

RlInspector::RlInspector(const ActorCritic& ac, const FeatureBuilder& features,
                         InspectorMode mode, Rng* rng)
    : ac_(ac), features_(features), mode_(mode), rng_(rng) {
  SI_REQUIRE(ac_.obs_size() == features_.feature_count());
  SI_REQUIRE(mode_ != InspectorMode::kSample || rng_ != nullptr);
}

bool RlInspector::reject(const InspectionView& view) {
  features_.build_into(view, obs_scratch_);
  int action = 0;
  double log_prob = 0.0;
  if (mode_ == InspectorMode::kSample) {
    const SampledAction sampled = ac_.sample(obs_scratch_, *rng_, ws_);
    action = sampled.action;
    log_prob = sampled.log_prob;
  } else {
    action = ac_.act_greedy(obs_scratch_, ws_);
  }

  if (recorder_ != nullptr) recorder_->record(obs_scratch_, action == 1);
  if (trajectory_ != nullptr) {
    // Recorded steps own their observation vector; only this path copies.
    Step step;
    step.action = action;
    step.log_prob = log_prob;
    step.obs = obs_scratch_;
    trajectory_->steps.push_back(std::move(step));
  }
  return action == 1;
}

RandomInspector::RandomInspector(double reject_prob, Rng& rng)
    : reject_prob_(reject_prob), rng_(rng) {
  SI_REQUIRE(reject_prob_ >= 0.0 && reject_prob_ <= 1.0);
}

bool RandomInspector::reject(const InspectionView&) {
  return rng_.bernoulli(reject_prob_);
}

}  // namespace si
