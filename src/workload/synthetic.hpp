// Statistical trace synthesizers calibrated to the paper's Table 2.
//
// The paper evaluates on Parallel Workloads Archive logs (SDSC-SP2, CTC-SP2,
// HPC2N) that are not redistributable with this repository. SchedInspector's
// learning signal depends on workload *statistics* — arrival density, runtime
// and size distributions — which is precisely what Table 2 characterizes. We
// therefore synthesize traces with:
//   * heavy-tailed (lognormal) runtimes,
//   * serial + power-of-two-biased lognormal job sizes,
//   * bursty (gamma) inter-arrivals modulated by a daily cycle,
//   * Zipf-distributed users and categorical queues (for the Slurm
//     multifactor experiment, §4.5),
// and calibrate the sample means of interval / estimate / size to the exact
// Table 2 row. Real archive SWF files can replace these via load_swf_file().
#pragma once

#include <cstdint>
#include <string>

#include "workload/trace.hpp"

namespace si {

/// Shape and calibration targets of one synthesized trace.
struct SyntheticTraceSpec {
  std::string name;
  int cluster_procs = 128;

  // Table 2 calibration targets (sample means after generation).
  double target_mean_interarrival = 1000.0;  ///< seconds
  double target_mean_estimate = 7000.0;      ///< seconds
  double target_mean_procs = 11.0;

  // Distribution shape knobs.
  double serial_prob = 0.25;      ///< fraction of single-processor jobs
  double pow2_prob = 0.7;         ///< parallel sizes rounded to powers of two
  double size_log2_sigma = 1.6;   ///< spread of log2(parallel size)
  double runtime_log_sigma = 1.2; ///< lognormal sigma of runtimes
  /// Couples runtime to job size (run ~ procs^exponent * lognormal): real
  /// archive logs show wide jobs running longer, which concentrates
  /// node-seconds and drives the cluster utilization the paper reports in
  /// Table 5. The mean-estimate calibration re-normalizes afterwards, so
  /// Table 2 means are unaffected.
  double size_runtime_exponent = 0.8;
  double estimate_slack = 2.0;    ///< estimates in [run, run*(1+slack)]
  double burstiness_shape = 0.55; ///< gamma shape of gaps (<1 => bursty)
  double daily_cycle_depth = 0.5; ///< day/night submission-rate swing
  double peak_hour = 13.0;

  // User / queue annotation (Slurm experiment).
  int num_users = 48;
  int num_queues = 4;
  double user_zipf_s = 1.2;       ///< Zipf exponent of per-user activity
};

/// Generates `num_jobs` jobs per the spec, calibrated so the sample means of
/// inter-arrival, estimate, and processor count land on the spec targets
/// (size within a small tolerance — it is discrete). Deterministic in seed.
Trace generate_synthetic(const SyntheticTraceSpec& spec, std::size_t num_jobs,
                         std::uint64_t seed);

/// Returns the spec matching a Table 2 row: "SDSC-SP2", "CTC-SP2", "HPC2N".
/// Throws std::out_of_range for unknown names ("Lublin" has its own model).
SyntheticTraceSpec table2_spec(const std::string& name);

}  // namespace si
