// The Lublin–Feitelson (JPDC 2003) synthetic workload model — the generative
// model behind the paper's "Lublin" trace (Table 2: 256 processors, mean
// interval 771 s, mean estimate 4862 s, mean size 22).
//
// We implement the model's three structural components with the published
// parameterization and then calibrate first moments to Table 2:
//   * job size: mixture of serial jobs and parallel jobs whose log2-size is
//     drawn from a two-stage uniform, rounded to a power of two with high
//     probability;
//   * runtime: hyper-gamma distribution whose mixing probability depends
//     linearly on the job size (bigger jobs run longer);
//   * arrivals: gamma-distributed inter-arrival "rhythm" modulated by a
//     sinusoidal daily cycle (peak at mid-day, trough at night).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace si {

/// Parameters of the Lublin model. Defaults follow the published batch-job
/// parameterization; the scale knobs calibrate moments to Table 2.
struct LublinParams {
  int cluster_procs = 256;

  // --- size component ---
  double serial_prob = 0.244;   ///< fraction of 1-processor jobs
  double pow2_prob = 0.576;     ///< parallel jobs rounded to a power of two
  double ulow = 0.8;            ///< log2 lower bound for parallel sizes
  double umed_offset = 2.5;     ///< umed = uhi - offset (in [1.5, 3.5])
  double uprob = 0.86;          ///< weight of the [ulow, umed] first stage

  // --- runtime component (hyper-gamma, seconds) ---
  double a1 = 4.2;    ///< shape of the short-job gamma
  double b1 = 0.94;   ///< scale of the short-job gamma (log-ish seconds)
  double a2 = 312.0;  ///< shape of the long-job gamma
  double b2 = 0.03;   ///< scale of the long-job gamma
  double pa = 0.0054; ///< slope of p(size): p = pa * size + pb
  double pb = 0.78;   ///< intercept of p(size)
  double runtime_scale = 1.0;  ///< multiplicative calibration knob
  /// Extra size-runtime coupling (run *= size^exponent). The published
  /// hyper-gamma mixing already ties runtime weakly to size; this knob
  /// strengthens the tie so node-second concentration — and therefore the
  /// simulated cluster utilization — matches the paper's Table 5 (~61%
  /// for the Lublin trace under SJF without backfilling).
  double size_coupling_exponent = 0.55;

  // --- arrival component ---
  double arrival_shape = 10.23;     ///< gamma shape of the inter-arrival rhythm
  double mean_interarrival = 771.0; ///< target mean inter-arrival, seconds
  double daily_cycle_depth = 0.6;   ///< 0 = flat, 1 = full day/night swing
  double peak_hour = 13.0;          ///< local hour of peak submission rate

  // --- estimate component ---
  /// User estimates are the runtime inflated by a random factor in
  /// [1, 1 + estimate_slack], then rounded up to the next 5 minutes —
  /// mimicking archive walltime requests.
  double estimate_slack = 2.0;
};

/// Generates `num_jobs` jobs from the Lublin model. Deterministic given the
/// seed. The generated trace is named "Lublin".
Trace generate_lublin(const LublinParams& params, std::size_t num_jobs,
                      std::uint64_t seed);

/// Draws a single job size from the model's size component (exposed for
/// tests).
int lublin_sample_size(const LublinParams& params, Rng& rng);

/// Draws a runtime in seconds for a job of the given size (exposed for
/// tests).
double lublin_sample_runtime(const LublinParams& params, int size, Rng& rng);

}  // namespace si
