// Standard Workload Format (SWF) reader/writer. SWF is the Parallel
// Workloads Archive interchange format the paper's traces ship in; this
// module lets real archive logs (SDSC-SP2, CTC-SP2, HPC2N, Lublin) drop into
// the reproduction unchanged, and round-trips our synthesized traces.
//
// Field layout (1-based, per the archive spec): 1 job number, 2 submit time,
// 3 wait time, 4 run time, 5 allocated processors, 6 average CPU time,
// 7 used memory, 8 requested processors, 9 requested time, 10 requested
// memory, 11 status, 12 user id, 13 group id, 14 executable, 15 queue,
// 16 partition, 17 preceding job, 18 think time. Missing values are -1.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace si {

/// Options controlling how SWF records map onto our Job model.
struct SwfOptions {
  /// Cluster size to assume when the header carries no MaxProcs comment.
  int default_cluster_procs = 0;
  /// Drop jobs with non-positive runtime or processor count (cancelled /
  /// malformed records). The archive recommends this filtering.
  bool drop_invalid = true;
};

/// Parses SWF text into a Trace. Honors `; MaxProcs:` / `; MaxNodes:`
/// header comments for the cluster size; otherwise requires
/// options.default_cluster_procs > 0. Jobs whose requested processor count
/// exceeds the cluster size are clamped to it (a few archive logs contain
/// such records). Throws std::runtime_error on malformed input.
Trace read_swf(std::istream& in, const std::string& name,
               const SwfOptions& options = {});

/// Convenience: parse from a string.
Trace read_swf_text(const std::string& text, const std::string& name,
                    const SwfOptions& options = {});

/// Loads an SWF file from disk. Throws std::runtime_error when unreadable.
Trace load_swf_file(const std::string& path, const SwfOptions& options = {});

/// Serializes a trace to SWF, emitting a MaxProcs header comment. Fields we
/// do not model are written as -1.
void write_swf(std::ostream& out, const Trace& trace);

/// Convenience: serialize to a string.
std::string write_swf_text(const Trace& trace);

}  // namespace si
