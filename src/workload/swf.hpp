// Standard Workload Format (SWF) reader/writer. SWF is the Parallel
// Workloads Archive interchange format the paper's traces ship in; this
// module lets real archive logs (SDSC-SP2, CTC-SP2, HPC2N, Lublin) drop into
// the reproduction unchanged, and round-trips our synthesized traces.
//
// Field layout (1-based, per the archive spec): 1 job number, 2 submit time,
// 3 wait time, 4 run time, 5 allocated processors, 6 average CPU time,
// 7 used memory, 8 requested processors, 9 requested time, 10 requested
// memory, 11 status, 12 user id, 13 group id, 14 executable, 15 queue,
// 16 partition, 17 preceding job, 18 think time. Missing values are -1.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace si {

/// How to treat malformed records. Real archive logs (and real production
/// accounting feeds) contain unparsable lines and negative fields; lenient
/// ingestion degrades gracefully instead of dying on line one.
enum class SwfMode {
  kStrict,   ///< throw std::runtime_error (with a line number) on the first
             ///< malformed record
  kLenient,  ///< skip unusable records, repair repairable fields, and tally
             ///< everything in an SwfIngestReport
};

/// Options controlling how SWF records map onto our Job model.
struct SwfOptions {
  /// Cluster size to assume when the header carries no MaxProcs comment.
  int default_cluster_procs = 0;
  /// Drop jobs with non-positive runtime or processor count (cancelled /
  /// malformed records). The archive recommends this filtering.
  bool drop_invalid = true;
  /// Malformed-record handling (strict by default, as before).
  SwfMode mode = SwfMode::kStrict;
};

/// Per-file summary of what ingestion did — populated when a report pointer
/// is passed to the readers (most useful in lenient mode).
struct SwfIngestReport {
  std::size_t record_lines = 0;     ///< non-comment, non-blank lines seen
  std::size_t jobs = 0;             ///< records that became trace jobs
  std::size_t skipped = 0;          ///< unusable records dropped (lenient)
  std::size_t repaired = 0;         ///< records with fields fixed up (lenient)
  std::size_t dropped_invalid = 0;  ///< records filtered by drop_invalid
  /// First few per-line error messages ("line 17: unparsable record").
  std::vector<std::string> errors;

  /// One-line human-readable summary of the counters.
  std::string summary() const;
};

/// Parses SWF text into a Trace. Honors `; MaxProcs:` / `; MaxNodes:`
/// header comments for the cluster size; otherwise requires
/// options.default_cluster_procs > 0. Jobs whose requested processor count
/// exceeds the cluster size are clamped to it (a few archive logs contain
/// such records). Strict mode throws std::runtime_error on malformed input;
/// lenient mode recovers and tallies into `report` (may be null).
Trace read_swf(std::istream& in, const std::string& name,
               const SwfOptions& options = {},
               SwfIngestReport* report = nullptr);

/// Convenience: parse from a string.
Trace read_swf_text(const std::string& text, const std::string& name,
                    const SwfOptions& options = {},
                    SwfIngestReport* report = nullptr);

/// Loads an SWF file from disk. Throws std::runtime_error when unreadable.
Trace load_swf_file(const std::string& path, const SwfOptions& options = {},
                    SwfIngestReport* report = nullptr);

/// Serializes a trace to SWF, emitting a MaxProcs header comment. Fields we
/// do not model are written as -1.
void write_swf(std::ostream& out, const Trace& trace);

/// Convenience: serialize to a string.
std::string write_swf_text(const Trace& trace);

}  // namespace si
