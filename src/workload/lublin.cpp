#include "workload/lublin.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace si {

namespace {

// Rounds a parallel size to the nearest power of two, clamped to the
// cluster.
int round_pow2(double raw, int cluster_procs) {
  const double l = std::log2(std::max(raw, 1.0));
  const int exp = static_cast<int>(std::lround(l));
  const double size = std::exp2(static_cast<double>(std::max(exp, 0)));
  return static_cast<int>(
      std::clamp(size, 1.0, static_cast<double>(cluster_procs)));
}

}  // namespace

int lublin_sample_size(const LublinParams& params, Rng& rng) {
  SI_REQUIRE(params.cluster_procs >= 2);
  if (rng.bernoulli(params.serial_prob)) return 1;
  const double uhi = std::log2(static_cast<double>(params.cluster_procs));
  const double umed =
      std::max(params.ulow + 0.1, uhi - params.umed_offset);
  // Two-stage log-uniform.
  const double log2size = rng.bernoulli(params.uprob)
                              ? rng.uniform(params.ulow, umed)
                              : rng.uniform(umed, uhi);
  const double raw = std::exp2(log2size);
  if (rng.bernoulli(params.pow2_prob)) {
    return round_pow2(raw, params.cluster_procs);
  }
  const int size = static_cast<int>(std::lround(raw));
  return std::clamp(size, 1, params.cluster_procs);
}

double lublin_sample_runtime(const LublinParams& params, int size, Rng& rng) {
  SI_REQUIRE(size >= 1);
  // Hyper-gamma on the log2 scale, as in the published model: the mixing
  // probability of the short-job component decreases with job size.
  const double p = std::clamp(
      params.pb - params.pa * static_cast<double>(size), 0.0, 1.0);
  const double x = rng.bernoulli(p)
                       ? rng.gamma(params.a1, params.b1)
                       : rng.gamma(params.a2, params.b2);
  const double coupling =
      std::pow(static_cast<double>(size), params.size_coupling_exponent);
  const double seconds = std::exp2(x) * coupling * params.runtime_scale;
  return std::clamp(seconds, 1.0, 7.0 * 24.0 * 3600.0);
}

Trace generate_lublin(const LublinParams& params, std::size_t num_jobs,
                      std::uint64_t seed) {
  SI_REQUIRE(num_jobs > 0);
  Rng rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(num_jobs);

  const double gamma_scale =
      params.mean_interarrival / params.arrival_shape;
  double now = 0.0;
  for (std::size_t i = 0; i < num_jobs; ++i) {
    // Daily-cycle modulation: divide the drawn gap by the instantaneous
    // submission-rate multiplier (>= 1 - depth, <= 1 + depth).
    const double base_gap =
        rng.gamma(params.arrival_shape, gamma_scale);
    const double hour = std::fmod(now / 3600.0, 24.0);
    const double rate =
        1.0 + params.daily_cycle_depth *
                  std::cos((hour - params.peak_hour) * 2.0 * M_PI / 24.0);
    now += base_gap / std::max(rate, 0.05);

    Job j;
    j.id = static_cast<std::int64_t>(i);
    j.submit = now;
    j.procs = lublin_sample_size(params, rng);
    j.run = lublin_sample_runtime(params, j.procs, rng);
    const double slack = rng.uniform(1.0, 1.0 + params.estimate_slack);
    // Walltime requests come in 5-minute granules.
    j.estimate = std::ceil(j.run * slack / 300.0) * 300.0;
    j.user = static_cast<int>(rng.uniform_index(64));
    j.queue = static_cast<int>(rng.uniform_index(4));
    jobs.push_back(j);
  }
  return Trace("Lublin", params.cluster_procs, std::move(jobs));
}

}  // namespace si
