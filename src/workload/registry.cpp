#include "workload/registry.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "workload/lublin.hpp"
#include "workload/synthetic.hpp"

namespace si {

const std::vector<std::string>& table2_trace_names() {
  static const std::vector<std::string> names = {"CTC-SP2", "SDSC-SP2",
                                                 "HPC2N", "Lublin"};
  return names;
}

namespace {

Trace make_lublin(std::size_t num_jobs, std::uint64_t seed) {
  LublinParams params;  // Table 2 row: 256 procs, 771 s, 4862 s, 22 procs
  params.cluster_procs = 256;
  params.mean_interarrival = 771.0;

  // Calibrate the runtime scale against the generated sample itself: the
  // hyper-gamma runtime distribution is heavy-tailed, so a pilot-based
  // scale would leave the production sample mean far off target. Scaling
  // runs and estimates by one factor preserves the distribution shape while
  // landing the sample-mean estimate exactly on the Table 2 value.
  constexpr double kTargetMeanEstimate = 4862.0;
  const Trace raw = generate_lublin(params, num_jobs, seed);
  const double raw_mean = raw.stats().mean_estimate;
  SI_ENSURE(raw_mean > 0.0);
  const double scale = kTargetMeanEstimate / raw_mean;
  std::vector<Job> jobs = raw.jobs();
  for (Job& j : jobs) {
    j.run *= scale;
    j.estimate *= scale;
  }
  return Trace("Lublin", params.cluster_procs, std::move(jobs));
}

}  // namespace

Trace make_trace(const std::string& name, std::size_t num_jobs,
                 std::uint64_t seed) {
  SI_REQUIRE(num_jobs >= 2);
  if (name == "Lublin") return make_lublin(num_jobs, seed);
  return generate_synthetic(table2_spec(name), num_jobs, seed);
}

}  // namespace si
