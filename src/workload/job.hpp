// The batch-job model. A Job carries exactly the attributes the paper's
// simulator distinguishes: submission time, *actual* execution time (used to
// compute finish times), *estimated* execution time (used by schedulers and
// by SchedInspector), and the requested processor count, plus the user/queue
// annotations needed by the Slurm multifactor experiment (§4.5).
#pragma once

#include <cstdint>
#include <limits>

namespace si {

/// Simulation time in seconds since trace start.
using Time = double;

/// One batch job as read from an SWF trace or produced by a generator.
struct Job {
  std::int64_t id = 0;      ///< trace-unique job id
  Time submit = 0.0;        ///< submission (arrival) time, seconds
  Time run = 0.0;           ///< actual execution time, seconds (exe_j)
  Time estimate = 0.0;      ///< user-estimated execution time, seconds (est_j)
  int procs = 1;            ///< requested processors (res_j)
  int user = 0;             ///< submitting user id (Slurm fairshare factor)
  int queue = 0;            ///< queue / partition id (Slurm partition factor)

  /// Estimated node-seconds area (est_j * res_j), the SAF priority input.
  double estimated_area() const { return estimate * static_cast<double>(procs); }

  /// Estimated time-per-node ratio (est_j / res_j), the SRF priority input.
  double estimated_ratio() const {
    return estimate / static_cast<double>(procs);
  }
};

/// Scheduling outcome of one job within a simulated sequence.
struct JobRecord {
  std::int64_t id = 0;
  Time submit = 0.0;
  Time start = -1.0;        ///< start time; < 0 while not yet started
  Time finish = -1.0;       ///< completion time (submit + wait + run)
  Time run = 0.0;           ///< actual execution time used
  int procs = 0;
  int rejections = 0;       ///< times SchedInspector rejected this job
  int requeues = 0;         ///< failed attempts that re-entered the queue
  bool killed = false;      ///< failed past the requeue budget (fault model)
  bool wall_killed = false; ///< terminated at its estimate wall (fault model)

  bool started() const { return start >= 0.0; }

  Time wait() const { return started() ? start - submit : 0.0; }

  /// Bounded slowdown with the paper's 10-second interactivity threshold:
  /// max((wait + run) / max(run, 10), 1).
  double bounded_slowdown() const {
    constexpr double kThreshold = 10.0;
    if (!started()) return 1.0;
    const double denom = run > kThreshold ? run : kThreshold;
    const double sld = (wait() + run) / denom;
    return sld > 1.0 ? sld : 1.0;
  }
};

/// Sentinel for "no time" / unset time values.
inline constexpr Time kNoTime = -std::numeric_limits<Time>::infinity();

}  // namespace si
