// Central registry of the paper's four evaluation traces (Table 2). Returns
// calibrated synthetic traces by name; the Lublin trace additionally runs a
// pilot-based calibration of the hyper-gamma runtime scale so its mean
// estimate lands on the Table 2 value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace si {

/// The four trace names of Table 2, in paper order.
const std::vector<std::string>& table2_trace_names();

/// Builds the named trace ("CTC-SP2", "SDSC-SP2", "HPC2N", "Lublin") with
/// `num_jobs` jobs. Deterministic in (name, num_jobs, seed). Throws
/// std::out_of_range for unknown names.
Trace make_trace(const std::string& name, std::size_t num_jobs,
                 std::uint64_t seed);

/// Default trace length used by benches and examples: long enough that 50
/// disjoint-ish 256-job windows fit in the 80% test split.
inline constexpr std::size_t kDefaultTraceJobs = 8000;

}  // namespace si
