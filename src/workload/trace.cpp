#include "workload/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace si {

Trace::Trace(std::string name, int cluster_procs, std::vector<Job> jobs)
    : name_(std::move(name)),
      cluster_procs_(cluster_procs),
      jobs_(std::move(jobs)) {
  SI_REQUIRE(cluster_procs_ > 0);
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     if (a.submit != b.submit) return a.submit < b.submit;
                     return a.id < b.id;
                   });
  rebase_sequence(jobs_);
  for (const Job& j : jobs_) {
    SI_REQUIRE(j.procs > 0);
    SI_REQUIRE(j.procs <= cluster_procs_);
    SI_REQUIRE(j.run >= 0.0);
    SI_REQUIRE(j.estimate >= 0.0);
  }
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.jobs = jobs_.size();
  s.cluster_procs = cluster_procs_;
  if (jobs_.empty()) return s;
  double sum_est = 0.0;
  double sum_procs = 0.0;
  double sum_run = 0.0;
  for (const Job& j : jobs_) {
    sum_est += j.estimate;
    sum_procs += j.procs;
    sum_run += j.run;
    s.max_estimate = std::max(s.max_estimate, j.estimate);
    s.max_procs = std::max(s.max_procs, j.procs);
  }
  const auto n = static_cast<double>(jobs_.size());
  s.mean_estimate = sum_est / n;
  s.mean_procs = sum_procs / n;
  s.mean_run = sum_run / n;
  if (jobs_.size() >= 2) {
    const double span = jobs_.back().submit - jobs_.front().submit;
    s.mean_interarrival = span / static_cast<double>(jobs_.size() - 1);
  }
  return s;
}

std::vector<Job> Trace::window(std::size_t start_index,
                               std::size_t length) const {
  SI_REQUIRE(length > 0);
  SI_REQUIRE(start_index + length <= jobs_.size());
  std::vector<Job> out(jobs_.begin() + static_cast<std::ptrdiff_t>(start_index),
                       jobs_.begin() +
                           static_cast<std::ptrdiff_t>(start_index + length));
  rebase_sequence(out);
  return out;
}

std::vector<Job> Trace::sample_window(Rng& rng, std::size_t length) const {
  SI_REQUIRE(length > 0);
  SI_REQUIRE(length <= jobs_.size());
  const std::size_t max_start = jobs_.size() - length;
  const auto start = static_cast<std::size_t>(rng.uniform_index(max_start + 1));
  return window(start, length);
}

std::pair<Trace, Trace> Trace::split(double fraction) const {
  SI_REQUIRE(fraction > 0.0 && fraction < 1.0);
  const auto cut = static_cast<std::size_t>(
      fraction * static_cast<double>(jobs_.size()));
  SI_REQUIRE(cut > 0 && cut < jobs_.size());
  std::vector<Job> head(jobs_.begin(), jobs_.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<Job> tail(jobs_.begin() + static_cast<std::ptrdiff_t>(cut), jobs_.end());
  return {Trace(name_ + "-train", cluster_procs_, std::move(head)),
          Trace(name_ + "-test", cluster_procs_, std::move(tail))};
}

void rebase_sequence(std::vector<Job>& jobs) {
  if (jobs.empty()) return;
  const Time base = jobs.front().submit;
  std::int64_t next_id = 0;
  for (Job& j : jobs) {
    j.submit -= base;
    j.id = next_id++;
  }
}

}  // namespace si
