// A job trace: an ordered sequence of jobs plus the cluster geometry it was
// collected on. Provides the statistics the paper reports in Table 2, the
// random 128/256-job window sampling used for training trajectories and test
// evaluation (§4.1, §4.4), and the 20%/80% train/test split (§4.4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/job.hpp"

namespace si {

/// Aggregate trace characteristics as reported in the paper's Table 2.
struct TraceStats {
  std::size_t jobs = 0;
  int cluster_procs = 0;
  double mean_interarrival = 0.0;  ///< seconds between consecutive submits
  double mean_estimate = 0.0;      ///< mean est_j, seconds
  double mean_procs = 0.0;         ///< mean res_j
  double mean_run = 0.0;           ///< mean actual runtime
  double max_estimate = 0.0;
  int max_procs = 0;
};

/// An immutable batch-job trace bound to a cluster size.
class Trace {
 public:
  Trace() = default;
  /// Jobs need not be pre-sorted; they are sorted by submit time (ties by
  /// id) and re-based so the first submission happens at t = 0.
  Trace(std::string name, int cluster_procs, std::vector<Job> jobs);

  const std::string& name() const { return name_; }
  int cluster_procs() const { return cluster_procs_; }
  const std::vector<Job>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  TraceStats stats() const;

  /// Extracts `length` consecutive jobs starting at `start_index`, re-based
  /// so the window's first submission is t = 0. Requires the window to fit.
  std::vector<Job> window(std::size_t start_index, std::size_t length) const;

  /// Samples a uniformly random window of `length` jobs. Requires
  /// length <= size().
  std::vector<Job> sample_window(Rng& rng, std::size_t length) const;

  /// Splits into (first `fraction` of jobs, remainder) — the paper trains on
  /// the first 20% and tests on the remaining 80%.
  std::pair<Trace, Trace> split(double fraction) const;

 private:
  std::string name_;
  int cluster_procs_ = 0;
  std::vector<Job> jobs_;
};

/// Re-bases a job sequence in place so its earliest submit time is zero and
/// ids are re-numbered 0..n-1 in submit order.
void rebase_sequence(std::vector<Job>& jobs);

}  // namespace si
