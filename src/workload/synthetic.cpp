#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace si {

namespace {

// Samples a Zipf-distributed rank in [0, n) with exponent s via inverse
// transform over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cumulative_(static_cast<std::size_t>(n)) {
    SI_REQUIRE(n > 0);
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cumulative_[static_cast<std::size_t>(k)] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  int sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

// Draws one job size given a log2 mean; serial / power-of-two structure per
// the spec.
int sample_size(const SyntheticTraceSpec& spec, double log2_mu, Rng& rng) {
  if (rng.bernoulli(spec.serial_prob)) return 1;
  const double log2_size = rng.normal(log2_mu, spec.size_log2_sigma);
  double raw = std::exp2(log2_size);
  raw = std::clamp(raw, 1.0, static_cast<double>(spec.cluster_procs));
  if (rng.bernoulli(spec.pow2_prob)) {
    const int exp = static_cast<int>(std::lround(std::log2(raw)));
    raw = std::exp2(static_cast<double>(std::max(exp, 0)));
  }
  return static_cast<int>(
      std::clamp(std::lround(raw), 1L,
                 static_cast<long>(spec.cluster_procs)));
}

// Calibrates the log2 mean of the parallel-size distribution so the overall
// sample-mean size lands on the target, using bisection over a pilot sample
// drawn with a dedicated RNG stream (so the calibration does not perturb the
// main generation stream).
double calibrate_size_mu(const SyntheticTraceSpec& spec, Rng& pilot_rng) {
  const double uhi = std::log2(static_cast<double>(spec.cluster_procs));
  double lo = 0.0;
  double hi = uhi;
  double mu = uhi / 2.0;
  constexpr int kPilot = 4000;
  for (int round = 0; round < 18; ++round) {
    mu = 0.5 * (lo + hi);
    Rng r = pilot_rng.split();
    double sum = 0.0;
    for (int i = 0; i < kPilot; ++i)
      sum += sample_size(spec, mu, r);
    const double mean = sum / kPilot;
    if (mean < spec.target_mean_procs)
      lo = mu;
    else
      hi = mu;
  }
  return mu;
}

}  // namespace

Trace generate_synthetic(const SyntheticTraceSpec& spec, std::size_t num_jobs,
                         std::uint64_t seed) {
  SI_REQUIRE(num_jobs >= 2);
  SI_REQUIRE(spec.cluster_procs >= 2);
  SI_REQUIRE(spec.target_mean_interarrival > 0.0);
  SI_REQUIRE(spec.target_mean_estimate > 0.0);
  SI_REQUIRE(spec.target_mean_procs >= 1.0);

  Rng rng(seed);
  Rng pilot = rng.split();
  const double size_mu = calibrate_size_mu(spec, pilot);
  const ZipfSampler user_sampler(spec.num_users, spec.user_zipf_s);

  struct Raw {
    double gap;
    double run;
    double slack;
    int procs;
    int user;
    int queue;
  };
  std::vector<Raw> raw(num_jobs);

  double now = 0.0;
  for (Raw& r : raw) {
    const double base_gap =
        rng.gamma(spec.burstiness_shape, 1.0 / spec.burstiness_shape);
    const double hour = std::fmod(now / 3600.0, 24.0);
    const double rate =
        1.0 + spec.daily_cycle_depth *
                  std::cos((hour - spec.peak_hour) * 2.0 * M_PI / 24.0);
    r.gap = base_gap / std::max(rate, 0.05);
    now += r.gap * spec.target_mean_interarrival;  // provisional scale

    r.procs = sample_size(spec, size_mu, rng);
    r.run = std::exp(rng.normal(0.0, spec.runtime_log_sigma)) *
            std::pow(static_cast<double>(r.procs),
                     spec.size_runtime_exponent);
    r.slack = rng.uniform(1.0, 1.0 + spec.estimate_slack);
    r.user = user_sampler.sample(rng);
    r.queue = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(spec.num_queues)));
  }

  // Calibrate gaps so the sample-mean inter-arrival is exactly on target
  // (the first job submits at t=0, so only gaps after it count).
  double gap_sum = 0.0;
  for (std::size_t i = 1; i < num_jobs; ++i) gap_sum += raw[i].gap;
  const double gap_scale =
      spec.target_mean_interarrival * static_cast<double>(num_jobs - 1) /
      std::max(gap_sum, 1e-12);

  // Calibrate runtimes so the sample-mean *estimate* (run * slack, before
  // walltime rounding) is on target.
  double est_sum = 0.0;
  for (const Raw& r : raw) est_sum += r.run * r.slack;
  const double run_scale = spec.target_mean_estimate *
                           static_cast<double>(num_jobs) /
                           std::max(est_sum, 1e-12);

  std::vector<Job> jobs;
  jobs.reserve(num_jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < num_jobs; ++i) {
    if (i > 0) t += raw[i].gap * gap_scale;
    Job j;
    j.id = static_cast<std::int64_t>(i);
    j.submit = t;
    j.run = std::clamp(raw[i].run * run_scale, 1.0, 14.0 * 24.0 * 3600.0);
    j.estimate = j.run * raw[i].slack;
    j.procs = raw[i].procs;
    j.user = raw[i].user;
    j.queue = raw[i].queue;
    jobs.push_back(j);
  }
  return Trace(spec.name, spec.cluster_procs, std::move(jobs));
}

SyntheticTraceSpec table2_spec(const std::string& name) {
  SyntheticTraceSpec spec;
  spec.name = name;
  if (name == "CTC-SP2") {
    spec.cluster_procs = 338;
    spec.target_mean_interarrival = 379.0;
    spec.target_mean_estimate = 11277.0;
    spec.target_mean_procs = 11.0;
    spec.num_users = 96;
  } else if (name == "SDSC-SP2") {
    spec.cluster_procs = 128;
    spec.target_mean_interarrival = 1055.0;
    spec.target_mean_estimate = 6687.0;
    spec.target_mean_procs = 11.0;
    spec.num_users = 64;
  } else if (name == "HPC2N") {
    spec.cluster_procs = 240;
    spec.target_mean_interarrival = 538.0;
    spec.target_mean_estimate = 17024.0;
    spec.target_mean_procs = 6.0;
    spec.serial_prob = 0.35;
    spec.num_users = 32;
    // HPC2N is the lightly-loaded trace (paper Table 5: ~24% utilization
    // under SJF); weaker size-runtime coupling keeps it that way.
    spec.size_runtime_exponent = 0.45;
  } else {
    throw std::out_of_range("unknown Table 2 trace: " + name);
  }
  return spec;
}

}  // namespace si
