#include "workload/swf.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/check.hpp"

namespace si {

namespace {

// Extracts "; MaxProcs: N" style header values; returns 0 when absent.
int parse_header_procs(std::string_view line) {
  for (const char* key : {"MaxProcs:", "MaxNodes:"}) {
    const auto pos = line.find(key);
    if (pos == std::string_view::npos) continue;
    std::string_view rest = line.substr(pos + std::string_view(key).size());
    while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front())))
      rest.remove_prefix(1);
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(rest.data(), rest.data() + rest.size(), value);
    if (ec == std::errc() && ptr != rest.data() && value > 0) return value;
  }
  return 0;
}

// Splits a whitespace-separated record into up to 18 double fields.
bool parse_fields(std::string_view line, std::array<double, 18>& fields,
                  std::size_t& count) {
  count = 0;
  std::size_t i = 0;
  while (i < line.size() && count < fields.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    const std::string token(line.substr(start, i - start));
    try {
      fields[count++] = std::stod(token);
    } catch (const std::exception&) {
      return false;
    }
  }
  return count > 0;
}

// How many per-line error messages a report retains; beyond this only the
// counters grow (archive logs can have thousands of bad lines).
constexpr std::size_t kMaxReportedErrors = 20;

void note_error(SwfIngestReport* report, std::size_t line_no,
                const std::string& what) {
  if (report == nullptr) return;
  if (report->errors.size() < kMaxReportedErrors)
    report->errors.push_back("line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

std::string SwfIngestReport::summary() const {
  std::ostringstream out;
  out << "swf ingest: " << jobs << " jobs from " << record_lines << " records";
  if (skipped > 0) out << ", " << skipped << " skipped";
  if (repaired > 0) out << ", " << repaired << " repaired";
  if (dropped_invalid > 0) out << ", " << dropped_invalid << " dropped invalid";
  return out.str();
}

Trace read_swf(std::istream& in, const std::string& name,
               const SwfOptions& options, SwfIngestReport* report) {
  const bool lenient = options.mode == SwfMode::kLenient;
  int cluster_procs = options.default_cluster_procs;
  std::vector<Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv(line);
    while (!sv.empty() && std::isspace(static_cast<unsigned char>(sv.front())))
      sv.remove_prefix(1);
    if (sv.empty()) continue;
    if (sv.front() == ';') {
      if (const int p = parse_header_procs(sv); p > 0) cluster_procs = p;
      continue;
    }
    if (report != nullptr) ++report->record_lines;
    std::array<double, 18> f{};
    f.fill(-1.0);
    std::size_t n = 0;
    if (!parse_fields(sv, f, n) || n < 5) {
      if (!lenient) {
        throw std::runtime_error("swf: malformed record at line " +
                                 std::to_string(line_no));
      }
      if (report != nullptr) ++report->skipped;
      note_error(report, line_no, "unparsable record");
      continue;
    }
    Job j;
    j.id = static_cast<std::int64_t>(f[0]);
    j.submit = f[1];
    j.run = f[3];
    const double alloc_procs = f[4];
    const double req_procs = n > 7 ? f[7] : -1.0;
    const double req_time = n > 8 ? f[8] : -1.0;
    j.procs = static_cast<int>(req_procs > 0 ? req_procs : alloc_procs);
    j.estimate = req_time > 0 ? req_time : j.run;
    j.user = n > 11 && f[11] >= 0 ? static_cast<int>(f[11]) : 0;
    j.queue = n > 14 && f[14] >= 0 ? static_cast<int>(f[14]) : 0;
    if (lenient) {
      bool touched = false;
      if (j.submit < 0.0) {
        // Clock skew / missing value: pin to the epoch start.
        j.submit = 0.0;
        touched = true;
        note_error(report, line_no, "negative submit time clamped to 0");
      }
      if (j.run < 0.0 && req_time > 0.0) {
        // Failed/cancelled records sometimes carry -1 runtime but a real
        // request; the estimate is the best stand-in.
        j.run = req_time;
        j.estimate = req_time;
        touched = true;
        note_error(report, line_no, "negative run time repaired from request");
      }
      if (j.procs <= 0) {
        if (report != nullptr) ++report->skipped;
        note_error(report, line_no, "no usable processor count");
        continue;
      }
      if (touched && report != nullptr) ++report->repaired;
    }
    if (options.drop_invalid && (j.run <= 0.0 || j.procs <= 0)) {
      if (report != nullptr) ++report->dropped_invalid;
      continue;
    }
    jobs.push_back(j);
  }
  if (cluster_procs <= 0) {
    throw std::runtime_error(
        "swf: no MaxProcs header and no default_cluster_procs given");
  }
  for (Job& j : jobs) j.procs = std::min(j.procs, cluster_procs);
  if (report != nullptr) report->jobs = jobs.size();
  return Trace(name, cluster_procs, std::move(jobs));
}

Trace read_swf_text(const std::string& text, const std::string& name,
                    const SwfOptions& options, SwfIngestReport* report) {
  std::istringstream in(text);
  return read_swf(in, name, options, report);
}

Trace load_swf_file(const std::string& path, const SwfOptions& options,
                    SwfIngestReport* report) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("swf: cannot open " + path);
  // Use the file stem as the trace name.
  auto slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  if (auto dot = stem.find_last_of('.'); dot != std::string::npos)
    stem = stem.substr(0, dot);
  return read_swf(in, stem, options, report);
}

void write_swf(std::ostream& out, const Trace& trace) {
  out << "; SWF trace written by schedinspector\n";
  out << "; MaxProcs: " << trace.cluster_procs() << "\n";
  // Full round-trip precision: synthetic traces carry fractional seconds.
  out << std::setprecision(17);
  for (const Job& j : trace.jobs()) {
    // job submit wait run alloc avgcpu mem reqprocs reqtime reqmem status
    // user group exe queue partition preceding think
    out << j.id << ' ' << j.submit << ' ' << -1 << ' ' << j.run << ' '
        << j.procs << ' ' << -1 << ' ' << -1 << ' ' << j.procs << ' '
        << j.estimate << ' ' << -1 << ' ' << 1 << ' ' << j.user << ' ' << -1
        << ' ' << -1 << ' ' << j.queue << ' ' << -1 << ' ' << -1 << ' ' << -1
        << '\n';
  }
}

std::string write_swf_text(const Trace& trace) {
  std::ostringstream out;
  write_swf(out, trace);
  return out.str();
}

}  // namespace si
