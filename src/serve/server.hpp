// Inspection-as-a-service: a long-running plain-TCP daemon answering
// `feature row -> accept/reject` decisions for many concurrent connections
// (ROADMAP item 1, DESIGN.md §9). Two threads:
//
//   * the I/O thread runs a poll() event loop over every connection:
//     accepts, parses length-prefixed frames (serve/protocol.hpp),
//     admission-controls decision requests into a bounded queue, and
//     flushes reply bytes without ever blocking on a slow client;
//   * the inference thread coalesces pending requests across connections
//     into one batched policy forward (the VecEnv gather/scatter shape via
//     core/batch_inference.hpp) under a max-batch / max-wait flush policy.
//
// The robustness envelope:
//   * deadlines  — every request may carry one; expired requests get an
//     explicit DEADLINE_EXCEEDED reply (with a best-effort rule decision)
//     instead of silently late model output;
//   * backpressure — the admission queue is bounded; when it saturates the
//     I/O thread sheds load by answering inline from the rule path, tagged
//     degraded/queue_saturated — the client always gets a reply;
//   * graceful degradation — no model yet, non-finite request features, or
//     a model that faults (non-finite logit) all fall back to the distilled
//     rule inspector (or plain base-policy accept when the feature width is
//     not the manual 8), never dropping the connection;
//   * hot-swap — serve/model_slot.hpp: checkpoints publish atomically with
//     validation and automatic rollback to the last-good model;
//   * lifecycle — stop() (or a signal via request_stop()) drains admitted
//     requests, flushes replies, then exits; stats_json() exposes queue
//     depth, degraded counts, swap epoch, and latency percentiles through
//     the obs MetricsRegistry.
//
// Observability (DESIGN.md §10): an optional HTTP/1.0 side port serves the
// same stats as Prometheus text (GET /metrics) plus GET /healthz from the
// existing poll loop; an optional SpanCollector records per-request span
// trees (admit / queue_wait / inference / reply_write) and degradation
// instant events, exportable as Perfetto-loadable Chrome trace JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/rule_inspector.hpp"
#include "obs/span.hpp"
#include "obs/window.hpp"
#include "serve/model_slot.hpp"
#include "serve/protocol.hpp"

namespace si::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = kernel-assigned (tests run parallel-safe); see port()
  int backlog = 64;
  int max_connections = 256;

  /// Feature width served over the wire. The degraded rule path needs the
  /// manual 8-feature layout; other widths degrade to base-policy accept.
  int obs_size = 8;
  RuleInspectorConfig rule;  ///< thresholds of the degraded rule path

  // Coalescer flush policy: a batch goes to the model when max_batch
  // requests are pending or the oldest has waited max_wait_us.
  int max_batch = 32;
  int max_wait_us = 200;

  int queue_capacity = 1024;          ///< admission queue bound
  std::uint32_t default_deadline_ms = 0;  ///< 0 = no default deadline
  /// Per-connection outbound buffer bound; a client that stops reading
  /// (slow-loris writer) is disconnected once it accrues this much.
  std::size_t max_write_buffer = 1 << 20;
  /// stop() flushes in-flight work for at most this long.
  int drain_timeout_ms = 2000;

  /// Side port answering plain HTTP/1.0 GET /metrics (Prometheus text
  /// exposition of the same registry stats_json() renders) and GET
  /// /healthz, served from the existing poll loop. -1 = disabled,
  /// 0 = kernel-assigned (see Server::metrics_port()).
  int metrics_port = -1;
  /// Rolling window behind the serve.window.* stats: `window_slots` ring
  /// slots of `window_slot_us` each (default: last ~10 seconds).
  int window_slots = 10;
  std::int64_t window_slot_us = 1'000'000;
  /// When set, every admitted request records a span tree — serve.request
  /// with serve.admit / serve.queue_wait / serve.inference /
  /// serve.reply_write children whose first three segments sum exactly to
  /// the request span — plus instant events for shedding, deadline misses,
  /// inference faults, and rollbacks (DESIGN.md §10). Null = untraced; the
  /// hot path is byte-identical to the seed.
  SpanCollector* spans = nullptr;
};

/// One decision's life inside the server (admission -> inference -> reply).
struct PendingRequest {
  std::uint64_t conn_id = 0;
  std::uint64_t request_id = 0;
  std::chrono::steady_clock::time_point received;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  std::vector<double> features;
  // Span bookkeeping (zero when tracing is off): the request's trace, its
  // root span id (children reference it), and the SpanCollector-clock
  // timestamps of receipt and enqueue.
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;
  std::int64_t received_us = 0;
  std::int64_t enqueued_us = 0;
};

/// Monotonic counters / gauges / histograms, written with relaxed atomics
/// from both threads and snapshotted into a MetricsRegistry by
/// stats_json() / the /metrics endpoint. Every instrument here is safe for
/// concurrent recording (obs/window.hpp); export merges deterministically.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_refused{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> replies_total{0};
  std::atomic<std::uint64_t> decisions_model{0};
  std::atomic<std::uint64_t> decisions_degraded{0};
  std::atomic<std::uint64_t> shed_total{0};
  std::atomic<std::uint64_t> deadline_exceeded_total{0};
  std::atomic<std::uint64_t> inference_faults{0};
  std::atomic<std::uint64_t> non_finite_inputs{0};
  std::atomic<std::uint64_t> bad_requests{0};  ///< e.g. wrong feature width
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> slow_writer_disconnects{0};
  std::atomic<std::uint64_t> orphaned_replies{0};
  std::atomic<std::uint64_t> swaps_ok{0};
  std::atomic<std::uint64_t> swaps_failed{0};
  std::atomic<std::uint64_t> queue_depth{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_rows{0};
  std::atomic<std::uint64_t> http_requests{0};  ///< /metrics + /healthz hits

  /// Shared bucket edges (µs) of every latency-shaped histogram below.
  static const std::vector<double>& latency_bounds_us();

  /// End-to-end reply latency (receipt -> reply enqueued), cumulative.
  AtomicHistogram latency_us;
  /// Admission-queue wait (receipt -> taken by the inference thread).
  AtomicHistogram queue_wait_us;
  /// Inference-thread service time (taken -> reply encoded), including the
  /// batched forward; degraded rows record their (near-zero) handling time.
  AtomicHistogram infer_us;
  /// Rolling last-N-seconds reply latency behind the serve.window.* stats.
  WindowedHistogram latency_window;
  /// Smoothed replies/sec, fed from replies_total at export time.
  mutable EwmaRate reply_rate;

  explicit ServerStats(std::int64_t window_slot_us = 1'000'000,
                       std::size_t window_slots = 10);

  /// Microseconds since construction on the steady clock — the time base of
  /// latency_window and reply_rate.
  std::int64_t now_us() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens and spawns the I/O and inference threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// The actually bound port (after start(); resolves port 0).
  int port() const { return port_; }

  /// The bound /metrics side port (after start(); resolves port 0), or -1
  /// when the endpoint is disabled.
  int metrics_port() const { return metrics_port_; }

  /// Async-signal-safe stop trigger: flags shutdown and wakes the I/O
  /// thread via the self-pipe. Safe to call from a signal handler.
  void request_stop() noexcept;

  /// Drains in-flight requests (bounded by drain_timeout_ms), joins both
  /// threads, closes every fd. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// True once a stop was requested (the drain has begun). A daemon main
  /// loop polls this to know a signal fired, then calls stop() to join.
  bool draining() const { return stopping_.load(std::memory_order_acquire); }

  /// Direct in-process publish (e.g. a trainer pushing its latest
  /// checkpoint). `validate=false` is test-only: it lets a deliberately
  /// broken model through to exercise the runtime-fault rollback.
  PublishResult publish_model(std::shared_ptr<ServedModel> model,
                              bool validate = true);
  /// Load + validate + publish a model/checkpoint file; on any failure the
  /// last-good model keeps serving.
  PublishResult swap_from_file(const std::string& path);

  std::uint64_t model_epoch() const { return slot_.epoch(); }
  const ServerStats& stats() const { return stats_; }

  /// Health/stats snapshot rendered through the obs MetricsRegistry:
  /// serve.* counters/gauges, the latency / queue-wait / inference
  /// histograms, derived p50/p99/p999 gauges, and the rolling
  /// serve.window.* stats (last-N-seconds percentiles and replies/sec).
  std::string stats_json() const;

  /// The same snapshot in Prometheus text exposition format 0.0.4 — what
  /// GET /metrics on the side port returns.
  std::string metrics_text() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameReader reader;
    std::string outbuf;
    std::size_t outbuf_off = 0;  ///< bytes of outbuf already written
    bool closing = false;        ///< flush outbuf, then close
    bool http = false;           ///< accepted on the /metrics side port
    std::string inbuf;           ///< http request bytes (http conns only)
  };

  /// One reply crossing from the inference thread to the I/O thread. The
  /// span fields let the I/O thread record the serve.reply_write segment
  /// (zero / unused when tracing is off).
  struct OutboundReply {
    std::uint64_t conn_id = 0;
    std::string bytes;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    std::int64_t done_us = 0;
  };

  void io_loop();
  void inference_loop();

  // --- I/O-thread helpers ---
  void accept_ready();
  void accept_metrics_ready();
  void read_ready(Conn& conn);
  void read_http_ready(Conn& conn);
  void handle_http(Conn& conn);
  void write_ready(Conn& conn);
  void handle_frame(Conn& conn, Frame frame);
  void handle_decision(Conn& conn, const Frame& frame);
  void queue_reply(Conn& conn, const std::string& frame_bytes);
  /// Closes conn.fd, updates the active-connection gauge, returns -1 (the
  /// caller assigns it back to conn.fd).
  int mark_closed(Conn& conn);
  void close_conn(std::size_t index);
  void drain_outbound();
  void protocol_error(Conn& conn, const std::string& message);

  /// The degraded decision for `features`: the distilled rule when the row
  /// is the manual 8-feature layout, base-policy accept otherwise.
  DecisionReply degraded_reply(std::uint64_t request_id,
                               const std::vector<double>& features,
                               ReplyStatus status, DegradedReason reason) const;

  /// Builds the full serve.* snapshot into `registry` — the single source
  /// both stats_json() (JSON over SIN1) and metrics_text() (Prometheus over
  /// HTTP) render from.
  void build_stats_registry(MetricsRegistry& registry) const;

  void wake_io() noexcept;

  ServerConfig config_;
  ModelSlot slot_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int port_ = 0;
  int metrics_fd_ = -1;
  int metrics_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> inference_done_{false};

  // Admission queue: I/O thread produces, inference thread consumes.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;

  // Outbound replies: inference thread produces, I/O thread consumes.
  std::mutex outbound_mutex_;
  std::vector<OutboundReply> outbound_;

  std::vector<Conn> conns_;  ///< I/O thread only
  std::uint64_t next_conn_id_ = 1;

  std::thread io_thread_;
  std::thread inference_thread_;
};

}  // namespace si::serve
