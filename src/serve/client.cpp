#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace si::serve {

ServeClient::~ServeClient() { close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      reader_(std::move(other.reader_)),
      error_(std::move(other.error_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
    error_ = std::move(other.error_);
  }
  return *this;
}

bool ServeClient::connect(const std::string& host, int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket() failed: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad host " + host;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "connect to " + host + ":" + std::to_string(port) +
             " failed: " + std::strerror(errno);
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  error_.clear();
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool ServeClient::send_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    error_ = std::string("send failed: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool ServeClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  return send_all(bytes);
}

std::optional<Frame> ServeClient::read_frame() {
  if (fd_ < 0) {
    error_ = "not connected";
    return std::nullopt;
  }
  char buf[4096];
  while (true) {
    if (auto frame = reader_.next()) return frame;
    if (!reader_.ok()) {
      error_ = "protocol error from server: " + reader_.error();
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = n == 0 ? "server closed connection"
                    : std::string("recv failed: ") + std::strerror(errno);
    close();
    return std::nullopt;
  }
}

std::optional<DecisionReply> ServeClient::decide(
    const std::vector<double>& features, std::uint64_t request_id,
    std::uint32_t deadline_ms) {
  DecisionRequest request;
  request.request_id = request_id;
  request.deadline_ms = deadline_ms;
  request.features = features;
  if (!send_raw(encode_decision_request(request))) return std::nullopt;
  const auto frame = read_frame();
  if (!frame) return std::nullopt;
  if (frame->type == FrameType::kError) {
    error_ = "server error: " + frame->payload;
    return std::nullopt;
  }
  DecisionReply reply;
  if (frame->type != FrameType::kDecisionReply ||
      !decode_decision_reply(frame->payload, reply)) {
    error_ = "unexpected reply frame";
    return std::nullopt;
  }
  return reply;
}

std::optional<std::string> ServeClient::stats_json() {
  if (!send_raw(encode_stats_request())) return std::nullopt;
  const auto frame = read_frame();
  if (!frame) return std::nullopt;
  if (frame->type != FrameType::kStatsReply) {
    error_ = "unexpected reply frame";
    return std::nullopt;
  }
  return frame->payload;
}

std::optional<SwapReply> ServeClient::swap(const std::string& path) {
  SwapRequest request;
  request.path = path;
  if (!send_raw(encode_swap_request(request))) return std::nullopt;
  const auto frame = read_frame();
  if (!frame) return std::nullopt;
  SwapReply reply;
  if (frame->type != FrameType::kSwapReply ||
      !decode_swap_reply(frame->payload, reply)) {
    error_ = "unexpected reply frame";
    return std::nullopt;
  }
  return reply;
}

bool connect_with_backoff(ServeClient& client, const std::string& host,
                          int port, int attempts, int base_delay_ms,
                          int max_delay_ms, std::uint64_t seed) {
  int delay_ms = base_delay_ms;
  std::uint64_t state = seed != 0 ? seed : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (client.connect(host, port)) return true;
    if (attempt + 1 >= attempts) break;
    // xorshift64 jitter in [0, delay): deterministic, decorrelates clients
    // that share a start instant without sharing a seed.
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const int jitter_ms =
        delay_ms > 0 ? static_cast<int>(state % static_cast<std::uint64_t>(
                                                    delay_ms))
                     : 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(delay_ms + jitter_ms));
    delay_ms = std::min(delay_ms * 2, max_delay_ms);
  }
  return false;
}

}  // namespace si::serve
