// The hot-swappable model slot: an epoch-versioned pointer to the served
// model. Readers (the inference thread) acquire() a refcounted snapshot per
// batch — the copy happens under a short lock, after which inference runs
// entirely lock-free on an immutable model, and an in-flight batch keeps
// its snapshot alive across a concurrent swap. Writers publish() a new
// model: it is validated first (rl/model_io.hpp's validate_model — the same
// finite-parameter + probe-forward gate PR 1's training rollback uses), its
// transpose cache is refreshed while still private, and only then does the
// pointer swap and the epoch bump, so training can push checkpoints without
// ever pausing serving.
//
// Rollback: publish() keeps the previous model as last-good. If a published
// model turns out to fault at runtime (a non-finite logit on finite input —
// something validation probes cannot fully rule out), report_fault() swaps
// the last-good model back in atomically; stale fault reports from batches
// that raced the swap are ignored, so a rollback can never flip-flop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "rl/actor_critic.hpp"

namespace si::serve {

/// An immutable served model plus its provenance.
struct ServedModel {
  ActorCritic ac;
  std::string origin;       ///< file path or "in-process"
  int checkpoint_epoch = 0; ///< training epoch (0 for plain model files)

  ServedModel(ActorCritic ac_in, std::string origin_in, int ckpt_epoch)
      : ac(std::move(ac_in)),
        origin(std::move(origin_in)),
        checkpoint_epoch(ckpt_epoch) {}
};

/// Outcome of a publish/swap attempt.
struct PublishResult {
  bool ok = false;
  std::uint64_t epoch = 0;  ///< serving epoch after the attempt
  std::string message;      ///< diagnostic on failure ("" on success)
};

class ModelSlot {
 public:
  /// When >= 0, every published model must expect exactly this many
  /// features (the server's wire feature width).
  explicit ModelSlot(int expected_obs = -1) : expected_obs_(expected_obs) {}

  /// The current model, or null before the first publish. Cheap: one lock
  /// + shared_ptr copy. When `epoch_out` is non-null it receives the epoch
  /// the model was acquired at (read under the same lock, so it always
  /// matches the returned pointer — the epoch report_fault() expects).
  std::shared_ptr<const ServedModel> acquire(
      std::uint64_t* epoch_out = nullptr) const;

  /// Serving epoch: 0 = no model ever published; bumped by every successful
  /// publish and every rollback.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Validates and atomically publishes `model`. On validation failure the
  /// current model keeps serving (this *is* the rollback-to-last-good path
  /// for bad checkpoint files). `validate` exists so tests can inject a
  /// deliberately broken model to exercise the runtime-fault rollback.
  PublishResult publish(std::shared_ptr<ServedModel> model,
                        bool validate = true);

  /// Loads a model or checkpoint file and publishes it. Load and validation
  /// diagnostics come back in PublishResult::message; the previous model
  /// keeps serving on any failure.
  PublishResult publish_from_file(const std::string& path);

  /// Called by the inference thread when the model acquired at `epoch`
  /// produced a non-finite logit. If that model is still current, rolls
  /// back to the last-good model (when one exists) and marks the faulty
  /// epoch bad. Returns true when a rollback happened.
  bool report_fault(std::uint64_t epoch);

  std::uint64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }

 private:
  int expected_obs_;
  mutable std::mutex mutex_;
  std::shared_ptr<const ServedModel> current_;
  std::shared_ptr<const ServedModel> last_good_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> rollbacks_{0};
};

}  // namespace si::serve
