// Wire protocol of the inspection server (DESIGN.md §9): length-prefixed
// frames over plain TCP, hand-rolled like everything else in this repo.
//
//   frame  := header payload
//   header := magic:u32 type:u8 reserved:u8[3] payload_len:u32   (12 bytes)
//
// All integers are little-endian; doubles travel as the little-endian bytes
// of their IEEE-754 bit pattern, so a feature vector round-trips the exact
// bits — the degraded-path guarantee (replies bit-identical to the offline
// rule decision) depends on this. Frames above kMaxPayload are a protocol
// error: the server answers with an error frame and closes the connection,
// so a malicious or corrupt length prefix can never force an allocation.
//
// Frame types:
//   DecisionRequest  -> DecisionReply      the serving hot path
//   StatsRequest     -> StatsReply         health/stats snapshot (JSON)
//   SwapRequest      -> SwapReply          hot-swap the served model
//   Error                                  protocol-level failure, then close
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace si::serve {

inline constexpr std::uint32_t kFrameMagic = 0x53494E31;  // "SIN1"
inline constexpr std::size_t kHeaderSize = 12;
/// Generous bound for any legal frame (a native-mode feature row is well
/// under 1 KiB; stats JSON under 8 KiB).
inline constexpr std::size_t kMaxPayload = 64 * 1024;

enum class FrameType : std::uint8_t {
  kDecisionRequest = 1,
  kDecisionReply = 2,
  kStatsRequest = 3,
  kStatsReply = 4,
  kSwapRequest = 5,
  kSwapReply = 6,
  kError = 7,
};

/// How a decision reply was produced (the degradation ladder, DESIGN.md §9).
enum class ReplyStatus : std::uint8_t {
  kOk = 0,                ///< model inference within deadline
  kDegraded = 1,          ///< fallback decision; see DegradedReason
  kDeadlineExceeded = 2,  ///< missed its deadline; decision is best-effort
  kError = 3,             ///< request unusable (e.g. feature-width mismatch)
};

enum class DegradedReason : std::uint8_t {
  kNone = 0,
  kQueueSaturated = 1,   ///< admission queue full -> load shed
  kNoModel = 2,          ///< no model published yet
  kInferenceFault = 3,   ///< model produced a non-finite logit
  kNonFiniteInput = 4,   ///< request carried non-finite features
  kDraining = 5,         ///< server shutting down, request not admitted
};

enum class DecisionSource : std::uint8_t {
  kModel = 0,  ///< the served actor-critic policy net
  kRule = 1,   ///< the distilled rule inspector (manual features)
  kBase = 2,   ///< base-policy behaviour: always accept
};

struct DecisionRequest {
  std::uint64_t request_id = 0;
  /// Per-request deadline in milliseconds from server receipt; 0 means the
  /// server default (which may itself be "none").
  std::uint32_t deadline_ms = 0;
  std::vector<double> features;
};

struct DecisionReply {
  std::uint64_t request_id = 0;
  std::uint8_t reject = 0;  ///< 1 = reject the scheduling decision
  ReplyStatus status = ReplyStatus::kOk;
  DegradedReason reason = DegradedReason::kNone;
  DecisionSource source = DecisionSource::kModel;
  /// P(reject) under the model (0 on non-model paths).
  double prob = 0.0;
  /// Model epoch that answered (0 when no model was involved).
  std::uint64_t epoch = 0;
};

struct SwapRequest {
  std::string path;  ///< model or checkpoint file to load server-side
};

struct SwapReply {
  std::uint8_t ok = 0;
  std::uint64_t epoch = 0;  ///< serving epoch after the swap attempt
  std::string message;      ///< diagnostic on failure ("" on success)
};

/// One decoded frame: the type plus its raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// --- encoding (each returns a complete frame: header + payload) ---
std::string encode_frame(FrameType type, std::string_view payload);
std::string encode_decision_request(const DecisionRequest& request);
std::string encode_decision_reply(const DecisionReply& reply);
std::string encode_stats_request();
std::string encode_stats_reply(std::string_view json);
std::string encode_swap_request(const SwapRequest& request);
std::string encode_swap_reply(const SwapReply& reply);
std::string encode_error(std::string_view message);

// --- payload decoding (false => malformed payload) ---
bool decode_decision_request(std::string_view payload, DecisionRequest& out);
bool decode_decision_reply(std::string_view payload, DecisionReply& out);
bool decode_swap_request(std::string_view payload, SwapRequest& out);
bool decode_swap_reply(std::string_view payload, SwapReply& out);

/// Incremental frame parser: feed() raw bytes as they arrive, poll next()
/// for complete frames. Once the stream violates the protocol (bad magic,
/// unknown type, oversized or malformed length) the reader latches into an
/// error state: next() returns nothing, error() is non-empty, and the
/// connection should be closed after an error frame.
class FrameReader {
 public:
  void feed(std::string_view bytes);
  std::optional<Frame> next();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::string error_;
};

}  // namespace si::serve
