// Blocking client for the inspection server — used by the example CLI's
// ctl subcommands, the bench_serve load generator, and the serve tests. One
// connection, synchronous request/reply; callers that want concurrency run
// several clients. connect_with_backoff() retries a refused/slow connect
// with bounded exponential backoff plus deterministic jitter, so a client
// racing server startup (or a brief restart) converges instead of failing
// or stampeding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace si::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// One connect attempt. false => error() explains.
  bool connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Round-trips one decision. deadline_ms travels in the request (0 =
  /// server default). nullopt => transport/protocol failure; see error().
  std::optional<DecisionReply> decide(const std::vector<double>& features,
                                      std::uint64_t request_id = 0,
                                      std::uint32_t deadline_ms = 0);

  /// Fetches the server's health/stats snapshot (MetricsRegistry JSON).
  std::optional<std::string> stats_json();

  /// Asks the server to hot-swap to the model/checkpoint at `path`.
  std::optional<SwapReply> swap(const std::string& path);

  /// Sends raw bytes verbatim — the chaos tests' door for malformed,
  /// oversized, or truncated frames.
  bool send_raw(std::string_view bytes);
  /// Reads one frame off the socket (blocking). nullopt => closed/error.
  std::optional<Frame> read_frame();

  const std::string& error() const { return error_; }

 private:
  bool send_all(std::string_view bytes);

  int fd_ = -1;
  FrameReader reader_;
  std::string error_;
};

/// connect() with `attempts` tries, exponential backoff starting at
/// `base_delay_ms` and capped at `max_delay_ms`, plus per-attempt jitter
/// derived from `seed` (deterministic — no wall-clock randomness).
bool connect_with_backoff(ServeClient& client, const std::string& host,
                          int port, int attempts = 10,
                          int base_delay_ms = 10, int max_delay_ms = 500,
                          std::uint64_t seed = 1);

}  // namespace si::serve
