#include "serve/protocol.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace si::serve {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffULL));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian cursor over a payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    v.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kDecisionRequest) &&
         type <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  out.append(3, '\0');
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::string encode_decision_request(const DecisionRequest& request) {
  std::string payload;
  payload.reserve(16 + 4 + request.features.size() * 8);
  put_u64(payload, request.request_id);
  put_u32(payload, request.deadline_ms);
  put_u32(payload, static_cast<std::uint32_t>(request.features.size()));
  for (const double f : request.features) put_double(payload, f);
  return encode_frame(FrameType::kDecisionRequest, payload);
}

std::string encode_decision_reply(const DecisionReply& reply) {
  std::string payload;
  payload.reserve(8 + 4 + 8 + 8);
  put_u64(payload, reply.request_id);
  payload.push_back(static_cast<char>(reply.reject));
  payload.push_back(static_cast<char>(reply.status));
  payload.push_back(static_cast<char>(reply.reason));
  payload.push_back(static_cast<char>(reply.source));
  put_double(payload, reply.prob);
  put_u64(payload, reply.epoch);
  return encode_frame(FrameType::kDecisionReply, payload);
}

std::string encode_stats_request() {
  return encode_frame(FrameType::kStatsRequest, {});
}

std::string encode_stats_reply(std::string_view json) {
  return encode_frame(FrameType::kStatsReply, json);
}

std::string encode_swap_request(const SwapRequest& request) {
  std::string payload;
  put_string(payload, request.path);
  return encode_frame(FrameType::kSwapRequest, payload);
}

std::string encode_swap_reply(const SwapReply& reply) {
  std::string payload;
  payload.push_back(static_cast<char>(reply.ok));
  put_u64(payload, reply.epoch);
  put_string(payload, reply.message);
  return encode_frame(FrameType::kSwapReply, payload);
}

std::string encode_error(std::string_view message) {
  return encode_frame(FrameType::kError, message);
}

bool decode_decision_request(std::string_view payload, DecisionRequest& out) {
  Cursor cur(payload);
  std::uint32_t count = 0;
  if (!cur.u64(out.request_id) || !cur.u32(out.deadline_ms) ||
      !cur.u32(count))
    return false;
  // The count is bounded by the payload itself (8 bytes per feature), so a
  // hostile count cannot trigger a large allocation.
  if (static_cast<std::size_t>(count) * 8 > payload.size()) return false;
  out.features.resize(count);
  for (double& f : out.features)
    if (!cur.f64(f)) return false;
  return cur.done();
}

bool decode_decision_reply(std::string_view payload, DecisionReply& out) {
  Cursor cur(payload);
  std::uint8_t status = 0;
  std::uint8_t reason = 0;
  std::uint8_t source = 0;
  if (!cur.u64(out.request_id) || !cur.u8(out.reject) || !cur.u8(status) ||
      !cur.u8(reason) || !cur.u8(source) || !cur.f64(out.prob) ||
      !cur.u64(out.epoch) || !cur.done())
    return false;
  if (status > static_cast<std::uint8_t>(ReplyStatus::kError)) return false;
  if (reason > static_cast<std::uint8_t>(DegradedReason::kDraining))
    return false;
  if (source > static_cast<std::uint8_t>(DecisionSource::kBase)) return false;
  out.status = static_cast<ReplyStatus>(status);
  out.reason = static_cast<DegradedReason>(reason);
  out.source = static_cast<DecisionSource>(source);
  return true;
}

bool decode_swap_request(std::string_view payload, SwapRequest& out) {
  Cursor cur(payload);
  return cur.str(out.path) && cur.done();
}

bool decode_swap_reply(std::string_view payload, SwapReply& out) {
  Cursor cur(payload);
  return cur.u8(out.ok) && cur.u64(out.epoch) && cur.str(out.message) &&
         cur.done();
}

void FrameReader::feed(std::string_view bytes) {
  if (!ok()) return;  // latched: discard everything after the first error
  buffer_.append(bytes);
}

std::optional<Frame> FrameReader::next() {
  if (!ok() || buffer_.size() < kHeaderSize) return std::nullopt;
  Cursor cur(buffer_);
  std::uint32_t magic = 0;
  std::uint8_t type = 0;
  std::uint8_t pad = 0;
  std::uint32_t length = 0;
  cur.u32(magic);
  cur.u8(type);
  for (int i = 0; i < 3; ++i) cur.u8(pad);
  cur.u32(length);
  if (magic != kFrameMagic) {
    error_ = "bad frame magic";
    return std::nullopt;
  }
  if (!known_type(type)) {
    error_ = "unknown frame type " + std::to_string(type);
    return std::nullopt;
  }
  if (length > kMaxPayload) {
    error_ = "oversized frame: " + std::to_string(length) + " > " +
             std::to_string(kMaxPayload);
    return std::nullopt;
  }
  if (buffer_.size() < kHeaderSize + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = buffer_.substr(kHeaderSize, length);
  buffer_.erase(0, kHeaderSize + length);
  return frame;
}

}  // namespace si::serve
