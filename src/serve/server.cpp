#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/check.hpp"
#include "core/batch_inference.hpp"
#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prom.hpp"
#include "rl/actor_critic.hpp"

namespace si::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Virtual thread lanes of the exported trace (SpanCollector tids).
constexpr std::uint32_t kIoLane = 1;
constexpr std::uint32_t kInferLane = 2;
constexpr std::uint32_t kQueueLane = 3;

bool all_finite(const std::vector<double>& values) {
  for (const double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

double micros_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Opens a non-blocking listening socket on host:port; fills `bound_port`
/// with the kernel-resolved port. Throws std::runtime_error on failure.
int open_listener(const std::string& host, int port, int backlog,
                  int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0)
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("serve: bad host " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on " + host + ":" +
                             std::to_string(port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

std::string http_response(int code, const char* status,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

const std::vector<double>& ServerStats::latency_bounds_us() {
  static const std::vector<double> bounds = {
      50.0,     100.0,    250.0,    500.0,     1000.0,    2500.0,   5000.0,
      10000.0,  25000.0,  50000.0,  100000.0,  250000.0,  500000.0,
      1000000.0};
  return bounds;
}

ServerStats::ServerStats(std::int64_t window_slot_us,
                         std::size_t window_slots)
    : latency_us(latency_bounds_us()),
      queue_wait_us(latency_bounds_us()),
      infer_us(latency_bounds_us()),
      latency_window(latency_bounds_us(), window_slot_us, window_slots),
      epoch_(Clock::now()) {}

std::int64_t ServerStats::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      slot_(config_.obs_size),
      stats_(config_.window_slot_us,
             static_cast<std::size_t>(std::max(config_.window_slots, 2))) {
  SI_REQUIRE(config_.obs_size >= 1);
  SI_REQUIRE(config_.max_batch >= 1);
  SI_REQUIRE(config_.queue_capacity >= 1);
  SI_REQUIRE(config_.max_connections >= 1);
  SI_REQUIRE(config_.window_slot_us >= 1);
}

Server::~Server() { stop(); }

void Server::start() {
  SI_REQUIRE(!running_.load());
  listen_fd_ = open_listener(config_.host, config_.port, config_.backlog,
                             &port_);
  if (config_.metrics_port >= 0) {
    try {
      metrics_fd_ = open_listener(config_.host, config_.metrics_port,
                                  config_.backlog, &metrics_port_);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }

  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    for (int* fd : {&listen_fd_, &metrics_fd_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    throw std::runtime_error("serve: pipe2() failed");
  }

  if (config_.spans != nullptr) {
    config_.spans->register_thread(kIoLane, "serve-io");
    config_.spans->register_thread(kInferLane, "serve-inference");
    config_.spans->register_thread(kQueueLane, "serve-queue");
  }

  stopping_.store(false);
  inference_done_.store(false);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  inference_thread_ = std::thread([this] { inference_loop(); });
  SI_LOG_INFO("serve", "listening on " + config_.host + ":" +
                           std::to_string(port_));
  if (metrics_fd_ >= 0)
    SI_LOG_INFO("serve", "metrics endpoint on " + config_.host + ":" +
                             std::to_string(metrics_port_) + "/metrics");
}

void Server::request_stop() noexcept {
  // Async-signal-safe: an atomic store plus one pipe write. The I/O thread
  // wakes on the pipe and performs the (non-signal-safe) condvar notify.
  stopping_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  request_stop();
  queue_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  if (inference_thread_.joinable()) inference_thread_.join();
  for (int* fd :
       {&listen_fd_, &metrics_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  running_.store(false, std::memory_order_release);
  SI_LOG_INFO("serve", "stopped");
}

PublishResult Server::publish_model(std::shared_ptr<ServedModel> model,
                                    bool validate) {
  const PublishResult result = slot_.publish(std::move(model), validate);
  if (result.ok)
    stats_.swaps_ok.fetch_add(1, std::memory_order_relaxed);
  else
    stats_.swaps_failed.fetch_add(1, std::memory_order_relaxed);
  if (config_.spans != nullptr)
    config_.spans->instant("serve.swap", "serve", 0, kIoLane,
                           {{"ok", result.ok ? "1" : "0"},
                            {"epoch", std::to_string(result.epoch)}});
  return result;
}

PublishResult Server::swap_from_file(const std::string& path) {
  const PublishResult result = slot_.publish_from_file(path);
  if (result.ok)
    stats_.swaps_ok.fetch_add(1, std::memory_order_relaxed);
  else
    stats_.swaps_failed.fetch_add(1, std::memory_order_relaxed);
  if (config_.spans != nullptr)
    config_.spans->instant("serve.swap", "serve", 0, kIoLane,
                           {{"ok", result.ok ? "1" : "0"},
                            {"epoch", std::to_string(result.epoch)}});
  return result;
}

// ---------------------------------------------------------------------------
// I/O thread
// ---------------------------------------------------------------------------

void Server::wake_io() noexcept {
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::io_loop() {
  std::vector<pollfd> fds;
  bool drain_deadline_set = false;
  Clock::time_point drain_deadline{};
  while (true) {
    const bool draining = stopping_.load(std::memory_order_acquire);
    if (draining && !drain_deadline_set) {
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
      drain_deadline_set = true;
      // The inference thread may be asleep; it must see stopping_ and
      // drain the queue (condvars cannot be notified from a signal
      // handler, so the wake funnels through here).
      queue_cv_.notify_all();
    }

    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    // The listen fd stays polled even at the connection cap: accept_ready
    // accepts and immediately closes over-cap connections, so a client gets
    // a deterministic refusal instead of hanging in the backlog.
    fds.push_back(pollfd{draining ? -1 : listen_fd_, POLLIN, 0});
    // Slot 2 is the /metrics side listener (fd -1 = disabled: poll skips it
    // but the slot keeps conn indices fixed at 3 + i).
    fds.push_back(pollfd{draining ? -1 : metrics_fd_, POLLIN, 0});
    for (const Conn& conn : conns_) {
      short events = 0;
      if (!draining && !conn.closing) events |= POLLIN;
      if (conn.outbuf.size() > conn.outbuf_off) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }

    const int timeout_ms = draining ? 10 : 100;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    drain_outbound();
    // Number of conns that have a pollfd this round; accept_ready below may
    // append new conns, which get polled on the next iteration.
    const std::size_t polled = conns_.size();
    if (fds[1].revents & POLLIN) accept_ready();
    if (fds[2].revents & POLLIN) accept_metrics_ready();
    for (std::size_t i = 0; i < polled; ++i) {
      const pollfd& pfd = fds[3 + i];
      Conn& conn = conns_[i];
      if (conn.fd < 0 || pfd.fd != conn.fd) continue;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_conn(i);
        continue;
      }
      if (pfd.revents & POLLIN) {
        if (conn.http)
          read_http_ready(conn);
        else
          read_ready(conn);
      }
      if (conn.fd >= 0 && (pfd.revents & POLLOUT)) write_ready(conn);
      if (conn.fd >= 0 && conn.closing &&
          conn.outbuf.size() == conn.outbuf_off)
        close_conn(i);
    }
    std::erase_if(conns_, [](const Conn& c) { return c.fd < 0; });

    if (draining) {
      bool flushed = inference_done_.load(std::memory_order_acquire);
      if (flushed) {
        std::lock_guard<std::mutex> lock(outbound_mutex_);
        flushed = outbound_.empty();
      }
      if (flushed)
        for (const Conn& conn : conns_)
          if (conn.outbuf.size() > conn.outbuf_off) flushed = false;
      if (flushed || Clock::now() >= drain_deadline) break;
    }
  }
  for (std::size_t i = 0; i < conns_.size(); ++i) close_conn(i);
  conns_.clear();
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: try again next tick
    if (static_cast<int>(conns_.size()) >= config_.max_connections) {
      stats_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conns_.push_back(std::move(conn));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.store(conns_.size(), std::memory_order_relaxed);
  }
}

void Server::accept_metrics_ready() {
  while (true) {
    const int fd = ::accept4(metrics_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (static_cast<int>(conns_.size()) >= config_.max_connections) {
      stats_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.http = true;
    conns_.push_back(std::move(conn));
  }
}

void Server::read_http_ready(Conn& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbuf.append(buf, static_cast<std::size_t>(n));
      if (conn.inbuf.find("\r\n\r\n") != std::string::npos ||
          conn.inbuf.find("\n\n") != std::string::npos) {
        handle_http(conn);
        return;
      }
      if (conn.inbuf.size() > 8192) {
        // A scraper sends a few hundred bytes of headers at most; anything
        // larger is abuse of the side port.
        conn.fd = mark_closed(conn);
        return;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return;
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      conn.fd = mark_closed(conn);
      return;
    }
    return;  // EAGAIN: drained
  }
}

void Server::handle_http(Conn& conn) {
  stats_.http_requests.fetch_add(1, std::memory_order_relaxed);
  // Request line: METHOD SP PATH SP VERSION. Only GET is served.
  const std::size_t line_end = conn.inbuf.find_first_of("\r\n");
  const std::string line = conn.inbuf.substr(
      0, line_end == std::string::npos ? conn.inbuf.size() : line_end);
  std::string method;
  std::string path;
  const std::size_t sp1 = line.find(' ');
  if (sp1 != std::string::npos) {
    method = line.substr(0, sp1);
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    path = line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                         : sp2 - sp1 - 1);
  }
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string response;
  if (method != "GET") {
    response = http_response(405, "Method Not Allowed", "text/plain",
                             "method not allowed\n");
  } else if (path == "/metrics") {
    response = http_response(
        200, "OK", "text/plain; version=0.0.4; charset=utf-8",
        metrics_text());
  } else if (path == "/healthz") {
    response = http_response(200, "OK", "text/plain", "ok\n");
  } else {
    response = http_response(404, "Not Found", "text/plain", "not found\n");
  }
  queue_reply(conn, response);
  conn.closing = true;  // HTTP/1.0: flush the response, then close
}

void Server::read_ready(Conn& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      while (auto frame = conn.reader.next()) {
        handle_frame(conn, *std::move(frame));
        if (conn.closing || conn.fd < 0) return;
      }
      if (!conn.reader.ok()) {
        protocol_error(conn, conn.reader.error());
        return;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return;
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      // Peer closed (possibly mid-request) or hard error: drop our side.
      conn.fd = mark_closed(conn);
      return;
    }
    return;  // EAGAIN: drained
  }
}

int Server::mark_closed(Conn& conn) {
  ::close(conn.fd);
  conn.fd = -1;
  std::size_t active = 0;
  for (const Conn& c : conns_)
    if (c.fd >= 0) ++active;
  stats_.connections_active.store(active, std::memory_order_relaxed);
  return -1;
}

void Server::write_ready(Conn& conn) {
  while (conn.outbuf.size() > conn.outbuf_off) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outbuf_off,
               conn.outbuf.size() - conn.outbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    conn.fd = mark_closed(conn);  // peer gone mid-write
    return;
  }
  conn.outbuf.clear();
  conn.outbuf_off = 0;
}

void Server::handle_frame(Conn& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kDecisionRequest:
      handle_decision(conn, frame);
      return;
    case FrameType::kStatsRequest:
      queue_reply(conn, encode_stats_reply(stats_json()));
      return;
    case FrameType::kSwapRequest: {
      SwapRequest request;
      if (!decode_swap_request(frame.payload, request)) {
        protocol_error(conn, "malformed swap request");
        return;
      }
      const PublishResult result = swap_from_file(request.path);
      SwapReply reply;
      reply.ok = result.ok ? 1 : 0;
      reply.epoch = result.epoch;
      reply.message = result.message;
      queue_reply(conn, encode_swap_reply(reply));
      return;
    }
    default:
      protocol_error(conn, "unexpected frame type");
      return;
  }
}

void Server::handle_decision(Conn& conn, const Frame& frame) {
  DecisionRequest request;
  if (!decode_decision_request(frame.payload, request)) {
    protocol_error(conn, "malformed decision request");
    return;
  }
  stats_.requests_total.fetch_add(1, std::memory_order_relaxed);

  if (static_cast<int>(request.features.size()) != config_.obs_size) {
    // Well-framed but unusable: an explicit error reply, connection kept.
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    DecisionReply reply;
    reply.request_id = request.request_id;
    reply.status = ReplyStatus::kError;
    reply.source = DecisionSource::kBase;
    queue_reply(conn, encode_decision_reply(reply));
    return;
  }

  if (!all_finite(request.features)) {
    // Non-finite features would poison the model forward; answer from the
    // (NaN-deterministic) rule path instead of risking a fault.
    stats_.non_finite_inputs.fetch_add(1, std::memory_order_relaxed);
    stats_.decisions_degraded.fetch_add(1, std::memory_order_relaxed);
    DecisionReply reply =
        degraded_reply(request.request_id, request.features,
                       ReplyStatus::kDegraded, DegradedReason::kNonFiniteInput);
    stats_.replies_total.fetch_add(1, std::memory_order_relaxed);
    if (config_.spans != nullptr)
      config_.spans->instant(
          "serve.degraded", "serve", config_.spans->next_trace_id(), kIoLane,
          {{"reason", "non_finite_input"},
           {"request_id", std::to_string(request.request_id)}});
    queue_reply(conn, encode_decision_reply(reply));
    return;
  }

  PendingRequest pending;
  pending.conn_id = conn.id;
  pending.request_id = request.request_id;
  pending.received = Clock::now();
  const std::uint32_t deadline_ms = request.deadline_ms != 0
                                        ? request.deadline_ms
                                        : config_.default_deadline_ms;
  pending.has_deadline = deadline_ms != 0;
  pending.deadline =
      pending.received + std::chrono::milliseconds(deadline_ms);
  pending.features = std::move(request.features);
  if (config_.spans != nullptr) {
    pending.trace_id = config_.spans->next_trace_id();
    pending.root_span = config_.spans->next_span_id();
    pending.received_us = config_.spans->now_us();
    pending.enqueued_us = pending.received_us;
  }

  // Copied out before the move so the admit span / shed path can reference
  // the request after the queue owns it.
  const std::uint64_t trace_id = pending.trace_id;
  const std::uint64_t root_span = pending.root_span;
  const std::int64_t received_us = pending.received_us;
  const std::uint64_t request_id = pending.request_id;
  std::int64_t enqueued_us = received_us;

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (static_cast<int>(queue_.size()) < config_.queue_capacity) {
      if (config_.spans != nullptr) {
        // Stamped under the lock so queue_wait starts exactly where admit
        // ends — the segments stay contiguous and sum to the request span.
        enqueued_us = config_.spans->now_us();
        pending.enqueued_us = enqueued_us;
      }
      queue_.push_back(std::move(pending));
      stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
      queue_cv_.notify_one();
      admitted = true;
    }
  }
  if (admitted) {
    if (config_.spans != nullptr) {
      SpanEvent admit;
      admit.name = "serve.admit";
      admit.cat = "serve";
      admit.trace_id = trace_id;
      admit.span_id = config_.spans->next_span_id();
      admit.parent_id = root_span;
      admit.tid = kIoLane;
      admit.ts_us = received_us;
      admit.dur_us = enqueued_us - received_us;
      config_.spans->record(std::move(admit));
    }
    return;
  }
  // Admission queue saturated: shed load by answering inline from the
  // zero-cost rule path, tagged degraded. The client always gets a reply.
  stats_.shed_total.fetch_add(1, std::memory_order_relaxed);
  stats_.decisions_degraded.fetch_add(1, std::memory_order_relaxed);
  DecisionReply reply =
      degraded_reply(request_id, pending.features, ReplyStatus::kDegraded,
                     DegradedReason::kQueueSaturated);
  stats_.replies_total.fetch_add(1, std::memory_order_relaxed);
  stats_.latency_us.observe(0.0);
  stats_.latency_window.observe(0.0, stats_.now_us());
  if (config_.spans != nullptr)
    config_.spans->instant("serve.degraded", "serve", trace_id, kIoLane,
                           {{"reason", "queue_saturated"},
                            {"request_id", std::to_string(request_id)}});
  queue_reply(conn, encode_decision_reply(reply));
}

void Server::queue_reply(Conn& conn, const std::string& frame_bytes) {
  if (conn.fd < 0) return;
  conn.outbuf.append(frame_bytes);
  if (conn.outbuf.size() - conn.outbuf_off > config_.max_write_buffer) {
    // Slow-loris writer: the peer is not draining replies. Cut it loose —
    // unbounded buffering would let one bad client exhaust the server.
    stats_.slow_writer_disconnects.fetch_add(1, std::memory_order_relaxed);
    conn.fd = mark_closed(conn);
    return;
  }
  // Opportunistic flush keeps latency low without waiting for the next
  // poll() round; leftover bytes go through POLLOUT.
  write_ready(conn);
}

void Server::close_conn(std::size_t index) {
  Conn& conn = conns_[index];
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  std::size_t active = 0;
  for (const Conn& c : conns_)
    if (c.fd >= 0) ++active;
  stats_.connections_active.store(active, std::memory_order_relaxed);
}

void Server::drain_outbound() {
  std::vector<OutboundReply> ready;
  {
    std::lock_guard<std::mutex> lock(outbound_mutex_);
    ready.swap(outbound_);
  }
  for (OutboundReply& reply : ready) {
    Conn* conn = nullptr;
    for (Conn& c : conns_)
      if (c.id == reply.conn_id && c.fd >= 0) {
        conn = &c;
        break;
      }
    if (conn == nullptr) {
      stats_.orphaned_replies.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    queue_reply(*conn, reply.bytes);
    if (config_.spans != nullptr && reply.trace_id != 0) {
      // The I/O-side tail of the request: reply bytes handed to the socket
      // (or its outbound buffer). Starts where serve.inference ended.
      SpanEvent write_span;
      write_span.name = "serve.reply_write";
      write_span.cat = "serve";
      write_span.trace_id = reply.trace_id;
      write_span.span_id = config_.spans->next_span_id();
      write_span.parent_id = reply.parent_span;
      write_span.tid = kIoLane;
      write_span.ts_us = reply.done_us;
      write_span.dur_us =
          std::max<std::int64_t>(0, config_.spans->now_us() - reply.done_us);
      config_.spans->record(std::move(write_span));
    }
  }
}

void Server::protocol_error(Conn& conn, const std::string& message) {
  stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  SI_LOG_WARN("serve", "protocol error: " + message);
  queue_reply(conn, encode_error(message));
  conn.closing = true;  // flush the error frame, then close
}

// ---------------------------------------------------------------------------
// Inference thread
// ---------------------------------------------------------------------------

DecisionReply Server::degraded_reply(std::uint64_t request_id,
                                     const std::vector<double>& features,
                                     ReplyStatus status,
                                     DegradedReason reason) const {
  DecisionReply reply;
  reply.request_id = request_id;
  reply.status = status;
  reply.reason = reason;
  if (config_.obs_size == 8 && features.size() == 8) {
    reply.source = DecisionSource::kRule;
    reply.reject = rule_inspector_reject(features, config_.rule) ? 1 : 0;
  } else {
    reply.source = DecisionSource::kBase;
    reply.reject = 0;  // base-policy behaviour: always accept
  }
  return reply;
}

void Server::inference_loop() {
  PolicyBatch batch(config_.obs_size);
  if (config_.spans != nullptr)
    batch.set_spans(config_.spans, "serve", kInferLane);
  std::vector<PendingRequest> taken;
  std::vector<std::size_t> model_rows;  ///< indices into `taken`
  std::vector<OutboundReply> replies;

  while (true) {
    taken.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) break;
        continue;
      }
      // Coalesce: linger for up to max_wait_us after the first pending
      // request so concurrent connections share one batched forward, but
      // flush immediately at max_batch (or when draining).
      const auto flush_at =
          Clock::now() + std::chrono::microseconds(config_.max_wait_us);
      while (!stopping_.load(std::memory_order_acquire) &&
             static_cast<int>(queue_.size()) < config_.max_batch) {
        if (queue_cv_.wait_until(lock, flush_at) == std::cv_status::timeout)
          break;
      }
      const std::size_t n = std::min<std::size_t>(
          queue_.size(), static_cast<std::size_t>(config_.max_batch));
      for (std::size_t i = 0; i < n; ++i) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
    }

    // --- one coalesced batch, outside the queue lock ---
    std::uint64_t epoch = 0;
    const std::shared_ptr<const ServedModel> model = slot_.acquire(&epoch);
    const Clock::time_point now = Clock::now();
    const std::int64_t taken_us =
        config_.spans != nullptr ? config_.spans->now_us() : 0;
    replies.clear();
    batch.clear();
    model_rows.clear();

    std::vector<DecisionReply> out(taken.size());
    for (std::size_t i = 0; i < taken.size(); ++i) {
      const PendingRequest& req = taken[i];
      if (req.has_deadline && now > req.deadline) {
        stats_.deadline_exceeded_total.fetch_add(1, std::memory_order_relaxed);
        if (config_.spans != nullptr)
          config_.spans->instant(
              "serve.deadline_exceeded", "serve", req.trace_id, kInferLane,
              {{"request_id", std::to_string(req.request_id)}});
        out[i] = degraded_reply(req.request_id, req.features,
                                ReplyStatus::kDeadlineExceeded,
                                DegradedReason::kNone);
        continue;
      }
      if (model == nullptr) {
        stats_.decisions_degraded.fetch_add(1, std::memory_order_relaxed);
        if (config_.spans != nullptr)
          config_.spans->instant(
              "serve.degraded", "serve", req.trace_id, kInferLane,
              {{"reason", "no_model"},
               {"request_id", std::to_string(req.request_id)}});
        out[i] = degraded_reply(req.request_id, req.features,
                                ReplyStatus::kDegraded,
                                DegradedReason::kNoModel);
        continue;
      }
      batch.push_row(req.features);
      model_rows.push_back(i);
    }

    if (!model_rows.empty()) {
      stats_.batches.fetch_add(1, std::memory_order_relaxed);
      stats_.batched_rows.fetch_add(model_rows.size(),
                                    std::memory_order_relaxed);
      const std::span<const double> logits =
          batch.infer(model->ac.policy_net());
      bool faulted = false;
      for (std::size_t j = 0; j < model_rows.size(); ++j) {
        const std::size_t i = model_rows[j];
        const PendingRequest& req = taken[i];
        const double logit = logits[j];
        DecisionReply& reply = out[i];
        if (!std::isfinite(logit)) {
          // The model is broken (finite inputs were admitted): degrade this
          // decision and trigger the last-good rollback below.
          faulted = true;
          stats_.inference_faults.fetch_add(1, std::memory_order_relaxed);
          stats_.decisions_degraded.fetch_add(1, std::memory_order_relaxed);
          if (config_.spans != nullptr)
            config_.spans->instant(
                "serve.inference_fault", "serve", req.trace_id, kInferLane,
                {{"request_id", std::to_string(req.request_id)},
                 {"epoch", std::to_string(epoch)}});
          reply = degraded_reply(req.request_id, req.features,
                                 ReplyStatus::kDegraded,
                                 DegradedReason::kInferenceFault);
          continue;
        }
        stats_.decisions_model.fetch_add(1, std::memory_order_relaxed);
        reply.request_id = req.request_id;
        reply.status = ReplyStatus::kOk;
        reply.source = DecisionSource::kModel;
        reply.reject = logit > 0.0 ? 1 : 0;
        reply.prob = sigmoid(logit);
        reply.epoch = epoch;
      }
      if (faulted && slot_.report_fault(epoch)) {
        SI_LOG_ERROR("serve", "rolled back to last-good model after "
                              "inference fault");
        if (config_.spans != nullptr)
          config_.spans->instant("serve.rollback", "serve", 0, kInferLane,
                                 {{"epoch", std::to_string(epoch)}});
      }
    }

    const Clock::time_point done = Clock::now();
    const std::int64_t done_us =
        config_.spans != nullptr ? config_.spans->now_us() : 0;
    const std::int64_t window_now_us = stats_.now_us();
    for (std::size_t i = 0; i < taken.size(); ++i) {
      const PendingRequest& req = taken[i];
      stats_.replies_total.fetch_add(1, std::memory_order_relaxed);
      const double latency = micros_between(req.received, done);
      stats_.latency_us.observe(latency);
      stats_.latency_window.observe(latency, window_now_us);
      stats_.queue_wait_us.observe(micros_between(req.received, now));
      stats_.infer_us.observe(micros_between(now, done));

      OutboundReply reply;
      reply.conn_id = req.conn_id;
      reply.bytes = encode_decision_reply(out[i]);
      if (config_.spans != nullptr) {
        // Three contiguous child segments on the collector clock:
        //   admit      [received_us, enqueued_us)   (recorded by the I/O
        //                                            thread at admission)
        //   queue_wait [enqueued_us, taken_us)
        //   inference  [taken_us,    done_us)
        // so dur(admit) + dur(queue_wait) + dur(inference) == dur(request)
        // exactly — the trace is self-checking against the latency metric.
        SpanEvent queue_span;
        queue_span.name = "serve.queue_wait";
        queue_span.cat = "serve";
        queue_span.trace_id = req.trace_id;
        queue_span.span_id = config_.spans->next_span_id();
        queue_span.parent_id = req.root_span;
        queue_span.tid = kQueueLane;
        queue_span.ts_us = req.enqueued_us;
        queue_span.dur_us = std::max<std::int64_t>(0, taken_us -
                                                          req.enqueued_us);
        config_.spans->record(std::move(queue_span));

        SpanEvent infer_span;
        infer_span.name = "serve.inference";
        infer_span.cat = "serve";
        infer_span.trace_id = req.trace_id;
        infer_span.span_id = config_.spans->next_span_id();
        infer_span.parent_id = req.root_span;
        infer_span.tid = kInferLane;
        infer_span.ts_us = taken_us;
        infer_span.dur_us = std::max<std::int64_t>(0, done_us - taken_us);
        config_.spans->record(std::move(infer_span));

        SpanEvent root;
        root.name = "serve.request";
        root.cat = "serve";
        root.trace_id = req.trace_id;
        root.span_id = req.root_span;
        root.tid = kInferLane;
        root.ts_us = req.received_us;
        root.dur_us = std::max<std::int64_t>(0, done_us - req.received_us);
        root.args.emplace_back("request_id", std::to_string(req.request_id));
        root.args.emplace_back("status",
                               std::to_string(static_cast<int>(out[i].status)));
        config_.spans->record(std::move(root));

        reply.trace_id = req.trace_id;
        reply.parent_span = req.root_span;
        reply.done_us = done_us;
      }
      replies.push_back(std::move(reply));
    }
    {
      std::lock_guard<std::mutex> lock(outbound_mutex_);
      for (auto& reply : replies) outbound_.push_back(std::move(reply));
    }
    wake_io();
  }
  inference_done_.store(true, std::memory_order_release);
  wake_io();
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

void Server::build_stats_registry(MetricsRegistry& registry) const {
  const auto counter = [&](const char* name,
                           const std::atomic<std::uint64_t>& value) {
    registry.counter(name).inc(value.load(std::memory_order_relaxed));
  };
  counter("serve.connections_accepted", stats_.connections_accepted);
  counter("serve.connections_refused", stats_.connections_refused);
  counter("serve.requests_total", stats_.requests_total);
  counter("serve.replies_total", stats_.replies_total);
  counter("serve.decisions_model", stats_.decisions_model);
  counter("serve.decisions_degraded", stats_.decisions_degraded);
  counter("serve.shed_total", stats_.shed_total);
  counter("serve.deadline_exceeded_total", stats_.deadline_exceeded_total);
  counter("serve.inference_faults", stats_.inference_faults);
  counter("serve.non_finite_inputs", stats_.non_finite_inputs);
  counter("serve.bad_requests", stats_.bad_requests);
  counter("serve.protocol_errors", stats_.protocol_errors);
  counter("serve.slow_writer_disconnects", stats_.slow_writer_disconnects);
  counter("serve.orphaned_replies", stats_.orphaned_replies);
  counter("serve.swaps_ok", stats_.swaps_ok);
  counter("serve.swaps_failed", stats_.swaps_failed);
  counter("serve.model_rollbacks", slot_.rollbacks());
  counter("serve.batches", stats_.batches);
  counter("serve.batched_rows", stats_.batched_rows);
  counter("serve.http_requests", stats_.http_requests);
  registry.gauge("serve.connections_active")
      .set(static_cast<double>(
          stats_.connections_active.load(std::memory_order_relaxed)));
  registry.gauge("serve.queue_depth")
      .set(static_cast<double>(
          stats_.queue_depth.load(std::memory_order_relaxed)));
  registry.gauge("serve.model_epoch").set(static_cast<double>(slot_.epoch()));

  const std::vector<double>& bounds = ServerStats::latency_bounds_us();
  Histogram& latency = registry.histogram("serve.latency_us", bounds);
  stats_.latency_us.snapshot_into(latency);
  registry.gauge("serve.p50_latency_us").set(histogram_quantile(latency, 0.5));
  registry.gauge("serve.p99_latency_us").set(histogram_quantile(latency, 0.99));
  registry.gauge("serve.p999_latency_us")
      .set(histogram_quantile(latency, 0.999));

  // Pipeline breakdown: time waiting in the admission queue vs. time on
  // the inference thread (receipt -> taken -> reply encoded).
  Histogram& queue_wait = registry.histogram("serve.queue_wait_us", bounds);
  stats_.queue_wait_us.snapshot_into(queue_wait);
  registry.gauge("serve.queue_wait_p50_us")
      .set(histogram_quantile(queue_wait, 0.5));
  registry.gauge("serve.queue_wait_p99_us")
      .set(histogram_quantile(queue_wait, 0.99));
  Histogram& infer = registry.histogram("serve.infer_us", bounds);
  stats_.infer_us.snapshot_into(infer);
  registry.gauge("serve.infer_p50_us").set(histogram_quantile(infer, 0.5));
  registry.gauge("serve.infer_p99_us").set(histogram_quantile(infer, 0.99));

  // Rolling last-N-seconds view (see ServerConfig::window_slots): the
  // cumulative histograms above never forget, these do.
  const std::int64_t now_us = stats_.now_us();
  const Histogram window = stats_.latency_window.merge(now_us);
  Histogram& window_out = registry.histogram("serve.window.latency_us", bounds);
  for (std::size_t i = 0; i < window.counts().size(); ++i)
    if (window.counts()[i] > 0) window_out.merge_bucket(i, window.counts()[i], 0.0);
  window_out.merge_bucket(window.counts().size() - 1, 0, window.sum());
  registry.gauge("serve.window.count")
      .set(static_cast<double>(window.count()));
  registry.gauge("serve.window.p50_latency_us")
      .set(histogram_quantile(window, 0.5));
  registry.gauge("serve.window.p99_latency_us")
      .set(histogram_quantile(window, 0.99));
  registry.gauge("serve.window.p999_latency_us")
      .set(histogram_quantile(window, 0.999));
  registry.gauge("serve.window.req_per_s")
      .set(stats_.reply_rate.update(
          stats_.replies_total.load(std::memory_order_relaxed), now_us));
}

std::string Server::stats_json() const {
  MetricsRegistry registry;
  build_stats_registry(registry);
  return registry.to_json();
}

std::string Server::metrics_text() const {
  MetricsRegistry registry;
  build_stats_registry(registry);
  return prometheus_text(registry);
}

}  // namespace si::serve
