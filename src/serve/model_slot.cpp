#include "serve/model_slot.hpp"

#include <atomic>

#include "obs/log.hpp"
#include "rl/model_io.hpp"

namespace si::serve {

std::shared_ptr<const ServedModel> ModelSlot::acquire(
    std::uint64_t* epoch_out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch_out != nullptr)
    *epoch_out = epoch_.load(std::memory_order_acquire);
  return current_;
}

PublishResult ModelSlot::publish(std::shared_ptr<ServedModel> model,
                                 bool validate) {
  PublishResult result;
  if (model == nullptr) {
    result.epoch = epoch();
    result.message = "null model";
    return result;
  }
  if (validate) {
    const ModelValidationReport report =
        validate_model(model->ac, expected_obs_);
    if (!report.ok) {
      result.epoch = epoch();
      result.message = "validation failed: " + report.summary() +
                       " (keeping last-good model)";
      SI_LOG_ERROR("serve", "model swap rejected from " + model->origin +
                                ": " + result.message);
      return result;
    }
  }
  // Refresh the batched-kernel transpose cache while the model is still
  // private to this thread; after publication the net is only read.
  model->ac.policy_net().refresh_transpose();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_good_ = current_;
    current_ = std::move(model);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  result.ok = true;
  result.epoch = epoch();
  SI_LOG_INFO("serve",
              "model published, serving epoch " + std::to_string(result.epoch));
  return result;
}

PublishResult ModelSlot::publish_from_file(const std::string& path) {
  int ckpt_epoch = 0;
  try {
    ActorCritic ac = load_served_model_file(path, &ckpt_epoch);
    return publish(
        std::make_shared<ServedModel>(std::move(ac), path, ckpt_epoch));
  } catch (const std::exception& e) {
    PublishResult result;
    result.epoch = epoch();
    result.message = std::string(e.what()) + " (keeping last-good model)";
    SI_LOG_ERROR("serve", "model swap failed: " + result.message);
    return result;
  }
}

bool ModelSlot::report_fault(std::uint64_t fault_epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Only the first report against the *current* epoch rolls back; later
  // reports from batches that raced the swap are stale.
  if (fault_epoch != epoch_.load(std::memory_order_acquire)) return false;
  if (last_good_ == nullptr || current_ == last_good_) return false;
  SI_LOG_ERROR("serve", "non-finite logit from model (" + current_->origin +
                            "); rolling back to last-good (" +
                            last_good_->origin + ")");
  current_ = last_good_;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace si::serve
