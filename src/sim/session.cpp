#include "sim/session.hpp"

#include "common/check.hpp"

namespace si {

SimSession::SimSession(Simulator& sim, const std::vector<Job>& jobs,
                       SchedulingPolicy& policy, bool inspect)
    : sim_(&sim) {
  sim_->session_begin(jobs, policy, inspect);
}

SimSession::~SimSession() {
  if (!finished_) sim_->session_abandon();
}

bool SimSession::done() const {
  return sim_->session_state_ == Simulator::SessionState::kDone;
}

const InspectionView& SimSession::view() const {
  SI_REQUIRE(sim_->session_state_ ==
             Simulator::SessionState::kAwaitingAction);
  return sim_->pending_view_;
}

void SimSession::step(bool reject) { sim_->session_apply(reject); }

SequenceResult SimSession::take_result() {
  SI_REQUIRE(!finished_);
  finished_ = true;
  return sim_->session_finish();
}

}  // namespace si
