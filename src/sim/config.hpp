// Simulator knobs, matching §3.2 / §4.1 of the paper, plus the
// fault-injection extension (see sim/fault_model.hpp).
#pragma once

#include "sim/fault_model.hpp"

namespace si {

struct SimConfig {
  /// EASY backfilling on/off (§4.4.5). Off by default, as in the paper's
  /// main experiments.
  bool backfill = false;

  /// MAX_INTERVAL: the maximal time the base scheduler waits before retrying
  /// after a rejection (paper: 600 s). The next scheduling point after a
  /// rejection is min(next arrival, next completion, now + max_interval).
  double max_interval = 600.0;

  /// MAX_REJECTION_TIMES: once a job has been rejected this many times the
  /// inspector is bypassed for it (paper: 72, i.e. at most ~12 h of delay).
  int max_rejection_times = 72;

  /// Fault injection (node drains, job failures, estimate-wall kills).
  /// Inert unless faults.enabled is set: the disabled simulator is
  /// bit-identical to the fault-free implementation.
  FaultConfig faults;
};

}  // namespace si
