// Simulator knobs, matching §3.2 / §4.1 of the paper, plus the
// fault-injection extension (see sim/fault_model.hpp).
#pragma once

#include "sim/fault_model.hpp"

namespace si {

class SimTracer;        // obs/trace.hpp
class MetricsRegistry;  // obs/metrics_registry.hpp
class SimOracle;        // sim/oracle.hpp

struct SimConfig {
  /// EASY backfilling on/off (§4.4.5). Off by default, as in the paper's
  /// main experiments.
  bool backfill = false;

  /// MAX_INTERVAL: the maximal time the base scheduler waits before retrying
  /// after a rejection (paper: 600 s). The next scheduling point after a
  /// rejection is min(next arrival, next completion, now + max_interval).
  double max_interval = 600.0;

  /// MAX_REJECTION_TIMES: once a job has been rejected this many times the
  /// inspector is bypassed for it (paper: 72, i.e. at most ~12 h of delay).
  int max_rejection_times = 72;

  /// Fault injection (node drains, job failures, estimate-wall kills).
  /// Inert unless faults.enabled is set: the disabled simulator is
  /// bit-identical to the fault-free implementation.
  FaultConfig faults;

  /// Event tracer (non-owning; must outlive every run). When null — the
  /// default — no event is constructed and the simulator is bit-identical
  /// to the untraced implementation. Tracing writes simulated time only,
  /// so same-seed runs emit byte-identical traces.
  SimTracer* tracer = nullptr;

  /// Metrics registry (non-owning). When set, each run() increments the
  /// sim.* counters/histograms documented in DESIGN.md §5. Null — the
  /// default — records nothing. Not thread-safe: give concurrent
  /// simulators (e.g. trainer rollout workers) a null registry.
  MetricsRegistry* metrics = nullptr;

  /// Runtime correctness oracle (non-owning; see sim/oracle.hpp and
  /// DESIGN.md §7). A pure observer called at every scheduling transition;
  /// null — the default — skips every hook and leaves the simulator
  /// bit-identical to the unchecked implementation. Not thread-safe: like
  /// tracer/metrics, concurrent simulators must use a null oracle.
  SimOracle* oracle = nullptr;
};

}  // namespace si
