// Deterministic, seeded fault injection for the cluster simulator — the
// failure modes a production HPC deployment sees that the paper's idealized
// SchedGym does not model:
//
//   * Node drains: a seeded Poisson process takes a slice of the processor
//     pool out of service (free processors are collected immediately; busy
//     ones are collected as their jobs finish, like a graceful `scontrol
//     drain`), and returns it after a fixed repair time.
//   * Job failures: each execution attempt of a job may die partway through
//     its runtime; a failed job re-enters the waiting queue with a bounded
//     requeue budget, after which it is recorded as killed.
//   * Estimate-wall kills: a job whose actual runtime exceeds its user
//     estimate is terminated at the estimate, Slurm-style.
//
// All draws are deterministic: drain timing flows from one seeded stream and
// per-attempt failure decisions are pure hashes of (seed, job id, attempt),
// so an identical (sequence, policy, fault seed) run is bit-reproducible no
// matter what the scheduler decides. With `enabled == false` the simulator
// takes none of the fault code paths and behaves bit-identically to the
// fault-free implementation.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/job.hpp"

namespace si {

/// Fault-injection knobs, carried inside SimConfig. Everything is inert
/// unless `enabled` is set.
struct FaultConfig {
  bool enabled = false;

  /// Seed of the drain-event stream and the per-job failure hashes.
  std::uint64_t seed = 0xfa173eedULL;

  /// Mean seconds between node-drain events (exponential gaps); 0 disables
  /// drains while keeping the other fault kinds active.
  double drain_interval = 0.0;

  /// Fraction of the cluster drained per event (at least one processor).
  double drain_fraction = 0.05;

  /// Seconds a drained slice stays out of service before recovering.
  double drain_duration = 3600.0;

  /// Probability that one execution attempt of a job fails partway through.
  double job_failure_prob = 0.0;

  /// How many times a failed job re-enters the queue before it is recorded
  /// as killed (mirrors Slurm's bounded requeue).
  int max_requeues = 2;

  /// Kill jobs at their user estimate when the actual runtime exceeds it.
  bool estimate_wall = false;
};

/// One capacity change applied during a simulated sequence, logged so tests
/// and analyses can reconstruct the exact capacity timeline:
/// capacity(t) = total_procs - sum(drain procs <= t) + sum(recover procs <= t).
struct FaultEvent {
  enum class Kind {
    kDrain,    ///< procs collected out of service (at drain time or as
               ///< busy processors are released by finishing jobs)
    kRecover,  ///< procs returned to service
  };
  Kind kind = Kind::kDrain;
  Time time = 0.0;
  int procs = 0;
};

/// The seeded fault source consulted by Simulator::run. Owns the drain-event
/// stream; the drained/pending bookkeeping lives in the simulator.
class FaultModel {
 public:
  /// Disabled model: every query reports "no fault".
  FaultModel() = default;

  /// Validates `config` (only when enabled) against the cluster size.
  FaultModel(const FaultConfig& config, int total_procs);

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  /// Re-seeds the drain stream and schedules the first drain after `start`.
  /// Must be called at the beginning of every simulated sequence.
  void reset(Time start);

  /// Time of the next drain event; +infinity when drains are disabled.
  Time next_drain() const { return next_drain_; }

  /// Fires the pending drain event: returns the requested drain size in
  /// processors and schedules the following drain. The caller may collect
  /// fewer processors (capacity floor); the stream advances identically
  /// either way.
  int fire_drain();

  /// Per-attempt failure decision for one execution of a job. Pure function
  /// of (seed, job id, attempt): independent of scheduling order.
  struct FailureDraw {
    bool fails = false;
    double fraction = 0.0;  ///< fraction of the runtime executed before dying
  };
  FailureDraw failure(std::int64_t job_id, int attempt) const;

 private:
  FaultConfig config_;
  int total_procs_ = 0;
  Rng drain_rng_{0};
  Time next_drain_ = 0.0;
};

}  // namespace si
