// The resumable step API over the simulator (§3.4 training loop shape):
// control is inverted relative to the Inspector callback hook. A session
// advances the event loop to the next scheduling point whose decision is
// inspectable, yields that decision's InspectionView as an observation,
// accepts the reject/accept verdict via step(), and reports the terminal
// SequenceResult once the sequence completes.
//
// Lifecycle:
//
//   SimSession session(sim, jobs, policy);     // runs to 1st decision
//   while (!session.done())
//     session.step(decide(session.view()));    // verdict in, advance
//   SequenceResult result = session.take_result();
//
// The callback API (Simulator::run) is a thin adapter over this same state
// machine, so session-driven and callback-driven executions share every
// code path: same events in the same order, bit-identical results and
// byte-identical traces. This is what lets core/vec_env.* interleave many
// sessions and batch their policy inference without changing any outcome.
#pragma once

#include <vector>

#include "sched/policy.hpp"
#include "sim/inspector.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace si {

/// A resumable run of one job sequence on a borrowed Simulator. The
/// simulator hosts at most one session at a time: beginning a new run
/// (another session or Simulator::run) on the same simulator invalidates
/// this one. `jobs` and `policy` must outlive the session.
class SimSession {
 public:
  /// Binds to `sim` and advances to the first inspectable decision. With
  /// `inspect` false the whole sequence runs to completion immediately,
  /// exactly like Simulator::run with a null inspector (no views are
  /// built, no inspect events are emitted, inspections stays 0).
  SimSession(Simulator& sim, const std::vector<Job>& jobs,
             SchedulingPolicy& policy, bool inspect = true);

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  /// An unfinished session releases the simulator for reuse on destruction.
  ~SimSession();

  /// True once the sequence has completed; take_result() is then available
  /// and view()/step() are not.
  bool done() const;

  /// The pending decision's observation. Valid while !done(), until the
  /// next step(): its pointers reference simulator-owned scratch that the
  /// next advance overwrites.
  const InspectionView& view() const;

  /// Applies the verdict for the pending decision (true = reject) and
  /// advances to the next inspectable decision or completion.
  void step(bool reject);

  /// Terminal per-sequence outcome; callable once, after done().
  SequenceResult take_result();

 private:
  Simulator* sim_;
  bool finished_ = false;  ///< take_result() already consumed the run
};

}  // namespace si
