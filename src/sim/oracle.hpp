// The correctness-oracle hook the simulator exposes (the seam the
// src/check/ subsystem plugs into). Like SimTracer, an oracle is a pure
// observer: the simulator calls the hooks below at every semantically
// meaningful state transition, and never lets the oracle influence a
// scheduling decision. With SimConfig::oracle == nullptr (the default) no
// hook is invoked and the simulator behaves bit-identically to the
// unchecked implementation.
//
// The hooks deliberately expose *redundant* state (e.g. the simulator's own
// free-processor count and EASY shadow) so an oracle can maintain an
// independent mirror and cross-check the two — a differential check inside
// one process. The production implementation is si::InvariantOracle in
// src/check/invariant_oracle.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/job.hpp"

namespace si {

struct SimConfig;
struct SequenceMetrics;

/// Observer of one simulated sequence. All hooks default to no-ops so
/// oracles can implement exactly the transitions they care about. Hook
/// invocations are strictly ordered (the simulator is single-threaded
/// within a run); `index` is the job's position in the input sequence.
class SimOracle {
 public:
  virtual ~SimOracle() = default;

  /// run() entered, after input validation. `jobs` outlives the run.
  virtual void on_run_begin(const std::vector<Job>& jobs, int total_procs,
                            const SimConfig& config) {
    (void)jobs, (void)total_procs, (void)config;
  }

  /// Simulated time advanced from `from` to `to` (must be monotonic).
  virtual void on_time_advance(Time from, Time to) { (void)from, (void)to; }

  /// The base policy picked `index` as its top-priority candidate.
  virtual void on_sched_point(Time now, std::size_t index, int free_procs,
                              std::size_t waiting_jobs) {
    (void)now, (void)index, (void)free_procs, (void)waiting_jobs;
  }

  /// The inspector was consulted about `index`; `prior_rejections` is the
  /// job's rejection count before this consultation.
  virtual void on_inspect(Time now, std::size_t index, int prior_rejections,
                          bool rejected) {
    (void)now, (void)index, (void)prior_rejections, (void)rejected;
  }

  /// An accepted-but-unrunnable candidate took the blocked reservation.
  virtual void on_block(Time now, std::size_t index) { (void)now, (void)index; }

  /// About to EASY-backfill around the blocked job: the simulator's own
  /// shadow computation (earliest reserved start and spare processors at
  /// that instant) for the oracle to cross-check and to judge the
  /// subsequent backfilled starts against.
  virtual void on_backfill_window(Time now, std::size_t blocked_index,
                                  Time shadow_time, int shadow_extra) {
    (void)now, (void)blocked_index, (void)shadow_time, (void)shadow_extra;
  }

  /// Job `index` started one execution attempt; `free_procs_after` is the
  /// free-pool size after allocation, `backfilled` marks EASY starts.
  virtual void on_job_start(Time now, std::size_t index, const Job& job,
                            int free_procs_after, bool backfilled) {
    (void)now, (void)index, (void)job, (void)free_procs_after, (void)backfilled;
  }

  /// Job `index` released its processors (completion, kill, or mid-run
  /// failure). `requeued` means the attempt failed and the job re-entered
  /// the waiting queue; `record` is its current record (final for
  /// non-requeued releases).
  virtual void on_job_release(Time now, std::size_t index,
                              const JobRecord& record, int procs,
                              int free_procs_after, bool requeued) {
    (void)now, (void)index, (void)record, (void)procs, (void)free_procs_after,
        (void)requeued;
  }

  /// Drained capacity changed: `delta` processors moved out of (positive) or
  /// back into (negative) service; `drained_total` / `free_procs` are the
  /// post-change pools.
  virtual void on_capacity_change(Time now, int delta, int drained_total,
                                  int free_procs) {
    (void)now, (void)delta, (void)drained_total, (void)free_procs;
  }

  /// run() finished; `records` and `metrics` are the returned result.
  virtual void on_run_end(const std::vector<JobRecord>& records,
                          const SequenceMetrics& metrics) {
    (void)records, (void)metrics;
  }
};

}  // namespace si
