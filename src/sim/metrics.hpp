// Sequence-level performance metrics (§2.1, §4.4.3, §4.4.4):
//   wait   — average job waiting time
//   bsld   — average bounded job slowdown (10 s interactivity threshold)
//   mbsld  — maximal bounded job slowdown of the sequence
//   util   — executed node-seconds / available node-seconds over the makespan
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace si {

/// Which metric a scheduler / SchedInspector optimizes. Lower is better for
/// all three job-execution metrics.
enum class Metric { kBsld, kWait, kMaxBsld };

/// Parses "bsld" / "wait" / "mbsld"; throws std::out_of_range (listing the
/// known names) otherwise.
Metric metric_from_name(const std::string& name);
std::string metric_name(Metric metric);

/// All parseable metric names, in declaration order.
const std::vector<std::string>& known_metric_names();

struct SequenceMetrics {
  std::size_t jobs = 0;
  double avg_wait = 0.0;
  double avg_bsld = 0.0;
  double max_bsld = 0.0;
  double utilization = 0.0;
  double makespan = 0.0;
  std::size_t inspections = 0;  ///< times the inspector was consulted
  std::size_t rejections = 0;   ///< times it rejected

  // --- fault-model counters (all zero when fault injection is off) ---
  std::size_t requeues = 0;     ///< failed attempts that re-entered the queue
  std::size_t kills = 0;        ///< jobs terminated past the requeue budget
  std::size_t wall_kills = 0;   ///< jobs killed at their estimate wall
  std::size_t drain_events = 0; ///< node-drain events fired
  /// Node-seconds unavailable while drained plus node-seconds burned by
  /// failed execution attempts.
  double lost_node_seconds = 0.0;

  /// The value of the chosen metric (avg_wait / avg_bsld / max_bsld).
  double value(Metric metric) const;

  /// Rejection ratio (rejections / inspections; 0 when never consulted).
  double rejection_ratio() const;
};

/// Aggregates per-job records into sequence metrics. Every record must have
/// started (the simulator runs sequences to completion).
SequenceMetrics compute_metrics(const std::vector<JobRecord>& records,
                                int total_procs);

}  // namespace si
