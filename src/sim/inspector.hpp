// The inspector hook the simulator exposes (§3.2). At every scheduling
// point, after the base policy has picked its top-priority job, the
// simulator consults the inspector (unless the job exhausted its rejection
// budget). Returning true cancels the scheduling: the job goes back to the
// waiting queue and the simulator moves to the next scheduling point.
//
// The view deliberately surfaces the raw scheduling context — feature
// engineering (§3.3) lives in src/core/features.*, not here — so alternative
// inspectors (rule-based, random, oracle) can be built on the same hook.
//
// The callback is one of two equivalent ways to drive inspection. The other
// is the resumable session API (sim/session.hpp): a SimSession advances to
// each inspectable decision, exposes the same InspectionView as a pending
// observation, and takes the verdict via step(reject). Simulator::run is a
// thin adapter that replays an Inspector over a session, so both styles
// execute identical code paths; an InspectionView obtained from a session
// stays valid from the pause until the next step() instead of only for the
// duration of an inspect() call.
#pragma once

#include <vector>

#include "workload/job.hpp"

namespace si {

/// Everything an inspector may observe at one scheduling point. Pointers are
/// only valid for the duration of the inspect() call.
struct InspectionView {
  Time now = 0.0;
  const Job* job = nullptr;       ///< the base policy's top-priority job
  double job_wait = 0.0;          ///< how long it has waited so far
  int job_rejections = 0;         ///< times this job was already rejected
  int max_rejection_times = 0;    ///< the configured budget
  int free_procs = 0;
  int total_procs = 0;
  bool backfill_enabled = false;
  int backfillable_jobs = 0;      ///< EASY-backfillable waiting jobs were the
                                  ///< candidate accepted-but-blocked (0 when
                                  ///< it is runnable or backfill is off)
  /// Waiting jobs other than the candidate.
  const std::vector<const Job*>* waiting = nullptr;

  /// True when the candidate could start immediately.
  bool runnable() const { return job != nullptr && job->procs <= free_procs; }
};

/// Inspector interface. Implementations: the RL SchedInspector
/// (core/rl_inspector.*), the distilled rule baseline
/// (core/rule_inspector.*), plus the always-accept base behaviour
/// (nullptr).
class Inspector {
 public:
  virtual ~Inspector() = default;

  /// True => reject this scheduling decision.
  virtual bool reject(const InspectionView& view) = 0;
};

}  // namespace si
