#include "sim/fault_model.hpp"

#include <limits>

#include "common/check.hpp"

namespace si {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

// Maps a 64-bit draw to [0, 1) with 53 bits of precision.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

FaultModel::FaultModel(const FaultConfig& config, int total_procs)
    : config_(config), total_procs_(total_procs), next_drain_(kInf) {
  if (!config_.enabled) return;
  SI_REQUIRE(total_procs_ > 0);
  SI_REQUIRE(config_.drain_interval >= 0.0);
  SI_REQUIRE(config_.drain_fraction >= 0.0 && config_.drain_fraction <= 1.0);
  SI_REQUIRE(config_.drain_duration > 0.0);
  // prob == 1.0 is allowed: every attempt fails and jobs terminate through
  // the requeue-then-kill path (useful for stress tests).
  SI_REQUIRE(config_.job_failure_prob >= 0.0 &&
             config_.job_failure_prob <= 1.0);
  SI_REQUIRE(config_.max_requeues >= 0);
}

void FaultModel::reset(Time start) {
  next_drain_ = kInf;
  if (!config_.enabled || config_.drain_interval <= 0.0) return;
  drain_rng_ = Rng(config_.seed);
  next_drain_ = start + drain_rng_.exponential(1.0 / config_.drain_interval);
}

int FaultModel::fire_drain() {
  SI_REQUIRE(next_drain_ < kInf);
  const double procs =
      config_.drain_fraction * static_cast<double>(total_procs_);
  const int requested = procs > 1.0 ? static_cast<int>(procs) : 1;
  next_drain_ += drain_rng_.exponential(1.0 / config_.drain_interval);
  return requested;
}

FaultModel::FailureDraw FaultModel::failure(std::int64_t job_id,
                                            int attempt) const {
  FailureDraw draw;
  if (!config_.enabled || config_.job_failure_prob <= 0.0) return draw;
  // One SplitMix64 stream per (job, attempt): failure decisions do not
  // depend on the order the scheduler starts jobs in.
  SplitMix64 mix(config_.seed ^
                 (static_cast<std::uint64_t>(job_id) * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<std::uint64_t>(attempt + 1) << 32));
  if (to_unit(mix.next()) >= config_.job_failure_prob) return draw;
  draw.fails = true;
  // Die somewhere in the middle of the run, never exactly at the start or
  // the natural completion.
  draw.fraction = 0.05 + 0.9 * to_unit(mix.next());
  return draw;
}

}  // namespace si
