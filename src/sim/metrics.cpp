#include "sim/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace si {

const std::vector<std::string>& known_metric_names() {
  static const std::vector<std::string> names = {"bsld", "wait", "mbsld"};
  return names;
}

Metric metric_from_name(const std::string& name) {
  if (name == "bsld") return Metric::kBsld;
  if (name == "wait") return Metric::kWait;
  if (name == "mbsld") return Metric::kMaxBsld;
  std::string message = "unknown metric: " + name + " (known:";
  for (const std::string& known : known_metric_names()) message += " " + known;
  throw std::out_of_range(message + ")");
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kBsld:
      return "bsld";
    case Metric::kWait:
      return "wait";
    case Metric::kMaxBsld:
      return "mbsld";
  }
  return "?";
}

double SequenceMetrics::value(Metric metric) const {
  switch (metric) {
    case Metric::kBsld:
      return avg_bsld;
    case Metric::kWait:
      return avg_wait;
    case Metric::kMaxBsld:
      return max_bsld;
  }
  return 0.0;
}

double SequenceMetrics::rejection_ratio() const {
  if (inspections == 0) return 0.0;
  return static_cast<double>(rejections) / static_cast<double>(inspections);
}

SequenceMetrics compute_metrics(const std::vector<JobRecord>& records,
                                int total_procs) {
  SI_REQUIRE(total_procs > 0);
  SequenceMetrics m;
  m.jobs = records.size();
  if (records.empty()) return m;
  double busy_node_seconds = 0.0;
  for (const JobRecord& r : records) {
    SI_REQUIRE(r.started());
    m.avg_wait += r.wait();
    const double bsld = r.bounded_slowdown();
    m.avg_bsld += bsld;
    m.max_bsld = std::max(m.max_bsld, bsld);
    m.makespan = std::max(m.makespan, r.finish);
    busy_node_seconds += r.run * static_cast<double>(r.procs);
    m.requeues += static_cast<std::size_t>(r.requeues);
    if (r.killed) ++m.kills;
    if (r.wall_killed) ++m.wall_kills;
  }
  const auto n = static_cast<double>(records.size());
  m.avg_wait /= n;
  m.avg_bsld /= n;
  if (m.makespan > 0.0)
    m.utilization =
        busy_node_seconds / (static_cast<double>(total_procs) * m.makespan);
  return m;
}

}  // namespace si
