#include "sim/simulator.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <utility>

#include "common/check.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/oracle.hpp"

namespace si {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::infinity();

// Min-heap on actual finish time.
struct RunningLater {
  template <typename R>
  bool operator()(const R& a, const R& b) const {
    return a.finish > b.finish;
  }
};
}  // namespace

Simulator::Simulator(int total_procs, SimConfig config)
    : total_procs_(total_procs),
      config_(config),
      faults_(config.faults, total_procs) {
  SI_REQUIRE(total_procs_ > 0);
  SI_REQUIRE(config_.max_interval > 0.0);
  SI_REQUIRE(config_.max_rejection_times >= 0);
}

SchedContext Simulator::context() const {
  SchedContext ctx;
  ctx.now = now_;
  ctx.total_procs = total_procs_;
  ctx.free_procs = free_procs_;
  return ctx;
}

bool Simulator::fits(std::size_t index) const {
  return (*jobs_)[index].procs <= free_procs_;
}

void Simulator::admit_arrivals() {
  const auto& jobs = *jobs_;
  while (next_arrival_ < jobs.size() && jobs[next_arrival_].submit <= now_) {
    waiting_.push_back(next_arrival_);
    if (config_.tracer != nullptr) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kSubmit;
      event.time = now_;
      event.job = jobs[next_arrival_].id;
      event.procs = jobs[next_arrival_].procs;
      event.submit = jobs[next_arrival_].submit;
      config_.tracer->on_event(event);
    }
    ++next_arrival_;
  }
}

void Simulator::apply_drain_delta(int delta) {
  if (delta == 0) return;
  lost_node_seconds_ +=
      static_cast<double>(drained_) * (now_ - last_drain_change_);
  last_drain_change_ = now_;
  drained_ += delta;
  SI_ENSURE(drained_ >= 0);
  FaultEvent event;
  event.kind = delta > 0 ? FaultEvent::Kind::kDrain : FaultEvent::Kind::kRecover;
  event.time = now_;
  event.procs = delta > 0 ? delta : -delta;
  fault_events_.push_back(event);
  if (config_.tracer != nullptr) {
    TraceEvent trace;
    trace.kind = delta > 0 ? TraceEvent::Kind::kDrain
                           : TraceEvent::Kind::kRestore;
    trace.time = now_;
    trace.procs = event.procs;
    config_.tracer->on_event(trace);
  }
  if (config_.oracle != nullptr)
    config_.oracle->on_capacity_change(now_, delta, drained_, free_procs_);
}

Time Simulator::next_fault_event() const {
  Time next = faults_.next_drain();
  if (!recoveries_.empty()) next = std::min(next, recoveries_.front().time);
  return next;
}

void Simulator::process_fault_events() {
  // Recoveries first: a recovery cancels any still-pending portion of its
  // drain, then returns the collected processors to service.
  while (!recoveries_.empty() && recoveries_.front().time <= now_) {
    const int procs = recoveries_.front().procs;
    recoveries_.erase(recoveries_.begin());
    const int cancelled = std::min(drain_pending_, procs);
    drain_pending_ -= cancelled;
    const int restored = procs - cancelled;
    if (restored > 0) {
      apply_drain_delta(-restored);
      free_procs_ += restored;
    }
  }
  // Drain events: collect from the free pool immediately; the remainder is
  // collected as running jobs release their processors (graceful drain).
  while (faults_.next_drain() <= now_) {
    const int requested = faults_.fire_drain();
    // Never drain the cluster below the largest job of the sequence, so
    // every job stays eventually runnable.
    const int headroom =
        total_procs_ - max_job_procs_ - (drained_ + drain_pending_);
    const int procs = std::min(requested, headroom);
    if (procs <= 0) continue;
    ++drain_fires_;
    const int collected = std::min(procs, free_procs_);
    if (collected > 0) {
      free_procs_ -= collected;
      apply_drain_delta(collected);
    }
    drain_pending_ += procs - collected;
    PendingRecovery recovery;
    recovery.time = now_ + faults_.config().drain_duration;
    recovery.procs = procs;
    const auto pos = std::upper_bound(
        recoveries_.begin(), recoveries_.end(), recovery,
        [](const PendingRecovery& a, const PendingRecovery& b) {
          return a.time < b.time;
        });
    recoveries_.insert(pos, recovery);
  }
}

void Simulator::process_completions() {
  while (!running_.empty() && running_.front().finish <= now_) {
    std::pop_heap(running_.begin(), running_.end(), RunningLater{});
    const Running done = running_.back();
    running_.pop_back();
    const auto release_it = std::lower_bound(
        est_releases_.begin(), est_releases_.end(),
        std::make_pair(done.estimated_finish, done.procs));
    SI_ENSURE(release_it != est_releases_.end() &&
              release_it->first == done.estimated_finish &&
              release_it->second == done.procs);
    est_releases_.erase(release_it);
    int released = done.procs;
    if (drain_pending_ > 0) {
      // Graceful drain: released processors feed the outstanding drain
      // before returning to the free pool.
      const int collected = std::min(released, drain_pending_);
      drain_pending_ -= collected;
      released -= collected;
      apply_drain_delta(collected);
    }
    free_procs_ += released;
    JobRecord& rec = records_[done.index];
    bool requeued = false;
    TraceEvent trace;
    trace.time = now_;
    trace.job = rec.id;
    trace.procs = done.procs;
    switch (done.outcome) {
      case Outcome::kComplete:
        ++completed_;
        trace.kind = TraceEvent::Kind::kFinish;
        trace.run = rec.run;
        break;
      case Outcome::kWallKilled:
        rec.wall_killed = true;
        rec.run = (*jobs_)[done.index].estimate;
        ++completed_;
        trace.kind = TraceEvent::Kind::kKill;
        trace.run = rec.run;
        trace.reason = "wall";
        break;
      case Outcome::kFailed: {
        const double elapsed = done.finish - rec.start;
        lost_node_seconds_ += elapsed * static_cast<double>(done.procs);
        if (rec.requeues < faults_.config().max_requeues) {
          ++rec.requeues;
          rec.start = -1.0;
          rec.finish = -1.0;
          waiting_.push_back(done.index);
          requeued = true;
          trace.kind = TraceEvent::Kind::kRequeue;
          trace.attempt = rec.requeues;
        } else {
          rec.killed = true;
          rec.run = elapsed;
          ++completed_;
          trace.kind = TraceEvent::Kind::kKill;
          trace.run = rec.run;
          trace.reason = "budget";
        }
        break;
      }
    }
    if (config_.tracer != nullptr) config_.tracer->on_event(trace);
    if (config_.oracle != nullptr)
      config_.oracle->on_job_release(now_, done.index, rec, done.procs,
                                     free_procs_, requeued);
    SI_ENSURE(free_procs_ + drained_ <= total_procs_);
  }
}

void Simulator::start_job(std::size_t index) {
  const Job& job = (*jobs_)[index];
  SI_REQUIRE(job.procs <= free_procs_);
  free_procs_ -= job.procs;
  JobRecord& rec = records_[index];
  rec.start = now_;
  Running r;
  r.estimated_finish = now_ + job.estimate;
  r.procs = job.procs;
  r.index = index;
  Time termination = now_ + job.run;
  if (faults_.enabled()) {
    if (faults_.config().estimate_wall && job.run > job.estimate) {
      termination = now_ + job.estimate;
      r.outcome = Outcome::kWallKilled;
    } else if (job.run > 0.0) {
      const FaultModel::FailureDraw draw =
          faults_.failure(job.id, rec.requeues);
      if (draw.fails) {
        termination = now_ + draw.fraction * job.run;
        r.outcome = Outcome::kFailed;
      }
    }
  }
  r.finish = termination;
  rec.finish = termination;
  running_.push_back(r);
  std::push_heap(running_.begin(), running_.end(), RunningLater{});
  const std::pair<Time, int> release{r.estimated_finish, r.procs};
  est_releases_.insert(std::upper_bound(est_releases_.begin(),
                                        est_releases_.end(), release),
                       release);
  if (config_.tracer != nullptr) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kStart;
    event.time = now_;
    event.job = job.id;
    event.procs = job.procs;
    event.wait = now_ - job.submit;
    config_.tracer->on_event(event);
  }
  if (config_.oracle != nullptr)
    config_.oracle->on_job_start(now_, index, job, free_procs_, in_backfill_);
  policy_->on_job_start(job, now_);
}

std::size_t Simulator::pick_top_priority() const {
  SI_REQUIRE(!waiting_.empty());
  const SchedContext ctx = context();
  std::size_t best_pos = 0;
  double best_score = policy_->score((*jobs_)[waiting_[0]], ctx);
  for (std::size_t i = 1; i < waiting_.size(); ++i) {
    const std::size_t idx = waiting_[i];
    const double s = policy_->score((*jobs_)[idx], ctx);
    if (s < best_score ||
        (s == best_score && (*jobs_)[idx].id < (*jobs_)[waiting_[best_pos]].id)) {
      best_pos = i;
      best_score = s;
    }
  }
  return best_pos;
}

Simulator::Shadow Simulator::compute_shadow(int procs_needed) const {
  Shadow shadow;
  if (procs_needed <= free_procs_) {
    shadow.time = now_;
    shadow.extra = free_procs_ - procs_needed;
    return shadow;
  }
  // Walk estimated releases in (time, procs) order, accumulating freed
  // processors. Estimates may already be exceeded (the job ran longer than
  // the user requested); the scheduler then treats its release as imminent,
  // i.e. the walk order is sorted on (max(estimate, now), procs).
  if (!recoveries_.empty()) {
    // Under fault injection, scheduled drain recoveries also release
    // capacity, so the two sorted streams must be merged. (Their pending
    // portion double-counts processors a running job will give back to the
    // drain — an estimate-side approximation only, like the estimated
    // finishes themselves.) This path re-sorts into a reused scratch buffer.
    shadow_scratch_.clear();
    for (const auto& [est, procs] : est_releases_)
      shadow_scratch_.emplace_back(std::max(est, now_), procs);
    for (const PendingRecovery& r : recoveries_)
      shadow_scratch_.emplace_back(std::max(r.time, now_), r.procs);
    std::sort(shadow_scratch_.begin(), shadow_scratch_.end());
    int free = free_procs_;
    for (const auto& [time, procs] : shadow_scratch_) {
      free += procs;
      if (free >= procs_needed) {
        shadow.time = time;
        shadow.extra = free - procs_needed;
        return shadow;
      }
    }
    SI_ENSURE(false);
    return shadow;
  }
  // Fault-free fast path: est_releases_ is already sorted by
  // (estimate, procs). Entries whose estimate has passed clamp to `now`,
  // which collapses their sort key to (now, procs) — replay that ordering
  // by sorting just the (usually tiny) overdue prefix by procs.
  const auto split = std::upper_bound(
      est_releases_.begin(), est_releases_.end(),
      std::make_pair(now_, std::numeric_limits<int>::max()));
  shadow_prefix_.clear();
  for (auto it = est_releases_.begin(); it != split; ++it)
    shadow_prefix_.push_back(it->second);
  std::sort(shadow_prefix_.begin(), shadow_prefix_.end());
  int free = free_procs_;
  for (const int procs : shadow_prefix_) {
    free += procs;
    if (free >= procs_needed) {
      shadow.time = now_;
      shadow.extra = free - procs_needed;
      return shadow;
    }
  }
  for (auto it = split; it != est_releases_.end(); ++it) {
    free += it->second;
    if (free >= procs_needed) {
      shadow.time = it->first;
      shadow.extra = free - procs_needed;
      return shadow;
    }
  }
  // Unreachable: procs_needed <= total_procs and every drained processor has
  // a scheduled recovery, so draining all running jobs always suffices.
  SI_ENSURE(false);
  return shadow;
}

void Simulator::backfill_around_blocked() {
  SI_REQUIRE(has_blocked_);
  if (waiting_.empty() || free_procs_ == 0) return;
  const Shadow shadow = compute_shadow((*jobs_)[blocked_].procs);
  int extra = shadow.extra;
  if (config_.oracle != nullptr)
    config_.oracle->on_backfill_window(now_, blocked_, shadow.time,
                                       shadow.extra);
  in_backfill_ = true;

  // Consider candidates in base-policy priority order. Scores are computed
  // once per candidate (the scoring context is fixed for this scheduling
  // point) instead of on every comparison, and all bookkeeping runs on
  // reused position-indexed scratch buffers.
  const SchedContext ctx = context();
  const std::size_t n = waiting_.size();
  bf_scores_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    bf_scores_[i] = policy_->score((*jobs_)[waiting_[i]], ctx);
  bf_order_.resize(n);
  std::iota(bf_order_.begin(), bf_order_.end(), std::size_t{0});
  std::sort(bf_order_.begin(), bf_order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (bf_scores_[a] != bf_scores_[b])
                return bf_scores_[a] < bf_scores_[b];
              return (*jobs_)[waiting_[a]].id < (*jobs_)[waiting_[b]].id;
            });

  bf_started_.assign(n, 0);
  bool any_started = false;
  for (std::size_t pos : bf_order_) {
    const std::size_t idx = waiting_[pos];
    const Job& job = (*jobs_)[idx];
    if (job.procs > free_procs_) continue;
    const bool ends_before_shadow = now_ + job.estimate <= shadow.time;
    if (!ends_before_shadow && job.procs > extra) continue;
    if (!ends_before_shadow) extra -= job.procs;
    start_job(idx);
    bf_started_[pos] = 1;
    any_started = true;
    if (free_procs_ == 0) break;
  }
  in_backfill_ = false;
  if (any_started) {
    // Compact in place, preserving relative order of the survivors.
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (bf_started_[i] == 0) waiting_[w++] = waiting_[i];
    waiting_.resize(w);
  }
}

int Simulator::count_backfillable(std::size_t candidate) const {
  if (!config_.backfill) return 0;
  if (fits(candidate)) return 0;  // no reservation => nothing backfills
  const Shadow shadow = compute_shadow((*jobs_)[candidate].procs);
  int extra = shadow.extra;
  int free = free_procs_;
  int count = 0;
  for (std::size_t idx : waiting_) {
    if (idx == candidate) continue;
    const Job& job = (*jobs_)[idx];
    if (job.procs > free) continue;
    const bool ends_before_shadow = now_ + job.estimate <= shadow.time;
    if (!ends_before_shadow && job.procs > extra) continue;
    if (!ends_before_shadow) extra -= job.procs;
    free -= job.procs;
    ++count;
  }
  return count;
}

void Simulator::advance_time(Time extra_bound) {
  Time next = kInf;
  if (next_arrival_ < jobs_->size())
    next = std::min(next, (*jobs_)[next_arrival_].submit);
  if (!running_.empty()) next = std::min(next, running_.front().finish);
  if (faults_.enabled()) next = std::min(next, next_fault_event());
  if (extra_bound >= 0.0) next = std::min(next, extra_bound);
  SI_ENSURE(next < kInf);
  SI_ENSURE(next > now_);
  if (config_.oracle != nullptr) config_.oracle->on_time_advance(now_, next);
  now_ = next;
}

SequenceResult Simulator::run(const std::vector<Job>& jobs,
                              SchedulingPolicy& policy, Inspector* inspector) {
  SI_PROFILE_SCOPE("sim/run");
  session_begin(jobs, policy, /*inspect=*/inspector != nullptr);
  while (session_state_ == SessionState::kAwaitingAction)
    session_apply(inspector->reject(pending_view_));
  return session_finish();
}

void Simulator::session_begin(const std::vector<Job>& jobs,
                              SchedulingPolicy& policy, bool inspect) {
  SI_REQUIRE(!jobs.empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SI_REQUIRE(jobs[i].procs > 0 && jobs[i].procs <= total_procs_);
    SI_REQUIRE(jobs[i].run >= 0.0 && jobs[i].estimate >= 0.0);
    SI_REQUIRE(i == 0 || jobs[i - 1].submit <= jobs[i].submit);
  }

  jobs_ = &jobs;
  policy_ = &policy;
  session_inspect_ = inspect;
  records_.assign(jobs.size(), JobRecord{});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    records_[i].id = jobs[i].id;
    records_[i].submit = jobs[i].submit;
    records_[i].run = jobs[i].run;
    records_[i].procs = jobs[i].procs;
  }
  waiting_.clear();
  running_.clear();
  est_releases_.clear();
  next_arrival_ = 0;
  completed_ = 0;
  free_procs_ = total_procs_;
  now_ = jobs.front().submit;
  has_blocked_ = false;
  inspections_ = 0;
  rejections_ = 0;
  fault_events_.clear();
  recoveries_.clear();
  drained_ = 0;
  drain_pending_ = 0;
  max_job_procs_ = 0;
  drain_fires_ = 0;
  lost_node_seconds_ = 0.0;
  last_drain_change_ = now_;
  if (faults_.enabled())
    for (const Job& j : jobs) max_job_procs_ = std::max(max_job_procs_, j.procs);
  in_backfill_ = false;
  faults_.reset(now_);
  policy.reset();

  if (config_.oracle != nullptr)
    config_.oracle->on_run_begin(jobs, total_procs_, config_);
  if (config_.tracer != nullptr) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kRunBegin;
    event.time = now_;
    event.jobs = static_cast<std::int64_t>(jobs.size());
    event.procs = total_procs_;
    event.backfill = config_.backfill;
    config_.tracer->on_event(event);
  }

  session_advance();
}

void Simulator::session_advance() {
  const auto& jobs = *jobs_;
  while (completed_ < jobs.size()) {
    if (faults_.enabled()) process_fault_events();
    admit_arrivals();
    process_completions();

    if (has_blocked_) {
      if (fits(blocked_)) {
        const std::size_t idx = blocked_;
        has_blocked_ = false;
        start_job(idx);
        continue;
      }
      if (config_.backfill) backfill_around_blocked();
      // A backfilled zero-runtime job completes at now_ itself; let the next
      // iteration's process_completions() drain it instead of advancing past
      // it (advance_time requires strictly forward motion).
      const bool completion_due =
          !running_.empty() && running_.front().finish <= now_;
      if (has_blocked_ && !completion_due) advance_time(-1.0);
      continue;
    }

    if (waiting_.empty()) {
      if (next_arrival_ < jobs.size() || !running_.empty())
        advance_time(-1.0);
      continue;
    }

    const std::size_t top_pos = pick_top_priority();
    const std::size_t top = waiting_[top_pos];
    if (config_.oracle != nullptr)
      config_.oracle->on_sched_point(now_, top, free_procs_, waiting_.size());
    if (config_.tracer != nullptr) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kSchedPoint;
      event.time = now_;
      event.job = jobs[top].id;
      event.free_procs = free_procs_;
      event.waiting = static_cast<int>(waiting_.size());
      config_.tracer->on_event(event);
    }
    if (session_inspect_ &&
        records_[top].rejections < config_.max_rejection_times) {
      // Pause: surface the decision. The verdict arrives via
      // session_apply(), which emits the inspect/reject events in exactly
      // the order the callback path did.
      others_scratch_.clear();
      for (std::size_t idx : waiting_)
        if (idx != top) others_scratch_.push_back(&jobs[idx]);
      pending_view_ = InspectionView{};
      pending_view_.now = now_;
      pending_view_.job = &jobs[top];
      pending_view_.job_wait = now_ - jobs[top].submit;
      pending_view_.job_rejections = records_[top].rejections;
      pending_view_.max_rejection_times = config_.max_rejection_times;
      pending_view_.free_procs = free_procs_;
      pending_view_.total_procs = total_procs_;
      pending_view_.backfill_enabled = config_.backfill;
      pending_view_.backfillable_jobs = count_backfillable(top);
      pending_view_.waiting = &others_scratch_;
      ++inspections_;
      pending_pos_ = top_pos;
      pending_top_ = top;
      session_state_ = SessionState::kAwaitingAction;
      return;
    }

    // Not inspectable (no inspection requested, or the job's rejection
    // budget is exhausted): the decision is accepted outright.
    accept_candidate(top_pos, top);
  }
  session_state_ = SessionState::kDone;
}

void Simulator::session_apply(bool reject) {
  SI_REQUIRE(session_state_ == SessionState::kAwaitingAction);
  const auto& jobs = *jobs_;
  const std::size_t top = pending_top_;
  if (config_.oracle != nullptr)
    config_.oracle->on_inspect(now_, top, records_[top].rejections, reject);
  if (config_.tracer != nullptr) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kInspect;
    event.time = now_;
    event.job = jobs[top].id;
    event.reject = reject;
    event.rejections = records_[top].rejections;
    event.free_procs = free_procs_;
    config_.tracer->on_event(event);
  }

  if (reject) {
    ++records_[top].rejections;
    ++rejections_;
    if (config_.tracer != nullptr) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kReject;
      event.time = now_;
      event.job = jobs[top].id;
      event.rejections = records_[top].rejections;
      config_.tracer->on_event(event);
    }
    advance_time(now_ + config_.max_interval);
  } else {
    accept_candidate(pending_pos_, top);
  }
  session_advance();
}

void Simulator::accept_candidate(std::size_t pos, std::size_t index) {
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(pos));
  if (fits(index)) {
    start_job(index);
  } else {
    has_blocked_ = true;
    blocked_ = index;
    if (config_.oracle != nullptr) config_.oracle->on_block(now_, index);
  }
}

void Simulator::session_abandon() { session_state_ = SessionState::kIdle; }

SequenceResult Simulator::session_finish() {
  SI_REQUIRE(session_state_ == SessionState::kDone);
  const auto& jobs = *jobs_;
  SequenceResult result;
  result.records = std::move(records_);
  result.metrics = compute_metrics(result.records, total_procs_);
  result.metrics.inspections = inspections_;
  result.metrics.rejections = rejections_;
  if (faults_.enabled()) {
    // Close the lost-capacity integral at the end of the sequence.
    lost_node_seconds_ +=
        static_cast<double>(drained_) * (now_ - last_drain_change_);
    result.metrics.drain_events = drain_fires_;
    result.metrics.lost_node_seconds = lost_node_seconds_;
    result.fault_events = std::move(fault_events_);
  }
  if (config_.tracer != nullptr) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kRunEnd;
    event.time = now_;
    event.jobs = static_cast<std::int64_t>(jobs.size());
    event.inspections = static_cast<std::int64_t>(inspections_);
    event.total_rejections = static_cast<std::int64_t>(rejections_);
    event.avg_wait = result.metrics.avg_wait;
    event.avg_bsld = result.metrics.avg_bsld;
    event.max_bsld = result.metrics.max_bsld;
    event.util = result.metrics.utilization;
    event.makespan = result.metrics.makespan;
    config_.tracer->on_event(event);
  }
  if (config_.oracle != nullptr)
    config_.oracle->on_run_end(result.records, result.metrics);
  if (config_.metrics != nullptr) record_metrics(result);
  session_state_ = SessionState::kIdle;
  return result;
}

void Simulator::record_metrics(const SequenceResult& result) const {
  MetricsRegistry& m = *config_.metrics;
  m.counter("sim.runs").inc();
  m.counter("sim.jobs").inc(result.records.size());
  m.counter("sim.inspections").inc(inspections_);
  m.counter("sim.rejections").inc(rejections_);
  m.counter("sim.requeues").inc(result.metrics.requeues);
  m.counter("sim.kills").inc(result.metrics.kills);
  m.counter("sim.wall_kills").inc(result.metrics.wall_kills);
  m.counter("sim.drain_events").inc(result.metrics.drain_events);
  m.gauge("sim.last_utilization").set(result.metrics.utilization);
  m.gauge("sim.last_makespan_seconds").set(result.metrics.makespan);
  Histogram& wait = m.histogram(
      "sim.job_wait_seconds",
      {0.0, 60.0, 600.0, 3600.0, 4.0 * 3600.0, 12.0 * 3600.0, 24.0 * 3600.0});
  Histogram& bsld = m.histogram("sim.job_bsld",
                                {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0});
  for (const JobRecord& record : result.records) {
    wait.observe(record.wait());
    bsld.observe(record.bounded_slowdown());
  }
}

}  // namespace si
