// The discrete-event HPC cluster simulator — our SchedGym equivalent
// (§3.2). It schedules a finite job sequence on a cluster of identical
// processors under a base scheduling policy, optionally scrutinized by an
// inspector:
//
//   * A *scheduling point* occurs on job arrival, job completion, or
//     MAX_INTERVAL after a rejection.
//   * At each point the base policy picks the waiting job with the smallest
//     score (ties by id). The inspector may reject it (bounded by
//     MAX_REJECTION_TIMES per job); the job then returns to the queue.
//   * An accepted job that fits starts immediately. One that does not fit
//     blocks the scheduler: it holds a reservation until enough resources
//     free up, and — when backfilling is enabled — other waiting jobs may
//     EASY-backfill around it if they cannot delay its reserved start
//     (computed from *estimated* runtimes; completions use actual runtimes).
//
// With fault injection enabled (SimConfig::faults) three further scheduling
// point kinds exist: node-drain events (capacity shrinks; free processors
// are collected immediately, busy ones as their jobs release them), drain
// recoveries (capacity returns), and early job terminations (mid-run
// failures that requeue the job with a bounded budget, and Slurm-style
// estimate-wall kills). When faults are disabled none of these paths are
// taken and the simulator is bit-identical to the fault-free implementation.
#pragma once

#include <utility>
#include <vector>

#include "sched/policy.hpp"
#include "sim/config.hpp"
#include "sim/fault_model.hpp"
#include "sim/inspector.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"

namespace si {

class SimSession;  // sim/session.hpp — the resumable step API over this core

/// Outcome of simulating one job sequence.
struct SequenceResult {
  std::vector<JobRecord> records;  ///< per-job outcomes, indexed like input
  SequenceMetrics metrics;
  /// Capacity timeline under fault injection (empty when faults are off):
  /// every drain collection and recovery, in chronological order.
  std::vector<FaultEvent> fault_events;
};

class Simulator {
 public:
  Simulator(int total_procs, SimConfig config);

  int total_procs() const { return total_procs_; }
  const SimConfig& config() const { return config_; }

  /// Replaces the event tracer for subsequent runs (null disables). Lets
  /// one simulator serve several traced sequences (e.g. the trainer's
  /// per-trajectory buffers) without reconstruction.
  void set_tracer(SimTracer* tracer) { config_.tracer = tracer; }

  /// Schedules `jobs` to completion under `policy`. `inspector` may be null
  /// (base behaviour: every decision accepted). The policy is reset() before
  /// the run. Jobs must satisfy 0 < procs <= total_procs and run >= 0, and
  /// be sorted by submit time.
  ///
  /// Implemented as a thin adapter over the resumable session state machine
  /// below (see sim/session.hpp): the run is begun, advanced to each
  /// inspection point, and the inspector's verdict is fed back via
  /// session_apply — so callback-driven and step-driven executions share
  /// every code path and are bit-identical.
  SequenceResult run(const std::vector<Job>& jobs, SchedulingPolicy& policy,
                     Inspector* inspector = nullptr);

 private:
  friend class SimSession;

  /// Where a resumable run currently stands. One simulator hosts at most
  /// one session at a time; beginning a new one resets all per-run state.
  enum class SessionState {
    kIdle,            ///< no run in flight
    kAwaitingAction,  ///< paused at an inspection point (pending_view_ set)
    kDone,            ///< sequence complete; session_finish() pending
  };

  /// Initializes per-run state for `jobs` / `policy` and advances to the
  /// first inspection point (or completion). With `inspect` false the run
  /// never pauses: every decision is accepted outright, exactly like the
  /// callback API with a null inspector (no view is built, no inspect
  /// events are emitted).
  void session_begin(const std::vector<Job>& jobs, SchedulingPolicy& policy,
                     bool inspect);
  /// Runs the event loop until the next inspectable decision (budget not
  /// exhausted) or sequence completion. Sets session_state_.
  void session_advance();
  /// Applies the verdict for the pending inspection (emitting the inspect /
  /// reject events exactly as the callback path does) and advances.
  void session_apply(bool reject);
  /// Builds the terminal SequenceResult (metrics, fault timeline, run-end
  /// event) and returns the simulator to kIdle.
  SequenceResult session_finish();
  /// Drops an unfinished session so the simulator can be reused.
  void session_abandon();
  /// Accepts the candidate at waiting_[pos]: starts it or blocks on it.
  void accept_candidate(std::size_t pos, std::size_t index);

  /// How one execution attempt ends (always kComplete without faults).
  enum class Outcome { kComplete, kFailed, kWallKilled };

  struct Running {
    Time finish = 0.0;           ///< actual termination time (any outcome)
    Time estimated_finish = 0.0; ///< start + estimate (backfill reservation)
    int procs = 0;
    std::size_t index = 0;
    Outcome outcome = Outcome::kComplete;
  };

  struct PendingRecovery {
    Time time = 0.0;
    int procs = 0;  ///< the drain event's full size (collected + pending)
  };

  // --- per-run state (valid from session_begin() to session_finish()) ---
  const std::vector<Job>* jobs_ = nullptr;
  SchedulingPolicy* policy_ = nullptr;
  std::vector<JobRecord> records_;
  std::vector<std::size_t> waiting_;
  std::vector<Running> running_;  // min-heap on finish
  std::size_t next_arrival_ = 0;
  std::size_t completed_ = 0;
  int free_procs_ = 0;
  Time now_ = 0.0;
  bool has_blocked_ = false;
  std::size_t blocked_ = 0;  ///< accepted job waiting for resources
  bool in_backfill_ = false; ///< inside backfill_around_blocked (oracle tag)
  std::size_t inspections_ = 0;
  std::size_t rejections_ = 0;

  // --- resumable-session state ---
  SessionState session_state_ = SessionState::kIdle;
  bool session_inspect_ = false;  ///< pause at inspectable decisions?
  std::size_t pending_pos_ = 0;   ///< waiting_ position of the paused pick
  std::size_t pending_top_ = 0;   ///< job index of the paused pick
  /// The paused decision's observation. Its pointers reference jobs_ and
  /// others_scratch_, both stable until the session advances again.
  InspectionView pending_view_;

  // --- fault-injection state (untouched while faults are disabled) ---
  std::vector<FaultEvent> fault_events_;
  std::vector<PendingRecovery> recoveries_;  // sorted by time ascending
  int drained_ = 0;        ///< procs currently collected out of service
  int drain_pending_ = 0;  ///< drain procs still held by running jobs
  int max_job_procs_ = 0;  ///< capacity floor so every job stays runnable
  std::size_t drain_fires_ = 0;
  double lost_node_seconds_ = 0.0;
  Time last_drain_change_ = 0.0;  ///< integration point for drained seconds

  // --- hot-path scratch (reused across scheduling points; no steady-state
  // allocation once the buffers reach their high-water marks) ---
  /// Estimated releases (estimated_finish, procs) of every running job,
  /// kept sorted by that pair. Maintained incrementally by start_job() /
  /// process_completions() so the EASY shadow walk needs no per-call sort
  /// on the fault-free path.
  std::vector<std::pair<Time, int>> est_releases_;
  mutable std::vector<std::pair<Time, int>> shadow_scratch_;
  mutable std::vector<int> shadow_prefix_;
  std::vector<double> bf_scores_;       // per waiting_ position
  std::vector<std::size_t> bf_order_;   // waiting_ positions, priority order
  std::vector<char> bf_started_;        // per waiting_ position
  std::vector<const Job*> others_scratch_;

  int total_procs_;
  SimConfig config_;
  FaultModel faults_;

  void admit_arrivals();
  void process_completions();
  void start_job(std::size_t index);
  bool fits(std::size_t index) const;

  /// Applies every due drain / recovery event (faults enabled only).
  void process_fault_events();
  /// Moves `procs` processors into (delta > 0) or out of (delta < 0) the
  /// out-of-service pool, logging the event and integrating lost capacity.
  void apply_drain_delta(int delta);
  /// Earliest pending fault event, +infinity when none.
  Time next_fault_event() const;

  /// Earliest time (by estimated finishes) when `procs_needed` processors
  /// will be free, plus how many *extra* processors remain free then. Used
  /// for the EASY reservation.
  struct Shadow {
    Time time = 0.0;
    int extra = 0;
  };
  Shadow compute_shadow(int procs_needed) const;

  /// Starts EASY-backfillable waiting jobs around the blocked reservation.
  void backfill_around_blocked();

  /// Counts backfillable jobs without starting them (inspector feature).
  int count_backfillable(std::size_t candidate) const;

  /// Position in waiting_ of the job with the smallest policy score (ties
  /// by id). Returning the position lets the caller erase without a second
  /// linear search.
  std::size_t pick_top_priority() const;

  /// Advances simulated time to the next arrival/completion; `extra_bound`
  /// (if >= 0) additionally caps the jump (rejection retry interval).
  void advance_time(Time extra_bound);

  /// Bumps the sim.* instruments in config_.metrics after a finished run.
  void record_metrics(const SequenceResult& result) const;

  SchedContext context() const;
};

}  // namespace si
