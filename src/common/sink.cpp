#include "common/sink.hpp"

#include <stdexcept>

namespace si {

namespace {

class StreamSink final : public Sink {
 public:
  explicit StreamSink(std::FILE* stream) : stream_(stream) {}
  void write(std::string_view text) override {
    if (!text.empty()) std::fwrite(text.data(), 1, text.size(), stream_);
  }
  void flush() override { std::fflush(stream_); }

 private:
  std::FILE* stream_;
};

}  // namespace

Sink& stdout_sink() {
  static StreamSink sink(stdout);
  return sink;
}

Sink& stderr_sink() {
  static StreamSink sink(stderr);
  return sink;
}

FileSink::FileSink(const std::string& path, bool append)
    : path_(path), file_(std::fopen(path.c_str(), append ? "ab" : "wb")) {
  if (file_ == nullptr)
    throw std::runtime_error("cannot open sink file: " + path);
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(std::string_view text) {
  if (!text.empty()) std::fwrite(text.data(), 1, text.size(), file_);
}

void FileSink::flush() { std::fflush(file_); }

}  // namespace si
