// Empirical cumulative distribution functions. Used by the Figure 13
// reproduction (CDFs of state features for rejected vs. total inspection
// samples) and by workload validation tests.
#pragma once

#include <string>
#include <vector>

#include "common/sink.hpp"

namespace si {

/// An empirical CDF over a fixed sample. The sample is sorted at
/// construction; evaluation is O(log n).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> sample);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// P[X <= x]; 0 for an empty CDF.
  double at(double x) const;

  /// Inverse CDF (quantile), q in [0,1]. Requires a non-empty sample.
  double inverse(double q) const;

  double min() const;
  double max() const;

  /// Evaluates the CDF at `points` evenly spaced x positions spanning
  /// [lo, hi]; used to print comparable curves for two distributions.
  std::vector<double> curve(double lo, double hi, std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Kolmogorov-Smirnov distance between two empirical CDFs — the maximum
/// absolute difference. Used by tests to compare synthesized traces against
/// their target distributions and by the Figure 13 analysis to quantify how
/// far rejected samples deviate from the overall population.
double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b);

/// Renders two CDFs as a fixed-width ASCII chart (rows of `x  cdfA  cdfB`)
/// for terminal-friendly figure output.
std::string render_cdf_table(const std::string& label,
                             const EmpiricalCdf& rejected,
                             const EmpiricalCdf& total, std::size_t points);

/// render_cdf_table written through a sink, so figure output can be
/// redirected to files or silenced in tests.
void write_cdf_table(Sink& sink, const std::string& label,
                     const EmpiricalCdf& rejected, const EmpiricalCdf& total,
                     std::size_t points);

}  // namespace si
