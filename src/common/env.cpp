#include "common/env.hpp"

#include <cstdlib>

namespace si {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

bool full_scale_run() { return env_int("SCHEDINSPECTOR_FULL", 0) != 0; }

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("SCHEDINSPECTOR_SEED", 42));
}

BenchScale bench_scale() {
  if (full_scale_run()) {
    return BenchScale{/*epochs=*/80, /*trajectories=*/100,
                      /*sequence_length=*/128, /*eval_sequences=*/50,
                      /*eval_length=*/256};
  }
  return BenchScale{/*epochs=*/24, /*trajectories=*/40,
                    /*sequence_length=*/64, /*eval_sequences=*/16,
                    /*eval_length=*/128};
}

}  // namespace si
