// Aligned plain-text table rendering. Every bench binary prints its
// paper-table/figure reproduction through this so the output stays uniform
// and greppable; a CSV escape hatch supports downstream plotting. Output
// goes through the Sink abstraction (common/sink.hpp) so it can be
// redirected to files or captured/silenced in tests.
#pragma once

#include <string>
#include <vector>

#include "common/sink.hpp"

namespace si {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(const std::string& value);
  TextTable& cell(const char* value) { return cell(std::string(value)); }
  /// Formats a double with the given number of decimals.
  TextTable& cell(double value, int decimals = 2);
  TextTable& cell(long long value);
  TextTable& cell(int value) { return cell(static_cast<long long>(value)); }
  TextTable& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  /// Renders with column padding, a header underline, and `| `-separated
  /// columns.
  std::string render() const;

  /// Renders as CSV (comma-separated, quotes around cells containing commas).
  std::string render_csv() const;

  /// Writes render() / render_csv() through a sink (stdout_sink(), a
  /// FileSink, a test StringSink, ...).
  void write(Sink& sink) const;
  void write_csv(Sink& sink) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like printf("%.*f").
std::string format_double(double value, int decimals);

/// Formats a ratio as a signed percentage string, e.g. "-0.27%".
std::string format_percent(double ratio, int decimals = 2);

}  // namespace si
