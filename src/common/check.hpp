// Lightweight precondition / invariant checking in the spirit of the C++
// Core Guidelines' Expects()/Ensures(). Violations throw rather than abort so
// tests can assert on them and long benchmark runs fail loudly with context.
#pragma once

#include <stdexcept>
#include <string>

namespace si {

/// Thrown when a precondition or invariant stated with SI_REQUIRE fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace si

/// Precondition check; throws si::ContractViolation on failure.
#define SI_REQUIRE(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::si::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (0)

/// Invariant / postcondition check; throws si::ContractViolation on failure.
#define SI_ENSURE(expr)                                                    \
  do {                                                                     \
    if (!(expr))                                                           \
      ::si::detail::contract_fail("invariant", #expr, __FILE__, __LINE__); \
  } while (0)
