// Deterministic, seedable random number generation for every stochastic
// component in the repository (trace synthesis, sequence sampling, network
// initialization, PPO exploration). We hand-roll SplitMix64 and Xoshiro256**
// instead of using <random> engines so results are bit-identical across
// standard library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace si {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Also usable directly as a small fast generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Fast, high quality, tiny state.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second draw).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean = 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Gamma(shape, scale) via Marsaglia-Tsang; handles shape < 1.
  double gamma(double shape, double scale);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Splits off an independently-seeded child generator. Deterministic:
  /// the child's seed derives from this generator's stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace si
