#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace si {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SI_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SI_REQUIRE(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SI_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double rate) {
  SI_REQUIRE(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::gamma(double shape, double scale) {
  SI_REQUIRE(shape > 0.0);
  SI_REQUIRE(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then apply the Johnk-style correction.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace si
