// Streaming and batch summary statistics used throughout the evaluation
// harness: per-sequence metric summaries, box-and-whisker data for the
// Figure 8/10-style reports, and Welford running moments.
#pragma once

#include <cstddef>
#include <vector>

namespace si {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Five-number box-and-whisker summary plus mean, as plotted in the paper's
/// Figure 8/10 box plots.
struct BoxSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Linear-interpolated quantile of a sample (q in [0,1]). Requires a
/// non-empty sample; the input is copied and sorted internally.
double quantile(std::vector<double> sample, double q);

/// Builds the box summary of a non-empty sample.
BoxSummary box_summary(const std::vector<double>& sample);

/// Mean of a sample (0 for an empty one).
double mean_of(const std::vector<double>& sample);

/// Exponential moving average smoothing used when rendering training curves.
std::vector<double> ema_smooth(const std::vector<double>& series, double alpha);

}  // namespace si
