// Fast scalar transcendentals for the RL hot loops. The MLP kernels spend
// most of their time in tanh (the paper's 3-hidden-layer net evaluates 56
// of them per forward pass), and libm's tanh is several times slower than
// the surrounding arithmetic. fast_tanh trades the last few bits of
// accuracy (absolute error < 1e-10) for an evaluation that is several
// times faster on the machines we target.
//
// Bit-identity across call sites: every multiply-add in the evaluation is
// an explicit std::fma, and every remaining operation (+, -, *, /, min,
// fabs, nearbyint, copysign) is an exactly-rounded IEEE primitive. The
// result is therefore a fixed function of the input on any conforming
// build — inlining, vectorization, and -ffp-contract cannot change it —
// which is what keeps the scalar and batched MLP paths bit-identical.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace si {

/// tanh(x) with absolute error below ~1e-10. Saturates to +/-1 for
/// |x| >= 20 (where 1 - |tanh| < 1e-17), propagates NaN, and is odd in x
/// exactly (computed on |x|, sign restored).
inline double fast_tanh(double x) {
  if (std::isnan(x)) return x;  // the int cast of n below would be UB
  // tanh(x) = sign(x) * (1 - 2 / (exp(2|x|) + 1)). Beyond |x| = 20 the
  // result rounds to +/-1 in double precision, so clamp there — that also
  // keeps the exponent scaling below well inside the finite range.
  const double ax = std::min(std::fabs(x), 20.0);
  const double t = 2.0 * ax;

  // exp(t) by base-2 range reduction: t = n*ln2 + r with |r| <= ln2/2,
  // exp(t) = 2^n * exp(r). ln2 is split into a high and a low part so the
  // reduction stays accurate across the whole [0, 40] range of t.
  const double n = std::nearbyint(t * 1.44269504088896340736);  // log2(e)
  const double r = std::fma(-n, 1.90821492927058770002e-10,
                            std::fma(-n, 6.93147180369123816490e-01, t));

  // Degree-8 Taylor expansion of exp(r); |r| <= 0.3466 keeps the
  // truncation error near 2e-11.
  double p = std::fma(r, 2.4801587301587302e-05, 1.9841269841269841e-04);
  p = std::fma(r, p, 1.3888888888888889e-03);
  p = std::fma(r, p, 8.3333333333333332e-03);
  p = std::fma(r, p, 4.1666666666666664e-02);
  p = std::fma(r, p, 1.6666666666666666e-01);
  p = std::fma(r, p, 0.5);
  p = std::fma(r, p, 1.0);
  p = std::fma(r, p, 1.0);

  // 2^n via exponent bits: n is an integer in [0, 58] here.
  const auto biased =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(n) + 1023);
  const double scale = std::bit_cast<double>(biased << 52);
  const double e = p * scale;
  return std::copysign(1.0 - 2.0 / (e + 1.0), x);
}

}  // namespace si
