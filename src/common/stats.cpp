#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace si {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  SI_REQUIRE(!sample.empty());
  SI_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

BoxSummary box_summary(const std::vector<double>& sample) {
  SI_REQUIRE(!sample.empty());
  BoxSummary b;
  b.min = quantile(sample, 0.0);
  b.q1 = quantile(sample, 0.25);
  b.median = quantile(sample, 0.5);
  b.q3 = quantile(sample, 0.75);
  b.max = quantile(sample, 1.0);
  b.mean = mean_of(sample);
  b.count = sample.size();
  return b;
}

double mean_of(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

std::vector<double> ema_smooth(const std::vector<double>& series, double alpha) {
  SI_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  std::vector<double> out;
  out.reserve(series.size());
  double ema = 0.0;
  bool first = true;
  for (double x : series) {
    ema = first ? x : alpha * x + (1.0 - alpha) * ema;
    first = false;
    out.push_back(ema);
  }
  return out;
}

}  // namespace si
