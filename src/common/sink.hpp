// Byte-stream output sinks. Everything in the repo that produces textual
// output — tables, CDF charts, the structured logger, JSONL trace/telemetry
// writers, metrics exports — writes through this abstraction so output can be
// sent to stdout/stderr, a file, or an in-memory string (tests), or silenced
// entirely, without the producer knowing the destination.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace si {

/// Minimal append-only byte sink.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(std::string_view text) = 0;
  virtual void flush() {}
};

/// Process-wide stdout / stderr sinks (unsynchronized fwrite wrappers).
Sink& stdout_sink();
Sink& stderr_sink();

/// Sink writing to a file opened at construction; throws std::runtime_error
/// when the file cannot be opened. Flushes and closes on destruction.
class FileSink final : public Sink {
 public:
  explicit FileSink(const std::string& path, bool append = false);
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(std::string_view text) override;
  void flush() override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Sink accumulating into a string; used by tests and render helpers.
class StringSink final : public Sink {
 public:
  void write(std::string_view text) override { buffer_.append(text); }
  const std::string& str() const { return buffer_; }
  void clear() { buffer_.clear(); }

 private:
  std::string buffer_;
};

/// Discards everything (silenced output).
class NullSink final : public Sink {
 public:
  void write(std::string_view) override {}
};

}  // namespace si
