#include "common/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace si {

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double q) const {
  SI_REQUIRE(!sorted_.empty());
  SI_REQUIRE(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double EmpiricalCdf::min() const {
  SI_REQUIRE(!sorted_.empty());
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  SI_REQUIRE(!sorted_.empty());
  return sorted_.back();
}

std::vector<double> EmpiricalCdf::curve(double lo, double hi,
                                        std::size_t points) const {
  SI_REQUIRE(points >= 2);
  SI_REQUIRE(lo <= hi);
  std::vector<double> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(at(x));
  }
  return out;
}

double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  const double lo = std::min(a.min(), b.min());
  const double hi = std::max(a.max(), b.max());
  // Evaluate on a dense grid plus both sample supports' endpoints; for
  // step-function CDFs a dense grid is an adequate and simple approximation.
  constexpr std::size_t kGrid = 2048;
  double worst = 0.0;
  for (std::size_t i = 0; i <= kGrid; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(kGrid);
    worst = std::max(worst, std::abs(a.at(x) - b.at(x)));
  }
  return worst;
}

std::string render_cdf_table(const std::string& label,
                             const EmpiricalCdf& rejected,
                             const EmpiricalCdf& total, std::size_t points) {
  SI_REQUIRE(points >= 2);
  std::string out = "# " + label + "\n";
  out += "#    x    CDF(rejected)  CDF(total)\n";
  if (rejected.empty() || total.empty()) {
    out += "# (empty sample)\n";
    return out;
  }
  const double lo = std::min(rejected.min(), total.min());
  const double hi = std::max(rejected.max(), total.max());
  const auto rc = rejected.curve(lo, hi, points);
  const auto tc = total.curve(lo, hi, points);
  char buf[96];
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    std::snprintf(buf, sizeof buf, "%8.4f   %10.4f   %10.4f\n", x, rc[i], tc[i]);
    out += buf;
  }
  return out;
}

void write_cdf_table(Sink& sink, const std::string& label,
                     const EmpiricalCdf& rejected, const EmpiricalCdf& total,
                     std::size_t points) {
  sink.write(render_cdf_table(label, rejected, total, points));
}

}  // namespace si
