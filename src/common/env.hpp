// Environment-variable driven run configuration shared by the bench
// binaries: SCHEDINSPECTOR_FULL=1 switches from the fast default scale to
// the paper's full training scale; SCHEDINSPECTOR_SEED overrides the seed.
#pragma once

#include <cstdint>
#include <string>

namespace si {

/// Reads an environment variable, returning `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// True when SCHEDINSPECTOR_FULL is set to a non-zero value — bench binaries
/// then run at the paper's full scale instead of the fast CI scale.
bool full_scale_run();

/// Global default seed for bench binaries (SCHEDINSPECTOR_SEED, default 42).
std::uint64_t bench_seed();

/// Scale factors a bench binary applies to its epoch / trajectory / sequence
/// counts; derived from full_scale_run().
struct BenchScale {
  int epochs;             ///< PPO epochs per training run
  int trajectories;      ///< trajectories per epoch (paper: 100)
  int sequence_length;   ///< jobs per trajectory (paper: 128)
  int eval_sequences;    ///< sampled test sequences (paper: 50)
  int eval_length;       ///< jobs per test sequence (paper: 256)
};

/// The active scale: the paper's numbers under SCHEDINSPECTOR_FULL, a
/// fast-but-representative reduction otherwise.
BenchScale bench_scale();

}  // namespace si
