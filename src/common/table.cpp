#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace si {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SI_REQUIRE(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  SI_REQUIRE(!rows_.empty());
  SI_REQUIRE(rows_.back().size() < header_.size());
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(double value, int decimals) {
  return cell(format_double(value, decimals));
}

TextTable& TextTable::cell(long long value) {
  return cell(std::to_string(value));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      out += v;
      out.append(width[c] - v.size(), ' ');
      if (c + 1 < header_.size()) out += " | ";
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 3 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

std::string TextTable::render_csv() const {
  auto escape = [](const std::string& v) {
    if (v.find(',') == std::string::npos && v.find('"') == std::string::npos)
      return v;
    std::string out = "\"";
    for (char ch : v) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out += ',';
      out += escape(r[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void TextTable::write(Sink& sink) const { sink.write(render()); }

void TextTable::write_csv(Sink& sink) const { sink.write(render_csv()); }

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace si
