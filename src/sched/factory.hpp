// Name-based construction of base scheduling policies, used by benches,
// examples, and parameterized tests.
#pragma once

#include <string>
#include <vector>

#include "sched/policy.hpp"
#include "workload/trace.hpp"

namespace si {

/// All stateless Table 3 policy names, in paper order:
/// FCFS, LCFS, SJF, SQF, SAF, SRF, F1.
const std::vector<std::string>& heuristic_policy_names();

/// Every policy name the CLI accepts: the heuristics plus "Slurm". Useful
/// for help text and error messages.
const std::vector<std::string>& known_policies();

/// Builds a stateless policy by name. Throws std::out_of_range for unknown
/// names, listing the known ones ("Slurm" requires a trace — use
/// make_slurm_policy).
PolicyPtr make_policy(const std::string& name);

/// Builds the Slurm multifactor policy calibrated on `trace` (§4.5).
PolicyPtr make_slurm_policy(const Trace& trace);

}  // namespace si
