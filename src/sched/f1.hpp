// The F1 policy of Carastan-Santos & de Camargo (SC'17) — the paper's
// state-of-the-art heuristic baseline (Table 3):
//   score = log10(est_j) * res_j + 870 * log10(s_j)
// where s_j is the job's submission time. It was obtained by non-linear
// regression against simulated optimal bsld schedules; smaller is better.
#pragma once

#include "sched/policy.hpp"

namespace si {

class F1Policy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "F1"; }
  PolicyPtr clone() const override { return std::make_unique<F1Policy>(*this); }
  double score(const Job& job, const SchedContext& ctx) const override;
};

}  // namespace si
