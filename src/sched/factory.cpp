#include "sched/factory.hpp"

#include <stdexcept>

#include "sched/f1.hpp"
#include "sched/policies.hpp"
#include "sched/slurm.hpp"

namespace si {

const std::vector<std::string>& heuristic_policy_names() {
  static const std::vector<std::string> names = {"FCFS", "LCFS", "SJF", "SQF",
                                                 "SAF",  "SRF",  "F1"};
  return names;
}

const std::vector<std::string>& known_policies() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = heuristic_policy_names();
    all.push_back("Slurm");
    return all;
  }();
  return names;
}

PolicyPtr make_policy(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsPolicy>();
  if (name == "LCFS") return std::make_unique<LcfsPolicy>();
  if (name == "SJF") return std::make_unique<SjfPolicy>();
  if (name == "SQF") return std::make_unique<SqfPolicy>();
  if (name == "SAF") return std::make_unique<SafPolicy>();
  if (name == "SRF") return std::make_unique<SrfPolicy>();
  if (name == "F1") return std::make_unique<F1Policy>();
  std::string known;
  for (const std::string& n : known_policies()) {
    if (!known.empty()) known += ' ';
    known += n;
  }
  throw std::out_of_range("unknown scheduling policy: " + name +
                          " (known: " + known + ")");
}

PolicyPtr make_slurm_policy(const Trace& trace) {
  return std::make_unique<SlurmMultifactorPolicy>(trace);
}

}  // namespace si
