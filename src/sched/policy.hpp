// The base-scheduler abstraction SchedInspector sits on top of. A policy
// assigns every waiting job a score; the simulator selects the job with the
// *smallest* score (ties broken by smaller job id, as in the paper's §2.1
// example). Policies may keep state across job starts (the Slurm multifactor
// policy tracks fair-share usage); reset() returns them to a fresh sequence.
#pragma once

#include <memory>
#include <string>

#include "workload/job.hpp"

namespace si {

/// Scheduling context made available to priority functions.
struct SchedContext {
  Time now = 0.0;        ///< current simulation time
  int total_procs = 0;   ///< cluster size
  int free_procs = 0;    ///< currently idle processors
};

/// Interface of a batch-job scheduling policy (Table 3).
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Short name, e.g. "SJF".
  virtual std::string name() const = 0;

  /// Deep copy, including any calibration state (but callers should reset()
  /// the clone before a new sequence). Lets rollout workers run private
  /// instances of stateful policies concurrently.
  virtual std::unique_ptr<SchedulingPolicy> clone() const = 0;

  /// Priority score — the waiting job with the smallest score is scheduled
  /// next. Must be a pure function of (job, ctx) and internal policy state.
  virtual double score(const Job& job, const SchedContext& ctx) const = 0;

  /// Notification that `job` started executing at `now`; stateful policies
  /// (fair-share) accrue usage here. Default: no-op.
  virtual void on_job_start(const Job& job, Time now);

  /// Returns the policy to its initial state before a new sequence.
  virtual void reset();
};

using PolicyPtr = std::unique_ptr<SchedulingPolicy>;

}  // namespace si
