#include "sched/policy.hpp"

namespace si {

void SchedulingPolicy::on_job_start(const Job&, Time) {}

void SchedulingPolicy::reset() {}

}  // namespace si
