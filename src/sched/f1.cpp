#include "sched/f1.hpp"

#include <algorithm>
#include <cmath>

namespace si {

double F1Policy::score(const Job& job, const SchedContext&) const {
  // log10 arguments are clamped to >= 1 second: trace windows are re-based
  // so the first job submits at t = 0, and estimates may legitimately be
  // sub-second in synthetic workloads.
  const double est = std::max(job.estimate, 1.0);
  const double submit = std::max(job.submit, 1.0);
  return std::log10(est) * static_cast<double>(job.procs) +
         870.0 * std::log10(submit);
}

}  // namespace si
