// The single- and two-attribute heuristic policies of Table 3:
//   FCFS  max(wait_j)        -> score = submit_j
//   LCFS  min(wait_j)        -> score = -submit_j
//   SJF   min(est_j)
//   SQF   min(res_j)   (Smallest Resource Requirement First, §1)
//   SAF   min(est_j * res_j)
//   SRF   min(est_j / res_j)
#pragma once

#include "sched/policy.hpp"

namespace si {

class FcfsPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "FCFS"; }
  PolicyPtr clone() const override {
    return std::make_unique<FcfsPolicy>(*this);
  }
  double score(const Job& job, const SchedContext&) const override {
    return job.submit;
  }
};

class LcfsPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "LCFS"; }
  PolicyPtr clone() const override {
    return std::make_unique<LcfsPolicy>(*this);
  }
  double score(const Job& job, const SchedContext&) const override {
    return -job.submit;
  }
};

class SjfPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SJF"; }
  PolicyPtr clone() const override {
    return std::make_unique<SjfPolicy>(*this);
  }
  double score(const Job& job, const SchedContext&) const override {
    return job.estimate;
  }
};

class SqfPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SQF"; }
  PolicyPtr clone() const override {
    return std::make_unique<SqfPolicy>(*this);
  }
  double score(const Job& job, const SchedContext&) const override {
    return static_cast<double>(job.procs);
  }
};

class SafPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SAF"; }
  PolicyPtr clone() const override {
    return std::make_unique<SafPolicy>(*this);
  }
  double score(const Job& job, const SchedContext&) const override {
    return job.estimated_area();
  }
};

class SrfPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SRF"; }
  PolicyPtr clone() const override {
    return std::make_unique<SrfPolicy>(*this);
  }
  double score(const Job& job, const SchedContext&) const override {
    return job.estimated_ratio();
  }
};

}  // namespace si
