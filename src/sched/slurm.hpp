// The Slurm multifactor priority policy modelled exactly as the paper's
// §4.5 experiment does:
//
//   Job_Priority = w_age * age_factor + w_fairshare * fairshare_factor
//               + w_jattr * job_attribute_factor + w_partition * partition_factor
//
// with every weight set to 1000. The age factor normalizes waiting time by
// 7 days. The fair-share factor follows Slurm's classic 2^(-usage/share)
// form, where a user's *assigned share* is her actual CPU-usage share across
// the whole trace (the paper's choice, as traces carry no allocation data)
// and her *current usage* accrues as the simulation schedules jobs. The
// job-attribute factor is the requested execution time (normalized by the
// trace maximum). The partition factor is each queue's CPU-usage share
// across the trace, normalized so the busiest queue scores 1.
//
// Higher Job_Priority runs first; score() negates it so the simulator's
// min-score selection applies unchanged.
#pragma once

#include <unordered_map>

#include "sched/policy.hpp"
#include "workload/trace.hpp"

namespace si {

class SlurmMultifactorPolicy final : public SchedulingPolicy {
 public:
  /// Precomputes assigned shares and queue priorities from `trace` (the
  /// paper derives both from actual usage across the whole trace).
  explicit SlurmMultifactorPolicy(const Trace& trace);

  std::string name() const override { return "Slurm"; }
  PolicyPtr clone() const override {
    return std::make_unique<SlurmMultifactorPolicy>(*this);
  }
  double score(const Job& job, const SchedContext& ctx) const override;
  void on_job_start(const Job& job, Time now) override;
  void reset() override;

  /// Individual factors, exposed for tests and for explaining decisions.
  double age_factor(const Job& job, Time now) const;
  double fairshare_factor(int user) const;
  double job_attribute_factor(const Job& job) const;
  double partition_factor(int queue) const;

  /// The priority the factors combine into (all weights 1000).
  double priority(const Job& job, Time now) const;

 private:
  static constexpr double kWeight = 1000.0;
  static constexpr double kAgeNormalization = 7.0 * 24.0 * 3600.0;  // 7 days

  std::unordered_map<int, double> assigned_share_;   // user -> share in (0,1]
  std::unordered_map<int, double> queue_priority_;   // queue -> [0,1]
  double max_estimate_ = 1.0;

  // Runtime fair-share accounting (reset per sequence).
  std::unordered_map<int, double> used_cpu_seconds_;  // user -> usage
  double total_used_cpu_seconds_ = 0.0;
};

}  // namespace si
