#include "sched/slurm.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace si {

SlurmMultifactorPolicy::SlurmMultifactorPolicy(const Trace& trace) {
  SI_REQUIRE(!trace.empty());
  std::unordered_map<int, double> user_usage;
  std::unordered_map<int, double> queue_usage;
  double total = 0.0;
  for (const Job& j : trace.jobs()) {
    const double cpu_seconds = j.run * static_cast<double>(j.procs);
    user_usage[j.user] += cpu_seconds;
    queue_usage[j.queue] += cpu_seconds;
    total += cpu_seconds;
    max_estimate_ = std::max(max_estimate_, j.estimate);
  }
  SI_ENSURE(total > 0.0);
  for (const auto& [user, usage] : user_usage)
    assigned_share_[user] = std::max(usage / total, 1e-6);
  double max_queue = 0.0;
  for (const auto& [queue, usage] : queue_usage)
    max_queue = std::max(max_queue, usage);
  for (const auto& [queue, usage] : queue_usage)
    queue_priority_[queue] = usage / max_queue;
}

double SlurmMultifactorPolicy::age_factor(const Job& job, Time now) const {
  const double wait = std::max(now - job.submit, 0.0);
  return std::min(wait / kAgeNormalization, 1.0);
}

double SlurmMultifactorPolicy::fairshare_factor(int user) const {
  if (total_used_cpu_seconds_ <= 0.0) return 1.0;
  const auto share_it = assigned_share_.find(user);
  // Users absent from the training trace get a neutral minimal share.
  const double share =
      share_it != assigned_share_.end() ? share_it->second : 1e-6;
  const auto usage_it = used_cpu_seconds_.find(user);
  const double usage =
      usage_it != used_cpu_seconds_.end() ? usage_it->second : 0.0;
  const double usage_frac = usage / total_used_cpu_seconds_;
  // Slurm's classic fair-share curve: 1 when under-served, decaying
  // exponentially as a user's consumption exceeds her share.
  return std::clamp(std::exp2(-usage_frac / share / 2.0), 0.0, 1.0);
}

double SlurmMultifactorPolicy::job_attribute_factor(const Job& job) const {
  return std::clamp(job.estimate / max_estimate_, 0.0, 1.0);
}

double SlurmMultifactorPolicy::partition_factor(int queue) const {
  const auto it = queue_priority_.find(queue);
  return it != queue_priority_.end() ? it->second : 0.0;
}

double SlurmMultifactorPolicy::priority(const Job& job, Time now) const {
  return kWeight * age_factor(job, now) +
         kWeight * fairshare_factor(job.user) +
         kWeight * job_attribute_factor(job) +
         kWeight * partition_factor(job.queue);
}

double SlurmMultifactorPolicy::score(const Job& job,
                                     const SchedContext& ctx) const {
  return -priority(job, ctx.now);
}

void SlurmMultifactorPolicy::on_job_start(const Job& job, Time) {
  const double cpu_seconds = job.run * static_cast<double>(job.procs);
  used_cpu_seconds_[job.user] += cpu_seconds;
  total_used_cpu_seconds_ += cpu_seconds;
}

void SlurmMultifactorPolicy::reset() {
  used_cpu_seconds_.clear();
  total_used_cpu_seconds_ = 0.0;
}

}  // namespace si
