#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace si {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void JsonObject::begin_field(std::string_view key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":";
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  begin_field(key);
  out_ += '"';
  out_ += json_escape(value);
  out_ += '"';
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  begin_field(key);
  out_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::int64_t value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  begin_field(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(std::string_view key, std::string_view json) {
  begin_field(key);
  out_ += json;
  return *this;
}

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_space() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  bool consume(char ch) {
    if (done() || text[pos] != ch) return false;
    ++pos;
    return true;
  }
};

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_string(Cursor& c, std::string& out, std::string* error) {
  if (!c.consume('"')) return fail(error, "expected '\"'");
  out.clear();
  while (!c.done()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.done()) break;
      const char esc = c.text[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (c.pos + 4 > c.text.size())
            return fail(error, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = c.text[c.pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail(error, "bad \\u escape");
          }
          // Flat records only ever escape control characters; anything in
          // the BMP below 0x80 maps straight to one byte.
          out += static_cast<char>(code < 0x80 ? code : '?');
          break;
        }
        default:
          return fail(error, "unknown escape");
      }
    } else {
      out += ch;
    }
  }
  return fail(error, "unterminated string");
}

bool parse_value(Cursor& c, JsonValue& out, std::string* error) {
  c.skip_space();
  if (c.done()) return fail(error, "missing value");
  const char ch = c.peek();
  if (ch == '"') {
    out.kind = JsonValue::Kind::kString;
    return parse_string(c, out.string, error);
  }
  if (ch == 't' || ch == 'f') {
    const std::string_view word = ch == 't' ? "true" : "false";
    if (c.text.substr(c.pos, word.size()) != word)
      return fail(error, "bad literal");
    c.pos += word.size();
    out.kind = JsonValue::Kind::kBool;
    out.boolean = ch == 't';
    return true;
  }
  if (ch == 'n') {
    if (c.text.substr(c.pos, 4) != "null") return fail(error, "bad literal");
    c.pos += 4;
    out.kind = JsonValue::Kind::kNull;
    return true;
  }
  // Number token.
  const std::size_t start = c.pos;
  while (!c.done()) {
    const char d = c.peek();
    if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
        d == 'e' || d == 'E')
      ++c.pos;
    else
      break;
  }
  if (c.pos == start) return fail(error, "unexpected character");
  const std::string token(c.text.substr(start, c.pos - start));
  char* end = nullptr;
  out.kind = JsonValue::Kind::kNumber;
  out.number = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') return fail(error, "bad number");
  return true;
}

}  // namespace

bool parse_flat_json(std::string_view line, JsonFlatObject& out,
                     std::string* error) {
  out.clear();
  Cursor c{line};
  c.skip_space();
  if (!c.consume('{')) return fail(error, "expected '{'");
  c.skip_space();
  if (c.consume('}')) {
    c.skip_space();
    return c.done() || fail(error, "trailing characters");
  }
  for (;;) {
    c.skip_space();
    std::string key;
    if (!parse_string(c, key, error)) return false;
    c.skip_space();
    if (!c.consume(':')) return fail(error, "expected ':'");
    JsonValue value;
    if (!parse_value(c, value, error)) return false;
    out[key] = std::move(value);
    c.skip_space();
    if (c.consume(',')) continue;
    if (c.consume('}')) break;
    return fail(error, "expected ',' or '}'");
  }
  c.skip_space();
  return c.done() || fail(error, "trailing characters");
}

}  // namespace si
