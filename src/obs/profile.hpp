// RAII scoped-timer profiler. SI_PROFILE_SCOPE("label") opens a wall-time
// scope; nested scopes on the same thread build a hierarchical label path
// and the process-wide Profiler aggregates {call count, total seconds} per
// path, reporting an indented profile tree. Disabled (the default) a scope
// costs one relaxed atomic load — safe to leave in hot paths. Enable via
// Profiler::set_enabled(true), the CLI's --profile flag, or the
// SCHEDINSPECTOR_PROFILE=1 environment variable (which also registers an
// atexit report to stderr). Scopes opened on worker threads aggregate into
// the same tree, rooted at that thread's outermost scope.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/sink.hpp"

namespace si {

class Profiler {
 public:
  /// One aggregated tree node (label path component).
  struct Node {
    std::uint64_t count = 0;
    double seconds = 0.0;
    std::map<std::string, Node> children;
  };

  static Profiler& instance();

  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Records one finished scope. `path` is the thread's label stack at scope
  /// exit, outermost first (including the scope's own label last).
  void record(const std::vector<const char*>& path, double seconds);

  /// Indented tree: label, call count, total seconds, share of parent.
  std::string report() const;
  void write_report(Sink& sink) const { sink.write(report()); }
  void reset();

  /// Registers (once) an atexit hook printing the report to stderr.
  void report_at_exit();

 private:
  Profiler() = default;
  static std::atomic<bool>& enabled_flag();

  mutable std::mutex mutex_;
  Node root_;
  bool exit_hook_registered_ = false;
};

/// RAII scope; prefer the SI_PROFILE_SCOPE macro. `label` must be a string
/// literal (stored by pointer while the scope is open).
class ProfileScope {
 public:
  explicit ProfileScope(const char* label);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace si

#define SI_PROFILE_CONCAT2(a, b) a##b
#define SI_PROFILE_CONCAT(a, b) SI_PROFILE_CONCAT2(a, b)
/// Opens a profiling scope covering the rest of the enclosing block.
#define SI_PROFILE_SCOPE(label) \
  ::si::ProfileScope SI_PROFILE_CONCAT(si_profile_scope_, __LINE__)(label)
