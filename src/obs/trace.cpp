#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace si {

const char* trace_event_kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kRunBegin: return "run_begin";
    case TraceEvent::Kind::kSubmit: return "submit";
    case TraceEvent::Kind::kSchedPoint: return "sched_point";
    case TraceEvent::Kind::kInspect: return "inspect";
    case TraceEvent::Kind::kReject: return "reject";
    case TraceEvent::Kind::kStart: return "start";
    case TraceEvent::Kind::kFinish: return "finish";
    case TraceEvent::Kind::kRequeue: return "requeue";
    case TraceEvent::Kind::kKill: return "kill";
    case TraceEvent::Kind::kDrain: return "drain";
    case TraceEvent::Kind::kRestore: return "restore";
    case TraceEvent::Kind::kTrajectory: return "trajectory";
    case TraceEvent::Kind::kRunEnd: return "run_end";
  }
  return "?";
}

std::string trace_event_jsonl(const TraceEvent& event) {
  JsonObject out;
  out.field("ev", trace_event_kind_name(event.kind));
  out.field("t", event.time);
  switch (event.kind) {
    case TraceEvent::Kind::kRunBegin:
      out.field("jobs", event.jobs)
          .field("procs", event.procs)
          .field("backfill", event.backfill);
      break;
    case TraceEvent::Kind::kSubmit:
      out.field("job", event.job)
          .field("procs", event.procs)
          .field("submit", event.submit);
      break;
    case TraceEvent::Kind::kSchedPoint:
      out.field("job", event.job)
          .field("free", event.free_procs)
          .field("waiting", event.waiting);
      break;
    case TraceEvent::Kind::kInspect:
      out.field("job", event.job)
          .field("reject", event.reject)
          .field("rejections", event.rejections)
          .field("free", event.free_procs);
      break;
    case TraceEvent::Kind::kReject:
      out.field("job", event.job).field("rejections", event.rejections);
      break;
    case TraceEvent::Kind::kStart:
      out.field("job", event.job)
          .field("procs", event.procs)
          .field("wait", event.wait);
      break;
    case TraceEvent::Kind::kFinish:
      out.field("job", event.job)
          .field("procs", event.procs)
          .field("run", event.run);
      break;
    case TraceEvent::Kind::kRequeue:
      out.field("job", event.job).field("attempt", event.attempt);
      break;
    case TraceEvent::Kind::kKill:
      out.field("job", event.job)
          .field("procs", event.procs)
          .field("run", event.run)
          .field("reason", event.reason != nullptr ? event.reason : "?");
      break;
    case TraceEvent::Kind::kDrain:
    case TraceEvent::Kind::kRestore:
      out.field("procs", event.procs);
      break;
    case TraceEvent::Kind::kTrajectory:
      out.field("epoch", event.epoch).field("traj", event.traj);
      break;
    case TraceEvent::Kind::kRunEnd:
      out.field("jobs", event.jobs)
          .field("inspections", event.inspections)
          .field("rejections", event.total_rejections)
          .field("avg_wait", event.avg_wait)
          .field("avg_bsld", event.avg_bsld)
          .field("max_bsld", event.max_bsld)
          .field("util", event.util)
          .field("makespan", event.makespan);
      break;
  }
  return out.str() + "\n";
}

}  // namespace si
