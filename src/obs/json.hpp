// Tiny JSON emission (and flat-object parsing) helpers for the
// observability layer. Every JSONL record the repo writes — trace events,
// trainer telemetry, log records, metrics/bench exports — is built through
// JsonObject so escaping and number formatting stay uniform and
// deterministic (doubles use "%.17g": round-trippable and identical across
// runs on the same platform).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace si {

/// Escapes `text` for inclusion inside a JSON string literal (no quotes
/// added): backslash, quote, and control characters.
std::string json_escape(std::string_view text);

/// Formats a double as a JSON number token; non-finite values (which JSON
/// cannot represent) become "null".
std::string json_number(double value);

/// Incremental builder for one flat JSON object. Keys are emitted in call
/// order; str() closes the object.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonObject& field(std::string_view key, bool value);
  /// Emits `json` verbatim as the value (caller guarantees validity); used
  /// to nest arrays/objects built elsewhere.
  JsonObject& raw(std::string_view key, std::string_view json);

  /// The finished object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return out_ + "}"; }

 private:
  void begin_field(std::string_view key);

  std::string out_ = "{";
  bool first_ = true;
};

/// One parsed scalar value of a flat JSON object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

using JsonFlatObject = std::map<std::string, JsonValue>;

/// Parses one *flat* JSON object (string/number/bool/null values only — no
/// nesting), as emitted for JSONL trace / telemetry / log records. Returns
/// false and fills `error` (when given) on malformed input. Deliberately
/// minimal: a schema-checking aid for tests and tools, not a general JSON
/// parser (tools/check_trace_schema.py does full validation).
bool parse_flat_json(std::string_view line, JsonFlatObject& out,
                     std::string* error = nullptr);

}  // namespace si
