#include "obs/prom.hpp"

#include "obs/json.hpp"

namespace si {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + json_number(gauge.value()) + "\n";
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<double>& bounds = histogram.bounds();
    const std::vector<std::uint64_t>& counts = histogram.counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += prom + "_bucket{le=\"" +
             prometheus_label_escape(json_number(bounds[i])) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += prom + "_sum " + json_number(histogram.sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram.count()) + "\n";
  }
  return out;
}

}  // namespace si
