// Multi-thread-safe and rolling-window instruments (DESIGN.md §10). The
// base MetricsRegistry (metrics_registry.hpp) is single-writer by design —
// the simulator/trainer hot paths stay synchronization-free. The serving
// daemon, however, records from two threads concurrently and wants
// "last N seconds" percentiles, not just process-lifetime cumulatives.
// This header provides the shared building blocks:
//
//   * AtomicHistogram — the fixed-bucket histogram recorded with relaxed
//     atomics from any number of threads, snapshotted deterministically
//     into a plain Histogram for export (sum of per-bucket counts is
//     exact; no locks on the record path).
//   * WindowedHistogram — a ring of AtomicHistogram slots, each covering
//     `slot_span_us` of time; merge(now) folds the slots still inside the
//     window into one Histogram, giving last-N-seconds p50/p99/p999.
//     Time is passed in explicitly, so tests drive rotation
//     deterministically and production callers pass a steady-clock value.
//   * EwmaRate — an exponentially weighted events/sec estimate fed from a
//     monotonic counter at export time.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace si {

/// Fixed-bucket histogram safe for concurrent observe() from any thread.
/// Bucket tallies / count use relaxed atomics; sum uses an atomic double
/// CAS-add. Export via snapshot_into(): bucket counts are exact (each
/// observation lands in exactly one bucket); count/sum are read after the
/// buckets, so a snapshot taken during concurrent recording is a valid
/// histogram whose totals are at least the folded bucket tallies.
class AtomicHistogram {
 public:
  explicit AtomicHistogram(std::vector<double> bounds);

  void observe(double value);
  /// Merges `count` pre-tallied observations into bucket `index`.
  void merge_bucket(std::size_t index, std::uint64_t count, double sum);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Folds the bucket tallies into `out` (same bounds required) via
  /// Histogram::merge_bucket. Deterministic given quiescent input.
  void snapshot_into(Histogram& out) const;
  /// Convenience: a fresh plain Histogram holding the snapshot.
  Histogram snapshot() const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds+1 entries
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Rolling-window histogram: `slots` ring entries, each spanning
/// `slot_span_us` microseconds. observe(value, now_us) lands in the slot
/// for now_us, lazily resetting slots whose previous tenancy expired; the
/// merge of the live slots covers between (slots-1) and slots slot-spans
/// of history. All counters are atomic, so concurrent observe() is
/// race-free; slot rotation takes a mutex (cold: once per slot span).
class WindowedHistogram {
 public:
  WindowedHistogram(std::vector<double> bounds, std::int64_t slot_span_us,
                    std::size_t slots);

  void observe(double value, std::int64_t now_us);

  /// Folds every slot still inside the window ending at `now_us` into one
  /// plain Histogram (same bounds). Slots whose tenancy expired are
  /// excluded, so quantiles reflect only the last window_span_us().
  Histogram merge(std::int64_t now_us) const;

  /// Count of observations inside the window ending at now_us.
  std::uint64_t count(std::int64_t now_us) const;

  std::int64_t slot_span_us() const { return slot_span_us_; }
  std::int64_t window_span_us() const {
    return slot_span_us_ * static_cast<std::int64_t>(slots_.size());
  }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Slot {
    explicit Slot(std::size_t buckets) : counts(buckets) {}
    /// Slot index (now_us / slot_span_us) currently stored; -1 = empty.
    std::atomic<std::int64_t> epoch{-1};
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  /// Ensures `slot` holds tenancy `epoch`, resetting stale contents.
  void rotate(Slot& slot, std::int64_t epoch);

  std::vector<double> bounds_;
  std::int64_t slot_span_us_;
  /// deque: Slot holds atomics (immovable); deque emplace never relocates.
  std::deque<Slot> slots_;
  mutable std::mutex rotate_mutex_;
};

/// Exponentially weighted moving average of a rate (events/sec), fed from
/// a monotonic counter: update(total, now_us) differentiates against the
/// previous sample and smooths with time constant `tau_s`. The first
/// update primes the state and reports 0.
class EwmaRate {
 public:
  explicit EwmaRate(double tau_s = 10.0) : tau_s_(tau_s) {}

  /// Feeds the current counter total; returns the smoothed rate.
  double update(std::uint64_t total, std::int64_t now_us);
  double value() const;

 private:
  double tau_s_;
  mutable std::mutex mutex_;
  bool primed_ = false;
  std::uint64_t last_total_ = 0;
  std::int64_t last_us_ = 0;
  double rate_ = 0.0;
};

}  // namespace si
