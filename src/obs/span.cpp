#include "obs/span.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace si {

namespace {

// Thread-local scope state for ScopedSpan: the innermost open span id and
// the trace id new root scopes attach to.
thread_local std::uint64_t tls_current_span = 0;
thread_local std::uint64_t tls_current_trace = 0;

}  // namespace

SpanCollector::SpanCollector(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {
  SI_REQUIRE(capacity_ >= 1);
}

std::int64_t SpanCollector::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SpanCollector::register_thread(std::uint32_t tid,
                                    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, existing_name] : thread_names_) {
    if (existing == tid) {
      existing_name = name;
      return;
    }
  }
  thread_names_.emplace_back(tid, name);
}

void SpanCollector::record(SpanEvent event) {
  if (event.span_id == 0) event.span_id = next_span_id();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    events_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  events_.push_back(std::move(event));
}

void SpanCollector::instant(
    const std::string& name, const std::string& cat, std::uint64_t trace_id,
    std::uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  SpanEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = SpanEvent::Phase::kInstant;
  event.trace_id = trace_id;
  event.tid = tid;
  event.ts_us = now_us();
  event.args = std::move(args);
  record(std::move(event));
}

std::size_t SpanCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void SpanCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<SpanEvent> SpanCollector::snapshot() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.assign(events_.begin(), events_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.span_id < b.span_id;
            });
  return out;
}

std::string SpanCollector::event_json(const SpanEvent& event) {
  JsonObject out;
  out.field("name", event.name);
  out.field("cat", event.cat.empty() ? std::string_view("span")
                                     : std::string_view(event.cat));
  switch (event.phase) {
    case SpanEvent::Phase::kComplete:
      out.field("ph", "X");
      break;
    case SpanEvent::Phase::kInstant:
      out.field("ph", "i");
      out.field("s", "t");  // instant scope: thread
      break;
  }
  out.field("ts", event.ts_us);
  if (event.phase == SpanEvent::Phase::kComplete)
    out.field("dur", event.dur_us);
  out.field("pid", 1);
  out.field("tid", static_cast<std::int64_t>(event.tid));
  JsonObject args;
  args.field("trace", event.trace_id);
  args.field("span", event.span_id);
  if (event.parent_id != 0) args.field("parent", event.parent_id);
  for (const auto& [key, value] : event.args) args.field(key, value);
  out.raw("args", args.str());
  return out.str();
}

std::string SpanCollector::to_chrome_json() const {
  const std::vector<SpanEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [tid, name] : thread_names_) {
      if (!first) out += ",\n";
      first = false;
      JsonObject meta;
      meta.field("name", "thread_name");
      meta.field("ph", "M");
      meta.field("pid", 1);
      meta.field("tid", static_cast<std::int64_t>(tid));
      JsonObject args;
      args.field("name", name);
      meta.raw("args", args.str());
      out += meta.str();
    }
  }
  for (const SpanEvent& event : events) {
    if (!first) out += ",\n";
    first = false;
    out += event_json(event);
  }
  out += "\n]}\n";
  return out;
}

std::string SpanCollector::to_jsonl() const {
  std::string out;
  for (const SpanEvent& event : snapshot()) {
    out += event_json(event);
    out += '\n';
  }
  return out;
}

std::uint64_t SpanCollector::current_span() { return tls_current_span; }
std::uint64_t SpanCollector::current_trace() { return tls_current_trace; }
void SpanCollector::set_current_trace(std::uint64_t trace_id) {
  tls_current_trace = trace_id;
}

std::uint64_t SpanCollector::push_scope(std::uint64_t span_id) {
  const std::uint64_t parent = tls_current_span;
  tls_current_span = span_id;
  return parent;
}

void SpanCollector::pop_scope(std::uint64_t previous) {
  tls_current_span = previous;
}

ScopedSpan::ScopedSpan(SpanCollector* collector, std::string name,
                       std::string cat, std::uint32_t tid,
                       std::vector<std::pair<std::string, std::string>> args)
    : collector_(collector) {
  if (collector_ == nullptr) return;
  event_.name = std::move(name);
  event_.cat = std::move(cat);
  event_.tid = tid;
  event_.args = std::move(args);
  event_.span_id = collector_->next_span_id();
  if (SpanCollector::current_trace() == 0) {
    // Outermost scope of a fresh trace: mint a trace id and own it, so
    // every nested scope (and manual record) on this thread joins it.
    SpanCollector::set_current_trace(collector_->next_trace_id());
    owns_trace_ = true;
  }
  event_.trace_id = SpanCollector::current_trace();
  saved_parent_ = SpanCollector::push_scope(event_.span_id);
  event_.parent_id = saved_parent_;
  event_.ts_us = collector_->now_us();
}

ScopedSpan::~ScopedSpan() {
  if (collector_ == nullptr) return;
  event_.dur_us = collector_->now_us() - event_.ts_us;
  SpanCollector::pop_scope(saved_parent_);
  if (owns_trace_) SpanCollector::set_current_trace(0);
  collector_->record(std::move(event_));
}

void ScopedSpan::arg(const std::string& key, const std::string& value) {
  if (collector_ == nullptr) return;
  event_.args.emplace_back(key, value);
}

}  // namespace si
