#include "obs/profile.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/env.hpp"

namespace si {

namespace {

// The per-thread stack of open scope labels; ProfileScope pushes/pops.
thread_local std::vector<const char*> t_scope_stack;

}  // namespace

std::atomic<bool>& Profiler::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

Profiler& Profiler::instance() {
  static Profiler* profiler = [] {
    auto* p = new Profiler();  // leaked: must outlive atexit handlers
    if (env_int("SCHEDINSPECTOR_PROFILE", 0) != 0) {
      set_enabled(true);
      p->report_at_exit();
    }
    return p;
  }();
  return *profiler;
}

void Profiler::record(const std::vector<const char*>& path, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = &root_;
  for (const char* label : path) node = &node->children[label];
  ++node->count;
  node->seconds += seconds;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  root_ = Node{};
}

namespace {

void render_node(const std::string& label, const Profiler::Node& node,
                 double parent_seconds, int depth, std::string& out) {
  char buf[160];
  const double share =
      parent_seconds > 0.0 ? node.seconds / parent_seconds * 100.0 : 100.0;
  std::snprintf(buf, sizeof buf, "%*s%-*s %10llu calls %12.6f s %6.1f%%\n",
                depth * 2, "", 32 - depth * 2, label.c_str(),
                static_cast<unsigned long long>(node.count), node.seconds,
                share);
  out += buf;
  for (const auto& [child_label, child] : node.children)
    render_node(child_label, child, node.seconds, depth + 1, out);
}

}  // namespace

std::string Profiler::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "--- profile (wall time per scope) ---\n";
  if (root_.children.empty()) {
    out += "(no scopes recorded)\n";
    return out;
  }
  double total = 0.0;
  for (const auto& [label, node] : root_.children) total += node.seconds;
  for (const auto& [label, node] : root_.children)
    render_node(label, node, total, 0, out);
  return out;
}

void Profiler::report_at_exit() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (exit_hook_registered_) return;
    exit_hook_registered_ = true;
  }
  std::atexit([] {
    const std::string report = Profiler::instance().report();
    std::fputs(report.c_str(), stderr);
  });
}

ProfileScope::ProfileScope(const char* label) {
  if (!Profiler::enabled()) return;
  active_ = true;
  t_scope_stack.push_back(label);
  start_ = std::chrono::steady_clock::now();
}

ProfileScope::~ProfileScope() {
  if (!active_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  Profiler::instance().record(t_scope_stack, seconds);
  t_scope_stack.pop_back();
}

}  // namespace si
