// Request-scoped span tracing (DESIGN.md §10). A SpanCollector gathers
// timed spans — each with a trace id (one per request / rollout), a span
// id, an optional parent span, and monotonic microsecond timestamps — from
// any number of threads, and exports them as Chrome trace-event JSON
// loadable in Perfetto (chrome://tracing), or as JSONL for
// tools/check_trace_schema.py --spans.
//
// Two recording styles:
//   * ScopedSpan — RAII for single-threaded phases (trainer epochs,
//     batched forwards): nesting on one thread builds the parent chain
//     automatically through a thread-local span stack.
//   * SpanCollector::record(SpanEvent) — manual, for requests whose life
//     crosses threads (the serve pipeline measures receipt / dequeue /
//     reply on different threads and records the finished segments).
//
// A null collector pointer is the universal "off" switch: every
// instrumented call site guards with `if (spans != nullptr)`, so untraced
// runs stay on the exact seed code path. The collector itself is a bounded
// ring (default 64Ki spans): long-running daemons keep the most recent
// window instead of growing without bound.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/sink.hpp"

namespace si {

/// One finished span or point event, Chrome trace-event shaped.
struct SpanEvent {
  enum class Phase : std::uint8_t {
    kComplete,  ///< "ph":"X": a duration [ts_us, ts_us + dur_us]
    kInstant,   ///< "ph":"i": a point event (degradation, rollback, swap)
  };

  std::string name;        ///< span label, e.g. "serve.request"
  std::string cat;         ///< coarse grouping, e.g. "serve" / "train"
  Phase phase = Phase::kComplete;
  std::uint64_t trace_id = 0;  ///< groups every span of one request/rollout
  std::uint64_t span_id = 0;   ///< unique within the collector
  std::uint64_t parent_id = 0; ///< 0 = root of its trace
  std::uint32_t tid = 0;       ///< virtual thread lane (see register_thread)
  std::int64_t ts_us = 0;      ///< microseconds since collector construction
  std::int64_t dur_us = 0;     ///< kComplete only; >= 0
  /// Extra key/value pairs folded into the Chrome "args" object. Every
  /// value is emitted as a JSON string (json_escape'd), so hostile keys
  /// and values can never break the trace file.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe bounded collector of SpanEvents with id generation and a
/// monotonic clock shared by every producer (so child spans of one request
/// sum to the request span even across threads).
class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = 1 << 16);

  /// Microseconds since collector construction (steady clock).
  std::int64_t now_us() const;

  std::uint64_t next_trace_id() { return next_trace_id_.fetch_add(1) + 1; }
  std::uint64_t next_span_id() { return next_span_id_.fetch_add(1) + 1; }

  /// Names the virtual thread lane `tid` in the exported trace (Chrome
  /// thread_name metadata). Call once per lane; later calls overwrite.
  void register_thread(std::uint32_t tid, const std::string& name);

  /// Appends one finished event; drops the oldest when at capacity
  /// (dropped() counts them). Safe from any thread.
  void record(SpanEvent event);

  /// Convenience: records a kInstant point event.
  void instant(const std::string& name, const std::string& cat,
               std::uint64_t trace_id, std::uint32_t tid,
               std::vector<std::pair<std::string, std::string>> args = {});

  std::size_t size() const;
  std::uint64_t dropped() const { return dropped_.load(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// Deterministic snapshot: events sorted by (ts_us, span_id), so exports
  /// after concurrent recording do not depend on arrival interleaving.
  std::vector<SpanEvent> snapshot() const;

  /// Complete Chrome trace JSON: {"traceEvents":[...]} — valid JSON,
  /// loadable in Perfetto / chrome://tracing. One event per line.
  std::string to_chrome_json() const;
  void write_chrome_json(Sink& sink) const { sink.write(to_chrome_json()); }

  /// One span event per line (same objects as the traceEvents array), for
  /// tools/check_trace_schema.py --spans and jq-style slicing.
  std::string to_jsonl() const;
  void write_jsonl(Sink& sink) const { sink.write(to_jsonl()); }

  // --- thread-local scope stack used by ScopedSpan ---
  /// The innermost open ScopedSpan's id on this thread (0 = none).
  static std::uint64_t current_span();
  /// The trace id ScopedSpans on this thread attach to (0 = fresh trace
  /// per root scope).
  static std::uint64_t current_trace();
  static void set_current_trace(std::uint64_t trace_id);

 private:
  friend class ScopedSpan;
  static std::uint64_t push_scope(std::uint64_t span_id);   // returns parent
  static void pop_scope(std::uint64_t previous);

  /// Serializes one event as a single-line JSON object (no newline).
  static std::string event_json(const SpanEvent& event);

  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t capacity_;
  std::atomic<std::uint64_t> next_trace_id_{0};
  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::deque<SpanEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
};

/// RAII span for single-threaded phases. Opens on construction, records on
/// destruction. Nested scopes on the same thread chain parent ids; the
/// outermost scope starts a fresh trace unless set_current_trace() pinned
/// one. A null collector makes the scope a no-op.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* collector, std::string name, std::string cat,
             std::uint32_t tid = 0,
             std::vector<std::pair<std::string, std::string>> args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Adds an args entry after construction (e.g. a result computed inside
  /// the scope).
  void arg(const std::string& key, const std::string& value);

 private:
  SpanCollector* collector_;
  SpanEvent event_;
  std::uint64_t saved_parent_ = 0;
  bool owns_trace_ = false;
};

}  // namespace si
