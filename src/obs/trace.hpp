// Simulator event tracing: one structured record per discrete simulator
// event, serialized as JSONL. The Simulator emits events only when a tracer
// is installed via SimConfig::tracer, so untraced runs execute the exact
// seed code path (bit-identical results). Records carry *simulated* time
// only — never wall-clock — so same-seed runs produce byte-identical trace
// files (tests/obs/trace_test.cpp proves it; tools/check_trace_schema.py
// validates the schema, documented in DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sink.hpp"

namespace si {

/// One simulator event. Only the fields meaningful for `kind` are
/// serialized (see trace_event_jsonl); the rest keep their sentinel values.
struct TraceEvent {
  enum class Kind {
    kRunBegin,    ///< sim.run() entered: jobs, procs, backfill
    kSubmit,      ///< job admitted to the waiting queue: job, procs, submit
    kSchedPoint,  ///< base policy picked a candidate: job, free, waiting
    kInspect,     ///< inspector consulted: job, reject, rejections, free
    kReject,      ///< candidate rejected: job, rejections (updated count)
    kStart,       ///< job started: job, procs, wait
    kFinish,      ///< job completed normally: job, procs, run
    kRequeue,     ///< failed attempt re-entered the queue: job, attempt
    kKill,        ///< job terminated for good: job, procs, run, reason
    kDrain,       ///< processors collected out of service: procs
    kRestore,     ///< drained processors returned to service: procs
    kTrajectory,  ///< trainer marker delimiting rollouts: epoch, traj
    kRunEnd,      ///< sim.run() finished: jobs, inspections, rejections,
                  ///< plus the reported sequence metrics (avg_wait,
                  ///< avg_bsld, max_bsld, util, makespan) so a trace is a
                  ///< self-contained replay-validation artifact
  };

  Kind kind = Kind::kRunBegin;
  double time = 0.0;              ///< simulated seconds (field "t")
  std::int64_t job = -1;          ///< job id
  std::int64_t jobs = -1;         ///< sequence length (run begin/end)
  int procs = -1;
  int free_procs = -1;
  int waiting = -1;               ///< waiting-queue length
  int rejections = -1;            ///< per-job rejection count
  int attempt = -1;               ///< requeue attempt number
  double wait = -1.0;             ///< seconds waited before start
  double submit = -1.0;           ///< original submission time
  double run = -1.0;              ///< recorded execution seconds (finish/kill)
  bool reject = false;            ///< inspect decision
  bool backfill = false;          ///< run begin: EASY backfilling on
  const char* reason = nullptr;   ///< kill reason: "wall" | "budget"
  std::int64_t inspections = -1;  ///< run end totals
  std::int64_t total_rejections = -1;
  double avg_wait = 0.0;          ///< run end: reported sequence metrics
  double avg_bsld = 0.0;
  double max_bsld = 0.0;
  double util = 0.0;
  double makespan = 0.0;
  int epoch = -1;                 ///< trajectory marker
  int traj = -1;
};

/// The "ev" field value for a kind, e.g. "sched_point".
const char* trace_event_kind_name(TraceEvent::Kind kind);

/// Serializes one event as a single JSON line (trailing newline included).
std::string trace_event_jsonl(const TraceEvent& event);

/// Receiver of simulator events; installed via SimConfig::tracer. The
/// simulator calls on_event synchronously from its own thread.
class SimTracer {
 public:
  virtual ~SimTracer() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Writes each event as one JSONL record to a sink.
class JsonlTracer final : public SimTracer {
 public:
  explicit JsonlTracer(Sink& out) : out_(out) {}
  void on_event(const TraceEvent& event) override {
    out_.write(trace_event_jsonl(event));
  }
  void flush() { out_.flush(); }

 private:
  Sink& out_;
};

/// Buffers events in memory; the trainer gives each rollout worker its own
/// buffer and drains them in trajectory order so multi-threaded training
/// still produces a deterministic, byte-identical trace.
class BufferTracer final : public SimTracer {
 public:
  void on_event(const TraceEvent& event) override {
    events_.push_back(event);
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  void drain_to(SimTracer& out) {
    for (const TraceEvent& event : events_) out.on_event(event);
    events_.clear();
  }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace si
