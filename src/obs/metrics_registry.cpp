#include "obs/metrics_registry.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace si {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SI_REQUIRE(!bounds_.empty());
  SI_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    SI_REQUIRE(bounds_[i - 1] < bounds_[i]);
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

void Histogram::merge_bucket(std::size_t index, std::uint64_t count,
                             double sum) {
  SI_REQUIRE(index < counts_.size());
  counts_[index] += count;
  count_ += count;
  sum_ += sum;
}

double histogram_quantile(const Histogram& hist, double q) {
  SI_REQUIRE(q >= 0.0 && q <= 1.0);
  const std::uint64_t total = hist.count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  const std::vector<double>& bounds = hist.bounds();
  const std::vector<std::uint64_t>& counts = hist.counts();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative < target || counts[i] == 0) continue;
    if (i >= bounds.size()) return bounds.back();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double fraction =
        (target - prev) / static_cast<double>(counts[i]);
    return lower + fraction * (bounds[i] - lower);
  }
  return bounds.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

std::string MetricsRegistry::to_json() const {
  auto number_array = [](const auto& values, auto&& format) {
    std::string out = "[";
    bool first = true;
    for (const auto& v : values) {
      if (!first) out += ',';
      first = false;
      out += format(v);
    }
    return out + "]";
  };

  JsonObject counters;
  for (const auto& [name, counter] : counters_)
    counters.field(name, counter.value());
  JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) gauges.field(name, gauge.value());
  JsonObject histograms;
  for (const auto& [name, histogram] : histograms_) {
    JsonObject h;
    h.raw("bounds", number_array(histogram.bounds(),
                                 [](double b) { return json_number(b); }));
    h.raw("counts", number_array(histogram.counts(), [](std::uint64_t c) {
            return std::to_string(c);
          }));
    h.field("sum", histogram.sum());
    h.field("count", histogram.count());
    histograms.raw(name, h.str());
  }
  JsonObject root;
  root.raw("counters", counters.str());
  root.raw("gauges", gauges.str());
  root.raw("histograms", histograms.str());
  return root.str() + "\n";
}

std::string MetricsRegistry::to_csv() const {
  // Instrument names are caller-chosen strings: quote any containing CSV
  // metacharacters (RFC 4180 double-quote doubling), mirroring the JSON
  // exporter's json_escape guarantee that a hostile name cannot corrupt
  // the output framing.
  const auto csv_escape = [](const std::string& name) {
    if (name.find_first_of(",\"\n\r") == std::string::npos) return name;
    std::string out = "\"";
    for (const char ch : name) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  std::string out = "kind,name,key,value\n";
  for (const auto& [name, counter] : counters_)
    out += "counter," + csv_escape(name) + ",value," +
           std::to_string(counter.value()) + "\n";
  for (const auto& [name, gauge] : gauges_)
    out += "gauge," + csv_escape(name) + ",value," + json_number(gauge.value()) +
           "\n";
  for (const auto& [raw_name, histogram] : histograms_) {
    const std::string name = csv_escape(raw_name);
    const auto& bounds = histogram.bounds();
    const auto& counts = histogram.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::string key =
          i < bounds.size() ? "le_" + json_number(bounds[i]) : "le_inf";
      out += "histogram," + name + "," + key + "," +
             std::to_string(counts[i]) + "\n";
    }
    out += "histogram," + name + ",sum," + json_number(histogram.sum()) + "\n";
    out += "histogram," + name + ",count," + std::to_string(histogram.count()) +
           "\n";
  }
  return out;
}

}  // namespace si
