// Leveled, sink-based structured logger. Log records flow to any number of
// sinks (stderr text, plain-text file, JSONL file — all built on
// common/sink.hpp) and are dropped with a single level comparison when no
// sink is attached or the level is filtered, so instrumented library code
// costs nothing in the default (unconfigured) state: the SI_LOG_* macros do
// not even evaluate the message expression then.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/sink.hpp"

namespace si {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"; throws
/// std::out_of_range (listing the known names) otherwise.
LogLevel log_level_from_name(const std::string& name);
std::string log_level_name(LogLevel level);

/// All parseable level names, in severity order.
const std::vector<std::string>& known_log_levels();

/// Thread-safe leveled logger fanning records out to its sinks. Formatting
/// per sink: text sinks get "[level] component: message\n", JSONL sinks get
/// {"level":...,"component":...,"msg":...}.
class Logger {
 public:
  Logger() = default;

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// True when a record at `level` would reach at least one sink. The
  /// SI_LOG_* macros guard on this so disabled logging skips message
  /// construction entirely.
  bool enabled(LogLevel level) const {
    return level >= this->level() && has_sinks_.load(std::memory_order_relaxed);
  }

  /// Attaches a non-owning text/JSONL sink; `out` must outlive the logger.
  void add_text_sink(Sink& out) { add_entry(nullptr, &out, false); }
  void add_jsonl_sink(Sink& out) { add_entry(nullptr, &out, true); }
  /// Convenience owned sinks.
  void add_stderr_sink() { add_text_sink(stderr_sink()); }
  void add_file_sink(const std::string& path);
  void add_jsonl_file_sink(const std::string& path);
  void clear_sinks();

  void log(LogLevel level, std::string_view component,
           std::string_view message);
  void flush();

 private:
  struct Entry {
    std::unique_ptr<Sink> owned;  ///< set when the logger owns the sink
    Sink* out = nullptr;
    bool jsonl = false;
  };

  void add_entry(std::unique_ptr<Sink> owned, Sink* out, bool jsonl);

  std::atomic<LogLevel> level_{LogLevel::kInfo};
  std::atomic<bool> has_sinks_{false};
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// The process-wide logger used by SI_LOG_*. Starts with no sinks (fully
/// disabled); front-ends attach sinks and set the level (--log-level).
Logger& global_logger();

}  // namespace si

/// Logs through an explicit logger; `message` is only evaluated when the
/// record would actually be written.
#define SI_LOG(logger, lvl, component, message)                         \
  do {                                                                  \
    ::si::Logger& si_log_ref = (logger);                                \
    if (si_log_ref.enabled(lvl)) si_log_ref.log(lvl, component, message); \
  } while (0)

#define SI_LOG_DEBUG(component, message) \
  SI_LOG(::si::global_logger(), ::si::LogLevel::kDebug, component, message)
#define SI_LOG_INFO(component, message) \
  SI_LOG(::si::global_logger(), ::si::LogLevel::kInfo, component, message)
#define SI_LOG_WARN(component, message) \
  SI_LOG(::si::global_logger(), ::si::LogLevel::kWarn, component, message)
#define SI_LOG_ERROR(component, message) \
  SI_LOG(::si::global_logger(), ::si::LogLevel::kError, component, message)
