#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace si {

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::size_t bucket_index(const std::vector<double>& bounds, double value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

}  // namespace

AtomicHistogram::AtomicHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  SI_REQUIRE(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    SI_REQUIRE(bounds_[i - 1] < bounds_[i]);
}

void AtomicHistogram::observe(double value) {
  counts_[bucket_index(bounds_, value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

void AtomicHistogram::merge_bucket(std::size_t index, std::uint64_t count,
                                   double sum) {
  SI_REQUIRE(index < counts_.size());
  counts_[index].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  atomic_add_double(sum_, sum);
}

void AtomicHistogram::snapshot_into(Histogram& out) const {
  SI_REQUIRE(out.bounds() == bounds_);
  // Fold the global sum in through the last merge so mean()/sum() carry
  // over; per-bucket sums are not tracked (matching Histogram's export).
  const double total_sum = sum();
  bool folded = false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.merge_bucket(i, n, folded ? 0.0 : total_sum);
    folded = true;
  }
  if (!folded && total_sum != 0.0)
    out.merge_bucket(counts_.size() - 1, 0, total_sum);
}

Histogram AtomicHistogram::snapshot() const {
  Histogram out(bounds_);
  snapshot_into(out);
  return out;
}

void AtomicHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     std::int64_t slot_span_us,
                                     std::size_t slots)
    : bounds_(std::move(bounds)), slot_span_us_(slot_span_us) {
  SI_REQUIRE(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    SI_REQUIRE(bounds_[i - 1] < bounds_[i]);
  SI_REQUIRE(slot_span_us_ >= 1);
  SI_REQUIRE(slots >= 2);  // one live slot + at least one of history
  for (std::size_t i = 0; i < slots; ++i)
    slots_.emplace_back(bounds_.size() + 1);
}

void WindowedHistogram::rotate(Slot& slot, std::int64_t epoch) {
  std::lock_guard<std::mutex> lock(rotate_mutex_);
  if (slot.epoch.load(std::memory_order_acquire) == epoch) return;
  for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
  slot.count.store(0, std::memory_order_relaxed);
  slot.sum.store(0.0, std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_release);
}

void WindowedHistogram::observe(double value, std::int64_t now_us) {
  SI_REQUIRE(now_us >= 0);
  const std::int64_t epoch = now_us / slot_span_us_;
  Slot& slot = slots_[static_cast<std::size_t>(epoch) % slots_.size()];
  if (slot.epoch.load(std::memory_order_acquire) != epoch)
    rotate(slot, epoch);
  slot.counts[bucket_index(bounds_, value)].fetch_add(
      1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(slot.sum, value);
}

Histogram WindowedHistogram::merge(std::int64_t now_us) const {
  Histogram out(bounds_);
  const std::int64_t current = now_us / slot_span_us_;
  const std::int64_t oldest =
      current - static_cast<std::int64_t>(slots_.size()) + 1;
  for (const Slot& slot : slots_) {
    const std::int64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > current) continue;
    const double slot_sum = slot.sum.load(std::memory_order_relaxed);
    bool folded = false;
    for (std::size_t i = 0; i < slot.counts.size(); ++i) {
      const std::uint64_t n = slot.counts[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      out.merge_bucket(i, n, folded ? 0.0 : slot_sum);
      folded = true;
    }
  }
  return out;
}

std::uint64_t WindowedHistogram::count(std::int64_t now_us) const {
  const std::int64_t current = now_us / slot_span_us_;
  const std::int64_t oldest =
      current - static_cast<std::int64_t>(slots_.size()) + 1;
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::int64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > current) continue;
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

double EwmaRate::update(std::uint64_t total, std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!primed_) {
    primed_ = true;
    last_total_ = total;
    last_us_ = now_us;
    return rate_;
  }
  const double dt =
      static_cast<double>(now_us - last_us_) / 1e6;
  if (dt <= 0.0) return rate_;
  const double instantaneous =
      static_cast<double>(total - last_total_) / dt;
  const double alpha = 1.0 - std::exp(-dt / tau_s_);
  rate_ += alpha * (instantaneous - rate_);
  last_total_ = total;
  last_us_ = now_us;
  return rate_;
}

double EwmaRate::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_;
}

}  // namespace si
