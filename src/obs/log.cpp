#include "obs/log.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace si {

const std::vector<std::string>& known_log_levels() {
  static const std::vector<std::string> names = {"trace", "debug", "info",
                                                 "warn",  "error", "off"};
  return names;
}

LogLevel log_level_from_name(const std::string& name) {
  for (std::size_t i = 0; i < known_log_levels().size(); ++i)
    if (known_log_levels()[i] == name) return static_cast<LogLevel>(i);
  std::string message = "unknown log level: " + name + " (known:";
  for (const std::string& known : known_log_levels()) message += " " + known;
  throw std::out_of_range(message + ")");
}

std::string log_level_name(LogLevel level) {
  const auto index = static_cast<std::size_t>(level);
  return index < known_log_levels().size() ? known_log_levels()[index] : "?";
}

void Logger::add_entry(std::unique_ptr<Sink> owned, Sink* out, bool jsonl) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.owned = std::move(owned);
  entry.out = entry.owned != nullptr ? entry.owned.get() : out;
  entry.jsonl = jsonl;
  entries_.push_back(std::move(entry));
  has_sinks_.store(true, std::memory_order_relaxed);
}

void Logger::add_file_sink(const std::string& path) {
  add_entry(std::make_unique<FileSink>(path), nullptr, false);
}

void Logger::add_jsonl_file_sink(const std::string& path) {
  add_entry(std::make_unique<FileSink>(path), nullptr, true);
}

void Logger::clear_sinks() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  has_sinks_.store(false, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  std::string jsonl;
  for (const Entry& entry : entries_) {
    if (entry.jsonl) {
      if (jsonl.empty()) {
        jsonl = JsonObject()
                    .field("level", log_level_name(level))
                    .field("component", component)
                    .field("msg", message)
                    .str();
        jsonl += '\n';
      }
      entry.out->write(jsonl);
    } else {
      if (text.empty()) {
        text = "[" + log_level_name(level) + "] ";
        text += component;
        text += ": ";
        text += message;
        text += '\n';
      }
      entry.out->write(text);
    }
  }
}

void Logger::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) entry.out->flush();
}

Logger& global_logger() {
  static Logger logger;
  return logger;
}

}  // namespace si
