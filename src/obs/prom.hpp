// Prometheus text exposition (format version 0.0.4) rendered from a
// MetricsRegistry snapshot. Instrument names like "serve.latency_us" are
// sanitized to the Prometheus grammar ("serve_latency_us"); histograms
// expand to the standard cumulative _bucket{le="..."} series plus _sum and
// _count. The serving daemon exposes this over plain HTTP/1.0 GET /metrics
// on a side port (DESIGN.md §10); anything that can scrape Prometheus can
// watch a SchedInspector daemon live.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics_registry.hpp"

namespace si {

/// Maps an instrument name onto the Prometheus metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes '_', and a
/// leading digit gains a '_' prefix. Empty input becomes "_".
std::string prometheus_name(std::string_view name);

/// Escapes a label value for the exposition format: backslash, double
/// quote, and newline.
std::string prometheus_label_escape(std::string_view value);

/// Renders every instrument of `registry` in name order: counters as
/// `# TYPE <name> counter`, gauges as gauge, histograms as the cumulative
/// bucket series with le="+Inf", _sum, and _count.
std::string prometheus_text(const MetricsRegistry& registry);

}  // namespace si
