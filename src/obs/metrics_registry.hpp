// A registry of named counters, gauges, and fixed-bucket histograms with
// JSON and CSV export. Producers (simulator, trainer, CLI) look instruments
// up by name once and bump them through the returned handle; handles stay
// valid for the registry's lifetime (std::map nodes are stable). The
// registry is intentionally single-writer: the simulator and trainer only
// record into a registry from the thread that owns the run (worker-thread
// simulators get a null registry), keeping the hot-path increments free of
// synchronization. Multi-threaded producers (the serving daemon) record
// into the atomic/windowed instruments of obs/window.hpp instead and
// snapshot into a registry at export time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sink.hpp"

namespace si {

/// Monotonically increasing integer instrument.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the strictly increasing inclusive
/// upper bucket edges; one overflow bucket catches everything beyond the
/// last bound. Tracks sum and count alongside the bucket tallies.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// Merges `count` observations already tallied into bucket `index`
  /// (0..counts().size()-1; the last index is the overflow bucket),
  /// contributing `sum` to the running sum. The bridge for producers that
  /// tally in their own buckets — e.g. the inspection server's lock-free
  /// atomic latency counters — and snapshot into a registry for export.
  void merge_bucket(std::size_t index, std::uint64_t count, double sum);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Estimates the `q`-quantile (0 <= q <= 1) of a fixed-bucket histogram by
/// linear interpolation inside the bucket holding the target rank; the
/// overflow bucket reports the last bound. Returns 0 for an empty
/// histogram. Used for the serve-layer p50/p99 latency gauges.
double histogram_quantile(const Histogram& hist, double q);

/// Named instrument registry. Instruments are created on first lookup;
/// exports list them in name order so output is deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` are used only when the histogram does not exist yet; later
  /// lookups ignore them (the first caller fixes the buckets).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Read-only iteration in name order, for alternative exporters (the
  // Prometheus text renderer in obs/prom.hpp).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  /// "counts":[...],"sum":...,"count":...}}}
  std::string to_json() const;
  /// Rows of `kind,name,key,value` — counters/gauges use key "value";
  /// histograms emit one `le_<bound>` row per bucket plus sum and count.
  std::string to_csv() const;

  void write_json(Sink& sink) const { sink.write(to_json()); }
  void write_csv(Sink& sink) const { sink.write(to_csv()); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace si
