#include "rl/actor_critic.hpp"

#include <cmath>

#include "common/check.hpp"

namespace si {

double sigmoid(double logit) {
  if (logit >= 0.0) {
    const double e = std::exp(-logit);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(logit);
  return e / (1.0 + e);
}

double bernoulli_log_prob(double logit, int action) {
  SI_REQUIRE(action == 0 || action == 1);
  // log sigma(z) = -softplus(-z); log(1 - sigma(z)) = -softplus(z).
  auto softplus = [](double x) {
    if (x > 30.0) return x;
    if (x < -30.0) return std::exp(x);
    return std::log1p(std::exp(x));
  };
  return action == 1 ? -softplus(-logit) : -softplus(logit);
}

double bernoulli_entropy(double logit) {
  const double p = sigmoid(logit);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

namespace {
std::vector<int> full_layers(int obs_size, const std::vector<int>& hidden) {
  SI_REQUIRE(obs_size > 0);
  std::vector<int> layers;
  layers.push_back(obs_size);
  for (int h : hidden) layers.push_back(h);
  layers.push_back(1);
  return layers;
}
}  // namespace

ActorCritic::ActorCritic(int obs_size, std::vector<int> hidden,
                         std::uint64_t seed)
    : policy_(full_layers(obs_size, hidden)),
      value_(full_layers(obs_size, hidden)) {
  Rng rng(seed);
  policy_.init_xavier(rng);
  value_.init_xavier(rng);
}

SampledAction ActorCritic::sample(std::span<const double> obs,
                                  Rng& rng) const {
  Mlp::Workspace ws;
  return sample(obs, rng, ws);
}

SampledAction ActorCritic::sample(std::span<const double> obs, Rng& rng,
                                  Mlp::Workspace& ws) const {
  const double logit = policy_.forward(obs, ws)[0];
  SampledAction out;
  out.prob = sigmoid(logit);
  out.action = rng.bernoulli(out.prob) ? 1 : 0;
  out.log_prob = bernoulli_log_prob(logit, out.action);
  return out;
}

int ActorCritic::act_greedy(std::span<const double> obs) const {
  return policy_.forward(obs)[0] > 0.0 ? 1 : 0;
}

int ActorCritic::act_greedy(std::span<const double> obs,
                            Mlp::Workspace& ws) const {
  return policy_.forward(obs, ws)[0] > 0.0 ? 1 : 0;
}

double ActorCritic::reject_prob(std::span<const double> obs) const {
  return sigmoid(policy_.forward(obs)[0]);
}

double ActorCritic::value(std::span<const double> obs) const {
  return value_.forward(obs)[0];
}

double ActorCritic::value(std::span<const double> obs,
                          Mlp::Workspace& ws) const {
  return value_.forward(obs, ws)[0];
}

}  // namespace si
