// Actor-critic pair with a Bernoulli policy head (§3.1): two MLPs of the
// same architecture over the same inputs. The policy net emits one logit —
// sigmoid of which is the probability of rejecting the inspected scheduling
// decision — and the value net emits the expected cumulative reward of the
// state, used as the baseline that stabilizes policy-gradient training.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "rl/mlp.hpp"

namespace si {

/// A sampled Bernoulli action with its log-probability under the policy.
struct SampledAction {
  int action = 0;      ///< 1 = reject, 0 = accept
  double log_prob = 0.0;
  double prob = 0.0;   ///< P(reject)
};

/// Numerically stable helpers for the Bernoulli head over a raw logit.
double sigmoid(double logit);
/// log P(action | logit) for action in {0,1}.
double bernoulli_log_prob(double logit, int action);
/// Entropy of Bernoulli(sigmoid(logit)).
double bernoulli_entropy(double logit);

class ActorCritic {
 public:
  /// `hidden` lists the hidden layer widths (paper: {32, 16, 8}); both nets
  /// map obs_size inputs to one output.
  ActorCritic(int obs_size, std::vector<int> hidden, std::uint64_t seed);

  int obs_size() const { return policy_.input_size(); }

  /// Samples reject/accept from the current policy.
  SampledAction sample(std::span<const double> obs, Rng& rng) const;
  /// Allocation-free variant: `ws` is reused across calls (hot rollout
  /// path — steady-state inference performs zero heap allocation).
  SampledAction sample(std::span<const double> obs, Rng& rng,
                       Mlp::Workspace& ws) const;

  /// Deterministic greedy action (used at inference/evaluation time).
  int act_greedy(std::span<const double> obs) const;
  int act_greedy(std::span<const double> obs, Mlp::Workspace& ws) const;

  /// P(reject | obs).
  double reject_prob(std::span<const double> obs) const;

  /// Value estimate of the state.
  double value(std::span<const double> obs) const;
  double value(std::span<const double> obs, Mlp::Workspace& ws) const;

  Mlp& policy_net() { return policy_; }
  const Mlp& policy_net() const { return policy_; }
  Mlp& value_net() { return value_; }
  const Mlp& value_net() const { return value_; }

  /// Total trainable parameters across both networks.
  std::size_t param_count() const {
    return policy_.param_count() + value_.param_count();
  }

 private:
  Mlp policy_;
  Mlp value_;
};

}  // namespace si
