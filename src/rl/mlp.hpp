// A small fully-connected network with tanh hidden activations and a linear
// output layer — the paper's 3-hidden-layer (32/16/8) perceptron (§3.1).
// Parameters and gradients live in flat arrays so the Adam optimizer and
// model serialization stay trivial; backprop is hand-rolled.
//
// Two execution paths exist: a per-sample scalar path (forward/backward)
// and a batched path (forward_batch/backward_batch) over row-major sample
// blocks. The batched path keeps each sample's accumulation order identical
// to the scalar path, so the two are bit-identical — it is purely a
// throughput optimization (no per-call allocation, cache-blocked loops, a
// cached weight transpose for the input-gradient pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace si {

/// Multi-layer perceptron. Layer sizes include input and output, e.g.
/// {8, 32, 16, 8, 1}. Hidden layers use tanh; the output is linear (callers
/// apply sigmoid for a Bernoulli head or use it raw as a value estimate).
class Mlp {
 public:
  explicit Mlp(std::vector<int> layer_sizes);

  int input_size() const { return layers_.front(); }
  int output_size() const { return layers_.back(); }
  const std::vector<int>& layer_sizes() const { return layers_; }
  std::size_t param_count() const { return params_.size(); }

  /// Xavier/Glorot-uniform initialization; biases start at zero.
  void init_xavier(Rng& rng);

  /// Overwrites the output layer's biases (all outputs). Used to start a
  /// Bernoulli policy head biased toward one action.
  void set_output_bias(double value);

  /// Inference-only forward pass.
  std::vector<double> forward(std::span<const double> input) const;

  /// Activation cache for backprop. One Workspace may be reused across
  /// calls; it is resized as needed.
  struct Workspace {
    // activations[0] is the input; activations[L] the (linear) output.
    std::vector<std::vector<double>> activations;
  };

  /// Forward pass that records activations for a subsequent backward().
  std::vector<double> forward(std::span<const double> input,
                              Workspace& ws) const;

  /// Activation cache for the batched kernels. One BatchWorkspace may be
  /// reused across calls of any batch size; buffers grow as needed and are
  /// never shrunk, so steady-state use performs zero heap allocation.
  struct BatchWorkspace {
    /// activations[0] is the input block; activations[L] the linear output
    /// block. Each is row-major `batch x layer_width`.
    std::vector<std::vector<double>> activations;
    std::vector<double> delta;       ///< scratch: batch x current width
    std::vector<double> delta_prev;  ///< scratch: batch x previous width
    int batch = 0;
  };

  /// Batched forward over `batch` row-major samples (`inputs` has
  /// batch * input_size() entries). Outputs land in ws.activations.back()
  /// (batch x output_size()). Per sample this is bit-identical to the
  /// scalar forward(): each output accumulates the same partial-sum
  /// sequence, restructured into vectorizable saxpy loops over the cached
  /// weight transpose. Requires refresh_transpose() after the last
  /// parameter change (enforced).
  void forward_batch(std::span<const double> inputs, int batch,
                     BatchWorkspace& ws) const;

  /// Batched backward: accumulates parameter gradients for all samples of
  /// the workspace, in sample order, into `grads` (sized param_count()).
  /// `grad_outputs` is row-major batch x output_size(). Bit-identical to
  /// calling backward_into() once per sample in index order.
  void backward_batch(BatchWorkspace& ws, std::span<const double> grad_outputs,
                      std::span<double> grads) const;

  /// Rebuilds the cached weight transpose used by forward_batch's saxpy
  /// inner loops if parameters changed since the last refresh. Not
  /// thread-safe: call serially (e.g. once per optimizer iteration) before
  /// fanning forward_batch out across threads.
  void refresh_transpose() const;

  /// Monotonic counter bumped whenever parameters may have changed (any
  /// non-const params() access, init, bias overwrite). The transpose cache
  /// is keyed on it.
  std::uint64_t params_version() const { return params_version_; }

  /// Accumulates parameter gradients for dL/d(output) = `grad_output`,
  /// given the activations recorded by the forward pass. Returns nothing;
  /// call grads() to read and zero_grad() to reset.
  void backward(const Workspace& ws, std::span<const double> grad_output);

  /// Thread-safe variant: accumulates into a caller-provided gradient
  /// buffer (sized param_count()) instead of the internal one, so several
  /// workers can backprop chunks of a batch concurrently against the same
  /// (read-only) parameters.
  void backward_into(const Workspace& ws, std::span<const double> grad_output,
                     std::span<double> grads) const;

  void zero_grad();

  /// Mutable access conservatively invalidates the cached transpose: any
  /// caller holding the span may write through it.
  std::span<double> params() {
    ++params_version_;
    return params_;
  }
  std::span<const double> params() const { return params_; }
  std::span<double> grads() { return grads_; }
  std::span<const double> grads() const { return grads_; }

 private:
  // Offsets of layer l's weight matrix (rows = out, cols = in) and bias.
  struct LayerView {
    std::size_t weight_offset = 0;
    std::size_t bias_offset = 0;
    int in = 0;
    int out = 0;
  };

  std::vector<int> layers_;
  std::vector<LayerView> views_;
  std::vector<double> params_;
  std::vector<double> grads_;

  std::uint64_t params_version_ = 1;
  /// Cached W^T per layer (weight regions only, same offsets as params_;
  /// layer l entry (i, o) lives at weight_offset + i * out + o). Rebuilt by
  /// refresh_transpose() when stale; read concurrently by forward_batch.
  mutable std::vector<double> wt_;
  mutable std::uint64_t wt_version_ = 0;
};

}  // namespace si
