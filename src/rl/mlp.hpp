// A small fully-connected network with tanh hidden activations and a linear
// output layer — the paper's 3-hidden-layer (32/16/8) perceptron (§3.1).
// Parameters and gradients live in flat arrays so the Adam optimizer and
// model serialization stay trivial; backprop is hand-rolled.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace si {

/// Multi-layer perceptron. Layer sizes include input and output, e.g.
/// {8, 32, 16, 8, 1}. Hidden layers use tanh; the output is linear (callers
/// apply sigmoid for a Bernoulli head or use it raw as a value estimate).
class Mlp {
 public:
  explicit Mlp(std::vector<int> layer_sizes);

  int input_size() const { return layers_.front(); }
  int output_size() const { return layers_.back(); }
  const std::vector<int>& layer_sizes() const { return layers_; }
  std::size_t param_count() const { return params_.size(); }

  /// Xavier/Glorot-uniform initialization; biases start at zero.
  void init_xavier(Rng& rng);

  /// Overwrites the output layer's biases (all outputs). Used to start a
  /// Bernoulli policy head biased toward one action.
  void set_output_bias(double value);

  /// Inference-only forward pass.
  std::vector<double> forward(std::span<const double> input) const;

  /// Activation cache for backprop. One Workspace may be reused across
  /// calls; it is resized as needed.
  struct Workspace {
    // activations[0] is the input; activations[L] the (linear) output.
    std::vector<std::vector<double>> activations;
  };

  /// Forward pass that records activations for a subsequent backward().
  std::vector<double> forward(std::span<const double> input,
                              Workspace& ws) const;

  /// Accumulates parameter gradients for dL/d(output) = `grad_output`,
  /// given the activations recorded by the forward pass. Returns nothing;
  /// call grads() to read and zero_grad() to reset.
  void backward(const Workspace& ws, std::span<const double> grad_output);

  /// Thread-safe variant: accumulates into a caller-provided gradient
  /// buffer (sized param_count()) instead of the internal one, so several
  /// workers can backprop chunks of a batch concurrently against the same
  /// (read-only) parameters.
  void backward_into(const Workspace& ws, std::span<const double> grad_output,
                     std::span<double> grads) const;

  void zero_grad();

  std::span<double> params() { return params_; }
  std::span<const double> params() const { return params_; }
  std::span<double> grads() { return grads_; }
  std::span<const double> grads() const { return grads_; }

 private:
  // Offsets of layer l's weight matrix (rows = out, cols = in) and bias.
  struct LayerView {
    std::size_t weight_offset = 0;
    std::size_t bias_offset = 0;
    int in = 0;
    int out = 0;
  };

  std::vector<int> layers_;
  std::vector<LayerView> views_;
  std::vector<double> params_;
  std::vector<double> grads_;
};

}  // namespace si
