#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/fast_math.hpp"
#include "obs/profile.hpp"

namespace si {

Mlp::Mlp(std::vector<int> layer_sizes) : layers_(std::move(layer_sizes)) {
  SI_REQUIRE(layers_.size() >= 2);
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    SI_REQUIRE(layers_[l] > 0 && layers_[l + 1] > 0);
    LayerView view;
    view.in = layers_[l];
    view.out = layers_[l + 1];
    view.weight_offset = offset;
    offset += static_cast<std::size_t>(view.in) * static_cast<std::size_t>(view.out);
    view.bias_offset = offset;
    offset += static_cast<std::size_t>(view.out);
    views_.push_back(view);
  }
  params_.assign(offset, 0.0);
  grads_.assign(offset, 0.0);
}

void Mlp::init_xavier(Rng& rng) {
  ++params_version_;
  for (const LayerView& v : views_) {
    const double bound = std::sqrt(6.0 / static_cast<double>(v.in + v.out));
    double* w = params_.data() + v.weight_offset;
    for (int i = 0; i < v.in * v.out; ++i) w[i] = rng.uniform(-bound, bound);
    double* b = params_.data() + v.bias_offset;
    for (int i = 0; i < v.out; ++i) b[i] = 0.0;
  }
}

void Mlp::set_output_bias(double value) {
  ++params_version_;
  const LayerView& last = views_.back();
  for (int o = 0; o < last.out; ++o)
    params_[last.bias_offset + static_cast<std::size_t>(o)] = value;
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  // Hot path: one relaxed atomic load when profiling is disabled.
  SI_PROFILE_SCOPE("mlp/forward");
  Workspace ws;
  return forward(input, ws);
}

std::vector<double> Mlp::forward(std::span<const double> input,
                                 Workspace& ws) const {
  SI_REQUIRE(static_cast<int>(input.size()) == layers_.front());
  ws.activations.resize(views_.size() + 1);
  ws.activations[0].assign(input.begin(), input.end());

  for (std::size_t l = 0; l < views_.size(); ++l) {
    const LayerView& v = views_[l];
    const std::vector<double>& x = ws.activations[l];
    std::vector<double>& y = ws.activations[l + 1];
    y.assign(static_cast<std::size_t>(v.out), 0.0);
    const double* w = params_.data() + v.weight_offset;
    const double* b = params_.data() + v.bias_offset;
    const bool is_output = (l + 1 == views_.size());
    for (int o = 0; o < v.out; ++o) {
      double acc = b[o];
      const double* row = w + static_cast<std::size_t>(o) * v.in;
      for (int i = 0; i < v.in; ++i) acc += row[i] * x[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(o)] = is_output ? acc : fast_tanh(acc);
    }
  }
  return ws.activations.back();
}

void Mlp::backward(const Workspace& ws, std::span<const double> grad_output) {
  backward_into(ws, grad_output, grads_);
}

void Mlp::backward_into(const Workspace& ws,
                        std::span<const double> grad_output,
                        std::span<double> grads) const {
  SI_REQUIRE(ws.activations.size() == views_.size() + 1);
  SI_REQUIRE(static_cast<int>(grad_output.size()) == layers_.back());
  SI_REQUIRE(grads.size() == params_.size());

  // delta = dL/d(pre-activation) of the current layer; the output layer is
  // linear so its delta equals grad_output directly.
  std::vector<double> delta(grad_output.begin(), grad_output.end());

  for (std::size_t li = views_.size(); li-- > 0;) {
    const LayerView& v = views_[li];
    const std::vector<double>& x = ws.activations[li];
    const double* w = params_.data() + v.weight_offset;
    double* gw = grads.data() + v.weight_offset;
    double* gb = grads.data() + v.bias_offset;

    for (int o = 0; o < v.out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      gb[o] += d;
      double* grow = gw + static_cast<std::size_t>(o) * v.in;
      for (int i = 0; i < v.in; ++i)
        grow[i] += d * x[static_cast<std::size_t>(i)];
    }

    if (li == 0) break;
    // Propagate to the previous layer's post-activation, then through tanh:
    // activations[li] stores tanh(pre), so dtanh = 1 - a^2.
    std::vector<double> prev(static_cast<std::size_t>(v.in), 0.0);
    for (int i = 0; i < v.in; ++i) {
      double acc = 0.0;
      for (int o = 0; o < v.out; ++o)
        acc += w[static_cast<std::size_t>(o) * v.in + i] *
               delta[static_cast<std::size_t>(o)];
      const double a = x[static_cast<std::size_t>(i)];
      prev[static_cast<std::size_t>(i)] = acc * (1.0 - a * a);
    }
    delta = std::move(prev);
  }
}

void Mlp::zero_grad() { grads_.assign(grads_.size(), 0.0); }

void Mlp::refresh_transpose() const {
  if (wt_version_ == params_version_ && wt_.size() == params_.size()) return;
  wt_.resize(params_.size());
  for (const LayerView& v : views_) {
    const double* w = params_.data() + v.weight_offset;
    double* wt = wt_.data() + v.weight_offset;
    for (int o = 0; o < v.out; ++o)
      for (int i = 0; i < v.in; ++i)
        wt[static_cast<std::size_t>(i) * v.out + o] =
            w[static_cast<std::size_t>(o) * v.in + i];
  }
  wt_version_ = params_version_;
}

void Mlp::forward_batch(std::span<const double> inputs, int batch,
                        BatchWorkspace& ws) const {
  SI_REQUIRE(batch > 0);
  SI_REQUIRE(inputs.size() == static_cast<std::size_t>(batch) *
                                  static_cast<std::size_t>(layers_.front()));
  // The transpose cache must be fresh; rebuilding it here would race when
  // several threads run forward_batch concurrently.
  SI_REQUIRE(wt_version_ == params_version_ && wt_.size() == params_.size());
  ws.batch = batch;
  ws.activations.resize(views_.size() + 1);
  ws.activations[0].assign(inputs.begin(), inputs.end());

  // Saxpy form over the cached transpose: every output accumulator y[o]
  // starts at its bias and receives w[o][i] * x[i] in ascending input
  // order — the exact partial-sum sequence of the scalar forward(). The
  // innermost loop runs over independent accumulators with unit stride, so
  // it vectorizes; the scalar path's per-output dot product is one serial
  // dependency chain and cannot. Samples are blocked four at a time so each
  // weight row is loaded once per block instead of once per sample; the
  // per-accumulator update statements keep the exact shape of the unblocked
  // loop, so rounding (including any fma contraction choice) is unchanged.
  for (std::size_t l = 0; l < views_.size(); ++l) {
    const LayerView& v = views_[l];
    const std::vector<double>& x = ws.activations[l];
    std::vector<double>& y = ws.activations[l + 1];
    y.resize(static_cast<std::size_t>(batch) * v.out);
    // Distinct buffers (weights, inputs, outputs) — the restrict qualifiers
    // let the accumulators live in registers across the saxpy sweep.
    const double* __restrict wt = wt_.data() + v.weight_offset;
    const double* __restrict b = params_.data() + v.bias_offset;
    const bool is_output = (l + 1 == views_.size());
    int s = 0;
    for (; s + 4 <= batch; s += 4) {
      const double* __restrict xs0 =
          x.data() + static_cast<std::size_t>(s) * v.in;
      const double* __restrict xs1 = xs0 + v.in;
      const double* __restrict xs2 = xs1 + v.in;
      const double* __restrict xs3 = xs2 + v.in;
      double* __restrict ys0 = y.data() + static_cast<std::size_t>(s) * v.out;
      double* __restrict ys1 = ys0 + v.out;
      double* __restrict ys2 = ys1 + v.out;
      double* __restrict ys3 = ys2 + v.out;
      for (int o = 0; o < v.out; ++o) {
        const double bo = b[o];
        ys0[o] = bo;
        ys1[o] = bo;
        ys2[o] = bo;
        ys3[o] = bo;
      }
      for (int i = 0; i < v.in; ++i) {
        const double x0 = xs0[i];
        const double x1 = xs1[i];
        const double x2 = xs2[i];
        const double x3 = xs3[i];
        const double* __restrict wrow =
            wt + static_cast<std::size_t>(i) * v.out;
        for (int o = 0; o < v.out; ++o) {
          const double wv = wrow[o];
          ys0[o] += wv * x0;
          ys1[o] += wv * x1;
          ys2[o] += wv * x2;
          ys3[o] += wv * x3;
        }
      }
      if (!is_output) {
        for (int o = 0; o < v.out; ++o) ys0[o] = fast_tanh(ys0[o]);
        for (int o = 0; o < v.out; ++o) ys1[o] = fast_tanh(ys1[o]);
        for (int o = 0; o < v.out; ++o) ys2[o] = fast_tanh(ys2[o]);
        for (int o = 0; o < v.out; ++o) ys3[o] = fast_tanh(ys3[o]);
      }
    }
    for (; s < batch; ++s) {
      const double* __restrict xs =
          x.data() + static_cast<std::size_t>(s) * v.in;
      double* __restrict ys = y.data() + static_cast<std::size_t>(s) * v.out;
      for (int o = 0; o < v.out; ++o) ys[o] = b[o];
      for (int i = 0; i < v.in; ++i) {
        const double xv = xs[i];
        const double* __restrict wrow =
            wt + static_cast<std::size_t>(i) * v.out;
        for (int o = 0; o < v.out; ++o) ys[o] += wrow[o] * xv;
      }
      if (!is_output)
        for (int o = 0; o < v.out; ++o) ys[o] = fast_tanh(ys[o]);
    }
  }
}

void Mlp::backward_batch(BatchWorkspace& ws,
                         std::span<const double> grad_outputs,
                         std::span<double> grads) const {
  const int batch = ws.batch;
  SI_REQUIRE(batch > 0);
  SI_REQUIRE(ws.activations.size() == views_.size() + 1);
  SI_REQUIRE(grad_outputs.size() == static_cast<std::size_t>(batch) *
                                        static_cast<std::size_t>(layers_.back()));
  SI_REQUIRE(grads.size() == params_.size());

  // delta holds dL/d(pre-activation) of the current layer for every sample
  // (row-major batch x width); the output layer is linear so it starts as
  // grad_outputs directly.
  ws.delta.assign(grad_outputs.begin(), grad_outputs.end());

  for (std::size_t li = views_.size(); li-- > 0;) {
    const LayerView& v = views_[li];
    const std::vector<double>& x = ws.activations[li];
    const double* w = params_.data() + v.weight_offset;
    double* gw = grads.data() + v.weight_offset;
    double* gb = grads.data() + v.bias_offset;

    // Accumulate weight/bias gradients sample-major: every gradient entry
    // receives its per-sample contributions in ascending sample order, the
    // same sequence of additions a per-sample backward loop performs. Each
    // inner loop writes independent contiguous accumulators (vectorizes).
    // Samples are blocked four at a time so each gradient row is loaded and
    // stored once per block; the per-accumulator statements stay in
    // ascending sample order, so rounding is unchanged.
    int s = 0;
    for (; s + 4 <= batch; s += 4) {
      const double* __restrict d0 =
          ws.delta.data() + static_cast<std::size_t>(s) * v.out;
      const double* __restrict d1 = d0 + v.out;
      const double* __restrict d2 = d1 + v.out;
      const double* __restrict d3 = d2 + v.out;
      const double* __restrict xs0 =
          x.data() + static_cast<std::size_t>(s) * v.in;
      const double* __restrict xs1 = xs0 + v.in;
      const double* __restrict xs2 = xs1 + v.in;
      const double* __restrict xs3 = xs2 + v.in;
      for (int o = 0; o < v.out; ++o) {
        double g = gb[o];
        g += d0[o];
        g += d1[o];
        g += d2[o];
        g += d3[o];
        gb[o] = g;
      }
      for (int o = 0; o < v.out; ++o) {
        const double e0 = d0[o];
        const double e1 = d1[o];
        const double e2 = d2[o];
        const double e3 = d3[o];
        double* __restrict grow = gw + static_cast<std::size_t>(o) * v.in;
        for (int i = 0; i < v.in; ++i) {
          double g = grow[i];
          g += e0 * xs0[i];
          g += e1 * xs1[i];
          g += e2 * xs2[i];
          g += e3 * xs3[i];
          grow[i] = g;
        }
      }
    }
    for (; s < batch; ++s) {
      const double* __restrict d =
          ws.delta.data() + static_cast<std::size_t>(s) * v.out;
      const double* __restrict xs =
          x.data() + static_cast<std::size_t>(s) * v.in;
      for (int o = 0; o < v.out; ++o) gb[o] += d[o];
      for (int o = 0; o < v.out; ++o) {
        const double dv = d[o];
        double* __restrict grow = gw + static_cast<std::size_t>(o) * v.in;
        for (int i = 0; i < v.in; ++i) grow[i] += dv * xs[i];
      }
    }

    if (li == 0) break;
    // Propagate to the previous layer in saxpy form: prev[i] starts at zero
    // and receives w[o][i] * d[o] in ascending o order — the scalar path's
    // exact column-walk accumulation sequence, but the innermost loop runs
    // over independent unit-stride accumulators instead of one serial
    // reduction chain. Then through tanh: activations[li] stores tanh(pre),
    // so dtanh = 1 - a^2. Same four-sample blocking as above: each weight
    // row is loaded once per block, per-accumulator rounding unchanged.
    ws.delta_prev.assign(static_cast<std::size_t>(batch) * v.in, 0.0);
    int t = 0;
    for (; t + 4 <= batch; t += 4) {
      const double* __restrict d0 =
          ws.delta.data() + static_cast<std::size_t>(t) * v.out;
      const double* __restrict d1 = d0 + v.out;
      const double* __restrict d2 = d1 + v.out;
      const double* __restrict d3 = d2 + v.out;
      const double* __restrict xs0 =
          x.data() + static_cast<std::size_t>(t) * v.in;
      const double* __restrict xs1 = xs0 + v.in;
      const double* __restrict xs2 = xs1 + v.in;
      const double* __restrict xs3 = xs2 + v.in;
      double* __restrict prev0 =
          ws.delta_prev.data() + static_cast<std::size_t>(t) * v.in;
      double* __restrict prev1 = prev0 + v.in;
      double* __restrict prev2 = prev1 + v.in;
      double* __restrict prev3 = prev2 + v.in;
      for (int o = 0; o < v.out; ++o) {
        const double e0 = d0[o];
        const double e1 = d1[o];
        const double e2 = d2[o];
        const double e3 = d3[o];
        const double* __restrict wrow = w + static_cast<std::size_t>(o) * v.in;
        for (int i = 0; i < v.in; ++i) {
          const double wv = wrow[i];
          prev0[i] += wv * e0;
          prev1[i] += wv * e1;
          prev2[i] += wv * e2;
          prev3[i] += wv * e3;
        }
      }
      for (int i = 0; i < v.in; ++i) {
        const double a = xs0[i];
        prev0[i] = prev0[i] * (1.0 - a * a);
      }
      for (int i = 0; i < v.in; ++i) {
        const double a = xs1[i];
        prev1[i] = prev1[i] * (1.0 - a * a);
      }
      for (int i = 0; i < v.in; ++i) {
        const double a = xs2[i];
        prev2[i] = prev2[i] * (1.0 - a * a);
      }
      for (int i = 0; i < v.in; ++i) {
        const double a = xs3[i];
        prev3[i] = prev3[i] * (1.0 - a * a);
      }
    }
    for (; t < batch; ++t) {
      const double* __restrict d =
          ws.delta.data() + static_cast<std::size_t>(t) * v.out;
      const double* __restrict xs =
          x.data() + static_cast<std::size_t>(t) * v.in;
      double* __restrict prev =
          ws.delta_prev.data() + static_cast<std::size_t>(t) * v.in;
      for (int o = 0; o < v.out; ++o) {
        const double dv = d[o];
        const double* __restrict wrow = w + static_cast<std::size_t>(o) * v.in;
        for (int i = 0; i < v.in; ++i) prev[i] += wrow[i] * dv;
      }
      for (int i = 0; i < v.in; ++i) {
        const double a = xs[i];
        prev[i] = prev[i] * (1.0 - a * a);
      }
    }
    std::swap(ws.delta, ws.delta_prev);
  }
}

}  // namespace si
