#include "rl/mlp.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/profile.hpp"

namespace si {

Mlp::Mlp(std::vector<int> layer_sizes) : layers_(std::move(layer_sizes)) {
  SI_REQUIRE(layers_.size() >= 2);
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    SI_REQUIRE(layers_[l] > 0 && layers_[l + 1] > 0);
    LayerView view;
    view.in = layers_[l];
    view.out = layers_[l + 1];
    view.weight_offset = offset;
    offset += static_cast<std::size_t>(view.in) * static_cast<std::size_t>(view.out);
    view.bias_offset = offset;
    offset += static_cast<std::size_t>(view.out);
    views_.push_back(view);
  }
  params_.assign(offset, 0.0);
  grads_.assign(offset, 0.0);
}

void Mlp::init_xavier(Rng& rng) {
  for (const LayerView& v : views_) {
    const double bound = std::sqrt(6.0 / static_cast<double>(v.in + v.out));
    double* w = params_.data() + v.weight_offset;
    for (int i = 0; i < v.in * v.out; ++i) w[i] = rng.uniform(-bound, bound);
    double* b = params_.data() + v.bias_offset;
    for (int i = 0; i < v.out; ++i) b[i] = 0.0;
  }
}

void Mlp::set_output_bias(double value) {
  const LayerView& last = views_.back();
  for (int o = 0; o < last.out; ++o)
    params_[last.bias_offset + static_cast<std::size_t>(o)] = value;
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  // Hot path: one relaxed atomic load when profiling is disabled.
  SI_PROFILE_SCOPE("mlp/forward");
  Workspace ws;
  return forward(input, ws);
}

std::vector<double> Mlp::forward(std::span<const double> input,
                                 Workspace& ws) const {
  SI_REQUIRE(static_cast<int>(input.size()) == layers_.front());
  ws.activations.resize(views_.size() + 1);
  ws.activations[0].assign(input.begin(), input.end());

  for (std::size_t l = 0; l < views_.size(); ++l) {
    const LayerView& v = views_[l];
    const std::vector<double>& x = ws.activations[l];
    std::vector<double>& y = ws.activations[l + 1];
    y.assign(static_cast<std::size_t>(v.out), 0.0);
    const double* w = params_.data() + v.weight_offset;
    const double* b = params_.data() + v.bias_offset;
    const bool is_output = (l + 1 == views_.size());
    for (int o = 0; o < v.out; ++o) {
      double acc = b[o];
      const double* row = w + static_cast<std::size_t>(o) * v.in;
      for (int i = 0; i < v.in; ++i) acc += row[i] * x[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(o)] = is_output ? acc : std::tanh(acc);
    }
  }
  return ws.activations.back();
}

void Mlp::backward(const Workspace& ws, std::span<const double> grad_output) {
  backward_into(ws, grad_output, grads_);
}

void Mlp::backward_into(const Workspace& ws,
                        std::span<const double> grad_output,
                        std::span<double> grads) const {
  SI_REQUIRE(ws.activations.size() == views_.size() + 1);
  SI_REQUIRE(static_cast<int>(grad_output.size()) == layers_.back());
  SI_REQUIRE(grads.size() == params_.size());

  // delta = dL/d(pre-activation) of the current layer; the output layer is
  // linear so its delta equals grad_output directly.
  std::vector<double> delta(grad_output.begin(), grad_output.end());

  for (std::size_t li = views_.size(); li-- > 0;) {
    const LayerView& v = views_[li];
    const std::vector<double>& x = ws.activations[li];
    const double* w = params_.data() + v.weight_offset;
    double* gw = grads.data() + v.weight_offset;
    double* gb = grads.data() + v.bias_offset;

    for (int o = 0; o < v.out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      gb[o] += d;
      double* grow = gw + static_cast<std::size_t>(o) * v.in;
      for (int i = 0; i < v.in; ++i)
        grow[i] += d * x[static_cast<std::size_t>(i)];
    }

    if (li == 0) break;
    // Propagate to the previous layer's post-activation, then through tanh:
    // activations[li] stores tanh(pre), so dtanh = 1 - a^2.
    std::vector<double> prev(static_cast<std::size_t>(v.in), 0.0);
    for (int i = 0; i < v.in; ++i) {
      double acc = 0.0;
      for (int o = 0; o < v.out; ++o)
        acc += w[static_cast<std::size_t>(o) * v.in + i] *
               delta[static_cast<std::size_t>(o)];
      const double a = x[static_cast<std::size_t>(i)];
      prev[static_cast<std::size_t>(i)] = acc * (1.0 - a * a);
    }
    delta = std::move(prev);
  }
}

void Mlp::zero_grad() { grads_.assign(grads_.size(), 0.0); }

}  // namespace si
