// Plain-text (de)serialization of trained actor-critic models, so a model
// trained on one trace can be evaluated on another (Table 4) and inspection
// policies can be shipped to a production scheduler.
//
// Format: a header line "schedinspector-model v1", the layer sizes, then the
// policy and value parameter arrays in full hex-precision decimal.
// Checkpoints wrap the same payload in a "schedinspector-checkpoint v1"
// header carrying the last completed training epoch.
//
// Crash safety: file writes go to `path + ".tmp"` and are renamed into
// place, so a crash mid-write never corrupts an existing model; non-finite
// parameters are rejected on both save and load. Load errors carry enough
// context to diagnose a bad file (path, which parameter array, how far the
// read got) — a truncated, corrupted, or wrong-shape checkpoint must fail
// loudly, never deserialize into silent garbage.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rl/actor_critic.hpp"

namespace si {

/// Writes `ac` to the stream. Throws std::runtime_error on stream failure or
/// non-finite parameters.
void save_model(std::ostream& out, const ActorCritic& ac);

/// Saves to a file path atomically (write temp, flush, rename).
void save_model_file(const std::string& path, const ActorCritic& ac);

/// Reads a model; the architecture is restored from the file. Throws
/// std::runtime_error on malformed input or non-finite parameters.
ActorCritic load_model(std::istream& in);

/// Loads from a file path.
ActorCritic load_model_file(const std::string& path);

/// A training checkpoint: the model plus the last completed epoch.
struct ModelCheckpoint {
  ActorCritic model;
  int epoch = 0;
};

/// Writes a checkpoint (header + epoch + embedded model).
void save_checkpoint(std::ostream& out, const ActorCritic& ac, int epoch);

/// Saves a checkpoint to a file path atomically.
void save_checkpoint_file(const std::string& path, const ActorCritic& ac,
                          int epoch);

/// Reads a checkpoint. Throws std::runtime_error on malformed input.
ModelCheckpoint load_checkpoint(std::istream& in);

/// Loads a checkpoint from a file path.
ModelCheckpoint load_checkpoint_file(const std::string& path);

/// Sniffs the header and loads either a plain model or a checkpoint from
/// `path` (the serving hot-swap entry point accepts both). When `epoch` is
/// non-null it receives the checkpoint epoch (0 for plain models). Throws
/// std::runtime_error with the path and the malformation on any failure.
ActorCritic load_served_model_file(const std::string& path, int* epoch = nullptr);

/// Structural + numerical validation of a loaded model, the gate a
/// checkpoint must pass before it may be hot-swapped into a server.
struct ModelValidationReport {
  bool ok = true;
  std::vector<std::string> issues;

  /// All issues joined with "; " (empty when ok).
  std::string summary() const;
};

/// Validates `ac` for serving: both nets present with one output, matching
/// input widths (== `expected_obs` when >= 0), all parameters finite, and
/// probe forwards over a few canonical inputs (zeros, mid-range, ones)
/// producing finite policy logits and value estimates. Never throws — the
/// report lists every failed check.
ModelValidationReport validate_model(const ActorCritic& ac,
                                     int expected_obs = -1);

}  // namespace si
