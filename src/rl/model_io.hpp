// Plain-text (de)serialization of trained actor-critic models, so a model
// trained on one trace can be evaluated on another (Table 4) and inspection
// policies can be shipped to a production scheduler.
//
// Format: a header line "schedinspector-model v1", the layer sizes, then the
// policy and value parameter arrays in full hex-precision decimal.
#pragma once

#include <iosfwd>
#include <string>

#include "rl/actor_critic.hpp"

namespace si {

/// Writes `ac` to the stream. Throws std::runtime_error on stream failure.
void save_model(std::ostream& out, const ActorCritic& ac);

/// Saves to a file path.
void save_model_file(const std::string& path, const ActorCritic& ac);

/// Reads a model; the architecture is restored from the file. Throws
/// std::runtime_error on malformed input.
ActorCritic load_model(std::istream& in);

/// Loads from a file path.
ActorCritic load_model_file(const std::string& path);

}  // namespace si
