// The Adam optimizer (Kingma & Ba, 2015) over a flat parameter array — the
// update rule behind the paper's 1e-3 learning-rate network training (§4.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace si {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Adam {
 public:
  Adam(std::size_t param_count, AdamConfig config = {});

  /// Applies one Adam step: params -= lr * m_hat / (sqrt(v_hat) + eps).
  /// `params` and `grads` must match the constructor's param_count.
  void step(std::span<double> params, std::span<const double> grads);

  /// Resets the first/second moment estimates and the step counter.
  void reset();

  const AdamConfig& config() const { return config_; }
  std::size_t steps_taken() const { return t_; }

 private:
  AdamConfig config_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

}  // namespace si
