#include "rl/adam.hpp"

#include <cmath>

#include "common/check.hpp"

namespace si {

Adam::Adam(std::size_t param_count, AdamConfig config)
    : config_(config), m_(param_count, 0.0), v_(param_count, 0.0) {
  SI_REQUIRE(config_.learning_rate > 0.0);
  SI_REQUIRE(config_.beta1 >= 0.0 && config_.beta1 < 1.0);
  SI_REQUIRE(config_.beta2 >= 0.0 && config_.beta2 < 1.0);
}

void Adam::step(std::span<double> params, std::span<const double> grads) {
  SI_REQUIRE(params.size() == m_.size());
  SI_REQUIRE(grads.size() == m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < m_.size(); ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * grads[i];
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * grads[i] * grads[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -=
        config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

void Adam::reset() {
  m_.assign(m_.size(), 0.0);
  v_.assign(v_.size(), 0.0);
  t_ = 0;
}

}  // namespace si
