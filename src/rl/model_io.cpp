#include "rl/model_io.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace si {

namespace {
constexpr const char* kMagic = "schedinspector-model";
constexpr const char* kVersion = "v1";
constexpr const char* kCheckpointMagic = "schedinspector-checkpoint";

void require_finite(const ActorCritic& ac, const char* verb) {
  for (const auto params : {ac.policy_net().params(), ac.value_net().params()})
    for (const double p : params)
      if (!std::isfinite(p))
        throw std::runtime_error(std::string("model_io: refusing to ") + verb +
                                 " a model with non-finite parameters");
}

void write_params(std::ostream& out, std::span<const double> params) {
  out << params.size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < params.size(); ++i) {
    out << params[i] << (i + 1 == params.size() ? '\n' : ' ');
  }
  if (params.empty()) out << '\n';
}

void read_params(std::istream& in, std::span<double> params) {
  std::size_t count = 0;
  if (!(in >> count) || count != params.size())
    throw std::runtime_error("model_io: parameter count mismatch");
  for (double& p : params)
    if (!(in >> p)) throw std::runtime_error("model_io: truncated parameters");
}

// Writes via `emit`, first to `path + ".tmp"`, then renames into place, so
// an interrupted write never destroys an existing file at `path`.
template <typename Emit>
void atomic_write_file(const std::string& path, Emit&& emit) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("model_io: cannot open " + tmp);
    emit(out);
    out.flush();
    if (!out) throw std::runtime_error("model_io: write failure on " + tmp);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error("model_io: cannot rename " + tmp + " to " + path +
                             ": " + ec.message());
  }
}
}  // namespace

void save_model(std::ostream& out, const ActorCritic& ac) {
  require_finite(ac, "save");
  out << kMagic << ' ' << kVersion << '\n';
  const auto& layers = ac.policy_net().layer_sizes();
  out << layers.size() << '\n';
  for (std::size_t i = 0; i < layers.size(); ++i)
    out << layers[i] << (i + 1 == layers.size() ? '\n' : ' ');
  write_params(out, ac.policy_net().params());
  write_params(out, ac.value_net().params());
  if (!out) throw std::runtime_error("model_io: write failure");
}

void save_model_file(const std::string& path, const ActorCritic& ac) {
  atomic_write_file(path, [&](std::ostream& out) { save_model(out, ac); });
}

ActorCritic load_model(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion)
    throw std::runtime_error("model_io: bad header");
  std::size_t layer_count = 0;
  if (!(in >> layer_count) || layer_count < 2)
    throw std::runtime_error("model_io: bad layer count");
  std::vector<int> layers(layer_count);
  for (int& l : layers)
    if (!(in >> l) || l <= 0)
      throw std::runtime_error("model_io: bad layer size");
  if (layers.back() != 1)
    throw std::runtime_error("model_io: output layer must be 1");
  std::vector<int> hidden(layers.begin() + 1, layers.end() - 1);
  ActorCritic ac(layers.front(), hidden, /*seed=*/0);
  read_params(in, ac.policy_net().params());
  read_params(in, ac.value_net().params());
  require_finite(ac, "load");
  return ac;
}

ActorCritic load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model_io: cannot open " + path);
  return load_model(in);
}

void save_checkpoint(std::ostream& out, const ActorCritic& ac, int epoch) {
  if (epoch < 0) throw std::runtime_error("model_io: negative epoch");
  out << kCheckpointMagic << ' ' << kVersion << '\n';
  out << "epoch " << epoch << '\n';
  save_model(out, ac);
}

void save_checkpoint_file(const std::string& path, const ActorCritic& ac,
                          int epoch) {
  atomic_write_file(
      path, [&](std::ostream& out) { save_checkpoint(out, ac, epoch); });
}

ModelCheckpoint load_checkpoint(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kCheckpointMagic ||
      version != kVersion)
    throw std::runtime_error("model_io: bad checkpoint header");
  std::string key;
  int epoch = 0;
  if (!(in >> key >> epoch) || key != "epoch" || epoch < 0)
    throw std::runtime_error("model_io: bad checkpoint epoch");
  return ModelCheckpoint{load_model(in), epoch};
}

ModelCheckpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model_io: cannot open " + path);
  return load_checkpoint(in);
}

}  // namespace si
