#include "rl/model_io.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace si {

namespace {
constexpr const char* kMagic = "schedinspector-model";
constexpr const char* kVersion = "v1";
constexpr const char* kCheckpointMagic = "schedinspector-checkpoint";

void require_finite(const ActorCritic& ac, const char* verb) {
  for (const auto params : {ac.policy_net().params(), ac.value_net().params()})
    for (const double p : params)
      if (!std::isfinite(p))
        throw std::runtime_error(std::string("model_io: refusing to ") + verb +
                                 " a model with non-finite parameters");
}

void write_params(std::ostream& out, std::span<const double> params) {
  out << params.size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < params.size(); ++i) {
    out << params[i] << (i + 1 == params.size() ? '\n' : ' ');
  }
  if (params.empty()) out << '\n';
}

// `which` names the parameter array being read ("policy" / "value") so a
// truncated or corrupt file says exactly where deserialization stopped.
void read_params(std::istream& in, std::span<double> params,
                 const char* which) {
  std::size_t count = 0;
  if (!(in >> count))
    throw std::runtime_error(std::string("model_io: missing ") + which +
                             " parameter count (file truncated?)");
  if (count != params.size())
    throw std::runtime_error(
        std::string("model_io: ") + which + " parameter count mismatch: file "
        "declares " + std::to_string(count) + ", architecture needs " +
        std::to_string(params.size()) + " (wrong-shape checkpoint?)");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (!(in >> params[i]))
      throw std::runtime_error(
          std::string("model_io: ") + which + " parameters truncated or "
          "corrupt at index " + std::to_string(i) + " of " +
          std::to_string(params.size()));
}

// Writes via `emit`, first to `path + ".tmp"`, then renames into place, so
// an interrupted write never destroys an existing file at `path`.
template <typename Emit>
void atomic_write_file(const std::string& path, Emit&& emit) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("model_io: cannot open " + tmp);
    emit(out);
    out.flush();
    if (!out) throw std::runtime_error("model_io: write failure on " + tmp);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error("model_io: cannot rename " + tmp + " to " + path +
                             ": " + ec.message());
  }
}

// Re-throws a load error with the file path prefixed, so callers (CLI,
// hot-swap) surface which file was bad without extra plumbing.
template <typename Load>
auto load_file_with_context(const std::string& path, Load&& load) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model_io: cannot open " + path);
  try {
    return load(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " [file: " + path + "]");
  }
}
}  // namespace

void save_model(std::ostream& out, const ActorCritic& ac) {
  require_finite(ac, "save");
  out << kMagic << ' ' << kVersion << '\n';
  const auto& layers = ac.policy_net().layer_sizes();
  out << layers.size() << '\n';
  for (std::size_t i = 0; i < layers.size(); ++i)
    out << layers[i] << (i + 1 == layers.size() ? '\n' : ' ');
  write_params(out, ac.policy_net().params());
  write_params(out, ac.value_net().params());
  if (!out) throw std::runtime_error("model_io: write failure");
}

void save_model_file(const std::string& path, const ActorCritic& ac) {
  atomic_write_file(path, [&](std::ostream& out) { save_model(out, ac); });
}

ActorCritic load_model(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion)
    throw std::runtime_error(
        "model_io: bad header (expected \"" + std::string(kMagic) + " " +
        kVersion + "\"; not a model file, or truncated/corrupt)");
  std::size_t layer_count = 0;
  if (!(in >> layer_count) || layer_count < 2 || layer_count > 64)
    throw std::runtime_error(
        "model_io: bad layer count (need 2..64 integer layer sizes)");
  std::vector<int> layers(layer_count);
  for (std::size_t i = 0; i < layers.size(); ++i)
    if (!(in >> layers[i]) || layers[i] <= 0 || layers[i] > (1 << 20))
      throw std::runtime_error("model_io: bad layer size at index " +
                               std::to_string(i));
  if (layers.back() != 1)
    throw std::runtime_error("model_io: output layer must be 1");
  std::vector<int> hidden(layers.begin() + 1, layers.end() - 1);
  ActorCritic ac(layers.front(), hidden, /*seed=*/0);
  read_params(in, ac.policy_net().params(), "policy");
  read_params(in, ac.value_net().params(), "value");
  require_finite(ac, "load");
  return ac;
}

ActorCritic load_model_file(const std::string& path) {
  return load_file_with_context(
      path, [](std::istream& in) { return load_model(in); });
}

void save_checkpoint(std::ostream& out, const ActorCritic& ac, int epoch) {
  if (epoch < 0) throw std::runtime_error("model_io: negative epoch");
  out << kCheckpointMagic << ' ' << kVersion << '\n';
  out << "epoch " << epoch << '\n';
  save_model(out, ac);
}

void save_checkpoint_file(const std::string& path, const ActorCritic& ac,
                          int epoch) {
  atomic_write_file(
      path, [&](std::ostream& out) { save_checkpoint(out, ac, epoch); });
}

ModelCheckpoint load_checkpoint(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kCheckpointMagic ||
      version != kVersion)
    throw std::runtime_error(
        "model_io: bad checkpoint header (expected \"" +
        std::string(kCheckpointMagic) + " " + kVersion +
        "\"; not a checkpoint file, or truncated/corrupt)");
  std::string key;
  int epoch = 0;
  if (!(in >> key >> epoch) || key != "epoch" || epoch < 0)
    throw std::runtime_error("model_io: bad checkpoint epoch");
  return ModelCheckpoint{load_model(in), epoch};
}

ModelCheckpoint load_checkpoint_file(const std::string& path) {
  return load_file_with_context(
      path, [](std::istream& in) { return load_checkpoint(in); });
}

ActorCritic load_served_model_file(const std::string& path, int* epoch) {
  return load_file_with_context(path, [&](std::istream& in) {
    // Sniff the first token: checkpoints and plain models share the payload
    // format and differ only in the header, so serving accepts both.
    std::string magic;
    if (!(in >> magic))
      throw std::runtime_error("model_io: empty or unreadable file");
    in.seekg(0);
    if (magic == kCheckpointMagic) {
      ModelCheckpoint ckpt = load_checkpoint(in);
      if (epoch != nullptr) *epoch = ckpt.epoch;
      return std::move(ckpt.model);
    }
    if (epoch != nullptr) *epoch = 0;
    return load_model(in);
  });
}

std::string ModelValidationReport::summary() const {
  std::string out;
  for (const std::string& issue : issues) {
    if (!out.empty()) out += "; ";
    out += issue;
  }
  return out;
}

ModelValidationReport validate_model(const ActorCritic& ac, int expected_obs) {
  ModelValidationReport report;
  const auto fail = [&](std::string issue) {
    report.ok = false;
    report.issues.push_back(std::move(issue));
  };
  if (ac.policy_net().output_size() != 1 || ac.value_net().output_size() != 1)
    fail("policy/value nets must have one output");
  if (ac.policy_net().input_size() != ac.value_net().input_size())
    fail("policy/value input widths differ");
  if (expected_obs >= 0 && ac.obs_size() != expected_obs)
    fail("model expects " + std::to_string(ac.obs_size()) +
         " features, server provides " + std::to_string(expected_obs));
  bool finite = true;
  for (const auto params : {ac.policy_net().params(), ac.value_net().params()})
    for (const double p : params) finite = finite && std::isfinite(p);
  if (!finite) fail("non-finite parameters");
  if (!report.ok) return report;  // probe forwards need finite params
  // Probe forwards: canonical in-range observations must produce finite
  // logits and values, the same NaN gate PR 1's training rollback uses.
  {
    const int obs = ac.obs_size();
    for (const double fill : {0.0, 0.5, 1.0}) {
      const std::vector<double> input(static_cast<std::size_t>(obs), fill);
      const std::vector<double> logit = ac.policy_net().forward(input);
      if (logit.size() != 1 || !std::isfinite(logit[0]))
        fail("probe forward produced a non-finite policy logit");
      const double value = ac.value(input);
      if (!std::isfinite(value))
        fail("probe forward produced a non-finite value estimate");
      if (!report.ok) break;
    }
  }
  return report;
}

}  // namespace si
