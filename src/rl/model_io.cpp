#include "rl/model_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace si {

namespace {
constexpr const char* kMagic = "schedinspector-model";
constexpr const char* kVersion = "v1";

void write_params(std::ostream& out, std::span<const double> params) {
  out << params.size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < params.size(); ++i) {
    out << params[i] << (i + 1 == params.size() ? '\n' : ' ');
  }
  if (params.empty()) out << '\n';
}

void read_params(std::istream& in, std::span<double> params) {
  std::size_t count = 0;
  if (!(in >> count) || count != params.size())
    throw std::runtime_error("model_io: parameter count mismatch");
  for (double& p : params)
    if (!(in >> p)) throw std::runtime_error("model_io: truncated parameters");
}
}  // namespace

void save_model(std::ostream& out, const ActorCritic& ac) {
  out << kMagic << ' ' << kVersion << '\n';
  const auto& layers = ac.policy_net().layer_sizes();
  out << layers.size() << '\n';
  for (std::size_t i = 0; i < layers.size(); ++i)
    out << layers[i] << (i + 1 == layers.size() ? '\n' : ' ');
  write_params(out, ac.policy_net().params());
  write_params(out, ac.value_net().params());
  if (!out) throw std::runtime_error("model_io: write failure");
}

void save_model_file(const std::string& path, const ActorCritic& ac) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("model_io: cannot open " + path);
  save_model(out, ac);
}

ActorCritic load_model(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion)
    throw std::runtime_error("model_io: bad header");
  std::size_t layer_count = 0;
  if (!(in >> layer_count) || layer_count < 2)
    throw std::runtime_error("model_io: bad layer count");
  std::vector<int> layers(layer_count);
  for (int& l : layers)
    if (!(in >> l) || l <= 0)
      throw std::runtime_error("model_io: bad layer size");
  if (layers.back() != 1)
    throw std::runtime_error("model_io: output layer must be 1");
  std::vector<int> hidden(layers.begin() + 1, layers.end() - 1);
  ActorCritic ac(layers.front(), hidden, /*seed=*/0);
  read_params(in, ac.policy_net().params());
  read_params(in, ac.value_net().params());
  return ac;
}

ActorCritic load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model_io: cannot open " + path);
  return load_model(in);
}

}  // namespace si
