#include "rl/ppo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>

#include "common/check.hpp"
#include "obs/profile.hpp"

namespace si {

namespace {

// The batch is always split into this many fixed chunks; each chunk
// accumulates gradients into its own buffer and the buffers are reduced in
// chunk order. Results are therefore bit-identical no matter how many
// hardware threads actually run the chunks.
constexpr std::size_t kChunks = 4;

struct ChunkAccumulator {
  std::vector<double> grads;
  double loss = 0.0;
  double kl = 0.0;
  double entropy = 0.0;
};

// True when every gradient entry is finite.
bool grads_finite(std::span<const double> grads) {
  for (const double g : grads)
    if (!std::isfinite(g)) return false;
  return true;
}

// Scales `grads` down to the configured L2 norm; no-op when disabled (0).
void clip_grad_norm(std::span<double> grads, double max_norm) {
  if (max_norm <= 0.0) return;
  double sq = 0.0;
  for (const double g : grads) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm <= max_norm) return;
  const double scale = max_norm / norm;
  for (double& g : grads) g *= scale;
}

// Runs `work(chunk_index, begin, end)` over the kChunks fixed ranges,
// in parallel when the batch is big enough to amortize thread startup.
template <typename Work>
void for_each_chunk(std::size_t batch_size, Work&& work) {
  std::array<std::pair<std::size_t, std::size_t>, kChunks> ranges;
  const std::size_t per = (batch_size + kChunks - 1) / kChunks;
  for (std::size_t c = 0; c < kChunks; ++c) {
    const std::size_t begin = std::min(c * per, batch_size);
    const std::size_t end = std::min(begin + per, batch_size);
    ranges[c] = {begin, end};
  }
  const bool parallel =
      batch_size >= 512 && std::thread::hardware_concurrency() > 1;
  if (!parallel) {
    for (std::size_t c = 0; c < kChunks; ++c)
      work(c, ranges[c].first, ranges[c].second);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c)
    threads.emplace_back([&, c] { work(c, ranges[c].first, ranges[c].second); });
  for (std::thread& t : threads) t.join();
}

}  // namespace

PpoUpdater::PpoUpdater(ActorCritic& ac, PpoConfig config)
    : ac_(ac),
      config_(config),
      policy_opt_(ac.policy_net().param_count(),
                  AdamConfig{.learning_rate = config.policy_lr}),
      value_opt_(ac.value_net().param_count(),
                 AdamConfig{.learning_rate = config.value_lr}) {
  SI_REQUIRE(config_.clip_ratio > 0.0);
  SI_REQUIRE(config_.policy_iters > 0 && config_.value_iters > 0);
  SI_REQUIRE(config_.max_grad_norm >= 0.0);
}

std::vector<double> PpoUpdater::compute_advantages(
    const RolloutBatch& batch) const {
  SI_PROFILE_SCOPE("ppo/advantages");
  std::vector<double> adv(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    adv[i] = batch.returns[i] - ac_.value(batch.steps[i].obs);
  if (config_.normalize_advantage && batch.size() >= 2) {
    double mean = 0.0;
    for (double a : adv) mean += a;
    mean /= static_cast<double>(adv.size());
    double var = 0.0;
    for (double a : adv) var += (a - mean) * (a - mean);
    var /= static_cast<double>(adv.size());
    const double stddev = std::sqrt(std::max(var, 1e-12));
    for (double& a : adv) a = (a - mean) / stddev;
  }
  return adv;
}

PpoStats PpoUpdater::update(const RolloutBatch& batch) {
  SI_PROFILE_SCOPE("ppo/update");
  SI_REQUIRE(!batch.empty());
  SI_REQUIRE(batch.steps.size() == batch.returns.size());
  for (const Step& s : batch.steps)
    SI_REQUIRE(static_cast<int>(s.obs.size()) == ac_.obs_size());

  const std::vector<double> advantages = compute_advantages(batch);
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  PpoStats stats;

  Mlp& policy = ac_.policy_net();

  // --- policy: clipped surrogate with entropy bonus; early stop on KL ---
  std::array<ChunkAccumulator, kChunks> acc;
  for (int iter = 0; iter < config_.policy_iters; ++iter) {
    SI_PROFILE_SCOPE("ppo/policy_iter");
    for_each_chunk(batch.size(), [&](std::size_t c, std::size_t begin,
                                     std::size_t end) {
      ChunkAccumulator& a = acc[c];
      a.grads.assign(policy.param_count(), 0.0);
      a.loss = a.kl = a.entropy = 0.0;
      Mlp::Workspace ws;
      for (std::size_t i = begin; i < end; ++i) {
        const Step& step = batch.steps[i];
        const double logit = policy.forward(step.obs, ws)[0];
        const double logp = bernoulli_log_prob(logit, step.action);
        const double ratio = std::exp(logp - step.log_prob);
        const double adv = advantages[i];
        a.kl += step.log_prob - logp;
        a.entropy += bernoulli_entropy(logit);

        const double clipped = std::clamp(ratio, 1.0 - config_.clip_ratio,
                                          1.0 + config_.clip_ratio);
        a.loss += -std::min(ratio * adv, clipped * adv);

        // d(surrogate)/d(logp): ratio * adv unless the clip is active on
        // the pessimistic side, in which case the gradient vanishes.
        const bool clip_active =
            (adv >= 0.0 && ratio > 1.0 + config_.clip_ratio) ||
            (adv < 0.0 && ratio < 1.0 - config_.clip_ratio);
        const double dsurr_dlogp = clip_active ? 0.0 : ratio * adv;
        const double p = sigmoid(logit);
        // d(logp)/d(logit) for a Bernoulli head = action - p.
        const double dlogp_dlogit = static_cast<double>(step.action) - p;
        // d(entropy)/d(logit) = -logit * p * (1 - p).
        const double dent_dlogit = -logit * p * (1.0 - p);
        const double dloss_dlogit =
            (-dsurr_dlogp * dlogp_dlogit -
             config_.entropy_coef * dent_dlogit) *
            inv_n;
        const double grad_out[1] = {dloss_dlogit};
        policy.backward_into(ws, grad_out, a.grads);
      }
    });

    policy.zero_grad();
    double loss = 0.0;
    double kl = 0.0;
    double entropy = 0.0;
    auto grads = policy.grads();
    for (const ChunkAccumulator& a : acc) {
      for (std::size_t g = 0; g < grads.size(); ++g) grads[g] += a.grads[g];
      loss += a.loss;
      kl += a.kl;
      entropy += a.entropy;
    }
    loss *= inv_n;
    kl *= inv_n;
    entropy *= inv_n;
    stats.policy_loss = loss - config_.entropy_coef * entropy;
    stats.approx_kl = kl;
    stats.entropy = entropy;
    stats.policy_iters_run = iter + 1;
    if (!std::isfinite(loss) || !std::isfinite(kl) ||
        !grads_finite(policy.grads())) {
      stats.non_finite = true;
      break;
    }
    if (kl > 1.5 * config_.target_kl) break;
    clip_grad_norm(policy.grads(), config_.max_grad_norm);
    policy_opt_.step(policy.params(), policy.grads());
  }

  // --- value: mean squared error against the returns ---
  Mlp& value = ac_.value_net();
  for (int iter = 0; iter < config_.value_iters; ++iter) {
    SI_PROFILE_SCOPE("ppo/value_iter");
    for_each_chunk(batch.size(), [&](std::size_t c, std::size_t begin,
                                     std::size_t end) {
      ChunkAccumulator& a = acc[c];
      a.grads.assign(value.param_count(), 0.0);
      a.loss = 0.0;
      Mlp::Workspace ws;
      for (std::size_t i = begin; i < end; ++i) {
        const Step& step = batch.steps[i];
        const double v = value.forward(step.obs, ws)[0];
        const double err = v - batch.returns[i];
        a.loss += err * err;
        const double grad_out[1] = {2.0 * err * inv_n};
        value.backward_into(ws, grad_out, a.grads);
      }
    });
    value.zero_grad();
    double loss = 0.0;
    auto grads = value.grads();
    for (const ChunkAccumulator& a : acc) {
      for (std::size_t g = 0; g < grads.size(); ++g) grads[g] += a.grads[g];
      loss += a.loss;
    }
    stats.value_loss = loss * inv_n;
    if (!std::isfinite(stats.value_loss) || !grads_finite(value.grads())) {
      stats.non_finite = true;
      break;
    }
    clip_grad_norm(value.grads(), config_.max_grad_norm);
    value_opt_.step(value.params(), value.grads());
  }

  return stats;
}

void PpoUpdater::reset() {
  policy_opt_.reset();
  value_opt_.reset();
}

}  // namespace si
