#include "rl/ppo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>

#include "common/check.hpp"
#include "obs/profile.hpp"

namespace si {

namespace {

/// One pass over the gradient buffer: finiteness and squared L2 norm
/// together (previously two separate sweeps). Stops at the first
/// non-finite entry.
struct GradSweep {
  double sq_norm = 0.0;
  bool finite = true;
};

GradSweep sweep_grads(std::span<const double> grads) {
  GradSweep s;
  for (const double g : grads) {
    if (!std::isfinite(g)) {
      s.finite = false;
      return s;
    }
    s.sq_norm += g * g;
  }
  return s;
}

// Scales `grads` down to the configured L2 norm using the already-computed
// squared norm; no-op when disabled (0) or within bounds.
void apply_grad_clip(std::span<double> grads, double sq_norm,
                     double max_norm) {
  if (max_norm <= 0.0) return;
  const double norm = std::sqrt(sq_norm);
  if (norm <= max_norm) return;
  const double scale = max_norm / norm;
  for (double& g : grads) g *= scale;
}

// Runs `work(chunk_index, begin, end)` over the kPpoLogicalChunks fixed
// ranges. The chunk ranges never depend on the thread count; thread t
// executes chunks t, t+T, t+2T, ... and the caller reduces the chunk
// buffers in index order, so results are bit-identical for any `threads`.
template <typename Work>
void for_each_chunk(std::size_t batch_size, int threads_config, Work&& work) {
  std::array<std::pair<std::size_t, std::size_t>, kPpoLogicalChunks> ranges;
  const std::size_t per =
      (batch_size + kPpoLogicalChunks - 1) / kPpoLogicalChunks;
  for (std::size_t c = 0; c < kPpoLogicalChunks; ++c) {
    const std::size_t begin = std::min(c * per, batch_size);
    const std::size_t end = std::min(begin + per, batch_size);
    ranges[c] = {begin, end};
  }
  std::size_t threads =
      threads_config > 0
          ? static_cast<std::size_t>(threads_config)
          : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  threads = std::min(threads, kPpoLogicalChunks);
  const bool parallel = threads > 1 && batch_size >= 512;
  if (!parallel) {
    for (std::size_t c = 0; c < kPpoLogicalChunks; ++c)
      work(c, ranges[c].first, ranges[c].second);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    pool.emplace_back([&, t] {
      for (std::size_t c = t; c < kPpoLogicalChunks; c += threads)
        work(c, ranges[c].first, ranges[c].second);
    });
  for (std::thread& th : pool) th.join();
}

}  // namespace

PpoUpdater::PpoUpdater(ActorCritic& ac, PpoConfig config)
    : ac_(ac),
      config_(config),
      policy_opt_(ac.policy_net().param_count(),
                  AdamConfig{.learning_rate = config.policy_lr}),
      value_opt_(ac.value_net().param_count(),
                 AdamConfig{.learning_rate = config.value_lr}) {
  SI_REQUIRE(config_.clip_ratio > 0.0);
  SI_REQUIRE(config_.policy_iters > 0 && config_.value_iters > 0);
  SI_REQUIRE(config_.max_grad_norm >= 0.0);
  SI_REQUIRE(config_.update_threads >= 0);
}

std::vector<double> PpoUpdater::compute_advantages(const RolloutBatch& batch) {
  SI_PROFILE_SCOPE("ppo/advantages");
  std::vector<double> adv(batch.size());
  if (config_.use_batched_kernels) {
    // One batched value forward over the whole obs matrix instead of a
    // heap-allocating per-sample call; per sample bit-identical.
    const Mlp& value = ac_.value_net();
    value.refresh_transpose();
    value.forward_batch(obs_matrix_, static_cast<int>(batch.size()), adv_ws_);
    const std::vector<double>& v = adv_ws_.activations.back();
    for (std::size_t i = 0; i < batch.size(); ++i)
      adv[i] = batch.returns[i] - v[i];
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i)
      adv[i] = batch.returns[i] - ac_.value(batch.steps[i].obs);
  }
  if (config_.normalize_advantage && batch.size() >= 2) {
    double mean = 0.0;
    for (double a : adv) mean += a;
    mean /= static_cast<double>(adv.size());
    double var = 0.0;
    for (double a : adv) var += (a - mean) * (a - mean);
    var /= static_cast<double>(adv.size());
    const double stddev = std::sqrt(std::max(var, 1e-12));
    for (double& a : adv) a = (a - mean) / stddev;
  }
  return adv;
}

PpoStats PpoUpdater::update(const RolloutBatch& batch) {
  SI_PROFILE_SCOPE("ppo/update");
  SI_REQUIRE(!batch.empty());
  SI_REQUIRE(batch.steps.size() == batch.returns.size());
  for (const Step& s : batch.steps)
    SI_REQUIRE(static_cast<int>(s.obs.size()) == ac_.obs_size());

  const std::size_t obs_size = static_cast<std::size_t>(ac_.obs_size());
  if (config_.use_batched_kernels) {
    // Flatten the batch once; every subsequent pass (advantages, policy
    // iterations, value iterations) reads the same row-major matrix.
    obs_matrix_.resize(batch.size() * obs_size);
    for (std::size_t i = 0; i < batch.size(); ++i)
      std::copy(batch.steps[i].obs.begin(), batch.steps[i].obs.end(),
                obs_matrix_.begin() + i * obs_size);
  }

  const std::vector<double> advantages = compute_advantages(batch);
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  PpoStats stats;

  Mlp& policy = ac_.policy_net();

  // Shared per-sample surrogate math: consumes one logit, produces the
  // loss/KL/entropy contributions and dL/dlogit.
  const auto policy_sample = [&](std::size_t i, double logit,
                                 ChunkScratch& a) {
    const Step& step = batch.steps[i];
    const double logp = bernoulli_log_prob(logit, step.action);
    const double ratio = std::exp(logp - step.log_prob);
    const double adv = advantages[i];
    a.kl += step.log_prob - logp;
    a.entropy += bernoulli_entropy(logit);

    const double clipped = std::clamp(ratio, 1.0 - config_.clip_ratio,
                                      1.0 + config_.clip_ratio);
    a.loss += -std::min(ratio * adv, clipped * adv);

    // d(surrogate)/d(logp): ratio * adv unless the clip is active on the
    // pessimistic side, in which case the gradient vanishes.
    const bool clip_active =
        (adv >= 0.0 && ratio > 1.0 + config_.clip_ratio) ||
        (adv < 0.0 && ratio < 1.0 - config_.clip_ratio);
    const double dsurr_dlogp = clip_active ? 0.0 : ratio * adv;
    const double p = sigmoid(logit);
    // d(logp)/d(logit) for a Bernoulli head = action - p.
    const double dlogp_dlogit = static_cast<double>(step.action) - p;
    // d(entropy)/d(logit) = -logit * p * (1 - p).
    const double dent_dlogit = -logit * p * (1.0 - p);
    return (-dsurr_dlogp * dlogp_dlogit - config_.entropy_coef * dent_dlogit) *
           inv_n;
  };

  // --- policy: clipped surrogate with entropy bonus; early stop on KL ---
  for (int iter = 0; iter < config_.policy_iters; ++iter) {
    SI_PROFILE_SCOPE("ppo/policy_iter");
    if (config_.use_batched_kernels) policy.refresh_transpose();
    for_each_chunk(
        batch.size(), config_.update_threads,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
          ChunkScratch& a = chunks_[c];
          a.grads.assign(policy.param_count(), 0.0);
          a.loss = a.kl = a.entropy = 0.0;
          if (begin == end) return;
          if (config_.use_batched_kernels) {
            const int n = static_cast<int>(end - begin);
            policy.forward_batch(
                std::span<const double>(obs_matrix_.data() + begin * obs_size,
                                        (end - begin) * obs_size),
                n, a.bws);
            const std::vector<double>& logits = a.bws.activations.back();
            a.grad_out.resize(end - begin);
            for (std::size_t i = begin; i < end; ++i)
              a.grad_out[i - begin] = policy_sample(i, logits[i - begin], a);
            policy.backward_batch(a.bws, a.grad_out, a.grads);
          } else {
            for (std::size_t i = begin; i < end; ++i) {
              const double logit =
                  policy.forward(batch.steps[i].obs, a.ws)[0];
              const double grad_out[1] = {policy_sample(i, logit, a)};
              policy.backward_into(a.ws, grad_out, a.grads);
            }
          }
        });

    policy.zero_grad();
    double loss = 0.0;
    double kl = 0.0;
    double entropy = 0.0;
    auto grads = policy.grads();
    for (const ChunkScratch& a : chunks_) {
      for (std::size_t g = 0; g < grads.size(); ++g) grads[g] += a.grads[g];
      loss += a.loss;
      kl += a.kl;
      entropy += a.entropy;
    }
    loss *= inv_n;
    kl *= inv_n;
    entropy *= inv_n;
    stats.policy_loss = loss - config_.entropy_coef * entropy;
    stats.approx_kl = kl;
    stats.entropy = entropy;
    stats.policy_iters_run = iter + 1;
    const GradSweep sweep = sweep_grads(policy.grads());
    if (!std::isfinite(loss) || !std::isfinite(kl) || !sweep.finite) {
      stats.non_finite = true;
      break;
    }
    if (kl > 1.5 * config_.target_kl) break;
    apply_grad_clip(policy.grads(), sweep.sq_norm, config_.max_grad_norm);
    policy_opt_.step(policy.params(), policy.grads());
  }

  // --- value: mean squared error against the returns ---
  Mlp& value = ac_.value_net();
  for (int iter = 0; iter < config_.value_iters; ++iter) {
    SI_PROFILE_SCOPE("ppo/value_iter");
    if (config_.use_batched_kernels) value.refresh_transpose();
    for_each_chunk(
        batch.size(), config_.update_threads,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
          ChunkScratch& a = chunks_[c];
          a.grads.assign(value.param_count(), 0.0);
          a.loss = 0.0;
          if (begin == end) return;
          if (config_.use_batched_kernels) {
            const int n = static_cast<int>(end - begin);
            value.forward_batch(
                std::span<const double>(obs_matrix_.data() + begin * obs_size,
                                        (end - begin) * obs_size),
                n, a.bws);
            const std::vector<double>& out = a.bws.activations.back();
            a.grad_out.resize(end - begin);
            for (std::size_t i = begin; i < end; ++i) {
              const double err = out[i - begin] - batch.returns[i];
              a.loss += err * err;
              a.grad_out[i - begin] = 2.0 * err * inv_n;
            }
            value.backward_batch(a.bws, a.grad_out, a.grads);
          } else {
            for (std::size_t i = begin; i < end; ++i) {
              const double v = value.forward(batch.steps[i].obs, a.ws)[0];
              const double err = v - batch.returns[i];
              a.loss += err * err;
              const double grad_out[1] = {2.0 * err * inv_n};
              value.backward_into(a.ws, grad_out, a.grads);
            }
          }
        });
    value.zero_grad();
    double loss = 0.0;
    auto grads = value.grads();
    for (const ChunkScratch& a : chunks_) {
      for (std::size_t g = 0; g < grads.size(); ++g) grads[g] += a.grads[g];
      loss += a.loss;
    }
    stats.value_loss = loss * inv_n;
    const GradSweep sweep = sweep_grads(value.grads());
    if (!std::isfinite(stats.value_loss) || !sweep.finite) {
      stats.non_finite = true;
      break;
    }
    apply_grad_clip(value.grads(), sweep.sq_norm, config_.max_grad_norm);
    value_opt_.step(value.params(), value.grads());
  }

  return stats;
}

void PpoUpdater::reset() {
  policy_opt_.reset();
  value_opt_.reset();
}

}  // namespace si
