// Proximal Policy Optimization (Schulman et al., 2017) with the clipped
// surrogate objective — the training algorithm of §4.1. The update consumes
// a RolloutBatch of Bernoulli inspection decisions whose returns are the
// broadcast sequence-final rewards; advantages are returns minus the critic
// baseline, normalized per batch.
#pragma once

#include <array>
#include <vector>

#include "rl/actor_critic.hpp"
#include "rl/adam.hpp"
#include "rl/buffer.hpp"

namespace si {

/// The batch is always split into this many fixed logical chunks; each
/// chunk accumulates gradients into its own buffer and the buffers are
/// reduced in chunk-index order. Results are therefore bit-identical no
/// matter how many hardware threads actually execute the chunks.
inline constexpr std::size_t kPpoLogicalChunks = 16;

struct PpoConfig {
  double clip_ratio = 0.2;
  double policy_lr = 1e-3;       ///< paper: 1e-3
  double value_lr = 1e-3;
  int policy_iters = 40;         ///< gradient steps per update
  int value_iters = 40;
  double target_kl = 0.015;      ///< early-stop threshold (x1.5 rule)
  double entropy_coef = 0.01;    ///< exploration bonus
  bool normalize_advantage = true;
  /// L2 gradient-norm clip applied before every optimizer step; 0 disables
  /// (the default, matching the paper's unclipped updates).
  double max_grad_norm = 0.0;
  /// Worker threads driving the logical chunks: 0 = one per hardware
  /// thread, 1 = serial, N = exactly N. Capped at kPpoLogicalChunks.
  /// Results are bit-identical for every setting.
  int update_threads = 0;
  /// Drive iterations through the batched MLP kernels (the default). The
  /// per-sample reference path is kept for the equivalence tests and the
  /// bench_kernels baseline; both produce bit-identical results.
  bool use_batched_kernels = true;
};

/// Diagnostics of one PPO update.
struct PpoStats {
  double policy_loss = 0.0;      ///< after the last policy step
  double value_loss = 0.0;       ///< after the last value step
  double approx_kl = 0.0;        ///< mean(logp_old - logp_new) at stop
  double entropy = 0.0;          ///< mean Bernoulli entropy at stop
  int policy_iters_run = 0;      ///< may stop early on KL
  /// A loss or gradient went NaN/Inf; the offending optimizer step was not
  /// taken and the update stopped early. Callers should treat the network
  /// parameters as suspect and roll back to a known-good snapshot.
  bool non_finite = false;
};

/// PPO updater bound to one ActorCritic. Owns the Adam state for both nets.
class PpoUpdater {
 public:
  PpoUpdater(ActorCritic& ac, PpoConfig config = {});

  /// Runs one PPO update over the batch. Requires a non-empty batch whose
  /// observation width matches the networks.
  PpoStats update(const RolloutBatch& batch);

  /// Drops the Adam moment estimates of both nets. Call after rolling the
  /// network back to a snapshot: stale moments from a diverged update would
  /// otherwise poison the next step.
  void reset();

  const PpoConfig& config() const { return config_; }

 private:
  ActorCritic& ac_;
  PpoConfig config_;
  Adam policy_opt_;
  Adam value_opt_;

  /// Per-chunk gradient accumulator and batched-kernel scratch, persistent
  /// across iterations and updates so the steady state allocates nothing.
  struct ChunkScratch {
    std::vector<double> grads;
    double loss = 0.0;
    double kl = 0.0;
    double entropy = 0.0;
    Mlp::BatchWorkspace bws;        ///< batched path
    std::vector<double> grad_out;   ///< batched path: per-sample dL/dlogit
    Mlp::Workspace ws;              ///< per-sample reference path
  };
  std::array<ChunkScratch, kPpoLogicalChunks> chunks_;

  /// Row-major obs matrix of the current batch (filled once per update(),
  /// shared by the advantage, policy, and value passes).
  std::vector<double> obs_matrix_;
  Mlp::BatchWorkspace adv_ws_;  ///< value-forward workspace for advantages

  /// Advantage of each step (return - V(obs)), optionally normalized.
  std::vector<double> compute_advantages(const RolloutBatch& batch);
};

}  // namespace si
