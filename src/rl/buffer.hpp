// Trajectory storage for PPO. One trajectory holds the inspection steps of
// one simulated job sequence; its reward is computed only after the whole
// sequence is scheduled (§3: intermediate rewards are 0, a single final
// reward is broadcast as every step's return).
#pragma once

#include <cstddef>
#include <vector>

namespace si {

/// One inspection decision as recorded during rollout.
struct Step {
  std::vector<double> obs;  ///< state features (§3.3)
  int action = 0;           ///< 1 = rejected, 0 = accepted
  double log_prob = 0.0;    ///< log pi_old(action | obs)
};

/// One episode: all inspection steps of a job sequence + its final reward.
struct Trajectory {
  std::vector<Step> steps;
  double reward = 0.0;  ///< final reward (§3.4)
};

/// A flat batch view over many trajectories, ready for a PPO update.
struct RolloutBatch {
  std::vector<Step> steps;       ///< all steps, trajectory order
  std::vector<double> returns;   ///< per-step return = its trajectory reward

  std::size_t size() const { return steps.size(); }
  bool empty() const { return steps.empty(); }

  /// Appends all of `t`'s steps, broadcasting the trajectory reward.
  void add(Trajectory&& t) {
    for (Step& s : t.steps) {
      steps.push_back(std::move(s));
      returns.push_back(t.reward);
    }
  }

  void clear() {
    steps.clear();
    returns.clear();
  }
};

}  // namespace si
