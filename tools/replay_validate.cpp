// Trace-replay validation tool (DESIGN.md §7): re-derives per-job records
// and sequence metrics purely from a PR-2 JSONL event trace and cross-checks
// them against the metrics the simulator itself reported on the run_end
// record. Exits non-zero when any run diverges.
//
//   replay_validate trace.jsonl [more.jsonl ...]   # validate trace files
//   replay_validate -                              # read one trace on stdin
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "check/replay.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.jsonl>... | -\n"
                 "validates simulator JSONL traces by replay (DESIGN.md "
                 "S7)\n",
                 argv[0]);
    return 2;
  }
  bool failed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    const si::ReplayReport report =
        path == "-" ? si::replay_validate_stream(std::cin)
                    : si::replay_validate_file(path);
    std::printf("%s: %s", path.c_str(), report.str().c_str());
    if (!report.ok()) failed = true;
  }
  return failed ? 1 : 0;
}
