#!/usr/bin/env python3
"""Validates a SchedInspector JSONL event trace against the event schema.

The schema is documented in DESIGN.md §5 and emitted by src/obs/trace.cpp:
every line is one flat JSON object with an "ev" kind, a simulated
timestamp "t", and a fixed per-kind field set. The checker is strict in
both directions — missing AND unexpected keys fail — so the Python table
below and the C++ emitter cannot drift apart silently.

Usage:
    check_trace_schema.py trace.jsonl [more.jsonl ...]
    check_trace_schema.py --generate <schedinspector_cli> --workdir <dir>

--generate runs small `train` and `eval` commands with --trace-out under
<dir>, then validates the produced traces; this is how the `obs` ctest
exercises the full pipeline. Standard library only.
"""

import argparse
import json
import os
import subprocess
import sys

NUMBER = (int, float)
INT = int
BOOL = bool
STR = str

# kind -> {field: required type(s)}; "ev" and "t" are checked on every
# record. Bools are excluded from NUMBER checks explicitly (Python bools
# are ints).
SCHEMA = {
    "run_begin": {"jobs": INT, "procs": INT, "backfill": BOOL},
    "submit": {"job": INT, "procs": INT, "submit": NUMBER},
    "sched_point": {"job": INT, "free": INT, "waiting": INT},
    "inspect": {"job": INT, "reject": BOOL, "rejections": INT, "free": INT},
    "reject": {"job": INT, "rejections": INT},
    "start": {"job": INT, "procs": INT, "wait": NUMBER},
    "finish": {"job": INT, "procs": INT, "run": NUMBER},
    "requeue": {"job": INT, "attempt": INT},
    "kill": {"job": INT, "procs": INT, "run": NUMBER, "reason": STR},
    "drain": {"procs": INT},
    "restore": {"procs": INT},
    "trajectory": {"epoch": INT, "traj": INT},
    "run_end": {"jobs": INT, "inspections": INT, "rejections": INT,
                "avg_wait": NUMBER, "avg_bsld": NUMBER, "max_bsld": NUMBER,
                "util": NUMBER, "makespan": NUMBER},
}

KILL_REASONS = {"wall", "budget"}


def type_ok(value, expected):
    if expected is BOOL:
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False  # a bool is never a valid int/number/str field
    return isinstance(value, expected)


def check_record(record, lineno, errors):
    def err(message):
        errors.append("line %d: %s" % (lineno, message))

    if not isinstance(record, dict):
        err("not a JSON object")
        return
    kind = record.get("ev")
    if kind not in SCHEMA:
        err("unknown event kind %r" % (kind,))
        return
    if not type_ok(record.get("t"), NUMBER):
        err("%s: field 't' missing or not a number" % kind)
    fields = SCHEMA[kind]
    for name, expected in fields.items():
        if name not in record:
            err("%s: missing field %r" % (kind, name))
        elif not type_ok(record[name], expected):
            err("%s: field %r has wrong type %s"
                % (kind, name, type(record[name]).__name__))
    for name in record:
        if name not in fields and name not in ("ev", "t"):
            err("%s: unexpected field %r" % (kind, name))
    if kind == "kill" and record.get("reason") not in KILL_REASONS:
        err("kill: unknown reason %r" % (record.get("reason"),))


def check_file(path):
    """Returns (records, errors) for one JSONL trace file."""
    errors = []
    records = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                errors.append("line %d: empty line" % lineno)
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                errors.append("line %d: invalid JSON: %s" % (lineno, exc))
                continue
            records += 1
            check_record(record, lineno, errors)
    if records == 0:
        errors.append("no records")
    return records, errors


def generate_traces(cli, workdir):
    """Runs the CLI's train and eval with tracing on; returns trace paths."""
    os.makedirs(workdir, exist_ok=True)
    model = os.path.join(workdir, "model.txt")
    train_trace = os.path.join(workdir, "train_trace.jsonl")
    eval_trace = os.path.join(workdir, "eval_trace.jsonl")
    common = ["--trace", "SDSC-SP2", "--policy", "SJF", "--seed", "11"]
    commands = [
        [cli, "train", *common, "--epochs", "2", "--trajectories", "4",
         "--seq-len", "32", "--model", model, "--quiet",
         "--trace-out", train_trace],
        [cli, "eval", *common, "--sequences", "2", "--model", model,
         "--trace-out", eval_trace, "--faults"],
    ]
    for command in commands:
        result = subprocess.run(command, stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE)
        if result.returncode != 0:
            sys.stderr.write(result.stderr.decode("utf-8", "replace"))
            raise SystemExit("command failed: %s" % " ".join(command))
    return [train_trace, eval_trace]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="*", help="JSONL trace files")
    parser.add_argument("--generate", metavar="CLI",
                        help="schedinspector_cli binary; generates traces "
                             "to validate")
    parser.add_argument("--workdir", default="trace_schema_check",
                        help="scratch directory for --generate")
    args = parser.parse_args()

    traces = list(args.traces)
    if args.generate:
        traces += generate_traces(args.generate, args.workdir)
    if not traces:
        parser.error("no trace files given (pass paths or --generate)")

    failed = False
    for path in traces:
        records, errors = check_file(path)
        for error in errors[:20]:
            print("%s: %s" % (path, error))
        if len(errors) > 20:
            print("%s: ... %d more errors" % (path, len(errors) - 20))
        if errors:
            failed = True
        else:
            print("%s: OK (%d records)" % (path, records))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
