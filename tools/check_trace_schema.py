#!/usr/bin/env python3
"""Validates SchedInspector observability output against its schemas.

Two record families, both strict in BOTH directions — missing AND
unexpected keys fail — so the Python tables below and the C++ emitters
cannot drift apart silently:

  * simulator event traces (DESIGN.md §5, src/obs/trace.cpp): JSONL, one
    flat object per line with an "ev" kind and simulated timestamp "t";
  * span traces (DESIGN.md §10, src/obs/span.cpp): Chrome trace-event
    objects, accepted either as the full {"traceEvents":[...]} document
    to_chrome_json() writes or as the JSONL to_jsonl() writes.

Usage:
    check_trace_schema.py trace.jsonl [more.jsonl ...]
    check_trace_schema.py --spans spans.json [more ...]
    check_trace_schema.py --generate <schedinspector_cli> --workdir <dir>

--generate runs small `train` and `eval` commands with --trace-out (and
--spans-out) under <dir>, then validates everything produced; this is how
the `obs` ctest exercises the full pipeline. Standard library only.
"""

import argparse
import json
import os
import subprocess
import sys

NUMBER = (int, float)
INT = int
BOOL = bool
STR = str

# kind -> {field: required type(s)}; "ev" and "t" are checked on every
# record. Bools are excluded from NUMBER checks explicitly (Python bools
# are ints).
SCHEMA = {
    "run_begin": {"jobs": INT, "procs": INT, "backfill": BOOL},
    "submit": {"job": INT, "procs": INT, "submit": NUMBER},
    "sched_point": {"job": INT, "free": INT, "waiting": INT},
    "inspect": {"job": INT, "reject": BOOL, "rejections": INT, "free": INT},
    "reject": {"job": INT, "rejections": INT},
    "start": {"job": INT, "procs": INT, "wait": NUMBER},
    "finish": {"job": INT, "procs": INT, "run": NUMBER},
    "requeue": {"job": INT, "attempt": INT},
    "kill": {"job": INT, "procs": INT, "run": NUMBER, "reason": STR},
    "drain": {"procs": INT},
    "restore": {"procs": INT},
    "trajectory": {"epoch": INT, "traj": INT},
    "run_end": {"jobs": INT, "inspections": INT, "rejections": INT,
                "avg_wait": NUMBER, "avg_bsld": NUMBER, "max_bsld": NUMBER,
                "util": NUMBER, "makespan": NUMBER},
}

KILL_REASONS = {"wall", "budget"}


def type_ok(value, expected):
    if expected is BOOL:
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False  # a bool is never a valid int/number/str field
    return isinstance(value, expected)


def check_record(record, lineno, errors):
    def err(message):
        errors.append("line %d: %s" % (lineno, message))

    if not isinstance(record, dict):
        err("not a JSON object")
        return
    kind = record.get("ev")
    if kind not in SCHEMA:
        err("unknown event kind %r" % (kind,))
        return
    if not type_ok(record.get("t"), NUMBER):
        err("%s: field 't' missing or not a number" % kind)
    fields = SCHEMA[kind]
    for name, expected in fields.items():
        if name not in record:
            err("%s: missing field %r" % (kind, name))
        elif not type_ok(record[name], expected):
            err("%s: field %r has wrong type %s"
                % (kind, name, type(record[name]).__name__))
    for name in record:
        if name not in fields and name not in ("ev", "t"):
            err("%s: unexpected field %r" % (kind, name))
    if kind == "kill" and record.get("reason") not in KILL_REASONS:
        err("kill: unknown reason %r" % (record.get("reason"),))


# --- span events (Chrome trace-event JSON, src/obs/span.cpp) ---

SPAN_PHASES = {"X", "i", "M"}


def check_span_args(kind, args, err):
    if not isinstance(args, dict):
        err("%s: 'args' is not an object" % kind)
        return
    for required in ("trace", "span"):
        if not type_ok(args.get(required), INT):
            err("%s: args.%s missing or not an int" % (kind, required))
    if "parent" in args and not type_ok(args["parent"], INT):
        err("%s: args.parent is not an int" % kind)
    for name, value in args.items():
        if name in ("trace", "span", "parent"):
            continue
        # Every user-supplied arg value is emitted as an escaped string.
        if not isinstance(value, str):
            err("%s: args.%s is not a string" % (kind, name))


def check_span_event(record, where, errors):
    def err(message):
        errors.append("%s: %s" % (where, message))

    if not isinstance(record, dict):
        err("not a JSON object")
        return
    phase = record.get("ph")
    if phase not in SPAN_PHASES:
        err("unknown phase %r" % (phase,))
        return
    if not isinstance(record.get("name"), str):
        err("%s: 'name' missing or not a string" % phase)
    if not type_ok(record.get("pid"), INT):
        err("%s: 'pid' missing or not an int" % phase)
    if not type_ok(record.get("tid"), INT):
        err("%s: 'tid' missing or not an int" % phase)

    if phase == "M":
        # thread_name metadata: {"name","ph","pid","tid","args":{"name"}}.
        expected = {"name", "ph", "pid", "tid", "args"}
        if record.get("name") != "thread_name":
            err("M: unexpected metadata record %r" % (record.get("name"),))
        args = record.get("args")
        if not isinstance(args, dict) or set(args) != {"name"} or \
                not isinstance(args.get("name"), str):
            err("M: args must be exactly {\"name\": <string>}")
    else:
        expected = {"name", "cat", "ph", "ts", "pid", "tid", "args"}
        if not isinstance(record.get("cat"), str):
            err("%s: 'cat' missing or not a string" % phase)
        if not type_ok(record.get("ts"), INT):
            err("%s: 'ts' missing or not an int" % phase)
        if phase == "X":
            expected.add("dur")
            if not type_ok(record.get("dur"), INT):
                err("X: 'dur' missing or not an int")
            elif record["dur"] < 0:
                err("X: negative duration %r" % (record["dur"],))
        if phase == "i":
            expected.add("s")
            if record.get("s") != "t":
                err("i: instant scope 's' must be \"t\"")
        check_span_args(phase, record.get("args"), err)

    for name in record:
        if name not in expected:
            err("%s: unexpected field %r" % (phase, name))


def check_span_file(path):
    """Returns (events, errors); accepts traceEvents JSON or JSONL."""
    errors = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    events = []
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict):
        if set(document) != {"traceEvents"} or \
                not isinstance(document["traceEvents"], list):
            return 0, ["top level must be exactly {\"traceEvents\": [...]}"]
        events = [(i + 1, event)
                  for i, event in enumerate(document["traceEvents"])]
        label = "event"
    elif document is not None:
        return 0, ["top level is neither traceEvents object nor JSONL"]
    else:
        label = "line"
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line:
                errors.append("line %d: empty line" % lineno)
                continue
            try:
                events.append((lineno, json.loads(line)))
            except ValueError as exc:
                errors.append("line %d: invalid JSON: %s" % (lineno, exc))
    for index, event in events:
        check_span_event(event, "%s %d" % (label, index), errors)
    if not events:
        errors.append("no span events")
    return len(events), errors


def check_file(path):
    """Returns (records, errors) for one JSONL trace file."""
    errors = []
    records = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                errors.append("line %d: empty line" % lineno)
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                errors.append("line %d: invalid JSON: %s" % (lineno, exc))
                continue
            records += 1
            check_record(record, lineno, errors)
    if records == 0:
        errors.append("no records")
    return records, errors


def generate_traces(cli, workdir):
    """Runs the CLI's train and eval with tracing on.

    Returns (trace_paths, span_paths)."""
    os.makedirs(workdir, exist_ok=True)
    model = os.path.join(workdir, "model.txt")
    train_trace = os.path.join(workdir, "train_trace.jsonl")
    eval_trace = os.path.join(workdir, "eval_trace.jsonl")
    train_spans = os.path.join(workdir, "train_spans.json")
    common = ["--trace", "SDSC-SP2", "--policy", "SJF", "--seed", "11"]
    commands = [
        [cli, "train", *common, "--epochs", "2", "--trajectories", "4",
         "--seq-len", "32", "--model", model, "--quiet",
         "--trace-out", train_trace, "--spans-out", train_spans],
        [cli, "eval", *common, "--sequences", "2", "--model", model,
         "--trace-out", eval_trace, "--faults"],
    ]
    for command in commands:
        result = subprocess.run(command, stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE)
        if result.returncode != 0:
            sys.stderr.write(result.stderr.decode("utf-8", "replace"))
            raise SystemExit("command failed: %s" % " ".join(command))
    return [train_trace, eval_trace], [train_spans]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="*", help="JSONL trace files")
    parser.add_argument("--spans", nargs="*", default=[],
                        help="span trace files (traceEvents JSON or JSONL)")
    parser.add_argument("--generate", metavar="CLI",
                        help="schedinspector_cli binary; generates traces "
                             "to validate")
    parser.add_argument("--workdir", default="trace_schema_check",
                        help="scratch directory for --generate")
    args = parser.parse_args()

    traces = list(args.traces)
    spans = list(args.spans)
    if args.generate:
        generated_traces, generated_spans = generate_traces(
            args.generate, args.workdir)
        traces += generated_traces
        spans += generated_spans
    if not traces and not spans:
        parser.error("no trace files given (pass paths, --spans, or "
                     "--generate)")

    failed = False
    for path, checker in [(p, check_file) for p in traces] + \
                         [(p, check_span_file) for p in spans]:
        records, errors = checker(path)
        for error in errors[:20]:
            print("%s: %s" % (path, error))
        if len(errors) > 20:
            print("%s: ... %d more errors" % (path, len(errors) - 20))
        if errors:
            failed = True
        else:
            print("%s: OK (%d records)" % (path, records))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
