#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources in src/, using the compile database from an existing CMake build
# tree (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in this project).
#
# Usage: tools/run_tidy.sh [build-dir] [path-filter ...]
#   build-dir    build tree holding compile_commands.json (default: build)
#   path-filter  only lint sources whose path contains one of these
#                substrings, e.g. `tools/run_tidy.sh build src/sim src/core`
#
# Exits 0 with a SKIP notice when clang-tidy is not installed, so callers
# (CI stages, pre-commit hooks) degrade gracefully on minimal images.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 ))
filters=("$@")

tidy=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    tidy="$cand"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "SKIP: clang-tidy not found on PATH; install clang-tidy to lint." >&2
  exit 0
fi

db="$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "error: $db not found — configure the build tree first:" >&2
  echo "  cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

# Lint every translation unit under src/ that appears in the compile
# database (tests/benches have their own idioms and are out of scope).
mapfile -t sources < <(
  python3 - "$db" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if "/src/" in path and path.endswith(".cpp"):
        print(path)
EOF
)

if (( ${#filters[@]} > 0 )); then
  selected=()
  for f in "${sources[@]}"; do
    for needle in "${filters[@]}"; do
      if [[ "$f" == *"$needle"* ]]; then
        selected+=("$f")
        break
      fi
    done
  done
  sources=("${selected[@]}")
fi

if (( ${#sources[@]} == 0 )); then
  echo "error: no sources matched" >&2
  exit 1
fi

echo "linting ${#sources[@]} files with $($tidy --version | head -1)"
status=0
for f in "${sources[@]}"; do
  echo "== $f"
  "$tidy" -p "$build_dir" --quiet "$f" || status=1
done

if (( status != 0 )); then
  echo "clang-tidy reported findings (see above)" >&2
fi
exit "$status"
