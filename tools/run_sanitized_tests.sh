#!/usr/bin/env bash
# Builds the test suite with AddressSanitizer + UBSan and runs it, then
# rebuilds the serving-layer tests with ThreadSanitizer and runs the `serve`
# label there — TSan is incompatible with ASan in one binary, and the serve
# suite is where the concurrency lives (request coalescer, model hot-swap,
# shutdown drain).
# Usage: tools/run_sanitized_tests.sh [build-dir] [-- extra ctest args]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSI_SANITIZE=address,undefined
cmake --build "$build_dir" -j "$(nproc)"

(cd "$build_dir" &&
 ctest -L sanitize --no-tests=error --output-on-failure -j "$(nproc)")

tsan_dir="$build_dir-tsan"
cmake -B "$tsan_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSI_SANITIZE=thread
cmake --build "$tsan_dir" -j "$(nproc)" \
  --target test_serve_protocol test_serve_server test_serve_chaos \
           test_serve_degraded

# Select by the `sanitize` label: gtest_discover_tests flattens the
# "sanitize;serve" label list to its first element in sanitized trees
# (CMake ≤3.25), and this tree only builds the serve test binaries, so
# `sanitize` here is exactly the serve suite. --no-tests=error guards
# against discovery silently going missing.
(cd "$tsan_dir" &&
 ctest -L sanitize --no-tests=error --output-on-failure -j "$(nproc)")
