#!/usr/bin/env bash
# Builds the test suite with AddressSanitizer + UBSan and runs it.
# Usage: tools/run_sanitized_tests.sh [build-dir] [-- extra ctest args]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSI_SANITIZE=address,undefined
cmake --build "$build_dir" -j "$(nproc)"

cd "$build_dir"
ctest -L sanitize --output-on-failure -j "$(nproc)"
