#!/usr/bin/env bash
# Builds the benchmarks in Release (optionally tuned for this machine),
# captures fresh bench --json records into the build dir, and gates them
# against the committed baselines (BENCH_kernels.json, BENCH_rollout.json,
# BENCH_serve.json) with tools/check_bench_regression.py. Pass --update to
# refresh the repo-root baselines from this run instead of gating.
# Usage: tools/run_bench_suite.sh [build-dir] [--portable] [--update]
#   --portable  skip -march=native (comparable across machines, slower)
#   --update    overwrite the committed BENCH_*.json baselines
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-bench"
native=ON
update=0
for arg in "$@"; do
  case "$arg" in
    --portable) native=OFF ;;
    --update) update=1 ;;
    *) build_dir="$arg" ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSI_NATIVE_ARCH="$native"
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_kernels bench_rollout bench_serve bench_cost_inference

fresh_dir="$build_dir/bench-records"
mkdir -p "$fresh_dir"

echo "== bench_kernels =="
"$build_dir/bench/bench_kernels" --json "$fresh_dir/BENCH_kernels.json"

echo "== bench_rollout =="
"$build_dir/bench/bench_rollout" --json "$fresh_dir/BENCH_rollout.json"

echo "== bench_serve =="
"$build_dir/bench/bench_serve" --json "$fresh_dir/BENCH_serve.json"

echo "== bench_cost_inference (google-benchmark, informational) =="
"$build_dir/bench/bench_cost_inference" --benchmark_min_time=0.2 || true

if [ "$update" = 1 ]; then
  cp "$fresh_dir/BENCH_kernels.json" "$repo_root/BENCH_kernels.json"
  cp "$fresh_dir/BENCH_rollout.json" "$repo_root/BENCH_rollout.json"
  cp "$fresh_dir/BENCH_serve.json" "$repo_root/BENCH_serve.json"
  echo "updated BENCH_kernels.json, BENCH_rollout.json, BENCH_serve.json"
  exit 0
fi

echo "== perf-regression gate (tools/check_bench_regression.py) =="
python3 "$repo_root/tools/check_bench_regression.py" \
  --baseline "$repo_root/BENCH_kernels.json" \
  --baseline "$repo_root/BENCH_rollout.json" \
  --baseline "$repo_root/BENCH_serve.json" \
  --fresh "$fresh_dir/BENCH_kernels.json" \
  --fresh "$fresh_dir/BENCH_rollout.json" \
  --fresh "$fresh_dir/BENCH_serve.json"
