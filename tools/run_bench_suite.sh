#!/usr/bin/env bash
# Builds the benchmarks in Release (optionally tuned for this machine) and
# captures the perf baseline: bench_kernels --json, bench_rollout --json,
# plus the google-benchmark inference-cost numbers. Writes
# BENCH_kernels.json and BENCH_rollout.json at the repo root — the
# artifacts later runs diff against to catch performance regressions.
# Usage: tools/run_bench_suite.sh [build-dir] [--portable]
#   --portable  skip -march=native (comparable across machines, slower)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-bench"
native=ON
for arg in "$@"; do
  case "$arg" in
    --portable) native=OFF ;;
    *) build_dir="$arg" ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSI_NATIVE_ARCH="$native"
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_kernels bench_rollout bench_serve bench_cost_inference

echo "== bench_kernels (perf-regression records -> BENCH_kernels.json) =="
"$build_dir/bench/bench_kernels" --json "$repo_root/BENCH_kernels.json"

echo "== bench_rollout (perf-regression records -> BENCH_rollout.json) =="
"$build_dir/bench/bench_rollout" --json "$repo_root/BENCH_rollout.json"

echo "== bench_serve (perf-regression records -> BENCH_serve.json) =="
"$build_dir/bench/bench_serve" --json "$repo_root/BENCH_serve.json"

echo "== bench_cost_inference (google-benchmark, informational) =="
"$build_dir/bench/bench_cost_inference" --benchmark_min_time=0.2 || true

echo "wrote $repo_root/BENCH_kernels.json, $repo_root/BENCH_rollout.json," \
     "and $repo_root/BENCH_serve.json"
