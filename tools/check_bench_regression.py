#!/usr/bin/env python3
"""Perf-regression gate over the bench --json records.

Compares freshly captured bench records against the committed baselines
(BENCH_kernels.json / BENCH_rollout.json / BENCH_serve.json). Records are
matched by (name, metric, config); each metric's direction is inferred
from its suffix:

  higher is better:  *_per_s, *_per_sec, *_speedup, *_throughput
  lower is better:   *_us, *_ms, *_ns, *_ns_per_sample, *_seconds

A fresh value is a regression when it is worse than the baseline by more
than the tolerance (relative, default 25% -- bench machines are noisy;
tighten with --tolerance for a quiet dedicated box). Records present in
only one file are reported but never fail the gate: baselines age and
benches grow new metrics.

Usage:
  tools/check_bench_regression.py --baseline BENCH_serve.json \
      --fresh build/fresh_serve.json [--tolerance 0.25]
  tools/check_bench_regression.py --self-test BENCH_kernels.json ...

--self-test is the hermetic ctest entry: for every baseline file it checks
that (a) the file gates cleanly against itself and (b) a synthetically
degraded copy (every metric made 2x worse in its bad direction) fails.
Exit codes: 0 ok, 1 regression (or self-test failure), 2 usage/IO error.

stdlib only -- no pip installs.
"""

import argparse
import json
import sys

HIGHER_BETTER_SUFFIXES = ("_per_s", "_per_sec", "_speedup", "_throughput")
LOWER_BETTER_SUFFIXES = (
    "_us",
    "_ms",
    "_ns",
    "_ns_per_sample",
    "_ns_per_step",
    "_seconds",
)


def direction(metric):
    """+1 when higher is better, -1 when lower is better."""
    for suffix in HIGHER_BETTER_SUFFIXES:
        if metric.endswith(suffix):
            return +1
    for suffix in LOWER_BETTER_SUFFIXES:
        if metric.endswith(suffix):
            return -1
    # Unknown shape: treat as lower-better (latency-like) but say so.
    print(f"note: unknown metric direction for '{metric}', assuming "
          "lower-is-better")
    return -1


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            records = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")
    if not isinstance(records, list):
        raise SystemExit(f"error: {path}: expected a JSON array of records")
    out = {}
    for record in records:
        if not isinstance(record, dict):
            raise SystemExit(f"error: {path}: non-object record {record!r}")
        for field in ("name", "metric", "value", "config"):
            if field not in record:
                raise SystemExit(
                    f"error: {path}: record missing '{field}': {record!r}")
        key = (record["name"], record["metric"], record["config"])
        out[key] = float(record["value"])
    return out


def compare(baseline, fresh, tolerance):
    """Returns the list of regression messages (empty = gate passes)."""
    regressions = []
    for key in sorted(set(baseline) | set(fresh)):
        name, metric, config = key
        label = f"{name}/{metric} [{config}]"
        if key not in fresh:
            print(f"note: {label}: in baseline only (bench dropped it?)")
            continue
        if key not in baseline:
            print(f"note: {label}: new metric, no baseline yet")
            continue
        base = baseline[key]
        new = fresh[key]
        sign = direction(metric)
        if base == 0.0:
            print(f"note: {label}: zero baseline, skipping ratio check")
            continue
        # Positive delta = worse, as a fraction of the baseline.
        worse = (base - new) / abs(base) * sign
        verdict = "ok"
        if worse > tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"{label}: {base:.4g} -> {new:.4g} "
                f"({worse * 100.0:+.1f}% worse, tolerance "
                f"{tolerance * 100.0:.0f}%)")
        print(f"{verdict:>10}  {label}: {base:.4g} -> {new:.4g} "
              f"({-worse * 100.0:+.1f}%)")
    return regressions


def degrade(records):
    """Every metric made 2x worse in its bad direction."""
    out = {}
    for key, value in records.items():
        _, metric, _ = key
        out[key] = value / 2.0 if direction(metric) > 0 else value * 2.0
    return out


def self_test(paths, tolerance):
    failures = []
    for path in paths:
        records = load_records(path)
        if not records:
            failures.append(f"{path}: no records")
            continue
        if compare(records, dict(records), tolerance):
            failures.append(f"{path}: baseline regresses against itself")
        if not compare(records, degrade(records), tolerance):
            failures.append(
                f"{path}: synthetically degraded records passed the gate")
    if failures:
        print("\nself-test FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nself-test ok: {len(paths)} baseline file(s) gate correctly")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", action="append", default=[],
                        help="committed BENCH_*.json (repeatable)")
    parser.add_argument("--fresh", action="append", default=[],
                        help="freshly captured bench --json output "
                             "(repeatable, merged)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative worsening (default 0.25)")
    parser.add_argument("--self-test", nargs="+", metavar="BASELINE",
                        dest="self_test",
                        help="verify each baseline gates itself clean and a "
                             "degraded copy dirty, then exit")
    args = parser.parse_args(argv)

    if args.tolerance <= 0.0:
        parser.error("--tolerance must be > 0")
    if args.self_test:
        return self_test(args.self_test, args.tolerance)
    if not args.baseline or not args.fresh:
        parser.error("need --baseline and --fresh (or --self-test)")

    baseline = {}
    for path in args.baseline:
        baseline.update(load_records(path))
    fresh = {}
    for path in args.fresh:
        fresh.update(load_records(path))

    regressions = compare(baseline, fresh, args.tolerance)
    if regressions:
        print(f"\n{len(regressions)} perf regression(s):")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print(f"\nperf gate ok ({len(fresh)} fresh records vs "
          f"{len(baseline)} baseline records)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
